"""Setup shim for environments installing with the legacy (non-PEP-660) path."""
from setuptools import setup

setup()
