"""Figure 2: pairwise contention between realistic flow types.

Paper shapes checked: MON is the most sensitive target type and RE (with
MON close behind) the most damaging competitor class; FW barely suffers
and barely hurts; the per-target average ordering follows solo hits/sec
(MON > IP > {RE, VPN} > FW). Paper magnitudes for reference: worst pair
drop ~27% (MON vs 5 RE), FW always under ~6%.
"""

from repro.experiments import fig2
from repro.experiments.fig2 import PAPER_FIG2B


def test_fig2_pairwise_drops(benchmark, config, profiles, shared_cache,
                             run_once, strict, record):
    result = run_once(
        benchmark, lambda: fig2.run(config, profiles=profiles)
    )
    shared_cache.setdefault("fig2", result)
    record("fig2", {
        "drops": result.drops,
        "averages": result.averages(),
        "max_drop": result.max_drop(),
        "most_sensitive": result.most_sensitive(),
        "most_aggressive": result.most_aggressive(),
    })
    print()
    print(result.render())
    print("\npaper Figure 2(b) averages: " + ", ".join(
        f"{k}={v:.1f}%" for k, v in PAPER_FIG2B.items()))

    if not strict:
        return
    averages = result.averages()
    # Sensitivity ordering (Figure 2(b)).
    assert result.most_sensitive() == "MON"
    assert averages["MON"] > averages["IP"] > averages["FW"]
    assert averages["FW"] == min(averages.values())
    # FW suffers little in every scenario (paper: < 6%).
    assert all(result.drops[("FW", c)] < 0.08 for c in result.apps)
    # Aggressiveness: MON/RE-class competitors dominate, FW is benign.
    def caused(comp):
        return sum(result.drops[(t, comp)] for t in result.apps)

    assert result.most_aggressive() in ("RE", "MON")
    assert caused("FW") < caused("IP")
    assert caused("FW") < caused("RE")
    # The worst observed pair lands in the paper's regime (10-35%).
    assert 0.10 < result.max_drop() < 0.40
