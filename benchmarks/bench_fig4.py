"""Figure 4: contention for the cache vs. the memory controller.

Reproduces the three Figure 3 placements. Paper shapes checked: the
shared cache is the dominant contention factor for every flow type
(cache-only max drop >> MC-only max drop); MC-only contention stays in
single digits; the combined configuration is at least as bad as
cache-only; drops grow with competing refs/sec.
"""

from repro.experiments import fig4

#: A reduced sweep keeps the 3 x 5-app x levels grid affordable.
BENCH_LEVELS = (720, 160, 60, 0)


def test_fig4_contended_resources(benchmark, config, profiles, run_once,
                                  strict, record):
    result = run_once(
        benchmark,
        lambda: fig4.run(config, cpu_ops_levels=BENCH_LEVELS,
                         profiles=profiles),
    )
    record("fig4", {
        "series": result.series,
        "max_drops": {
            f"{conf}/{app}": result.max_drop(conf, app)
            for conf, app in result.series
        },
    })
    print()
    print(result.render())

    if not strict:
        return
    assert result.cache_dominates()
    for app in ("IP", "MON", "RE", "VPN"):
        cache_drop = result.max_drop("cache", app)
        mc_drop = result.max_drop("mc", app)
        assert cache_drop > 2 * mc_drop, (app, cache_drop, mc_drop)
        assert mc_drop < 0.10
        # Combined contention is at least cache-level (tolerance for noise).
        assert result.max_drop("both", app) > cache_drop * 0.8
    # MON is the most cache-sensitive flow, in the paper's 15-40% regime.
    assert 0.15 < result.max_drop("cache", "MON") < 0.40
    # Monotone-ish growth with competition for the sensitive flows.
    mon_curve = result.series[("cache", "MON")]
    assert mon_curve[-1][1] > mon_curve[0][1]
