"""Figure 5: realistic competitors vs. the SYN curves.

The paper's observation (b): a target suffers about the same from
realistic co-runners as from SYN flows performing the same cache
refs/sec. Checked as: for each target, the mean |measured - curve| gap
over the realistic points stays small relative to the curve's range (our
simulator's documented deviation: trie-heavy IP competitors evict less
per reference than SYN, so their points sit somewhat below the curve).
"""

from repro.experiments import fig5


def test_fig5_syn_equivalence(benchmark, config, fig2_result, curves,
                              run_once, strict, record):
    result = run_once(
        benchmark,
        lambda: fig5.run(config, fig2_result=fig2_result, curves=curves),
    )
    record("fig5", {
        "curves": {t: c.points for t, c in result.curves.items()},
        "realistic_points": result.realistic_points,
        "deviations": {t: result.deviation(t) for t in result.curves},
    })
    print()
    print(result.render())

    for target, curve in result.curves.items():
        max_drop = max(curve.drops)
        deviation = result.deviation(target)
        print(f"{target:4s}: mean |realistic - SYN curve| = "
              f"{100 * deviation:.2f}pp (curve max {100 * max_drop:.1f}%)")
        # Points land on-or-below the curve within a workable band.
        if strict:
            assert deviation < max(0.02, 0.45 * max_drop), target
    if not strict:
        return
    # The most sensitive flow's curve has the paper's shape: a sharp rise
    # (turning point well before the end of the competition range).
    mon = result.curves["MON"]
    assert mon.turning_point(0.8) < 0.75 * mon.refs[-1]
