"""Figure 8: prediction errors for the two-flow-type workloads.

Paper shapes checked: the method's errors are small on average; the
"perfect knowledge" variant is at least as accurate on average (the
solo-refs overestimate is the second error source); the worst errors are
over-predictions for sensitive-competitor scenarios. Paper magnitudes:
avg < 2pp, worst < 3pp; our simulator's documented deviation (IP/MON
competitors retain more cache hits than the paper's, see EXPERIMENTS.md)
widens the worst case while the average stays in the paper's regime.
"""

from repro.experiments import fig8


def test_fig8_prediction_errors(benchmark, config, fig2_result, predictor,
                                run_once, strict, record):
    result = run_once(
        benchmark,
        lambda: fig8.run(config, fig2_result=fig2_result,
                         predictor=predictor),
    )
    record("fig8", {
        "entries": result.entries,
        "average_abs_error": {t: result.average_abs_error(t)
                              for t in result.apps},
        "average_abs_error_perfect": {
            t: result.average_abs_error(t, perfect=True)
            for t in result.apps},
        "worst_abs_error": result.worst_abs_error(),
    })
    print()
    print(result.render())

    avg_errors = [result.average_abs_error(t) for t in result.apps]
    avg_perfect = [result.average_abs_error(t, perfect=True)
                   for t in result.apps]
    overall = sum(avg_errors) / len(avg_errors)
    overall_perfect = sum(avg_perfect) / len(avg_perfect)
    print(f"\noverall avg |error|: {100 * overall:.2f}pp "
          f"(perfect knowledge: {100 * overall_perfect:.2f}pp); "
          f"worst: {100 * result.worst_abs_error():.2f}pp")

    if not strict:
        return
    # Average accuracy in the paper's regime.
    assert overall < 0.045
    assert result.worst_abs_error() < 0.11
    # FW (insensitive) is predicted almost exactly.
    assert result.average_abs_error("FW") < 0.02
    # Perfect knowledge of the competition can only help on average.
    assert overall_perfect <= overall + 0.005
