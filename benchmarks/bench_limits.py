"""Section 6 boundary: small competitor working sets break refs/sec.

Checked: competitors with sliver-sized working sets generate *at least*
as many cache refs/sec as standard SYN_MAX competitors (their accesses
hit, so they run fast) while causing far less damage, so the refs/sec
prediction overestimates them badly — the regime the paper explicitly
scopes out.
"""

from repro.experiments import limits


def test_limits_small_working_sets(benchmark, config, profiles, curves,
                                   run_once, strict, record):
    result = run_once(
        benchmark,
        lambda: limits.run(config, solo=profiles["MON"],
                           curve=curves["MON"]),
    )
    record("limits", {"target": result.target, "rows": result.rows})
    print()
    print(result.render())

    if not strict:
        return
    rows = {fraction: (refs, measured, predicted)
            for fraction, refs, measured, predicted in result.rows}
    smallest = min(rows)
    largest = max(rows)
    refs_small, drop_small, pred_small = rows[smallest]
    refs_large, drop_large, _ = rows[largest]
    # The sliver competitors reference the cache at a comparable-or-higher
    # rate, yet cause a fraction of the damage.
    assert refs_small > 0.8 * refs_large
    assert drop_small < 0.5 * drop_large
    # And the refs/sec prediction overestimates them badly (the paper's
    # stated limit of the method).
    assert result.overestimate(smallest) > 2 * abs(
        result.overestimate(largest))
