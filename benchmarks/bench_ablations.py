"""Ablations for the design choices DESIGN.md calls out.

* delta (the hit-to-miss penalty) drives drop magnitude — Equation 1's
  mechanism, checked by varying the simulated DRAM latency.
* the memory-controller service time drives the (small) MC-only effect of
  Figure 4(b).
* the platform scale knob preserves contention shapes (the basis for
  running experiments scaled down).
* the SYN array size calibrates the profiler's per-reference
  aggressiveness (the SYN-equivalence substitution).
"""

from dataclasses import replace

from repro.apps.registry import app_factory
from repro.apps.synthetic import syn_factory, syn_max_factory
from repro.hw.counters import performance_drop
from repro.hw.machine import Machine


def _mon_drop_vs_synmax(spec, seed, warm, meas, data_domain=None,
                        competitor_cores=None, array_bytes=None):
    solo_machine = Machine(spec, seed=seed)
    solo_machine.add_flow(app_factory("MON"), core=0, label="T")
    solo = solo_machine.run(warmup_packets=warm, measure_packets=meas)["T"]
    machine = Machine(spec, seed=seed)
    machine.add_flow(app_factory("MON"), core=0, label="T")
    cores = competitor_cores or range(1, 6)
    labels = []
    for i, core in enumerate(cores):
        fr = machine.add_flow(
            syn_factory(cpu_ops_per_ref=0, array_bytes=array_bytes),
            core=core, data_domain=data_domain, label=f"S{i}",
        )
        labels.append(fr.label)
    result = machine.run(warmup_packets=warm, measure_packets=meas)
    drop = performance_drop(solo.packets_per_sec,
                            result["T"].packets_per_sec)
    refs = sum(result[lbl].l3_refs_per_sec for lbl in labels)
    return drop, refs


def test_ablation_delta_drives_drop(benchmark, config, run_once, strict,
                                    record):
    """Halving/doubling the miss penalty scales the contention drop."""
    spec = config.socket_spec()

    def experiment():
        out = {}
        for factor in (0.5, 1.0, 2.0):
            varied = replace(spec,
                             lat_dram_extra=spec.lat_dram_extra * factor)
            out[factor], _ = _mon_drop_vs_synmax(
                varied, config.seed, config.corun_warmup,
                config.corun_measure)
        return out

    drops = run_once(benchmark, experiment)
    record("ablation_delta", {"drops_by_delta_factor": drops})
    print("\nMON drop vs 5 SYN_MAX, by delta factor: " + ", ".join(
        f"x{f}: {100 * d:.1f}%" for f, d in sorted(drops.items())))
    if not strict:
        return
    assert drops[0.5] < drops[1.0] < drops[2.0]
    assert drops[2.0] > 1.4 * drops[0.5]


def test_ablation_mc_service_drives_mc_only_drop(benchmark, config, run_once,
                                                 strict, record):
    """The MC-only effect (Figure 4(b)) scales with the fill service time."""
    spec = config.spec()

    def experiment():
        out = {}
        for service in (2.5, 5.0, 15.0):
            varied = replace(spec, mc_service_cycles=service)
            out[service], _ = _mon_drop_vs_synmax(
                varied, config.seed, config.corun_warmup,
                config.corun_measure, data_domain=0,
                competitor_cores=range(6, 11))
        return out

    drops = run_once(benchmark, experiment)
    record("ablation_mc_service", {"drops_by_service_cycles": drops})
    print("\nMON drop under MC-only contention, by service cycles: "
          + ", ".join(f"{s}: {100 * d:.2f}%" for s, d in sorted(drops.items())))
    if not strict:
        return
    assert drops[2.5] <= drops[5.0] <= drops[15.0]
    # Even at triple service time the MC-only effect stays modest
    # (the paper's point: the cache is the dominant factor).
    assert drops[15.0] < 0.15


def test_ablation_scale_preserves_shapes(benchmark, config, run_once, strict,
                                         record):
    """The scaled-down platform reproduces the full-er platform's shapes."""

    from repro.hw.topology import PlatformSpec

    def experiment():
        out = {}
        for scale, warm in ((8, config.corun_warmup),
                            (16, max(2500, config.corun_warmup // 2))):
            spec = PlatformSpec.westmere().scaled(scale).single_socket()
            out[scale], _ = _mon_drop_vs_synmax(
                spec, config.seed, warm, config.corun_measure)
        return out

    drops = run_once(benchmark, experiment)
    record("ablation_scale", {"drops_by_scale": drops})
    print("\nMON drop vs 5 SYN_MAX by platform scale: " + ", ".join(
        f"1/{s}: {100 * d:.1f}%" for s, d in sorted(drops.items())))
    if not strict:
        return
    # Same regime at both scales (within a generous band).
    assert abs(drops[8] - drops[16]) < 0.12
    assert min(drops.values()) > 0.08


def test_ablation_syn_array_size_sets_aggressiveness(benchmark, config,
                                                     run_once, strict,
                                                     record):
    """Bigger SYN arrays are more evicting per reference (fewer refs/sec,
    similar-or-more damage) — the calibration dial behind SYN-equivalence."""
    spec = config.socket_spec()

    def experiment():
        out = {}
        for fraction in (0.1, 0.4, 1.0):
            array = int(spec.l3_size * fraction)
            out[fraction] = _mon_drop_vs_synmax(
                spec, config.seed, config.corun_warmup,
                config.corun_measure, array_bytes=array)
        return out

    results = run_once(benchmark, experiment)
    record("ablation_syn_array", {
        "by_l3_fraction": {f: {"drop": d, "refs_per_sec": r}
                           for f, (d, r) in results.items()},
    })
    print("\nSYN array ablation (fraction of L3 -> drop @ refs/s):")
    for fraction, (drop, refs) in sorted(results.items()):
        print(f"  {fraction:4.1f} x L3: drop {100 * drop:5.1f}% at "
              f"{refs / 1e6:6.1f}M refs/s")
    if not strict:
        return
    # Larger arrays: fewer refs/sec (more misses, slower)...
    assert results[0.1][1] > results[1.0][1]
    # ...but per-reference damage grows monotonically.
    damage_per_ref = {f: d / max(r, 1.0) for f, (d, r) in results.items()}
    assert damage_per_ref[0.1] < damage_per_ref[0.4] < damage_per_ref[1.0]
