"""Figure 7: hit-to-miss conversion, measured vs. the Appendix A model.

Paper shapes checked: conversion rises sharply then flattens; the simple
model reproduces the shape but overestimates the value (it assumes the
target accesses its data uniformly); per function, ``flow_statistics``
(uniform table) converts the most, ``radix_ip_lookup`` partially (hot top
levels), and the per-packet bookkeeping (``check_ip_header``,
``skb_recycle``) barely at all.
"""

from repro.experiments import fig7


def test_fig7_conversion_rates(benchmark, config, run_once, strict, record):
    result = run_once(benchmark, lambda: fig7.run(config))
    record("fig7", {
        "working_set_lines": result.working_set_lines,
        "measured": result.measured,
        "model": result.model,
        "per_function": result.per_function,
    })
    print()
    print(result.render())

    if not strict:
        return
    assert result.working_set_lines > 0
    measured = dict(result.measured)
    top_competition = max(measured)
    # Conversion grows with competition...
    assert measured[top_competition] > next(
        v for k, v in sorted(measured.items())
    )
    # ...and flattens: the first half of the range covers most of the rise.
    xs = sorted(measured)
    mid = xs[len(xs) // 2]
    assert measured[mid] > 0.5 * measured[top_competition]

    # The analytical model captures the shape but overestimates the value.
    model = dict(result.model)
    assert result.model_overestimates()
    assert model[top_competition] >= measured[top_competition] - 0.05

    # Per-function breakdown at the highest competition level.
    at_top = {fn: dict(pts)[top_competition]
              for fn, pts in result.per_function.items()}
    assert at_top["flow_statistics"] > at_top["radix_ip_lookup"]
    assert at_top["radix_ip_lookup"] > at_top["skb_recycle"]
    assert at_top["skb_recycle"] < 0.15
    assert at_top["flow_statistics"] > 0.4
