#!/usr/bin/env python
"""Standalone benchmark recorder: regenerate ``BENCH_<name>.json`` files.

Runs the paper's figure experiments directly (no pytest/pytest-benchmark
required) and writes one machine-readable record per figure via
:class:`repro.obs.BenchRecorder` — the same schema the benchmark suite
emits, so CI can produce artifacts with::

    PYTHONPATH=src python benchmarks/record.py --quick

``--quick`` shrinks the platform (scale 1/64) and packet counts to a
smoke pass; the default configuration matches the benchmark harness
(scale 1/8, full packet counts — slow). Select a subset of figures by
name, e.g. ``record.py --quick table1 fig2``.

``--engine`` selects the execution engine: ``scalar`` (the default:
the reference event loop), or ``batch``/``both`` which time every
figure on the scalar engine *and* on the batch engine (cold stream
cache, then warm), verify the payloads are identical, and record the
speedups alongside the figure data. A payload divergence between
engines makes the run exit non-zero.

``--jobs N`` records each figure as a sharded :mod:`repro.sweep` run on
N worker processes; the figure payloads are identical to a serial pass.
Shard results are cached in memory across figures (or on disk with
``--cache-dir``), so prerequisites shared between figures — the solo
profiles, the Figure 2 co-run grid — cost one execution per content
key, like the serial context's memoization.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Callable, Dict

import repro.fastpath as fastpath
from repro.apps.registry import REALISTIC_APPS
from repro.core.prediction import sweep_sensitivity
from repro.core.profiler import profile_apps
from repro.experiments import fig2, fig5, fig6, fig9, multiflow, table1
from repro.experiments.common import ExperimentConfig
from repro.core.prediction import ContentionPredictor
from repro.obs.recorder import BenchRecorder, _jsonable


class _Context:
    """Memoized shared prerequisites (mirrors the conftest fixtures).

    With a :class:`~repro.sweep.SweepRunner` attached (``--jobs``),
    figures run as sharded sweeps instead; the runner's result cache
    plays the memoization role (shared shards — e.g. the solo profiles
    every figure needs — cost one execution across all figures), and
    the merged payloads are identical to the serial path's.
    """

    def __init__(self, config: ExperimentConfig, runner=None):
        self.config = config
        self.runner = runner
        self._cache: Dict[str, object] = {}

    def figure(self, name: str):
        """The figure's result object — sharded when a runner is set."""
        if self.runner is not None:
            from repro.sweep import run_figure

            return run_figure(name, self.config, runner=self.runner)
        return self._serial(name)

    def _serial(self, name: str):
        if name == "table1":
            return table1.run(self.config)
        if name == "fig2":
            return self.fig2()
        if name == "fig5":
            return fig5.run(self.config, fig2_result=self.fig2(),
                            curves=self.curves())
        if name == "fig6":
            return fig6.run(self.config, profiles=self.profiles())
        if name == "fig9":
            return fig9.run(self.config, self.predictor())
        if name == "multiflow":
            return multiflow.run(self.config)
        raise KeyError(name)

    def profiles(self):
        if "profiles" not in self._cache:
            c = self.config
            self._cache["profiles"] = profile_apps(
                REALISTIC_APPS, c.socket_spec(), seed=c.seed,
                warmup_packets=c.solo_warmup,
                measure_packets=c.solo_measure)
        return self._cache["profiles"]

    def fig2(self):
        if "fig2" not in self._cache:
            self._cache["fig2"] = fig2.run(self.config,
                                           profiles=self.profiles())
        return self._cache["fig2"]

    def curves(self):
        if "curves" not in self._cache:
            c = self.config
            spec = c.socket_spec()
            profiles = self.profiles()
            self._cache["curves"] = {
                app: sweep_sensitivity(
                    app, spec, seed=c.seed,
                    warmup_packets=c.corun_warmup,
                    measure_packets=c.corun_measure,
                    solo=profiles[app])
                for app in REALISTIC_APPS
            }
        return self._cache["curves"]

    def predictor(self):
        return ContentionPredictor(profiles=self.profiles(),
                                   curves=self.curves())


def _record_table1(ctx: _Context) -> dict:
    result = ctx.figure("table1")
    return {"profiles": result.profiles}


def _record_fig2(ctx: _Context) -> dict:
    result = ctx.figure("fig2")
    return {
        "drops": result.drops,
        "averages": result.averages(),
        "max_drop": result.max_drop(),
        "most_sensitive": result.most_sensitive(),
        "most_aggressive": result.most_aggressive(),
    }


def _record_fig5(ctx: _Context) -> dict:
    result = ctx.figure("fig5")
    return {
        "curves": {t: c.points for t, c in result.curves.items()},
        "realistic_points": result.realistic_points,
        "deviations": {t: result.deviation(t) for t in result.curves},
    }


def _record_fig6(ctx: _Context) -> dict:
    result = ctx.figure("fig6")
    return {"curves": result.curves, "app_points": result.app_points}


def _record_fig9(ctx: _Context) -> dict:
    result = ctx.figure("fig9")
    return {
        "rows": result.rows,
        "mean_abs_error": result.mean_abs_error(),
        "max_abs_error": result.max_abs_error(),
    }


def _record_multiflow(ctx: _Context) -> dict:
    result = ctx.figure("multiflow")
    return {
        "rows": [list(row) for row in result.rows],
        "shortfalls": {label: result.shortfall(label)
                       for label, _ideal, _measured in result.rows},
    }


#: name -> payload builder. Order matters: later figures reuse earlier
#: memoized prerequisites.
FIGURES: Dict[str, Callable[[_Context], dict]] = {
    "table1": _record_table1,
    "fig2": _record_fig2,
    "fig5": _record_fig5,
    "fig6": _record_fig6,
    "fig9": _record_fig9,
    "multiflow": _record_multiflow,
}

#: The --quick subset: cheap enough for a CI smoke pass, still covering a
#: throughput table (table1), a drop matrix (fig2), and the shared-core
#: study (multiflow).
QUICK_FIGURES = ("table1", "fig2", "fig6", "multiflow")


def _canonical(payload: dict) -> str:
    """Engine-comparison form of a figure payload."""
    return json.dumps(_jsonable(payload), sort_keys=True, default=str)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate BENCH_<name>.json benchmark records.")
    parser.add_argument("figures", nargs="*",
                        help=f"figures to record (default: all; "
                             f"known: {', '.join(FIGURES)})")
    parser.add_argument("--quick", action="store_true",
                        help="smoke pass: scale 1/64, reduced packets, "
                             f"subset {'+'.join(QUICK_FIGURES)}")
    parser.add_argument("--scale", type=int, default=None,
                        help="override the platform scale-down factor")
    parser.add_argument("--out", default="bench_reports",
                        help="output directory (default bench_reports/)")
    parser.add_argument("--engine", choices=("scalar", "batch", "both"),
                        default="scalar",
                        help="'scalar' records the reference engine only; "
                             "'batch'/'both' time scalar vs. batch "
                             "(cold+warm stream cache), verify identical "
                             "payloads, and record the speedups")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="run each figure as a sharded sweep on N "
                             "worker processes (payloads identical to "
                             "--jobs 1; scalar engine only)")
    parser.add_argument("--cache-dir", metavar="PATH", default=None,
                        help="persist sweep shard results under PATH "
                             "(default: in-memory for the run; entries "
                             "are keyed by config+seed+engine+code "
                             "version)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable shard result caching entirely "
                             "(shared shards recompute per figure)")
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if (args.jobs > 1 or args.cache_dir) and args.engine != "scalar":
        parser.error("--jobs/--cache-dir support the scalar engine only "
                     "(the batch-vs-scalar timing comparison must run "
                     "unsharded)")

    if args.quick:
        config = ExperimentConfig(
            scale=args.scale or 64,
            solo_warmup=500, solo_measure=500,
            corun_warmup=300, corun_measure=300,
        )
        names = list(args.figures or QUICK_FIGURES)
    else:
        config = ExperimentConfig(scale=args.scale or 8)
        names = list(args.figures or FIGURES)
    unknown = [n for n in names if n not in FIGURES]
    if unknown:
        parser.error(f"unknown figure(s): {', '.join(unknown)}; "
                     f"known: {', '.join(FIGURES)}")

    recorder = BenchRecorder(args.out, config=config)

    runner = None
    if args.jobs > 1 or args.cache_dir:
        from repro.sweep import (MemoryCache, ResultCache, SweepOptions,
                                 SweepRunner)

        if args.no_cache:
            cache = None
        elif args.cache_dir:
            cache = ResultCache(args.cache_dir)
        else:
            # In-memory cache: plays _Context's memoization role across
            # figures (shared solo profiles et al. run once per key).
            cache = MemoryCache()
        runner = SweepRunner(SweepOptions(jobs=args.jobs, cache=cache))

    if args.engine == "scalar":
        ctx = _Context(config, runner=runner)
        for name in names:
            start = time.perf_counter()
            payload = FIGURES[name](ctx)
            elapsed = time.perf_counter() - start
            payload["engine"] = "scalar"
            payload["seconds"] = elapsed
            path = recorder.record(name, payload)
            print(f"[{elapsed:7.2f}s] {name:9s} -> {path}", file=sys.stderr)
        print(f"{len(recorder.written)} record(s) in {args.out}/",
              file=sys.stderr)
        if runner is not None:
            stats = runner.execution_stats()
            print(f"sweep: {stats['shards']} shard(s), "
                  f"{stats['executed']} executed, "
                  f"{stats['cache_hits']} cache hit(s), "
                  f"{stats['retries']} retried, "
                  f"{stats['quarantined']} quarantined "
                  f"on {stats['jobs']} job(s)", file=sys.stderr)
        return 0

    # batch / both: one scalar reference pass, one cold-cache batch pass,
    # one warm-cache batch pass — figure by figure so each record carries
    # its own three timings. Contexts memoize per pass, exactly like
    # three independent record.py invocations would.
    scalar_ctx = _Context(config)
    cold_ctx = _Context(config)
    warm_ctx = _Context(config)
    fastpath.clear_stream_cache()
    diverged = []
    for name in names:
        start = time.perf_counter()
        ref_payload = FIGURES[name](scalar_ctx)
        t_scalar = time.perf_counter() - start
        with fastpath.use_engine("batch"):
            start = time.perf_counter()
            cold_payload = FIGURES[name](cold_ctx)
            t_cold = time.perf_counter() - start
            start = time.perf_counter()
            warm_payload = FIGURES[name](warm_ctx)
            t_warm = time.perf_counter() - start
        ref_c = _canonical(ref_payload)
        matches = {
            "batch_cold": _canonical(cold_payload) == ref_c,
            "batch_warm": _canonical(warm_payload) == ref_c,
        }
        payload = dict(ref_payload)
        payload["engine"] = "both"
        payload["engines"] = {
            "scalar_seconds": t_scalar,
            "batch_cold_seconds": t_cold,
            "batch_warm_seconds": t_warm,
            "payload_match": matches,
        }
        payload["speedup_cold"] = t_scalar / t_cold if t_cold else 0.0
        payload["speedup"] = t_scalar / t_warm if t_warm else 0.0
        path = recorder.record(name, payload)
        print(f"[scalar {t_scalar:6.2f}s | batch {t_cold:6.2f}s cold "
              f"{t_warm:6.2f}s warm | x{payload['speedup_cold']:.2f}/"
              f"x{payload['speedup']:.2f}] {name:9s} -> {path}",
              file=sys.stderr)
        for pass_label, ok in matches.items():
            if not ok:
                diverged.append(f"{name}:{pass_label}")
    print(f"{len(recorder.written)} record(s) in {args.out}/",
          file=sys.stderr)
    if diverged:
        print("ENGINE DIVERGENCE: payload mismatch in "
              + ", ".join(diverged), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
