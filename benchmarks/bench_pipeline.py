"""Section 2.2: parallel vs. pipelined parallelization.

Checked shapes: for the realistic workload (MON), run-to-completion beats
the pipeline in per-core throughput and pipelining costs extra shared-
cache references per packet (the paper measured 10-15 extra misses); the
crafted adversarial workload (per-stage tables that individually fit an
L3 but jointly thrash one) is the exception where the pipeline wins.
"""

from repro.experiments import pipeline_vs_parallel


def test_pipeline_vs_parallel(benchmark, config, run_once, strict, record):
    result = run_once(
        benchmark,
        lambda: pipeline_vs_parallel.run(config.quicker(2)),
    )
    record("pipeline", {
        "comparisons": [
            {
                "workload": c.workload,
                "n_stages": c.n_stages,
                "parallel_pps": c.parallel_pps,
                "pipeline_pps": c.pipeline_pps,
                "per_core_ratio": c.per_core_ratio,
                "extra_refs_per_packet": c.extra_refs_per_packet,
            }
            for c in result.comparisons
        ],
    })
    print()
    print(result.render())

    if not strict:
        return
    by_name = {c.workload: c for c in result.comparisons}
    mon = by_name["MON"]
    # The parallel approach wins per core for realistic workloads.
    assert mon.per_core_ratio < 0.95
    # Pipelining costs extra shared-cache references per packet.
    assert mon.extra_refs_per_packet > 2.0
    # The crafted workload inverts the outcome (paper Section 2.2 / [14]).
    scan = by_name["adversarial-scan"]
    assert scan.per_core_ratio > 1.0
