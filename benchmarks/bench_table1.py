"""Table 1: solo-run characteristics of each flow type.

Paper-vs-measured: absolute rates differ (the substrate is a simulator at
reduced scale), but the orderings that drive the paper's analysis must
hold — MON and IP lead in cache refs/sec and hits/sec, FW trails both by
an order of magnitude, FW/RE are the most expensive per packet, and VPN
has the lowest CPI.
"""

from repro.experiments import table1
from repro.experiments.table1 import PAPER_TABLE1


def test_table1(benchmark, config, shared_cache, run_once, strict, record):
    result = run_once(benchmark, lambda: table1.run(config))
    # Later benchmarks (Figures 2, 5, 8, ...) reuse these solo profiles.
    shared_cache.setdefault("profiles", result.profiles)
    record("table1", {"profiles": result.profiles})
    print()
    print(result.render())
    print("\npaper Table 1 (for comparison):")
    for app, row in PAPER_TABLE1.items():
        print(f"  {app:4s} cpi={row[0]:5.2f} refs/s={row[1]:6.2f}M "
              f"hits/s={row[2]:6.2f}M cyc/pkt={row[3]}")

    if not strict:
        return
    p = result.profiles
    # Aggressiveness ordering (refs/sec): MON & IP lead, FW trails.
    assert p["MON"].l3_refs_per_sec > p["RE"].l3_refs_per_sec
    assert p["IP"].l3_refs_per_sec > p["VPN"].l3_refs_per_sec
    assert p["FW"].l3_refs_per_sec * 4 < p["RE"].l3_refs_per_sec
    # Sensitivity ordering (hits/sec): MON > IP > the rest; FW last.
    assert p["MON"].l3_hits_per_sec > p["IP"].l3_hits_per_sec
    assert p["IP"].l3_hits_per_sec > p["RE"].l3_hits_per_sec
    assert min(p[a].l3_hits_per_sec for a in ("IP", "MON", "RE", "VPN")) > \
        p["FW"].l3_hits_per_sec
    # Cost ordering: FW and RE are the heavyweights; IP the lightest.
    assert p["FW"].cycles_per_packet > 5 * p["MON"].cycles_per_packet
    assert p["RE"].cycles_per_packet > p["VPN"].cycles_per_packet > \
        p["MON"].cycles_per_packet > p["IP"].cycles_per_packet
    # VPN is the CPU-intensive flow (lowest cycles/instruction).
    assert p["VPN"].cycles_per_instruction == \
        min(x.cycles_per_instruction for x in p.values())
