"""Substrate microbenchmarks (classic pytest-benchmark timings).

These are not paper figures; they characterize the building blocks the
experiments run on: cache probes, trie lookups, AES blocks, Rabin
fingerprints, firewall scans, and raw engine event throughput.
"""

import random

import pytest

from repro.apps.aes import AES128
from repro.apps.fingerprint import RabinFingerprinter
from repro.apps.firewall import Firewall
from repro.apps.radixtrie import RouteTableBuilder
from repro.apps.registry import app_factory
from repro.hw.cache import SetAssociativeCache
from repro.hw.machine import Machine
from repro.hw.topology import PlatformSpec
from repro.hw.machine import FlowEnv
from repro.mem.allocator import AddressSpace
from repro.net.packet import Packet


def make_env(spec, domain=0, seed=7):
    return FlowEnv(space=AddressSpace(spec.n_sockets), domain=domain,
                   spec=spec, rng=random.Random(seed))


def test_cache_access_throughput(benchmark):
    cache = SetAssociativeCache(size=256 * 1024, ways=8)
    rng = random.Random(1)
    lines = [rng.randrange(1 << 20) for _ in range(4096)]

    def probe_all():
        access = cache.access
        for line in lines:
            access(line)

    benchmark(probe_all)
    assert cache.hits + cache.misses > 0


def test_trie_lookup_throughput(benchmark):
    rng = random.Random(2)
    trie = RouteTableBuilder(rng).build(20_000)
    addrs = [rng.getrandbits(32) for _ in range(2048)]

    def lookup_all():
        lookup = trie.lookup
        for addr in addrs:
            lookup(addr)

    benchmark(lookup_all)


def test_aes_block_throughput(benchmark):
    cipher = AES128(b"\x13" * 16)
    block = bytes(range(16))

    def encrypt_64():
        encrypt = cipher.encrypt_block
        b = block
        for _ in range(64):
            b = encrypt(b)
        return b

    out = benchmark(encrypt_64)
    assert len(out) == 16


def test_rabin_rolling_throughput(benchmark):
    fp = RabinFingerprinter(window=64)
    data = bytes((i * 31 + 7) % 256 for i in range(4096))
    result = benchmark(lambda: sum(1 for _ in fp.rolling(data)))
    assert result == 4096 - 64 + 1


def test_firewall_scan_throughput(benchmark):
    fw = Firewall(n_rules=1000)
    fw.initialize(make_env(PlatformSpec.westmere().scaled(8)))
    rng = random.Random(3)
    packets = [Packet.udp(src=rng.getrandbits(32), dst=rng.getrandbits(32),
                          dport=rng.randrange(65536)) for _ in range(256)]

    def scan_all():
        match = fw.first_match
        return sum(1 for p in packets if match(p) is None)

    passed = benchmark(scan_all)
    assert passed >= 250  # rules are unmatchable by construction


def test_engine_event_rate(benchmark, record):
    """End-to-end engine throughput: one IP flow, reported as time/run."""
    spec = PlatformSpec.westmere().scaled(32).single_socket()

    def run():
        machine = Machine(spec)
        machine.add_flow(app_factory("IP"), core=0, label="IP")
        return machine.run(warmup_packets=500, measure_packets=1500)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record("substrate_engine", {
        "events": result.events,
        "throughput_pps": result["IP"].packets_per_sec,
    })
    print(f"\nengine processed {result.events:,} memory references")
    assert result.events > 10_000
