"""Section 4, containment: throttling bounds hidden aggressiveness.

A two-faced flow (profiled as gentle, turns SYN_MAX) is pinned at its
profiled refs/sec by the control loop; its victim's drop returns to near
the innocent level.
"""

from repro.apps.registry import app_factory
from repro.apps.synthetic import syn_factory, syn_max_factory
from repro.core.throttling import ThrottledFlow, TwoFacedFlow
from repro.hw.counters import performance_drop
from repro.hw.machine import Machine

INNOCENT_OPS = 600


#: Number of (identical) neighbour flows mounting the attack.
N_NEIGHBOURS = 3


def _victim_run(config, neighbour_factory):
    machine = Machine(config.socket_spec(), seed=config.seed)
    machine.add_flow(app_factory("MON"), core=0, label="victim")
    for i in range(N_NEIGHBOURS):
        machine.add_flow(neighbour_factory, core=1 + i, label=f"n{i}")
    result = machine.run(warmup_packets=config.corun_warmup,
                         measure_packets=config.corun_measure)
    return result


def _neighbour_refs(result):
    return sum(result[f"n{i}"].l3_refs_per_sec for i in range(N_NEIGHBOURS))


def test_throttling_contains_two_faced_flow(benchmark, config, run_once,
                                            strict, record):
    spec = config.socket_spec()

    def experiment():
        # Offline profile of the innocent persona.
        machine = Machine(spec, seed=config.seed)
        machine.add_flow(syn_factory(cpu_ops_per_ref=INNOCENT_OPS), core=0,
                         label="p")
        profiled = machine.run(
            warmup_packets=config.corun_warmup,
            measure_packets=config.corun_measure)["p"].l3_refs_per_sec

        def two_faced(env, throttle=None):
            flow = TwoFacedFlow(
                innocent=syn_factory(cpu_ops_per_ref=INNOCENT_OPS)(env),
                aggressive=syn_max_factory()(env),
                trigger_packets=50,
            )
            if throttle is not None:
                return ThrottledFlow(flow, target_refs_per_sec=throttle,
                                     adjust_every=16, gain=1.0)
            return flow

        innocent = _victim_run(config, syn_factory(cpu_ops_per_ref=INNOCENT_OPS))
        attack = _victim_run(config, lambda env: two_faced(env))
        defended = _victim_run(config,
                               lambda env: two_faced(env, throttle=profiled))
        return profiled, innocent, attack, defended

    profiled, innocent, attack, defended = run_once(benchmark, experiment)
    base = innocent["victim"].packets_per_sec
    attack_drop = performance_drop(base, attack["victim"].packets_per_sec)
    defended_drop = performance_drop(base, defended["victim"].packets_per_sec)
    record("throttle", {
        "profiled_refs_per_sec": profiled,
        "victim_solo_pps": base,
        "attack_drop": attack_drop,
        "defended_drop": defended_drop,
        "attack_neighbour_refs_per_sec": _neighbour_refs(attack),
        "defended_neighbour_refs_per_sec": _neighbour_refs(defended),
    })
    print(f"\nprofiled per-neighbour rate: {profiled / 1e6:.1f}M refs/s")
    print(f"attack neighbours:   {_neighbour_refs(attack) / 1e6:.1f}M refs/s "
          f"-> victim drop {attack_drop:.1%}")
    print(f"defended neighbours: {_neighbour_refs(defended) / 1e6:.1f}M refs/s "
          f"-> victim drop {defended_drop:.1%}")

    if not strict:
        return
    # The attack hurts; the throttle restores most of the loss and pins
    # the neighbour near its profiled rate.
    assert attack_drop > 0.03
    assert defended_drop < attack_drop / 2
    assert _neighbour_refs(defended) < N_NEIGHBOURS * profiled * 1.3
