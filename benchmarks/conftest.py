"""Shared state for the benchmark harness.

Each ``bench_*.py`` regenerates one table/figure of the paper. Expensive
prerequisites (solo profiles, the Figure 2 co-run matrix, the sensitivity
curves) are computed once per session and shared; each benchmark times
its own experiment.

Environment knobs:

* ``REPRO_BENCH_SCALE`` — platform scale-down factor (default 8).
* ``REPRO_BENCH_FAST=1`` — quarter the packet counts (quick smoke pass).
* ``REPRO_BENCH_OUT`` — directory for ``BENCH_<name>.json`` records
  (default ``bench_reports/``).
"""

from __future__ import annotations

import os

import pytest

from repro.apps.registry import REALISTIC_APPS
from repro.core.prediction import ContentionPredictor, sweep_sensitivity
from repro.core.profiler import profile_apps
from repro.experiments import fig2
from repro.experiments.common import ExperimentConfig
from repro.obs.recorder import BenchRecorder


def pytest_configure(config):
    """Register the repo's marks for standalone ``pytest benchmarks/``
    invocations (whose rootdir may miss pyproject's registrations), so
    the suite runs warning-clean either way."""
    config.addinivalue_line(
        "markers",
        "sweep: sharded sweep orchestrator suite "
        "(determinism + fault injection)")
    config.addinivalue_line(
        "markers",
        "benchmark: paper-figure benchmark (requires pytest-benchmark)")


def _make_config() -> ExperimentConfig:
    scale = int(os.environ.get("REPRO_BENCH_SCALE", "8"))
    config = ExperimentConfig(scale=scale)
    if os.environ.get("REPRO_BENCH_FAST"):
        config = config.quicker(4)
    return config


@pytest.fixture(scope="session")
def config() -> ExperimentConfig:
    return _make_config()


@pytest.fixture(scope="session")
def shared_cache() -> dict:
    """Cross-benchmark memoization (populated lazily)."""
    return {}


@pytest.fixture(scope="session")
def profiles(config, shared_cache):
    """Solo profiles of the five realistic flow types (Table 1 input)."""
    if "profiles" not in shared_cache:
        shared_cache["profiles"] = profile_apps(
            REALISTIC_APPS, config.socket_spec(), seed=config.seed,
            warmup_packets=config.solo_warmup,
            measure_packets=config.solo_measure,
        )
    return shared_cache["profiles"]


@pytest.fixture(scope="session")
def fig2_result(config, profiles, shared_cache):
    """The Figure 2 pairwise co-run matrix (reused by Figures 5 and 8)."""
    if "fig2" not in shared_cache:
        shared_cache["fig2"] = fig2.run(config, profiles=profiles)
    return shared_cache["fig2"]


@pytest.fixture(scope="session")
def curves(config, profiles, shared_cache):
    """Per-app SYN sensitivity curves (prediction step 2)."""
    if "curves" not in shared_cache:
        spec = config.socket_spec()
        shared_cache["curves"] = {
            app: sweep_sensitivity(
                app, spec, seed=config.seed,
                warmup_packets=config.corun_warmup,
                measure_packets=config.corun_measure,
                solo=profiles[app],
            )
            for app in REALISTIC_APPS
        }
    return shared_cache["curves"]


@pytest.fixture(scope="session")
def predictor(profiles, curves):
    return ContentionPredictor(profiles=profiles, curves=curves)


@pytest.fixture(scope="session")
def strict() -> bool:
    """Shape assertions are enforced only in full-fidelity runs.

    ``REPRO_BENCH_FAST`` runs are smoke passes: they exercise every code
    path with a fraction of the packets, but the shortened warm-up
    distorts cache-residency shapes, so the paper-shape assertions are
    reported but not enforced.
    """
    return not os.environ.get("REPRO_BENCH_FAST")


@pytest.fixture(scope="session")
def recorder(config) -> BenchRecorder:
    """Session-wide writer of machine-readable ``BENCH_<name>.json`` files."""
    out_dir = os.environ.get("REPRO_BENCH_OUT", "bench_reports")
    return BenchRecorder(out_dir, config=config)


@pytest.fixture
def record(recorder, request):
    """Write one benchmark's result payload as ``BENCH_<name>.json``.

    Usage inside a benchmark: ``record("fig2", {"drops": ...})``. The
    pytest-benchmark fixture is picked up from the requesting test (when
    present) so wall-clock timing rides along in the record.
    """

    def _record(name, data):
        benchmark = None
        if "benchmark" in request.fixturenames:
            benchmark = request.getfixturevalue("benchmark")
        return recorder.record(name, data, benchmark=benchmark)

    return _record


@pytest.fixture
def run_once():
    """Run a thunk exactly once under the benchmark timer."""

    def _run(benchmark, fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1)

    return _run
