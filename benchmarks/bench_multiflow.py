"""Section 6 boundary: multiple flows per core (L1/L2 interference).

Checked: two cache-hungry flows (MON+MON) time-sharing a core lose a
measurable fraction of the time-slicing ideal to private-cache
interference — with *zero* L3 competitors, so an L3-only predictor would
predict no loss at all. A compute-dominated partner (FW) shows almost no
such loss.
"""

from repro.experiments import multiflow


def test_multiflow_l1l2_interference(benchmark, config, run_once, strict,
                                     record):
    result = run_once(benchmark, lambda: multiflow.run(config))
    record("multiflow", {
        "rows": result.rows,
        "shortfalls": {label: result.shortfall(label)
                       for label, _, _ in result.rows},
    })
    print()
    print(result.render())

    if not strict:
        return
    hungry = result.shortfall("MON+MON")
    mixed = result.shortfall("MON+IP")
    benign = result.shortfall("MON+FW")
    # Cache-hungry pairs lose noticeably to private-cache interference...
    assert hungry > 0.04
    assert mixed > 0.02
    # ...while the FW pair (compute-dominated turns) barely does.
    assert benign < hungry / 2
    assert benign < 0.05
