"""Figure 9: prediction for the mixed 12-flow workload.

The paper's mix (2 MON, 2 VPN, 1 FW, 1 RE per socket) predicted with a
maximum error of ~1.3pp. Checked: small mean error, bounded worst error,
and symmetric sockets producing consistent measurements.
"""

from repro.experiments import fig9


def test_fig9_mixed_workload(benchmark, config, predictor, run_once,
                             strict, record):
    result = run_once(benchmark, lambda: fig9.run(config, predictor))
    record("fig9", {
        "rows": result.rows,
        "mean_abs_error": result.mean_abs_error(),
        "max_abs_error": result.max_abs_error(),
    })
    print()
    print(result.render())
    print(f"\nmean |error| {100 * result.mean_abs_error():.2f}pp, "
          f"max |error| {100 * result.max_abs_error():.2f}pp "
          f"(paper: max ~1.3pp)")

    assert len(result.rows) == 12
    if not strict:
        return
    assert result.mean_abs_error() < 0.04
    assert result.max_abs_error() < 0.08
    # Per-app consistency: both MON flows on a socket suffer alike.
    mon_drops = [m for _, app, m, _ in result.rows if app == "MON"]
    assert max(mon_drops) - min(mon_drops) < 0.06
    # The mix's measured drops are all modest (paper: everything < ~25%).
    assert all(m < 0.3 for _, _, m, _ in result.rows)
