"""Figure 10: how much can contention-aware scheduling buy?

Checked shapes: for realistic combinations the best-vs-worst placement
gap is small (the paper's headline: ~2% max, for 6 MON + 6 FW); the
adversarial 6 SYN_MAX + 6 FW combination gives the largest gap (paper:
~6%); and for 6 MON + 6 FW the worst placement is the one that packs all
MON flows onto one socket.
"""

from repro.experiments import fig10

BENCH_COMBOS = {
    "6MON+6FW": ("MON",) * 6 + ("FW",) * 6,
    "6MON+6IP": ("MON",) * 6 + ("IP",) * 6,
    "6RE+6FW": ("RE",) * 6 + ("FW",) * 6,
    "6SYN_MAX+6FW": ("SYN_MAX",) * 6 + ("FW",) * 6,
}


def test_fig10_scheduling_benefit(benchmark, config, run_once, strict,
                                  record):
    result = run_once(
        benchmark, lambda: fig10.run(config, combinations=BENCH_COMBOS)
    )
    record("fig10", {
        "gains": {name: result.gain(name) for name in result.studies},
        "max_realistic_gain": result.max_realistic_gain(),
        "studies": {
            name: {
                "best_split": [list(g) for g in study.best.split],
                "best_average_drop": study.best.average_drop,
                "worst_split": [list(g) for g in study.worst.split],
                "worst_average_drop": study.worst.average_drop,
            }
            for name, study in result.studies.items()
        },
    })
    print()
    print(result.render())
    print(f"\nmax realistic gain: {100 * result.max_realistic_gain():.2f}pp; "
          f"adversarial (SYN_MAX) gain: "
          f"{100 * result.gain('6SYN_MAX+6FW'):.2f}pp "
          "(paper: ~2pp and ~6pp)")

    if not strict:
        return
    # Realistic combinations: placement buys only a few percent.
    assert result.max_realistic_gain() < 0.06
    # The adversarial combination is the largest gain observed.
    assert result.gain("6SYN_MAX+6FW") >= result.max_realistic_gain() - 0.01
    # 6 MON + 6 FW: the worst placement packs the MON flows together.
    study = result.studies["6MON+6FW"]
    worst_counts = sorted(group.count("MON") for group in study.worst.split)
    assert worst_counts == [0, 6]
    # Uniform-split best placement spreads the sensitive flows.
    best_counts = sorted(group.count("MON") for group in study.best.split)
    assert best_counts[0] >= 2
    # Per-flow view: MON suffers more under the worst placement.
    worst_mon = [d for lbl, d in study.worst.per_flow_drop.items()
                 if lbl.startswith("MON")]
    best_mon = [d for lbl, d in study.best.per_flow_drop.items()
                if lbl.startswith("MON")]
    assert sum(worst_mon) / len(worst_mon) > sum(best_mon) / len(best_mon)
