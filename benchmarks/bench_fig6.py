"""Figure 6: Equation 1's worst-case drop bound.

Checked: the analytic curves are monotone in delta and hits/sec; each
measured flow's worst-case point follows the hits/sec ordering (MON's
bound highest, FW's lowest); and every drop actually measured in the
Figure 2 matrix respects its target's Equation-1 bound.
"""

from repro.constants import DELTA_NS
from repro.core.equation1 import worst_case_drop
from repro.experiments import fig6


def test_fig6_worst_case_bound(benchmark, config, profiles, fig2_result,
                               run_once, strict, record):
    result = run_once(
        benchmark, lambda: fig6.run(config, profiles=profiles)
    )
    record("fig6", {
        "curves": result.curves,
        "app_points": result.app_points,
    })
    print()
    print(result.render())

    if not strict:
        return
    points = result.app_points
    assert points["MON"][1] == max(v for _, v in points.values())
    assert points["FW"][1] == min(v for _, v in points.values())
    # Curves: delta=60ns dominates delta=30ns pointwise.
    for (_, lo), (_, hi) in zip(result.curves[30.0], result.curves[60.0]):
        assert hi >= lo
    # Every measured drop respects its flow's worst-case bound.
    for (target, _), drop in fig2_result.drops.items():
        bound = worst_case_drop(profiles[target].l3_hits_per_sec, DELTA_NS)
        assert drop <= bound + 0.03, (target, drop, bound)
