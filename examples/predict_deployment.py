#!/usr/bin/env python3
"""Operator scenario: will this deployment meet its SLAs?

A network operator plans to consolidate four services onto one socket of
a packet-processing server: flow monitoring for two customers, a VPN
gateway, a firewall, and WAN optimization (redundancy elimination). Using
only offline profiling — each application run alone plus a synthetic
sweep — the paper's method predicts every flow's throughput under
contention. The script then simulates the actual deployment to check the
predictions.

Run:  python examples/predict_deployment.py
"""

from repro import PlatformSpec, performance_drop
from repro.core.prediction import ContentionPredictor
from repro.core.reporting import format_table, pct
from repro.core.validation import run_corun

SCALE = 16
WARMUP, MEASURE = 3000, 1500

#: The planned deployment: one flow per core.
DEPLOYMENT = ["MON", "MON", "VPN", "FW", "RE"]


def main() -> None:
    spec = PlatformSpec.westmere().scaled(SCALE).single_socket()
    types = sorted(set(DEPLOYMENT))

    print(f"planned deployment: {', '.join(DEPLOYMENT)}")
    print(f"offline profiling of {', '.join(types)} "
          "(each type alone + SYN sweep)...")
    predictor = ContentionPredictor.build(
        types, spec, warmup_packets=WARMUP, measure_packets=MEASURE,
    )

    print("simulating the deployment for validation...")
    placement = [(app, core) for core, app in enumerate(DEPLOYMENT)]
    corun = run_corun(placement, spec, warmup_packets=WARMUP,
                      measure_packets=MEASURE)

    rows = []
    errors = []
    for app, core in placement:
        label = f"{app}@{core}"
        competitors = [a for a, c in placement if c != core]
        predicted_drop = predictor.predict_drop(app, competitors)
        predicted_pps = predictor.predict_throughput(app, competitors)
        measured_drop = performance_drop(
            predictor.profiles[app].throughput, corun.throughput[label]
        )
        errors.append(abs(predicted_drop - measured_drop))
        rows.append([
            label,
            f"{predictor.profiles[app].throughput:,.0f}",
            f"{predicted_pps:,.0f}",
            pct(predicted_drop),
            pct(measured_drop),
            pct(predicted_drop - measured_drop),
        ])
    print()
    print(format_table(
        ["flow", "solo pkts/s", "predicted pkts/s", "predicted drop",
         "measured drop", "error"],
        rows, title="Deployment prediction vs. simulation",
    ))
    print(f"\nmean |error| {pct(sum(errors) / len(errors))}, "
          f"max |error| {pct(max(errors))}")
    print("The operator can provision against the predicted rates without "
          "ever co-running the services.")


if __name__ == "__main__":
    main()
