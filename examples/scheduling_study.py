#!/usr/bin/env python3
"""Is contention-aware scheduling worth it? (Section 5)

Takes the paper's highest-leverage combination — six MON flows (sensitive
and aggressive) plus six FW flows (neither) on the two-socket machine —
and evaluates every distinct flow-to-socket split. The gap between the
best and the worst placement is the most contention-aware scheduling
could ever buy.

Run:  python examples/scheduling_study.py
"""

from repro import PlatformSpec
from repro.core.profiler import profile_apps
from repro.core.reporting import format_table, pct
from repro.core.scheduling import PlacementStudy

SCALE = 16
WARMUP, MEASURE = 3000, 1200

FLOWS = ["MON"] * 6 + ["FW"] * 6


def describe(split) -> str:
    left, right = split
    return (f"socket0: {left.count('MON')} MON + {left.count('FW')} FW | "
            f"socket1: {right.count('MON')} MON + {right.count('FW')} FW")


def main() -> None:
    spec = PlatformSpec.westmere().scaled(SCALE)
    print("profiling MON and FW solo...")
    profiles = profile_apps(["MON", "FW"], spec, warmup_packets=WARMUP,
                            measure_packets=MEASURE)
    study = PlacementStudy(spec, profiles, warmup_packets=WARMUP,
                           measure_packets=MEASURE)
    print("simulating every distinct 6/6 split of 6 MON + 6 FW...\n")
    result = study.run(FLOWS, method="simulate")

    rows = [
        [describe(outcome.split), pct(outcome.average_drop)]
        for outcome in sorted(result.outcomes, key=lambda o: o.average_drop)
    ]
    print(format_table(["placement", "avg per-flow drop"], rows,
                       title="All placements, best to worst"))

    best, worst = result.best, result.worst
    print(f"\nbest placement:  {describe(best.split)}")
    print(f"worst placement: {describe(worst.split)}")
    print(f"scheduling gain (worst - best): {pct(result.scheduling_gain)}")
    print("\nPer-flow drops under the best and worst placement "
          "(Figure 10(b)):")
    labels = sorted(set(best.per_flow_drop) | set(worst.per_flow_drop))

    def cell(outcome, label):
        drop = outcome.per_flow_drop.get(label)
        # The two placements put flows on different cores, so a label may
        # exist in only one of them.
        return "--" if drop is None else pct(drop)

    rows = [[l, cell(best, l), cell(worst, l)] for l in labels]
    print(format_table(["flow", "best", "worst"], rows))
    print("\nThe paper's conclusion: a ~2% ceiling means contention-aware "
          "scheduling 'may not be worth the effort'.")


if __name__ == "__main__":
    main()
