#!/usr/bin/env python3
"""Containing hidden aggressiveness (Section 4).

An adversarial flow behaves like an innocent firewall during offline
profiling, then — on a trigger — switches to SYN_MAX-style memory
thrashing, wrecking its neighbours. The defense is the paper's control
element: monitor each flow's cache refs/sec against its profiled rate and
slow it down when it exceeds the profile.

The demo measures a victim MON flow's throughput in three worlds:
  1. beside the innocent flow,
  2. beside the two-faced flow, unthrottled (the attack),
  3. beside the two-faced flow behind the throttle (the defense).

Run:  python examples/throttling_demo.py
"""

from repro import Machine, PlatformSpec, app_factory, performance_drop
from repro.apps.synthetic import syn_factory, syn_max_factory
from repro.core.throttling import ThrottledFlow, TwoFacedFlow

SCALE = 16
WARMUP, MEASURE = 3000, 1500

#: The innocent persona: a gentle synthetic standing in for FW-like load.
INNOCENT = dict(cpu_ops_per_ref=600)


def two_faced_factory(trigger=50, throttle_at=None):
    def build(env):
        flow = TwoFacedFlow(
            innocent=syn_factory(**INNOCENT)(env),
            aggressive=syn_max_factory()(env),
            trigger_packets=trigger,
        )
        if throttle_at is not None:
            return ThrottledFlow(flow, target_refs_per_sec=throttle_at,
                                 adjust_every=16, gain=1.0)
        return flow

    return build


#: Three colluding neighbours share the socket with the victim.
N_NEIGHBOURS = 3


def victim_throughput(spec, neighbour_factory) -> tuple:
    machine = Machine(spec)
    machine.add_flow(app_factory("MON"), core=0, label="victim")
    for i in range(N_NEIGHBOURS):
        machine.add_flow(neighbour_factory, core=1 + i, label=f"n{i}")
    result = machine.run(warmup_packets=WARMUP, measure_packets=MEASURE)
    neighbour_rate = sum(
        result[f"n{i}"].l3_refs_per_sec for i in range(N_NEIGHBOURS)
    )
    return result["victim"].packets_per_sec, neighbour_rate


def main() -> None:
    spec = PlatformSpec.westmere().scaled(SCALE).single_socket()

    # Offline profile of the innocent persona: this is what the operator saw.
    machine = Machine(spec)
    machine.add_flow(syn_factory(**INNOCENT), core=0, label="profiled")
    profiled = machine.run(warmup_packets=WARMUP,
                           measure_packets=MEASURE)["profiled"]
    profiled_rate = profiled.l3_refs_per_sec
    print(f"profiled per-neighbour rate: {profiled_rate / 1e6:.1f}M refs/sec "
          f"({N_NEIGHBOURS} neighbours)")

    baseline, rate = victim_throughput(spec, syn_factory(**INNOCENT))
    print(f"\n1) innocent neighbours: victim {baseline:>12,.0f} pps "
          f"(neighbours {rate / 1e6:5.1f}M refs/s)")

    attacked, rate = victim_throughput(spec, two_faced_factory())
    print(f"2) attack, no defense : victim {attacked:>12,.0f} pps "
          f"(neighbours {rate / 1e6:5.1f}M refs/s)  "
          f"drop {performance_drop(baseline, attacked):.1%}")

    defended, rate = victim_throughput(
        spec, two_faced_factory(throttle_at=profiled_rate))
    print(f"3) attack + throttle  : victim {defended:>12,.0f} pps "
          f"(neighbours {rate / 1e6:5.1f}M refs/s)  "
          f"drop {performance_drop(baseline, defended):.1%}")

    print("\nThe throttle pins the attacker at its profiled refs/sec, so the "
          "victim keeps (nearly) its expected performance — the system "
          "administrator's prediction stays valid.")


if __name__ == "__main__":
    main()
