#!/usr/bin/env python3
"""A Click-style router configuration with RSS and per-path processing.

Demonstrates the framework layer on its own: a NIC spreads traffic over
receive queues by RSS; a Router graph classifies packets (TCP vs. UDP vs.
other), forwards them through a radix-trie lookup, monitors UDP flows
with NetFlow, and firewalls TCP. Functional output only — no timing
simulation — showing that the elements are real packet-processing code.

Run:  python examples/click_router.py
"""

import random

from repro.apps.firewall import Firewall
from repro.apps.ipforward import DecIPTTL, RadixIPLookup
from repro.apps.netflow import NetFlow
from repro.click.element import PacketSink
from repro.click.elements.checkipheader import CheckIPHeader
from repro.click.elements.classifier import Classifier, Pattern
from repro.click.router import Router
from repro.hw.machine import FlowEnv
from repro.hw.nic import NIC
from repro.hw.topology import PlatformSpec
from repro.mem.access import AccessContext
from repro.mem.allocator import AddressSpace
from repro.net.flowgen import FlowPopulationTraffic
from repro.net.packet import Packet

N_PACKETS = 3000


def main() -> None:
    spec = PlatformSpec.westmere().scaled(16)
    rng = random.Random(7)
    space = AddressSpace(spec.n_sockets)
    env = FlowEnv(space=space, domain=0, spec=spec, rng=rng)

    # Build the configuration graph.
    router = Router()
    router.add("check", CheckIPHeader())
    router.add("lookup", RadixIPLookup(n_routes=4000))
    router.add("classify", Classifier([Pattern(protocol=6),
                                       Pattern(protocol=17)]))
    router.add("fw", Firewall(n_rules=500))
    router.add("netflow", NetFlow(n_entries=4096))
    router.add("ttl", DecIPTTL())
    router.add("out", PacketSink())
    router.add("drop_other", PacketSink())
    router.connect("check", "lookup")
    router.connect("lookup", "classify")
    router.connect("classify", "fw", port=0)        # TCP -> firewall
    router.connect("classify", "netflow", port=1)   # UDP -> monitoring
    router.connect("classify", "drop_other", port=2)
    router.connect("fw", "ttl")
    router.connect("netflow", "ttl")
    router.connect("ttl", "out")
    router.validate()
    router.initialize(env)
    print("configuration:")
    for edge in router.graph_summary():
        print(f"  {edge}")

    # A NIC with RSS across two receive queues.
    nic = NIC("eth0", space.domain(0), n_queues=2, ring_entries=256)
    source = FlowPopulationTraffic(rng, n_flows=500, payload_bytes=64)
    mixed = []
    for _ in range(N_PACKETS):
        p = source.next_packet()
        if rng.random() < 0.4:  # rewrite some flows as TCP
            p = Packet.tcp(src=p.ip.src, dst=p.ip.dst, sport=p.l4.sport,
                           dport=p.l4.dport, payload=p.payload)
        mixed.append(p)

    ctx = AccessContext()
    for packet in mixed:
        # NIC and driver in lockstep: receive a packet, then drain its
        # RSS queue (a real driver polls; batching would also work).
        if not nic.receive(packet):
            continue
        queue = nic.rx_queues[nic.rss_queue(packet)]
        while True:
            polled = queue.pop()
            if polled is None:
                break
            ctx.reset()
            router.push(ctx, polled, "check")

    print(f"\nNIC: {nic.received} received "
          f"({[q.received for q in nic.rx_queues]} per RSS queue), "
          f"{nic.dropped} dropped at the rings")
    classifier = router.element("classify")
    print(f"classifier: TCP={classifier.matched[0]}, "
          f"UDP={classifier.matched[1]}, other={classifier.matched[2]}")
    firewall = router.element("fw")
    print(f"firewall: {firewall.checked} checked, {firewall.blocked} blocked")
    netflow = router.element("netflow")
    print(f"netflow: {netflow.active_flows()} live flows; top talkers:")
    for key, packets in netflow.top_flows(3):
        src, dst, proto, sport, dport = key
        print(f"  {src:>10x}:{sport} -> {dst:>10x}:{dport}  {packets} pkts")
    sink = router.element("out")
    print(f"delivered to output: {sink.count} packets / {sink.bytes} bytes "
          f"(blocked/unclassified dropped on path)")


if __name__ == "__main__":
    main()
