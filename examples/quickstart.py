#!/usr/bin/env python3
"""Quickstart: measure contention, then predict it.

Builds the simulated 6-core socket, profiles a MON (IP forwarding +
NetFlow) flow alone, co-runs it with five redundancy-elimination flows,
and shows that the contention-induced performance drop matches what the
paper's SYN-sweep prediction method says it should be.

Run:  python examples/quickstart.py
"""

from repro import Machine, PlatformSpec, app_factory, performance_drop
from repro.core.prediction import ContentionPredictor

SCALE = 16          # 1/16th-size platform: seconds instead of minutes
WARMUP, MEASURE = 3000, 1500


def main() -> None:
    spec = PlatformSpec.westmere().scaled(SCALE).single_socket()

    # --- measure: MON alone ------------------------------------------------
    machine = Machine(spec)
    machine.add_flow(app_factory("MON"), core=0, label="MON")
    solo = machine.run(warmup_packets=WARMUP, measure_packets=MEASURE)["MON"]
    print(f"MON alone:          {solo.packets_per_sec:>12,.0f} packets/sec")
    print(f"  L3 refs/sec {solo.l3_refs_per_sec / 1e6:.1f}M, "
          f"hits/sec {solo.l3_hits_per_sec / 1e6:.1f}M, "
          f"{solo.cycles_per_packet:.0f} cycles/packet")

    # --- measure: MON against five RE co-runners ----------------------------
    machine = Machine(spec)
    machine.add_flow(app_factory("MON"), core=0, label="MON")
    for core in range(1, 6):
        machine.add_flow(app_factory("RE"), core=core)
    corun = machine.run(warmup_packets=WARMUP, measure_packets=MEASURE)
    contended = corun["MON"]
    drop = performance_drop(solo.packets_per_sec, contended.packets_per_sec)
    print(f"MON with 5x RE:     {contended.packets_per_sec:>12,.0f} packets/sec"
          f"  (drop {drop:.1%})")

    # --- predict the same thing without running the mix ---------------------
    print("\nbuilding the offline predictor (solo profiles + SYN sweeps)...")
    predictor = ContentionPredictor.build(
        ["MON", "RE"], spec, warmup_packets=WARMUP, measure_packets=MEASURE,
    )
    predicted = predictor.predict_drop("MON", ["RE"] * 5)
    print(f"predicted drop:     {predicted:.1%}")
    print(f"prediction error:   {abs(predicted - drop) * 100:.1f} "
          "percentage points")


if __name__ == "__main__":
    main()
