#!/usr/bin/env python3
"""Per-packet latency under contention (an extension metric).

The paper evaluates throughput; operators also care about per-packet
latency. The engine can record every packet's completion time:
contention moves the entire distribution upward — the median packet pays
for converted misses too, not just the unlucky tail.

The run also attaches the observability metrics sampler: the MON flow's
counters are snapshotted every 50 simulated microseconds, giving a time
series of throughput and L3 hit rate whose percentiles summarize how
steady (or not) the flow is under each competition level.

Run:  python examples/latency_study.py
"""

from repro import Machine, MetricsSampler, PlatformSpec, app_factory
from repro.apps.synthetic import syn_factory

SCALE = 16
WARMUP, MEASURE = 3000, 1500
METRICS_INTERVAL_US = 50.0


def run(n_competitors: int, cpu_ops: int = 0):
    spec = PlatformSpec.westmere().scaled(SCALE).single_socket()
    sampler = MetricsSampler(interval_us=METRICS_INTERVAL_US)
    machine = Machine(spec, record_latencies=True, metrics=sampler)
    machine.add_flow(app_factory("MON"), core=0, label="MON")
    for i in range(n_competitors):
        machine.add_flow(syn_factory(cpu_ops_per_ref=cpu_ops), core=1 + i)
    result = machine.run(warmup_packets=WARMUP, measure_packets=MEASURE)
    return result["MON"], result.timeseries("MON")


def describe(label: str, stats, series) -> None:
    p50 = stats.latency_percentile_ns(50)
    p95 = stats.latency_percentile_ns(95)
    p99 = stats.latency_percentile_ns(99)
    print(f"{label:<22} {stats.packets_per_sec:>11,.0f} pps   "
          f"p50 {p50:7.0f} ns   p95 {p95:7.0f} ns   p99 {p99:7.0f} ns   "
          f"tail ratio {p99 / p50:.2f}x")
    summary = series.summary(fields=("pps", "l3_hit_rate"))
    pps = summary["pps"]
    hit = summary["l3_hit_rate"]
    print(f"{'':22} time series ({len(series.snaps) - 1} x "
          f"{METRICS_INTERVAL_US:.0f}us): "
          f"pps p50 {pps['p50']:,.0f} (p0 {pps['p0']:,.0f} / "
          f"p100 {pps['p100']:,.0f}), "
          f"L3 hit rate p50 {hit['p50']:.0%}")


def main() -> None:
    print("MON per-packet latency (simulated) vs. competition:\n")
    describe("solo", *run(0))
    describe("3 gentle SYN", *run(3, cpu_ops=600))
    describe("3 SYN_MAX", *run(3, cpu_ops=0))
    describe("5 SYN_MAX", *run(5, cpu_ops=0))
    print("\nContention shifts the whole latency distribution upward — "
          "converted cache\nhits become DRAM round-trips on ordinary "
          "packets, so even the median pays;\nthe p99/p50 ratio actually "
          "tightens as misses become the common case.")


if __name__ == "__main__":
    main()
