#!/usr/bin/env python3
"""Capacity planning: how many services fit a socket under SLAs?

Builds the offline predictor once, attaches per-service SLAs, and answers
the questions an operator actually asks: does my planned mix meet its
SLAs? How many monitoring flows can share a socket with a VPN gateway?
Which of three candidate consolidations has the most headroom? No
deployment is ever simulated — this is the paper's predictability payoff.

Run:  python examples/capacity_planning.py
"""

from repro import PlatformSpec
from repro.core.capacity import SLA, CapacityPlanner
from repro.core.prediction import ContentionPredictor
from repro.core.reporting import format_table, pct

SCALE = 16
WARMUP, MEASURE = 3000, 1200


def main() -> None:
    spec = PlatformSpec.westmere().scaled(SCALE).single_socket()
    apps = ["MON", "FW", "VPN", "RE"]
    print(f"building the offline predictor for {', '.join(apps)}...")
    predictor = ContentionPredictor.build(
        apps, spec, warmup_packets=WARMUP, measure_packets=MEASURE,
    )
    # SLAs at ~80% of each type's solo rate.
    slas = [SLA(app, 0.8 * predictor.profiles[app].throughput)
            for app in apps]
    planner = CapacityPlanner(predictor, slas)
    print("SLAs: " + ", ".join(
        f"{sla.app} >= {sla.min_throughput:,.0f} pps" for sla in slas))

    print("\n1) Assess a planned mix: MON, MON, VPN, FW, RE")
    assessment = planner.assess(["MON", "MON", "VPN", "FW", "RE"])
    rows = [
        [flow.app, f"{flow.predicted_throughput:,.0f}",
         pct(flow.predicted_drop),
         "OK" if flow.meets_sla else "VIOLATED",
         f"{flow.headroom:+.1%}"]
        for flow in assessment.flows
    ]
    print(format_table(
        ["flow", "predicted pps", "predicted drop", "SLA", "headroom"],
        rows))
    print("verdict:", "deployable" if assessment.feasible
          else "violates SLAs")

    print("\n2) How many MON flows can join one VPN gateway?")
    n, at_n = planner.max_coresident("VPN", "MON", max_slots=5)
    print(f"   up to {n} MON flows keep every SLA "
          f"(worst headroom {at_n.worst_headroom:+.1%})")

    print("\n3) Rank three consolidation candidates:")
    candidates = [
        ["MON", "MON", "MON", "FW", "FW", "FW"],
        ["MON", "MON", "VPN", "VPN", "FW", "RE"],
        ["MON", "RE", "RE", "RE", "VPN", "VPN"],
    ]
    for deployment, result in planner.rank_deployments(candidates):
        status = ("feasible, worst headroom "
                  f"{result.worst_headroom:+.1%}"
                  if result.feasible else
                  f"INFEASIBLE ({len(result.violations)} violations)")
        print(f"   {' + '.join(deployment):<40} {status}")


if __name__ == "__main__":
    main()
