#!/usr/bin/env python3
"""Trace tooling: realistic traffic models, pcap round-trip, DPI replay.

Generates a skewed (Zipf) flow population with IMIX packet sizes and a
few injected attack packets, writes it to a standard pcap file, reads it
back, and replays it through an inspection pipeline (IP forwarding +
NetFlow + Aho-Corasick DPI). Everything is functional packet processing —
the written file is valid classic pcap that tcpdump/wireshark can open.

The replay then runs a second time *on the simulated machine* with the
observability layer attached: per-packet spans with per-element
attribution land in a Chrome ``trace_event`` file you can open in
Perfetto / ``about:tracing``.

Run:  python examples/trace_pipeline.py [trace.pcap [trace.json]]
"""

import random
import sys
import tempfile

from repro.apps.dpi import DPIElement
from repro.apps.ipforward import RadixIPLookup
from repro.apps.netflow import NetFlow
from repro.click.pipeline import Pipeline
from repro.hw.machine import FlowEnv, Machine
from repro.hw.topology import PlatformSpec
from repro.mem.access import AccessContext
from repro.mem.allocator import AddressSpace
from repro.net.flowgen import TrafficSource
from repro.net.packet import Packet
from repro.net.pcapfile import read_pcap, write_pcap
from repro.net.traces import IMIXTraffic, ZipfFlowTraffic
from repro.obs import ChromeTraceSink, Tracer

N_PACKETS = 4000
SIGNATURE = b"\xccMALWARE-C2-BEACON"


def build_trace(rng) -> list:
    zipf = ZipfFlowTraffic(rng, n_flows=400, alpha=1.1)
    imix = IMIXTraffic(rng, inner=zipf)
    print(f"flow model: 400 flows, Zipf(1.1) — top 10 flows carry "
          f"{zipf.expected_top_share(10):.0%} of traffic; "
          f"IMIX mean payload {imix.average_payload():.0f}B")
    packets = imix.take(N_PACKETS)
    # Plant a handful of attack payloads.
    for i in rng.sample(range(N_PACKETS), 6):
        victim = packets[i]
        packets[i] = Packet.udp(
            src=victim.ip.src, dst=victim.ip.dst, sport=victim.l4.sport,
            dport=victim.l4.dport,
            payload=b"A" * 10 + SIGNATURE + b"B" * 10,
        )
    return packets


class ReplayTraffic(TrafficSource):
    """Replay a recorded packet list, looping when it runs out."""

    def __init__(self, packets):
        self.packets = packets
        self._i = 0

    def next_packet(self) -> Packet:
        packet = self.packets[self._i]
        self._i = (self._i + 1) % len(self.packets)
        return packet


def traced_replay(packets, trace_path: str) -> None:
    """Replay the pcap on the simulated machine with tracing attached."""
    rng = random.Random(99)
    spec = PlatformSpec.westmere().scaled(16).single_socket()

    def inspection_flow(env: FlowEnv) -> Pipeline:
        return Pipeline(
            "DPI", env, ReplayTraffic(packets),
            elements=[RadixIPLookup(n_routes=4000), NetFlow(n_entries=2048),
                      DPIElement(patterns=[SIGNATURE], drop_on_match=True)],
        )

    tracer = Tracer(ChromeTraceSink(trace_path), packet_sample=4)
    machine = Machine(spec, seed=rng.randrange(1 << 30), tracer=tracer)
    machine.add_flow(inspection_flow, core=0, label="DPI")
    result = machine.run(warmup_packets=500, measure_packets=1000)
    tracer.close()
    stats = result["DPI"]
    print(f"\nsimulated replay: {stats.packets_per_sec:,.0f} pps, "
          f"{stats.cycles_per_packet:.0f} cycles/packet, "
          f"L3 hit rate {stats.l3_hit_rate:.0%}")
    print(f"Chrome trace (1-in-4 packets, per-element spans): {trace_path}")
    print("  -> open in Perfetto (ui.perfetto.dev) or about:tracing")


def main() -> None:
    rng = random.Random(2026)
    path = sys.argv[1] if len(sys.argv) > 1 else \
        tempfile.mktemp(suffix=".pcap")

    packets = build_trace(rng)
    written = write_pcap(path, packets, interval=2e-6)
    print(f"wrote {written} packets to {path}")

    replayed = read_pcap(path)
    print(f"read back {len(replayed)} packets")

    # Inspection pipeline (functional replay).
    spec = PlatformSpec.westmere().scaled(16)
    env = FlowEnv(space=AddressSpace(spec.n_sockets), domain=0, spec=spec,
                  rng=rng)
    lookup = RadixIPLookup(n_routes=4000)
    netflow = NetFlow(n_entries=2048)
    dpi = DPIElement(patterns=[SIGNATURE], drop_on_match=True)
    for element in (lookup, netflow, dpi):
        element.initialize(env)

    forwarded = 0
    ctx = AccessContext()
    for packet in replayed:
        ctx.reset()
        out = lookup.process(ctx, packet)
        if out is None:
            continue
        out = netflow.process(ctx, out)
        out = dpi.process(ctx, out)
        if out is not None:
            forwarded += 1

    print(f"\nforwarded {forwarded}/{len(replayed)} "
          f"({dpi.alerts} DPI alerts dropped, "
          f"{lookup.no_route} unroutable)")
    print(f"netflow observed {netflow.active_flows()} live flows; "
          "top talkers:")
    for key, count in netflow.top_flows(5):
        src, dst, _, sport, dport = key
        print(f"  {src:08x}:{sport:<5} -> {dst:08x}:{dport:<5} {count} pkts")

    trace_path = sys.argv[2] if len(sys.argv) > 2 else \
        tempfile.mktemp(suffix=".json")
    traced_replay(replayed, trace_path)


if __name__ == "__main__":
    main()
