"""Simulated performance counters.

Mirrors how the paper measures (Oprofile, Section 2.1): per-core counts of
instructions, L2 hits, L3 references and misses, from which the Table 1
columns and the refs/sec / hits/sec rates of Sections 3-4 are derived.
Counters are additionally broken down by reference *tag* (the function
that issued the reference) to reproduce Figure 7's per-function
hit-to-miss conversion rates.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..mem.access import TAGS
from ..units import per_second


#: The scalar (non-tag) counter slots, shared by every lifecycle
#: operation below. Tag arrays are handled separately because the tag
#: registry can grow mid-run (Figure 7 elements register their function
#: tags lazily) — every operation must call ``_grow_tags`` first or it
#: hands short arrays to downstream consumers.
SCALAR_FIELDS = (
    "cycles", "instructions", "packets",
    "l1_hits", "l2_hits", "l3_refs", "l3_hits", "l3_misses",
    "remote_refs", "mc_wait_cycles", "gap_cycles",
)


class CoreCounters:
    """Raw event counts for one core. Monotonic within a run."""

    __slots__ = SCALAR_FIELDS + ("tag_refs", "tag_hits")

    def __init__(self) -> None:
        self.cycles = 0.0
        self.instructions = 0
        self.packets = 0
        self.l1_hits = 0
        self.l2_hits = 0
        self.l3_refs = 0
        self.l3_hits = 0
        self.l3_misses = 0
        self.remote_refs = 0
        self.mc_wait_cycles = 0.0
        self.gap_cycles = 0.0
        n = len(TAGS)
        self.tag_refs: List[int] = [0] * n
        self.tag_hits: List[int] = [0] * n

    def _grow_tags(self) -> None:
        """Extend tag arrays if tags were registered after construction."""
        n = len(TAGS)
        if len(self.tag_refs) < n:
            self.tag_refs.extend([0] * (n - len(self.tag_refs)))
            self.tag_hits.extend([0] * (n - len(self.tag_hits)))

    def copy(self) -> "CoreCounters":
        """A snapshot of the current values.

        Grows the tag arrays first: a snapshot taken before a late tag
        registration must not hand short arrays to downstream consumers
        (``delta`` re-grows both sides, but time-series samplers and
        report serializers read ``tag_refs`` directly).
        """
        self._grow_tags()
        snap = CoreCounters.__new__(CoreCounters)
        for field in SCALAR_FIELDS:
            setattr(snap, field, getattr(self, field))
        snap.tag_refs = list(self.tag_refs)
        snap.tag_hits = list(self.tag_hits)
        return snap

    def as_dict(self) -> Dict[str, float]:
        """The scalar counters as plain data (observability serializers)."""
        return {field: getattr(self, field) for field in SCALAR_FIELDS}

    def delta(self, earlier: "CoreCounters") -> "CoreCounters":
        """Counts accumulated since the ``earlier`` snapshot."""
        self._grow_tags()
        earlier._grow_tags()
        out = CoreCounters.__new__(CoreCounters)
        for field in SCALAR_FIELDS:
            setattr(out, field, getattr(self, field) - getattr(earlier, field))
        out.tag_refs = [a - b for a, b in zip(self.tag_refs, earlier.tag_refs)]
        out.tag_hits = [a - b for a, b in zip(self.tag_hits, earlier.tag_hits)]
        return out

    def merge(self, other: "CoreCounters") -> "CoreCounters":
        """Accumulate ``other`` into this counter set, in place.

        Used to aggregate per-core counters (e.g. a pipeline's stages or
        a socket total). Both sides grow their tag arrays first so a
        counter snapshotted before a late tag registration merges
        cleanly with one taken after.
        """
        self._grow_tags()
        other._grow_tags()
        for field in SCALAR_FIELDS:
            setattr(self, field, getattr(self, field) + getattr(other, field))
        for i, v in enumerate(other.tag_refs):
            self.tag_refs[i] += v
        for i, v in enumerate(other.tag_hits):
            self.tag_hits[i] += v
        return self

    def reset(self) -> None:
        """Zero every counter in place.

        The tag arrays are cleared by slice assignment, *not* rebound:
        both engines cache ``counters.tag_refs`` in hot locals, so a
        reset that replaced the lists would silently disconnect those
        aliases and drop every subsequent tag count.
        """
        self._grow_tags()
        self.cycles = 0.0
        self.instructions = 0
        self.packets = 0
        self.l1_hits = 0
        self.l2_hits = 0
        self.l3_refs = 0
        self.l3_hits = 0
        self.l3_misses = 0
        self.remote_refs = 0
        self.mc_wait_cycles = 0.0
        self.gap_cycles = 0.0
        self.tag_refs[:] = [0] * len(self.tag_refs)
        self.tag_hits[:] = [0] * len(self.tag_hits)


class FlowStats:
    """Derived, rate-style statistics over one flow's measurement window."""

    def __init__(self, counts: CoreCounters, freq_hz: float,
                 latencies: Optional[List[float]] = None):
        self.counts = counts
        self.freq_hz = freq_hz
        #: Per-packet completion latencies (cycles), when recorded.
        self.latencies = latencies

    # -- throughput ----------------------------------------------------------

    @property
    def packets(self) -> int:
        return self.counts.packets

    @property
    def cycles(self) -> float:
        return self.counts.cycles

    @property
    def seconds(self) -> float:
        """Simulated wall-clock duration of the window."""
        return self.counts.cycles / self.freq_hz

    @property
    def packets_per_sec(self) -> float:
        return per_second(self.counts.packets, self.counts.cycles, self.freq_hz)

    @property
    def throughput(self) -> float:
        """Alias for packets/sec — the paper's performance metric."""
        return self.packets_per_sec

    # -- Table 1 columns -----------------------------------------------------

    @property
    def cycles_per_packet(self) -> float:
        return self.counts.cycles / self.counts.packets if self.counts.packets else 0.0

    @property
    def cycles_per_instruction(self) -> float:
        if not self.counts.instructions:
            return 0.0
        return self.counts.cycles / self.counts.instructions

    @property
    def l3_refs_per_sec(self) -> float:
        return per_second(self.counts.l3_refs, self.counts.cycles, self.freq_hz)

    @property
    def l3_hits_per_sec(self) -> float:
        return per_second(self.counts.l3_hits, self.counts.cycles, self.freq_hz)

    @property
    def l3_misses_per_sec(self) -> float:
        return per_second(self.counts.l3_misses, self.counts.cycles, self.freq_hz)

    @property
    def l3_refs_per_packet(self) -> float:
        return self.counts.l3_refs / self.counts.packets if self.counts.packets else 0.0

    @property
    def l3_misses_per_packet(self) -> float:
        return self.counts.l3_misses / self.counts.packets if self.counts.packets else 0.0

    @property
    def l3_hits_per_packet(self) -> float:
        return self.counts.l3_hits / self.counts.packets if self.counts.packets else 0.0

    @property
    def l2_hits_per_packet(self) -> float:
        return self.counts.l2_hits / self.counts.packets if self.counts.packets else 0.0

    @property
    def l3_hit_rate(self) -> float:
        """Fraction of L3 references that hit."""
        return self.counts.l3_hits / self.counts.l3_refs if self.counts.l3_refs else 0.0

    # -- latency distribution (when recorded) ----------------------------------

    def latency_percentile(self, q: float) -> float:
        """Per-packet latency percentile in cycles (q in [0, 100]).

        Requires the run to have been started with
        ``Machine(record_latencies=True)``.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        if not self.latencies:
            raise ValueError("latencies were not recorded for this run")
        ordered = sorted(self.latencies)
        if len(ordered) == 1:
            return ordered[0]
        position = q / 100.0 * (len(ordered) - 1)
        lo = int(position)
        hi = min(lo + 1, len(ordered) - 1)
        frac = position - lo
        return ordered[lo] * (1 - frac) + ordered[hi] * frac

    def latency_percentile_ns(self, q: float) -> float:
        """Per-packet latency percentile in nanoseconds."""
        return self.latency_percentile(q) / self.freq_hz * 1e9

    # -- per-function breakdown (Figure 7) ------------------------------------

    def tag_hit_rate(self, tag_name: str) -> float:
        """L3 hit rate of references issued by function ``tag_name``."""
        tag = TAGS.register(tag_name)
        self.counts._grow_tags()
        refs = self.counts.tag_refs[tag]
        return self.counts.tag_hits[tag] / refs if refs else 0.0

    def tag_refs(self, tag_name: str) -> int:
        """Number of L3 references issued by function ``tag_name``."""
        tag = TAGS.register(tag_name)
        self.counts._grow_tags()
        return self.counts.tag_refs[tag]

    def tag_breakdown(self) -> Dict[str, float]:
        """Hit rate per tag name, for tags that issued any references."""
        self.counts._grow_tags()
        out: Dict[str, float] = {}
        for tag, refs in enumerate(self.counts.tag_refs):
            if refs:
                out[TAGS.name(tag)] = self.counts.tag_hits[tag] / refs
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FlowStats(pps={self.packets_per_sec:.3g}, "
            f"cpp={self.cycles_per_packet:.1f}, "
            f"l3refs/s={self.l3_refs_per_sec:.3g}, "
            f"l3hits/s={self.l3_hits_per_sec:.3g})"
        )


def performance_drop(solo: float, corun: float) -> float:
    """The paper's drop metric: ``(tau_s - tau_c) / tau_s``. 0 when solo is 0."""
    if solo <= 0:
        return 0.0
    return (solo - corun) / solo
