"""The simulated machine and its event-driven timing engine.

A :class:`Machine` hosts one flow per core (the paper's configuration,
Section 2.2). Each flow repeatedly produces per-packet *access programs*
(via its application's functional layer) which the engine replays against
the core's private L1/L2, the socket's shared L3, and the NUMA-aware
memory controllers. Cores are interleaved at memory-reference granularity
by always advancing the core with the smallest local clock, so co-runners'
references contend in the shared cache exactly as on real hardware.

Placement is explicit: ``add_flow(factory, core=..., data_domain=...)``
controls both which socket executes a flow and which memory domain holds
its data, which is how the three configurations of the paper's Figure 3
(cache-only, memory-controller-only, and combined contention) are built.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Callable, Dict, List, Optional

from ..constants import CACHE_LINE_BITS, DEFAULT_SEED, NUMA_DOMAIN_SHIFT
from ..mem.access import AccessContext, TAGS
from ..mem.allocator import AddressSpace
from ..obs.session import current_session
from ..obs.trace import NULL_TRACER, Tracer
from .cache import SetAssociativeCache
from .counters import CoreCounters, FlowStats
from .dram import MemoryController
from .interconnect import QPILink
from .topology import PlatformSpec

#: Shift converting a global line index to its NUMA domain.
_DOMAIN_LINE_SHIFT = NUMA_DOMAIN_SHIFT - CACHE_LINE_BITS

#: Safety valve: abort runs that exceed this many memory references.
MAX_EVENTS = 400_000_000


@dataclass
class FlowEnv:
    """Everything an application factory needs to build a flow instance."""

    space: AddressSpace
    domain: int
    spec: PlatformSpec
    rng: random.Random


class FlowRun:
    """Run state of one flow pinned to one core."""

    __slots__ = (
        "index", "label", "flow", "core", "socket", "data_domain", "measured",
        "ctx", "prog", "pc", "prog_len", "clock", "counters",
        "warmup_target", "measure_target", "snap_start", "snap_end", "done",
        "latencies", "packet_start", "regions",
    )

    def __init__(self, index: int, label: str, flow, core: int, socket: int,
                 data_domain: int, measured: bool):
        self.index = index
        self.label = label
        self.flow = flow
        self.core = core
        self.socket = socket
        self.data_domain = data_domain
        self.measured = measured
        self.ctx = AccessContext()
        self.prog: List[int] = []
        self.pc = 0
        self.prog_len = -1  # -1: no packet generated yet
        self.clock = 0.0
        self.counters = CoreCounters()
        self.warmup_target = 0
        self.measure_target = 0
        self.snap_start: Optional[CoreCounters] = None
        self.snap_end: Optional[CoreCounters] = None
        self.done = False
        #: Per-packet completion latencies (cycles) within the measurement
        #: window; populated only when the machine records latencies.
        self.latencies: Optional[List[float]] = None
        self.packet_start = 0.0
        #: Regions this flow allocated during construction (captured by
        #: ``add_flow``); the batch engine's stream cache re-expresses
        #: cached access streams relative to these.
        self.regions: List = []


class RunResult:
    """Outcome of one :meth:`Machine.run`: per-flow statistics."""

    def __init__(self, spec: PlatformSpec, flows: List[FlowRun],
                 events: int, end_clock: float, metrics=None):
        self.spec = spec
        self.events = events
        self.end_clock = end_clock
        #: The run's MetricsSampler when time-series sampling was on.
        self.metrics = metrics
        self.stats: Dict[str, FlowStats] = {}
        self.flow_labels: List[str] = []
        for fr in flows:
            if fr.snap_start is None or fr.snap_end is None:
                continue
            delta = fr.snap_end.delta(fr.snap_start)
            self.stats[fr.label] = FlowStats(delta, spec.freq_hz,
                                             latencies=fr.latencies)
            self.flow_labels.append(fr.label)

    def __getitem__(self, label: str) -> FlowStats:
        return self.stats[label]

    def throughput(self, label: str) -> float:
        """Measured packets/sec of flow ``label``."""
        return self.stats[label].packets_per_sec

    def total_l3_refs_per_sec(self, exclude: Optional[str] = None) -> float:
        """Sum of measured L3 refs/sec over all flows except ``exclude``."""
        return sum(
            s.l3_refs_per_sec for lbl, s in self.stats.items() if lbl != exclude
        )

    def timeseries(self, label: str):
        """The sampled :class:`~repro.obs.metrics.FlowSeries` of one flow.

        Requires the machine to have run with a metrics sampler attached.
        """
        if self.metrics is None:
            raise RuntimeError(
                "no metrics were sampled; pass metrics=MetricsSampler(...) "
                "to Machine or run inside repro.obs.observe(...)"
            )
        return self.metrics.series(label)

    def report(self, kind: str = "run", config=None) -> "object":
        """This run as a machine-readable :class:`~repro.obs.RunReport`."""
        from ..obs.report import RunReport

        report = RunReport.new(kind, spec=self.spec, config=config)
        report.add_result_flows(self)
        report.results["events"] = self.events
        report.results["end_clock_cycles"] = self.end_clock
        if self.metrics is not None:
            report.attach_metrics(self.metrics)
        return report


def unwrap_probes(sampler):
    """Peel stacked metrics probes down to the real sampler (or None).

    Probes (the invariant checker's, the SLO guard's) wrap the machine's
    sampler while implementing the same protocol, and mark themselves
    with ``is_metrics_probe``. Results should expose the underlying
    sampler, whatever got stacked on top and in which order.
    """
    while getattr(sampler, "is_metrics_probe", False):
        sampler = sampler.inner
    return sampler


def _audit_wrapper_identity(flow) -> None:
    """Reject wrapper flows that alias their wrapped flow's identity.

    The batch engine keys its skeleton/stream cache on ``name`` and
    ``stream_signature``; a wrapper (throttle, two-faced composite,
    guard) that passes either through unchanged could be cached under —
    and later served as — its inner flow, silently dropping the wrapper
    behaviour. Wrappers must either derive a distinct identity or
    declare ``stream_signature = None`` (never cached).
    """
    inners = [inner for inner in (getattr(flow, "inner", None),
                                  getattr(flow, "innocent", None),
                                  getattr(flow, "aggressive", None))
              if inner is not None and hasattr(inner, "run_packet")]
    if not inners:
        return
    sig = getattr(flow, "stream_signature", None)
    name = getattr(flow, "name", None)
    for inner in inners:
        if sig is not None and sig == getattr(inner, "stream_signature",
                                              None):
            raise ValueError(
                f"wrapper flow {name!r} reuses the stream signature of "
                f"its wrapped flow {getattr(inner, 'name', '?')!r}; the "
                "batch engine would alias their cached streams")
        if name is not None and name == getattr(inner, "name", None):
            raise ValueError(
                f"wrapper flow reuses its wrapped flow's name {name!r}; "
                "labels derived from it could not tell them apart")


class Machine:
    """One simulated server. Build it, add flows, call :meth:`run` once."""

    def __init__(self, spec: Optional[PlatformSpec] = None, seed: int = DEFAULT_SEED,
                 record_latencies: bool = False,
                 tracer: Optional[Tracer] = None, metrics=None,
                 checker=None, guard=None):
        self.spec = spec if spec is not None else PlatformSpec.westmere()
        self.seed = seed
        self.record_latencies = record_latencies
        # Explicit observability arguments win; otherwise inherit the
        # ambient obs session (repro.obs.observe), if one is active.
        session = current_session()
        if session is not None:
            if tracer is None:
                tracer = session.tracer
            if metrics is None:
                metrics = session.new_sampler()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Optional ``repro.obs.MetricsSampler`` (one run's time series).
        self.metrics = metrics
        #: Optional ``repro.check.InvariantChecker``: hooks conservation
        #: checks into packet boundaries (via the metrics protocol) and
        #: runs the full machine-wide audit at end of run. Both engines
        #: honour it at identical points of the interleaving.
        self.checker = checker
        #: Optional ``repro.guard.SLOGuard``: observes per-flow windows
        #: through the same sampler protocol (stacked outside the
        #: checker's probe) and steers guarded flows' throttles.
        self.guard = guard
        self.space = AddressSpace(self.spec.n_sockets)
        self.l3 = [
            SetAssociativeCache(self.spec.l3_size, self.spec.l3_ways, f"L3.{s}")
            for s in range(self.spec.n_sockets)
        ]
        self.mcs = [
            MemoryController(d, self.spec.mc_service_cycles)
            for d in range(self.spec.n_sockets)
        ]
        self.qpi = QPILink(self.spec.qpi_extra_cycles, self.spec.qpi_service_cycles)
        self.flows: List[FlowRun] = []
        self._cores_used: Dict[int, str] = {}
        self._l1: Dict[int, SetAssociativeCache] = {}
        self._l2: Dict[int, SetAssociativeCache] = {}
        self._ran = False

    # -- construction --------------------------------------------------------

    def add_flow(
        self,
        factory: Callable[[FlowEnv], object],
        core: int,
        data_domain: Optional[int] = None,
        measured: bool = True,
        label: Optional[str] = None,
    ) -> FlowRun:
        """Instantiate a flow on ``core`` with data homed in ``data_domain``.

        ``data_domain`` defaults to the core's own socket (the paper's
        NUMA-local production configuration).
        """
        if self._ran:
            raise RuntimeError("machine already ran; build a fresh Machine")
        socket = self.spec.socket_of(core)
        if core in self._cores_used:
            raise ValueError(
                f"core {core} already runs flow {self._cores_used[core]!r} "
                "(the paper's configuration is one flow per core)"
            )
        if data_domain is None:
            data_domain = socket
        if not 0 <= data_domain < self.spec.n_sockets:
            raise ValueError(f"no such NUMA domain: {data_domain}")
        flow = None
        regions = None
        # Skeleton fast path: under the ambient batch engine, a factory
        # that declares its stream signature and whose stream (plus
        # construction metadata) is already cached gets a construction-free
        # StubFlow over the recorded region layout — the replay engine
        # never needs the real flow object (see repro.fastpath.streams).
        factory_sig = getattr(factory, "stream_signature", None)
        if factory_sig is not None and not self.tracer.active:
            from ..fastpath import default_engine

            if default_engine() == "batch":
                from ..fastpath import streams as _fastpath

                key = _fastpath.key_for_signature(
                    factory_sig, self.seed, core, self.spec)
                meta = _fastpath.STREAM_CACHE.skeleton_meta(key)
                if meta is not None:
                    regions = [
                        self.space.alloc(
                            size, rname,
                            data_domain if is_data_rel else abs_dom)
                        for rname, size, is_data_rel, abs_dom in meta.layout
                    ]
                    flow = _fastpath.StubFlow(
                        factory, meta, factory_sig, regions,
                        self.seed, core, data_domain, self.spec)
        if flow is None:
            rng = random.Random(
                (self.seed * 1_000_003 + core * 7919) & 0xFFFFFFFF)
            env = FlowEnv(space=self.space, domain=data_domain,
                          spec=self.spec, rng=rng)
            # Snapshot allocation marks so the regions this factory
            # allocates can be attributed to the flow (the batch engine's
            # stream cache needs them to re-express streams in
            # region-relative form).
            marks = {
                d: len(self.space.domain(d).regions)
                for d in range(self.spec.n_sockets)
            }
            flow = factory(env)
            # Audit on the construction path only: probing a cached
            # skeleton's attributes would materialize it (a skeleton's
            # identity was already audited when its stream was recorded).
            _audit_wrapper_identity(flow)
            regions = []
            for d in range(self.spec.n_sockets):
                regions.extend(self.space.domain(d).regions[marks[d]:])
        name = getattr(flow, "name", flow.__class__.__name__)
        if label is None:
            label = f"{name}@{core}"
        if any(fr.label == label for fr in self.flows):
            raise ValueError(f"duplicate flow label {label!r}")
        fr = FlowRun(len(self.flows), label, flow, core, socket, data_domain, measured)
        fr.regions = regions
        self.flows.append(fr)
        self._cores_used[core] = label
        self._l1[core] = SetAssociativeCache(
            self.spec.l1_size, self.spec.l1_ways, f"L1.{core}"
        )
        self._l2[core] = SetAssociativeCache(
            self.spec.l2_size, self.spec.l2_ways, f"L2.{core}"
        )
        attach = getattr(flow, "attach_run", None)
        if attach is not None:
            attach(self, fr)
        elif type(flow).__name__ == "StubFlow":
            # Forward the attach hook when/if the stub materializes.
            def _attach_real(real, machine=self, flow_run=fr):
                hook = getattr(real, "attach_run", None)
                if hook is not None:
                    hook(machine, flow_run)

            flow._attach = _attach_real
        return fr

    def invalidate_private(self, lines, core: int) -> None:
        """Invalidate ``lines`` in ``core``'s private L1/L2 (cache-to-cache
        transfer of a written-shared line: the next reader pays an L3 access).

        Used by the pipeline-handoff model; the shared L3 keeps the line.
        """
        l1 = self._l1.get(core)
        l2 = self._l2.get(core)
        for line in lines:
            if l1 is not None:
                l1.invalidate(line)
            if l2 is not None:
                l2.invalidate(line)

    # -- execution -----------------------------------------------------------

    def run(self, warmup_packets: int = 200, measure_packets: int = 1000,
            max_events: int = MAX_EVENTS,
            engine: Optional[str] = None) -> RunResult:
        """Run until every measured flow completes its measurement window.

        Per-flow packet targets are scaled by the flow's ``measure_weight``
        attribute (slow flows like FW measure fewer packets so that mixed
        runs finish in comparable simulated time; rates are unaffected).

        ``engine`` selects the execution engine: ``"scalar"`` (the
        reference event loop below), ``"batch"`` (the pregenerating
        engine in :mod:`repro.fastpath`, identical results, faster), or
        None to use the ambient default set via
        :func:`repro.fastpath.use_engine` / ``set_default_engine``.
        """
        if engine is None:
            from ..fastpath import default_engine

            engine = default_engine()
        if engine == "batch":
            from ..fastpath.engine import run_batch

            return run_batch(self, warmup_packets, measure_packets, max_events)
        if engine != "scalar":
            raise ValueError(
                f"unknown engine {engine!r} (choose 'scalar' or 'batch')"
            )
        # A machine built under the ambient batch engine may hold
        # construction-skipped StubFlows; the scalar loop needs the real
        # flow objects. (Stubs can only exist if fastpath.streams was
        # imported, so probing sys.modules avoids pulling numpy into
        # scalar-only processes.)
        import sys

        _fastpath = sys.modules.get(
            __name__.split(".")[0] + ".fastpath.streams")
        if _fastpath is not None:
            for fr in self.flows:
                if isinstance(fr.flow, _fastpath.StubFlow):
                    fr.flow = fr.flow.materialize()
        if self._ran:
            raise RuntimeError("machine already ran; build a fresh Machine")
        if not self.flows:
            raise RuntimeError("no flows configured")
        self._ran = True

        flows = self.flows
        for fr in flows:
            weight = float(getattr(fr.flow, "measure_weight", 1.0))
            fr.warmup_target = max(50, int(warmup_packets * weight))
            fr.measure_target = fr.warmup_target + max(100, int(measure_packets * weight))

        if self.record_latencies:
            for fr in flows:
                fr.latencies = []

        n_waiting = sum(1 for fr in flows if fr.measured)
        if n_waiting == 0:
            raise RuntimeError("at least one flow must be measured")

        spec = self.spec
        lat_l1 = spec.lat_l1
        lat_l2 = spec.lat_l2
        lat_l3 = spec.lat_l3
        lat_dram = spec.lat_l3 + spec.lat_dram_extra
        mcs = self.mcs
        qpi = self.qpi
        l3_by_socket = self.l3
        n_tags = len(TAGS)
        events = 0

        # Per-flow fast-path bindings.
        l1_sets = {fr.index: self._l1[fr.core].sets for fr in flows}
        l1_nsets = {fr.index: self._l1[fr.core].n_sets for fr in flows}
        l2_sets = {fr.index: self._l2[fr.core].sets for fr in flows}
        l2_nsets = {fr.index: self._l2[fr.core].n_sets for fr in flows}
        l1_ways = spec.l1_ways
        l2_ways = spec.l2_ways
        l3_ways = spec.l3_ways

        heap: List = []
        for fr in flows:
            fr.counters._grow_tags()
            if len(fr.counters.tag_refs) < n_tags:  # pragma: no cover - defensive
                raise RuntimeError("tag registry changed mid-run")
            heappush(heap, (fr.clock, fr.index))

        # Observability bindings. ``trace_on``/``metrics_on`` are the
        # single boolean guards the hot loop checks; with both off the
        # loop below is byte-for-byte the pre-observability engine plus
        # those checks (see tests/test_obs_overhead.py).
        checker = self.checker
        if checker is not None:
            # The checker wraps self.metrics with a probe implementing
            # the same sampler protocol, so the hot loop below needs no
            # extra branches to feed it.
            checker.install(self)
        guard = self.guard
        if guard is not None:
            # Same probe-stacking trick, outermost: the guard sees every
            # window first, then forwards to the checker/sampler below.
            guard.install(self)
        tracer = self.tracer
        trace_on = tracer.active
        sampler = self.metrics
        metrics_on = sampler is not None
        if trace_on:
            tracer.begin_run(self)
        if metrics_on:
            sampler.begin(self)
            metrics_due = sampler.next_due
        mem_sample = tracer.mem_sample if trace_on else 0

        stop = False
        while heap and not stop:
            clock, i = heappop(heap)
            fr = flows[i]
            fl = fr.flow
            ctx = fr.ctx
            c = fr.counters
            tag_refs = c.tag_refs
            tag_hits = c.tag_hits
            my_l1 = l1_sets[i]
            my_l1_n = l1_nsets[i]
            my_l2 = l2_sets[i]
            my_l2_n = l2_nsets[i]
            my_l3 = l3_by_socket[fr.socket].sets
            my_l3_n = l3_by_socket[fr.socket].n_sets
            home = fr.socket
            limit = heap[0][0] if heap else float("inf")
            clock = fr.clock
            prog = fr.prog
            pc = fr.pc
            prog_len = fr.prog_len

            while True:
                if pc >= prog_len:
                    # -- packet boundary --------------------------------------
                    if prog_len >= 0:
                        clock += ctx.trailing_gap
                        c.gap_cycles += ctx.trailing_gap
                        if not ctx.is_idle:
                            c.packets += 1
                            if (fr.latencies is not None
                                    and fr.snap_start is not None
                                    and not fr.done):
                                fr.latencies.append(clock - fr.packet_start)
                            if trace_on:
                                tracer.packet(
                                    i, fr.packet_start, clock, c.packets,
                                    marks=getattr(fl, "trace_marks", None))
                        if c.packets == fr.warmup_target and fr.snap_start is None:
                            c.cycles = clock
                            fr.snap_start = c.copy()
                            if trace_on:
                                tracer.phase(i, clock, "measure_begin",
                                             packets=c.packets)
                        elif c.packets == fr.measure_target and not fr.done:
                            c.cycles = clock
                            fr.snap_end = c.copy()
                            fr.done = True
                            if trace_on:
                                tracer.phase(i, clock, "measure_end",
                                             packets=c.packets)
                            if fr.measured:
                                n_waiting -= 1
                                if n_waiting == 0:
                                    stop = True
                                    break
                        if metrics_on and clock >= metrics_due[i]:
                            sampler.sample(i, clock, c)
                    # -- generate next packet ---------------------------------
                    if events > max_events:
                        raise RuntimeError(
                            f"simulation exceeded {max_events} events; "
                            "reduce packet counts or platform scale"
                        )
                    ctx.reset()
                    # Keep the public run state current: flows with live
                    # feedback (ControlElement, ThrottledFlow) read their
                    # own clock and counters during generation.
                    fr.clock = clock
                    fr.packet_start = clock
                    dma = fl.run_packet(ctx)
                    ctx.finish_packet()
                    c.instructions += ctx.instructions
                    if dma:
                        inval_l3 = l3_by_socket[fr.socket]
                        inval_l1 = my_l1
                        inval_l2 = my_l2
                        for line in dma:
                            s = inval_l1[line % my_l1_n]
                            if line in s:
                                s.remove(line)
                            s = inval_l2[line % my_l2_n]
                            if line in s:
                                s.remove(line)
                            s = my_l3[line % my_l3_n]
                            if line in s:
                                s.remove(line)
                    prog = fr.prog = ctx.program
                    pc = 0
                    prog_len = len(prog)
                    # A packet with no memory references must still advance
                    # time via its trailing gap, or the loop would never
                    # make progress.
                    if prog_len == 0 and ctx.trailing_gap <= 0:
                        raise RuntimeError(
                            f"flow {fr.label!r} produced an empty, zero-time packet"
                        )
                    if clock > limit:
                        break
                    continue

                # -- one memory reference -------------------------------------
                gap = prog[pc]
                line = prog[pc + 1]
                now = clock + gap
                s = my_l1[line % my_l1_n]
                if line in s:
                    s.remove(line)
                    s.append(line)
                    c.l1_hits += 1
                    clock = now + lat_l1
                else:
                    s.append(line)
                    if len(s) > l1_ways:
                        s.pop(0)
                    s2 = my_l2[line % my_l2_n]
                    if line in s2:
                        s2.remove(line)
                        s2.append(line)
                        c.l2_hits += 1
                        clock = now + lat_l2
                    else:
                        s2.append(line)
                        if len(s2) > l2_ways:
                            s2.pop(0)
                        c.l3_refs += 1
                        tag = prog[pc + 2]
                        tag_refs[tag] += 1
                        s3 = my_l3[line % my_l3_n]
                        if line in s3:
                            s3.remove(line)
                            s3.append(line)
                            c.l3_hits += 1
                            tag_hits[tag] += 1
                            clock = now + lat_l3
                        else:
                            s3.append(line)
                            if len(s3) > l3_ways:
                                s3.pop(0)
                            c.l3_misses += 1
                            dom = line >> _DOMAIN_LINE_SHIFT
                            wait = mcs[dom].request(now)
                            lat = lat_dram + wait
                            c.mc_wait_cycles += wait
                            if dom != home:
                                lat += qpi.transfer(now)
                                c.remote_refs += 1
                            clock = now + lat
                            if trace_on and c.l3_misses % mem_sample == 0:
                                tracer.mem(i, now, wait, dom, dom != home)
                c.gap_cycles += gap
                pc += 3
                events += 1
                if clock > limit:
                    break

            fr.clock = clock
            fr.pc = pc
            fr.prog_len = prog_len
            if stop:
                break
            if events > max_events:
                raise RuntimeError(
                    f"simulation exceeded {max_events} events; "
                    "reduce packet counts or platform scale"
                )
            heappush(heap, (clock, i))

        # Close statistics for flows that never reached their measure target
        # (pure competitors kept running for contention): report whatever
        # full window is available past their warm-up.
        end_clock = max(fr.clock for fr in flows)
        for fr in flows:
            if fr.snap_start is not None and fr.snap_end is None:
                fr.counters.cycles = fr.clock
                fr.snap_end = fr.counters.copy()
        # End-of-run flush for flows with closed control loops (e.g.
        # throttles whose adjust window never filled): runs after the
        # measurement snapshots close, at the identical point in both
        # engines, so it never perturbs reported statistics.
        for fr in flows:
            hook = getattr(fr.flow, "finish_run", None)
            if hook is not None:
                hook()
        if metrics_on:
            sampler.finish(flows)
        if trace_on:
            tracer.end_run(end_clock, events)
        result = RunResult(self.spec, flows, events, end_clock,
                           metrics=unwrap_probes(sampler))
        if checker is not None:
            checker.after_run(self, result)
        if guard is not None:
            guard.after_run(self, result)
        return result
