"""Multi-queue NIC model (Intel 82599 "Niantic"-style).

The paper's platform has 3 dual-port 10 Gbps NICs; traffic arriving at
each port is split into receive queues by RSS hashing, and each queue is
served by exactly one core (Section 2.2). This module models:

* descriptor rings with a configurable number of entries,
* RSS: hashing the 5-tuple to pick a receive queue,
* DMA semantics: writing a packet into a receive buffer invalidates the
  buffer's cache lines (the engine applies the invalidation), so the first
  touch of packet data is a compulsory miss — the effect behind the
  per-packet L3 misses in Table 1.

The contention experiments drive flows from infinite generators (the paper
measures peak throughput under saturating input), so the NIC is primarily
used by the example applications and the functional integration tests.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from ..constants import PACKET_BUFFER_BYTES, RX_RING_ENTRIES
from ..mem.allocator import DomainAllocator
from ..mem.region import Region
from ..net.packet import Packet


class RxQueue:
    """One receive queue: a descriptor ring plus per-buffer regions."""

    def __init__(self, nic_name: str, index: int, allocator: DomainAllocator,
                 ring_entries: int = RX_RING_ENTRIES,
                 buffer_bytes: int = PACKET_BUFFER_BYTES):
        if ring_entries <= 0:
            raise ValueError("ring must have at least one descriptor")
        self.name = f"{nic_name}.rx{index}"
        self.index = index
        self.ring_entries = ring_entries
        self.buffer_bytes = buffer_bytes
        self.descriptor_ring = allocator.alloc(
            ring_entries * 16, f"{self.name}.ring"
        )
        self.buffers: List[Region] = [
            allocator.alloc(buffer_bytes, f"{self.name}.buf{i}")
            for i in range(ring_entries)
        ]
        self._queue: Deque[Packet] = deque()
        self._head = 0
        self.received = 0
        self.dropped = 0

    def push(self, packet: Packet) -> bool:
        """NIC side: DMA a packet into the next free buffer; False if full."""
        if len(self._queue) >= self.ring_entries:
            self.dropped += 1
            return False
        slot = (self._head + len(self._queue)) % self.ring_entries
        packet.buffer = self.buffers[slot]
        self._queue.append(packet)
        self.received += 1
        return True

    def pop(self) -> Optional[Packet]:
        """Driver side: take the oldest pending packet, or None."""
        if not self._queue:
            return None
        self._head = (self._head + 1) % self.ring_entries
        return self._queue.popleft()

    def __len__(self) -> int:
        return len(self._queue)


class TxQueue:
    """One transmit queue; counts and discards (the wire is not modeled)."""

    def __init__(self, nic_name: str, index: int, allocator: DomainAllocator,
                 ring_entries: int = RX_RING_ENTRIES):
        self.name = f"{nic_name}.tx{index}"
        self.index = index
        self.descriptor_ring = allocator.alloc(
            ring_entries * 16, f"{self.name}.ring"
        )
        self.sent = 0
        self.bytes_sent = 0

    def push(self, packet: Packet) -> None:
        """Transmit (account for) a packet."""
        self.sent += 1
        self.bytes_sent += packet.wire_length


class NIC:
    """A NIC port with ``n_queues`` RSS receive queues and transmit queues."""

    def __init__(self, name: str, allocator: DomainAllocator, n_queues: int = 2,
                 ring_entries: int = RX_RING_ENTRIES,
                 buffer_bytes: int = PACKET_BUFFER_BYTES):
        if n_queues <= 0:
            raise ValueError("NIC needs at least one queue")
        self.name = name
        self.n_queues = n_queues
        self.rx_queues = [
            RxQueue(name, i, allocator, ring_entries, buffer_bytes)
            for i in range(n_queues)
        ]
        self.tx_queues = [
            TxQueue(name, i, allocator, ring_entries) for i in range(n_queues)
        ]

    def rss_queue(self, packet: Packet) -> int:
        """RSS: map the packet's 5-tuple hash onto a receive queue."""
        return packet.flow_hash() % self.n_queues

    def receive(self, packet: Packet) -> bool:
        """Steer ``packet`` into its RSS queue; False if that queue is full."""
        return self.rx_queues[self.rss_queue(packet)].push(packet)

    @property
    def received(self) -> int:
        """Packets accepted across all receive queues."""
        return sum(q.received for q in self.rx_queues)

    @property
    def dropped(self) -> int:
        """Packets dropped at full rings."""
        return sum(q.dropped for q in self.rx_queues)
