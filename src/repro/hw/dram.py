"""Memory-controller model: fixed fill latency plus utilization queueing.

Each socket has one integrated memory controller (paper Figure 1). A line
fill occupies the controller for ``service_cycles``; concurrent fills
queue. Queueing delay is computed from the controller's recent
*utilization* (busy fraction over a sliding window) through the M/M/1-style
form ``wait = service * rho / (1 - rho)``, rather than from a busy-until
timestamp: the timing engine interleaves cores with a small amount of
timestamp reordering, and a busy-until queue would misread that reordering
as contention. The utilization form is insensitive to arrival order while
still producing the paper's memory-controller effects: a modest drop under
MC-only contention (Figure 4(b)) and a miss penalty that "slowly increases
with competition" (Section 3.3).
"""

from __future__ import annotations

#: Utilization sampling window, in cycles (~18 microseconds at 2.8 GHz).
UTILIZATION_WINDOW = 50_000.0

#: Utilization is capped here when computing waits, so a saturated
#: controller yields a large-but-finite queueing delay.
MAX_RHO = 0.95


class UtilizationQueue:
    """Shared-channel queueing from windowed utilization."""

    __slots__ = ("service_cycles", "requests", "wait_cycles", "busy_cycles",
                 "rho", "_window_start", "_window_busy")

    def __init__(self, service_cycles: float):
        if service_cycles <= 0:
            raise ValueError("service_cycles must be positive")
        self.service_cycles = service_cycles
        self.requests = 0
        self.wait_cycles = 0.0
        self.busy_cycles = 0.0
        self.rho = 0.0
        self._window_start = 0.0
        self._window_busy = 0.0

    def request(self, now: float) -> float:
        """One transfer at time ``now``; returns the queueing delay in cycles."""
        service = self.service_cycles
        self.requests += 1
        self.busy_cycles += service
        self._window_busy += service
        elapsed = now - self._window_start
        if elapsed >= UTILIZATION_WINDOW:
            self.rho = min(MAX_RHO, self._window_busy / elapsed)
            self._window_start = now
            self._window_busy = 0.0
        rho = self.rho
        wait = service * rho / (1.0 - rho)
        self.wait_cycles += wait
        return wait

    def utilization(self, elapsed_cycles: float) -> float:
        """Lifetime busy fraction over ``elapsed_cycles``."""
        if elapsed_cycles <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / elapsed_cycles)

    def reset(self) -> None:
        """Clear queue state and statistics."""
        self.requests = 0
        self.wait_cycles = 0.0
        self.busy_cycles = 0.0
        self.rho = 0.0
        self._window_start = 0.0
        self._window_busy = 0.0


class MemoryController(UtilizationQueue):
    """One NUMA domain's memory controller."""

    __slots__ = ("domain",)

    def __init__(self, domain: int, service_cycles: float):
        super().__init__(service_cycles)
        self.domain = domain
