"""Simulated hardware platform: caches, memory controllers, QPI, cores, NICs.

The centerpiece is :class:`~repro.hw.machine.Machine`, an event-driven
timing simulator of the paper's two-socket Westmere server. Co-running
flows' memory references interleave in the shared last-level cache and at
the memory controllers, producing the contention effects the paper studies.
"""

from .cache import SetAssociativeCache
from .dram import MemoryController
from .interconnect import QPILink
from .topology import PlatformSpec
from .counters import CoreCounters, FlowStats
from .machine import Machine, FlowRun, RunResult

__all__ = [
    "SetAssociativeCache",
    "MemoryController",
    "QPILink",
    "PlatformSpec",
    "CoreCounters",
    "FlowStats",
    "Machine",
    "FlowRun",
    "RunResult",
]
