"""QuickPath interconnect model.

Remote memory accesses (a core on socket A filling a line homed on socket
B's memory controller) pay a fixed extra latency and occupy the QPI link,
which queues under load like the memory controller does (same
windowed-utilization model, see :mod:`repro.hw.dram`). The paper's
production configuration avoids the interconnect entirely through
NUMA-local allocation (Section 2.2); the Figure 3 configurations use it
deliberately to isolate memory-controller contention from cache contention.
"""

from __future__ import annotations

from .dram import UtilizationQueue


class QPILink(UtilizationQueue):
    """Bidirectional point-to-point link between the two sockets."""

    __slots__ = ("extra_cycles", "transfers")

    def __init__(self, extra_cycles: float, service_cycles: float):
        if extra_cycles < 0:
            raise ValueError("extra latency cannot be negative")
        super().__init__(service_cycles)
        self.extra_cycles = extra_cycles
        self.transfers = 0

    def transfer(self, now: float) -> float:
        """Move one line across the link at ``now``; returns added latency."""
        self.transfers += 1
        return self.request(now) + self.extra_cycles
