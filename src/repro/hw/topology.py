"""Platform topology description.

:class:`PlatformSpec` captures the hardware shape (sockets, cores, cache
geometry, latencies) and provides :meth:`PlatformSpec.westmere` matching
the paper's server, plus :meth:`PlatformSpec.scaled` which shrinks the
cache hierarchy and, via the ``scale`` attribute, the applications' data
structures by the same factor — preserving hit ratios so that scaled-down
runs (used by tests and fast benchmarks) exhibit the same contention
behaviour as the full-size platform.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .. import constants as C


@dataclass(frozen=True)
class PlatformSpec:
    """Immutable description of the simulated machine."""

    n_sockets: int = C.N_SOCKETS
    cores_per_socket: int = C.CORES_PER_SOCKET
    freq_hz: float = C.CPU_FREQ_HZ

    l1_size: int = C.L1_SIZE
    l1_ways: int = C.L1_WAYS
    l2_size: int = C.L2_SIZE
    l2_ways: int = C.L2_WAYS
    l3_size: int = C.L3_SIZE
    l3_ways: int = C.L3_WAYS

    lat_l1: float = C.LAT_L1
    lat_l2: float = C.LAT_L2
    lat_l3: float = C.LAT_L3
    lat_dram_extra: float = C.LAT_DRAM_EXTRA
    mc_service_cycles: float = C.MC_SERVICE_CYCLES
    qpi_extra_cycles: float = C.QPI_EXTRA_CYCLES
    qpi_service_cycles: float = C.QPI_SERVICE_CYCLES

    #: Joint scale-down factor; applications divide their table sizes by it.
    scale: int = 1

    def __post_init__(self) -> None:
        if self.n_sockets <= 0 or self.cores_per_socket <= 0:
            raise ValueError("need at least one socket and one core")
        if not (self.l1_size <= self.l2_size <= self.l3_size):
            raise ValueError("cache sizes must be non-decreasing up the hierarchy")

    # -- derived -----------------------------------------------------------

    @property
    def total_cores(self) -> int:
        """Number of cores across all sockets."""
        return self.n_sockets * self.cores_per_socket

    def socket_of(self, core: int) -> int:
        """Socket index of ``core`` (cores are numbered socket-major)."""
        if not 0 <= core < self.total_cores:
            raise ValueError(f"no such core: {core}")
        return core // self.cores_per_socket

    def cores_of_socket(self, socket: int) -> range:
        """Core ids belonging to ``socket``."""
        if not 0 <= socket < self.n_sockets:
            raise ValueError(f"no such socket: {socket}")
        start = socket * self.cores_per_socket
        return range(start, start + self.cores_per_socket)

    @property
    def l3_lines(self) -> int:
        """L3 capacity in cache lines (the appendix model's cache size C)."""
        return self.l3_size // C.CACHE_LINE

    @property
    def dram_latency(self) -> float:
        """Total cycles for an L3 miss served locally (no queueing)."""
        return self.lat_l3 + self.lat_dram_extra

    @property
    def address_bits(self) -> int:
        """Effective IPv4 address-universe width for generated traffic.

        Scaling shrinks tables by ``scale``; shrinking the address universe
        by the same factor (fixing the top ``log2(scale)`` bits) preserves
        the *occupancy* of routing-trie levels and hash tables, so lookup
        depth and hit ratios match the full-size platform.
        """
        return max(20, 32 - max(0, self.scale.bit_length() - 1))

    def scale_table(self, entries: int, minimum: int = 16) -> int:
        """Scale an application table size by the platform scale factor."""
        return max(minimum, entries // self.scale)

    def scale_bytes(self, size: int, minimum: int = C.CACHE_LINE) -> int:
        """Scale a byte size by the platform scale factor."""
        return max(minimum, size // self.scale)

    # -- constructors --------------------------------------------------------

    @classmethod
    def westmere(cls) -> "PlatformSpec":
        """The paper's platform: 2x X5660 at full size."""
        return cls()

    def scaled(self, factor: int) -> "PlatformSpec":
        """A platform with caches (and app tables) shrunk by ``factor``."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        if factor == 1:
            return self
        for size, ways, name in (
            (self.l1_size, self.l1_ways, "L1"),
            (self.l2_size, self.l2_ways, "L2"),
            (self.l3_size, self.l3_ways, "L3"),
        ):
            if size // factor < ways * C.CACHE_LINE:
                raise ValueError(f"scale {factor} collapses {name} below one set")
        return replace(
            self,
            l1_size=self.l1_size // factor,
            l2_size=self.l2_size // factor,
            l3_size=self.l3_size // factor,
            scale=self.scale * factor,
        )

    def single_socket(self) -> "PlatformSpec":
        """Same platform with only one socket (faster for one-socket studies)."""
        return replace(self, n_sockets=1)
