"""Set-associative LRU cache model.

Each cache set is a plain Python list of line indices ordered LRU-first /
MRU-last; a hit moves the line to the back, a miss appends it and evicts
the front when the set overflows. The timing engine in
:mod:`repro.hw.machine` reaches into ``sets`` / ``set_mask`` / ``ways``
directly for speed; this class is the single owner of that layout.
"""

from __future__ import annotations

from typing import List, Optional

from ..constants import CACHE_LINE


class SetAssociativeCache:
    """An LRU set-associative cache indexed by global cache-line number."""

    __slots__ = ("name", "size", "ways", "n_sets", "sets", "hits", "misses")

    def __init__(self, size: int, ways: int, name: str = "cache",
                 line_size: int = CACHE_LINE):
        if size <= 0 or ways <= 0:
            raise ValueError("cache size and associativity must be positive")
        if size % (ways * line_size):
            raise ValueError(
                f"{name}: size {size} not divisible by ways*line ({ways}*{line_size})"
            )
        n_sets = size // (ways * line_size)
        self.name = name
        self.size = size
        self.ways = ways
        self.n_sets = n_sets
        self.sets: List[List[int]] = [[] for _ in range(n_sets)]
        self.hits = 0
        self.misses = 0

    # -- operations ----------------------------------------------------------

    def access(self, line: int) -> bool:
        """Reference ``line``: returns True on hit. Fills (and evicts) on miss."""
        s = self.sets[line % self.n_sets]
        if line in s:
            s.remove(line)
            s.append(line)
            self.hits += 1
            return True
        self.misses += 1
        s.append(line)
        if len(s) > self.ways:
            s.pop(0)
        return False

    def fill(self, line: int) -> Optional[int]:
        """Insert ``line`` as MRU without counting a reference.

        Returns the evicted line, or None.
        """
        s = self.sets[line % self.n_sets]
        if line in s:
            s.remove(line)
            s.append(line)
            return None
        s.append(line)
        if len(s) > self.ways:
            return s.pop(0)
        return None

    def probe(self, line: int) -> bool:
        """True if ``line`` is resident; does not touch LRU state or counters."""
        return line in self.sets[line % self.n_sets]

    def invalidate(self, line: int) -> bool:
        """Remove ``line`` if present (models DMA writes from the NIC)."""
        s = self.sets[line % self.n_sets]
        if line in s:
            s.remove(line)
            return True
        return False

    def flush(self) -> None:
        """Empty the cache and reset statistics."""
        for s in self.sets:
            s.clear()
        self.hits = 0
        self.misses = 0

    # -- introspection -------------------------------------------------------

    @property
    def capacity_lines(self) -> int:
        """Total number of lines the cache can hold."""
        return self.n_sets * self.ways

    def occupancy(self) -> int:
        """Number of lines currently resident."""
        return sum(len(s) for s in self.sets)

    def resident_lines(self) -> List[int]:
        """All resident line indices (test/debug helper)."""
        out: List[int] = []
        for s in self.sets:
            out.extend(s)
        return out

    def validate(self) -> List[str]:
        """Structural integrity problems of the LRU state (empty = sound).

        Checks the invariants every mutation above preserves: no set
        holds more lines than the associativity, every resident line
        lives in the set its index maps to, and no line is resident
        twice. The invariant engine (:mod:`repro.check`) calls this on
        every cache of a machine during and after runs.
        """
        problems: List[str] = []
        seen: dict = {}
        for idx, s in enumerate(self.sets):
            if len(s) > self.ways:
                problems.append(
                    f"{self.name}: set {idx} holds {len(s)} lines "
                    f"(> {self.ways} ways)"
                )
            for line in s:
                if line % self.n_sets != idx:
                    problems.append(
                        f"{self.name}: line {line} resident in set {idx} "
                        f"but maps to set {line % self.n_sets}"
                    )
                if line in seen:
                    problems.append(
                        f"{self.name}: line {line} resident in sets "
                        f"{seen[line]} and {idx}"
                    )
                seen[line] = idx
        return problems

    def hit_rate(self) -> float:
        """Fraction of accesses that hit (0.0 when never accessed)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SetAssociativeCache({self.name!r}, size={self.size}, "
            f"ways={self.ways}, sets={self.n_sets})"
        )
