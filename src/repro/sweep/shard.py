"""Shards: the unit of work of a sweep.

A :class:`Shard` is a declarative, picklable description of one
independent simulation — "run task ``kind`` with ``params``" — that a
worker process can execute without any other context. Shards carry
everything that determines their result (platform spec fields, seed,
packet counts, app names), which makes them *content-addressable*: the
:func:`shard_key` hash of (kind, params, engine, code version) is stable
across processes and runs, and is what the result cache and the
deterministic merge key on.

Params must be plain JSON data (dicts, lists, strings, numbers). The
canonical serialization sorts keys and uses the shortest separators, so
logically-equal params always hash equally.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

#: Versioned marker mixed into every shard key; bump on breaking changes
#: to task semantics or payload shapes (invalidates all cached results).
KEY_SCHEMA = "repro.sweep_shard/1"


def canonical_json(obj: Any) -> str:
    """The canonical (sorted-key, minimal-separator) JSON form of ``obj``."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


def shard_key(kind: str, params: Dict[str, Any], engine: str,
              code: str) -> str:
    """Content hash identifying one shard's result.

    Two shards share a key iff they run the same task with the same
    parameters on the same engine against the same code — exactly the
    conditions under which their results are interchangeable.
    """
    doc = canonical_json({
        "schema": KEY_SCHEMA,
        "kind": kind,
        "params": params,
        "engine": engine,
        "code": code,
    })
    return hashlib.sha256(doc.encode()).hexdigest()


@dataclass(frozen=True)
class Shard:
    """One independent unit of sweep work.

    ``tag`` is a human-readable label used in trace spans and error
    messages (e.g. ``"fig2:MON vs FW"``); it does not affect the key.
    """

    kind: str
    params: Dict[str, Any] = field(default_factory=dict)
    tag: str = ""

    def key(self, engine: str, code: str) -> str:
        """This shard's content-address under ``engine`` and ``code``."""
        return shard_key(self.kind, self.params, engine, code)


@dataclass
class ShardResult:
    """Outcome of one shard within a sweep.

    ``status`` is ``"ok"`` or ``"quarantined"`` (all retries exhausted).
    ``attempts`` counts executions (0 for a pure cache hit); ``seconds``
    is the successful attempt's wall-clock time (0.0 for cache hits).
    """

    shard: Shard
    key: str
    status: str = "ok"
    payload: Optional[Any] = None
    attempts: int = 0
    from_cache: bool = False
    seconds: float = 0.0
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def payload_digest(payload: Any) -> str:
    """Integrity hash of a shard payload (stored beside cached results)."""
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()
