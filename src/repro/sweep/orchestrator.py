"""The sweep orchestrator: shards in, deterministically-merged results out.

Execution model
===============

A sweep takes a list of :class:`~repro.sweep.shard.Shard` descriptions —
independent simulations — and produces one
:class:`~repro.sweep.shard.ShardResult` per shard *in input order*,
regardless of how many workers ran them or in what order they finished.
Every consumer (figure merges, CLI reports) reads that ordered list, so
the merged output of ``jobs=8`` is byte-identical to ``jobs=1``.

Per shard, resolution order is:

1. **Dedupe** — shards with equal content keys within one sweep are
   computed once and shared.
2. **Cache** — a configured result cache is consulted by content key
   (config + seed + engine + code version); hits skip execution.
3. **Execute** — inline for ``jobs=1``, else on a pool of single-task
   worker processes.

Fault tolerance
===============

Workers are expendable; shards are not. A worker that *raises* reports
the traceback and keeps serving; a worker that *hangs* past
``shard_timeout`` is SIGKILLed and replaced; a worker that *dies*
(segfault, OOM-kill, SIGKILL) is detected by exit code and replaced. In
every case the shard it held is retried with bounded exponential backoff
up to ``retries`` times, and a shard that keeps failing is *quarantined*
— recorded with its error, counted, and excluded from payloads — so one
poison shard fails itself, not the sweep. Callers that need every shard
call :meth:`SweepOutcome.raise_for_quarantine`.

``jobs=1`` executes inline (no subprocesses — same arithmetic, and the
ambient tracer/metrics session still observes the machines); raising
shards are retried inline, but hang timeouts are only enforceable with
worker processes.
"""

from __future__ import annotations

import dataclasses
import heapq
import multiprocessing
import queue
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from .codeversion import code_version
from .shard import Shard, ShardResult
from .tasks import run_task
from .worker import worker_main

#: Schema of the execution-stats dict embedded in run reports.
STATS_SCHEMA = "repro.sweep_stats/1"


class SweepError(RuntimeError):
    """A sweep could not produce every required shard."""


@dataclass
class SweepOptions:
    """Knobs of one orchestrator instance."""

    jobs: int = 1
    #: Execution engine for every shard (None: the ambient default).
    engine: Optional[str] = None
    #: A ResultCache / MemoryCache, or None (no caching).
    cache: Optional[Any] = None
    #: Wall-clock seconds a shard may run before its worker is killed
    #: (None: no timeout; enforced only with ``jobs > 1``).
    shard_timeout: Optional[float] = None
    #: Re-executions granted after a shard's first failure.
    retries: int = 2
    #: Exponential backoff before a retry: ``backoff * 2**(attempt-1)``
    #: seconds, capped at ``backoff_cap``.
    backoff: float = 0.1
    backoff_cap: float = 2.0
    #: multiprocessing start method (None: fork where available — cheap
    #: and inherits imports — else spawn).
    start_method: Optional[str] = None

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.backoff < 0 or self.backoff_cap < 0:
            raise ValueError("backoff must be non-negative")


@dataclass
class SweepOutcome:
    """All shard results (input order) plus execution statistics."""

    results: List[ShardResult]
    stats: Dict[str, Any] = field(default_factory=dict)

    def payloads(self) -> Dict[str, Any]:
        """Successful payloads by shard key (quarantined shards absent)."""
        return {r.key: r.payload for r in self.results if r.ok}

    @property
    def quarantined(self) -> List[ShardResult]:
        return [r for r in self.results if not r.ok]

    def raise_for_quarantine(self) -> None:
        """Fail loudly when any shard was quarantined."""
        bad = self.quarantined
        if bad:
            detail = "; ".join(
                f"{r.shard.tag or r.shard.kind}: {(r.error or '?').splitlines()[-1]}"
                for r in bad[:5]
            )
            raise SweepError(
                f"{len(bad)} shard(s) quarantined after retries: {detail}")


class _Worker:
    """Bookkeeping for one live worker process."""

    __slots__ = ("wid", "proc", "task_q")

    def __init__(self, wid, proc, task_q):
        self.wid = wid
        self.proc = proc
        self.task_q = task_q


class SweepRunner:
    """Executes shard lists under one :class:`SweepOptions`."""

    def __init__(self, options: Optional[SweepOptions] = None, **overrides):
        base = options if options is not None else SweepOptions()
        self.options = (dataclasses.replace(base, **overrides)
                        if overrides else base)
        #: Per-sweep stats dicts, one per :meth:`run`, in call order.
        self.stats_history: List[Dict[str, Any]] = []

    # -- public -------------------------------------------------------------

    def run(self, shards: Sequence[Shard]) -> SweepOutcome:
        """Resolve every shard (dedupe → cache → execute) in input order."""
        opts = self.options
        from .. import fastpath

        engine = opts.engine if opts.engine is not None \
            else fastpath.default_engine()
        code = code_version()
        shards = list(shards)
        keys = [s.key(engine, code) for s in shards]
        results: List[Optional[ShardResult]] = [None] * len(shards)
        counters = {"retries": 0, "quarantined": 0, "workers_killed": 0,
                    "cache_hits": 0, "cache_misses": 0}
        started = time.perf_counter()
        corrupt_before = opts.cache.stats["corrupt"] if opts.cache else 0

        first_of: Dict[str, int] = {}
        dup_of: Dict[int, int] = {}
        for i, key in enumerate(keys):
            if key in first_of:
                dup_of[i] = first_of[key]
            else:
                first_of[key] = i

        to_run: List[int] = []
        for key, i in first_of.items():
            payload = opts.cache.get(key) if opts.cache is not None else None
            if payload is not None:
                counters["cache_hits"] += 1
                results[i] = ShardResult(shard=shards[i], key=key,
                                         payload=payload, from_cache=True)
            else:
                if opts.cache is not None:
                    counters["cache_misses"] += 1
                to_run.append(i)

        if to_run:
            if opts.jobs == 1:
                self._run_inline(shards, keys, results, to_run, engine,
                                 counters)
            else:
                self._run_pool(shards, keys, results, to_run, engine,
                               counters)

        for i, j in dup_of.items():
            src = results[j]
            results[i] = ShardResult(
                shard=shards[i], key=keys[i], status=src.status,
                payload=src.payload, attempts=0, from_cache=src.from_cache,
                seconds=0.0, error=src.error,
            )

        stats = {
            "schema": STATS_SCHEMA,
            "jobs": opts.jobs,
            "engine": engine,
            "shards": len(shards),
            "unique": len(first_of),
            "executed": len(to_run),
            "cache_enabled": opts.cache is not None,
            "cache_hits": counters["cache_hits"],
            "cache_misses": counters["cache_misses"],
            "cache_corrupt_detected": (
                (opts.cache.stats["corrupt"] - corrupt_before)
                if opts.cache is not None else 0),
            "retries": counters["retries"],
            "quarantined": counters["quarantined"],
            "workers_killed": counters["workers_killed"],
            "seconds": time.perf_counter() - started,
        }
        final = [r for r in results if r is not None]
        assert len(final) == len(shards), "orchestrator lost a shard"
        self._emit_spans(final)
        self.stats_history.append(stats)
        return SweepOutcome(results=final, stats=stats)

    _SUMMED_STATS = ("shards", "unique", "executed", "cache_hits",
                     "cache_misses", "cache_corrupt_detected", "retries",
                     "quarantined", "workers_killed", "seconds")

    def execution_stats(self) -> Dict[str, Any]:
        """Counters summed over every sweep this runner has executed.

        This is what CLI tools embed under ``RunReport.execution`` — all
        of it volatile (parallelism, cache state, wall-clock), none of it
        part of the deterministic report content.
        """
        merged: Dict[str, Any] = {
            "schema": STATS_SCHEMA,
            "jobs": self.options.jobs,
            "cache_enabled": self.options.cache is not None,
            "sweeps": len(self.stats_history),
        }
        for key in self._SUMMED_STATS:
            merged[key] = sum(s[key] for s in self.stats_history)
        return merged

    # -- inline (jobs=1) ----------------------------------------------------

    def _run_inline(self, shards, keys, results, to_run, engine,
                    counters) -> None:
        from .. import fastpath

        opts = self.options
        for idx in to_run:
            shard = shards[idx]
            attempt = 0
            while True:
                attempt += 1
                start = time.perf_counter()
                try:
                    with fastpath.use_engine(engine):
                        payload = run_task(shard.kind, shard.params)
                except Exception as exc:
                    if attempt > opts.retries:
                        counters["quarantined"] += 1
                        results[idx] = ShardResult(
                            shard=shard, key=keys[idx], status="quarantined",
                            attempts=attempt,
                            error=f"{type(exc).__name__}: {exc}",
                        )
                        break
                    counters["retries"] += 1
                    time.sleep(self._backoff_delay(attempt))
                else:
                    results[idx] = ShardResult(
                        shard=shard, key=keys[idx], payload=payload,
                        attempts=attempt,
                        seconds=time.perf_counter() - start,
                    )
                    if opts.cache is not None:
                        opts.cache.put(keys[idx], payload)
                    break

    # -- pool (jobs>1) ------------------------------------------------------

    def _start_method(self) -> str:
        if self.options.start_method:
            return self.options.start_method
        methods = multiprocessing.get_all_start_methods()
        return "fork" if "fork" in methods else "spawn"

    def _backoff_delay(self, attempt: int) -> float:
        return min(self.options.backoff_cap,
                   self.options.backoff * (2.0 ** (attempt - 1)))

    def _run_pool(self, shards, keys, results, to_run, engine,
                  counters) -> None:
        opts = self.options
        ctx = multiprocessing.get_context(self._start_method())
        result_q = ctx.Queue()
        workers: Dict[int, _Worker] = {}
        next_wid = [0]

        def spawn() -> None:
            wid = next_wid[0]
            next_wid[0] += 1
            task_q = ctx.Queue()
            proc = ctx.Process(target=worker_main,
                               args=(wid, task_q, result_q, engine),
                               daemon=True)
            proc.start()
            workers[wid] = _Worker(wid, proc, task_q)

        def retire(worker: _Worker, kill: bool) -> None:
            if kill and worker.proc.is_alive():
                worker.proc.kill()
                counters["workers_killed"] += 1
            worker.proc.join(timeout=5.0)
            worker.task_q.close()
            worker.task_q.cancel_join_thread()

        # Ready heap entries: (not_before, seq, shard_index, attempt).
        ready: List = []
        seq = [0]

        def schedule(idx: int, attempt: int, not_before: float) -> None:
            heapq.heappush(ready, (not_before, seq[0], idx, attempt))
            seq[0] += 1

        total = len(to_run)
        done = [0]
        inflight: Dict[int, tuple] = {}  # wid -> (idx, attempt, deadline)

        def settle_ok(idx: int, attempt: int, payload, seconds: float) -> None:
            results[idx] = ShardResult(
                shard=shards[idx], key=keys[idx], payload=payload,
                attempts=attempt, seconds=seconds,
            )
            if opts.cache is not None:
                opts.cache.put(keys[idx], payload)
            done[0] += 1
            # A stale success may race a scheduled retry; drop the retry.
            stale = [e for e in ready if e[2] == idx]
            if stale:
                ready[:] = [e for e in ready if e[2] != idx]
                heapq.heapify(ready)

        def settle_failure(idx: int, attempt: int, reason: str) -> None:
            if results[idx] is not None:
                return
            if attempt > opts.retries:
                counters["quarantined"] += 1
                results[idx] = ShardResult(
                    shard=shards[idx], key=keys[idx], status="quarantined",
                    attempts=attempt, error=reason,
                )
                done[0] += 1
            else:
                counters["retries"] += 1
                schedule(idx, attempt + 1,
                         time.monotonic() + self._backoff_delay(attempt))

        for idx in to_run:
            schedule(idx, 1, 0.0)

        try:
            while done[0] < total:
                now = time.monotonic()
                # Keep the pool at strength (replaces killed/dead workers).
                target = min(opts.jobs, total - done[0])
                while len(workers) < target:
                    spawn()
                # Hand ripe work to idle workers.
                idle = [w for w in workers.values()
                        if w.wid not in inflight and w.proc.is_alive()]
                while idle and ready and ready[0][0] <= now:
                    _, _, idx, attempt = heapq.heappop(ready)
                    if results[idx] is not None:
                        continue
                    worker = idle.pop()
                    worker.task_q.put((idx, shards[idx].kind,
                                       shards[idx].params))
                    deadline = (now + opts.shard_timeout
                                if opts.shard_timeout else None)
                    inflight[worker.wid] = (idx, attempt, deadline)

                try:
                    msg = result_q.get(timeout=0.05)
                except queue.Empty:
                    msg = None
                if msg is not None:
                    wid, idx, status, data, seconds = msg
                    held = inflight.get(wid)
                    if held is not None and held[0] == idx:
                        attempt = held[1]
                        del inflight[wid]
                    else:
                        attempt = None  # stale: sender was already killed
                    if results[idx] is None:
                        if status == "ok":
                            settle_ok(idx, attempt or 1, data, seconds)
                        elif attempt is not None:
                            settle_failure(idx, attempt, data)
                    continue  # a worker likely freed up; go assign

                now = time.monotonic()
                # Hung shards: kill past-deadline workers, retry the shard.
                for wid, (idx, attempt, deadline) in list(inflight.items()):
                    if deadline is not None and now >= deadline:
                        worker = workers.pop(wid)
                        del inflight[wid]
                        retire(worker, kill=True)
                        settle_failure(
                            idx, attempt,
                            f"shard timed out after {opts.shard_timeout:g}s "
                            f"(worker killed)")
                # Dead workers (crash / SIGKILL): fail what they held.
                for wid, worker in list(workers.items()):
                    if not worker.proc.is_alive():
                        del workers[wid]
                        held = inflight.pop(wid, None)
                        exitcode = worker.proc.exitcode
                        retire(worker, kill=False)
                        if held is not None:
                            settle_failure(
                                held[0], held[1],
                                f"worker died mid-shard "
                                f"(exitcode {exitcode})")
        finally:
            for worker in workers.values():
                try:
                    worker.task_q.put(None)
                except (OSError, ValueError):  # pragma: no cover
                    pass
            for worker in workers.values():
                worker.proc.join(timeout=2.0)
                if worker.proc.is_alive():
                    worker.proc.kill()
                    worker.proc.join(timeout=2.0)
                worker.task_q.close()
                worker.task_q.cancel_join_thread()
            result_q.close()
            result_q.cancel_join_thread()

    # -- observability ------------------------------------------------------

    def _emit_spans(self, results: List[ShardResult]) -> None:
        """One trace event per shard into the ambient obs session."""
        from ..obs.session import current_session
        from ..obs.trace import KIND_PHASE, TraceEvent

        session = current_session()
        if session is None or not session.tracer.active:
            return
        for i, res in enumerate(results):
            session.tracer.sink.emit(TraceEvent(
                float(i), KIND_PHASE, "shard", run=-1,
                flow=res.shard.tag or res.shard.kind,
                args={
                    "kind": res.shard.kind,
                    "key": res.key[:16],
                    "status": res.status,
                    "attempts": res.attempts,
                    "from_cache": res.from_cache,
                    "seconds": res.seconds,
                },
            ))


def run_shards(shards: Sequence[Shard], jobs: int = 1,
               **options) -> SweepOutcome:
    """One-call convenience: build a runner and resolve ``shards``."""
    return SweepRunner(SweepOptions(jobs=jobs, **options)).run(shards)
