"""Shard-block builders and parallel front-ends for the analysis layer.

A *block* is a ``(shards, merge)`` pair: the shard list for one logical
unit of work (a set of solo profiles, one sensitivity curve) and a merge
function that consumes exactly that block's :class:`ShardResult` slice —
in input order — and rebuilds the domain object the serial code would
have produced. Figure grids compose blocks by concatenating shard lists
and slicing the result list back apart, which keeps merging positional,
allocation-free, and trivially deterministic.

The ``*_parallel`` functions at the bottom are what
:func:`repro.core.profiler.profile_apps`,
:func:`repro.core.prediction.sweep_sensitivity`, and
:meth:`repro.core.prediction.ContentionPredictor.build` delegate to when
called with ``jobs > 1``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.profiler import SoloProfile, _average_profiles
from ..hw.counters import performance_drop
from ..hw.topology import PlatformSpec
from .orchestrator import SweepOptions, SweepRunner
from .shard import Shard, ShardResult
from .tasks import spec_params

#: A block: shards plus the merge consuming exactly their results.
Block = Tuple[List[Shard], Callable[[Sequence[ShardResult]], object]]


# -- blocks -------------------------------------------------------------------

def profile_block(apps: Sequence[str], spec: PlatformSpec, seed: int,
                  warmup: int, measure: int, repeats: int = 1) -> Block:
    """Solo profiles for ``apps`` (averaged over ``repeats`` seeded runs).

    Mirrors :func:`repro.core.profiler.profile_apps`: repeat ``i`` runs
    at ``seed + 101*i``, and the merge averages exactly as the serial
    code does.
    """
    fields = spec_params(spec)
    shards = [
        Shard("profile",
              {"app": app, "spec": fields, "seed": seed + 101 * rep,
               "warmup": warmup, "measure": measure, "core": 0},
              tag=f"profile:{app}" + (f"#{rep}" if repeats > 1 else ""))
        for app in apps for rep in range(repeats)
    ]

    def merge(results: Sequence[ShardResult]) -> Dict[str, SoloProfile]:
        out: Dict[str, SoloProfile] = {}
        it = iter(results)
        for app in apps:
            reps = [SoloProfile(**next(it).payload) for _ in range(repeats)]
            out[app] = _average_profiles(app, reps)
        return out

    return shards, merge


def curve_block(app: str, spec: PlatformSpec, seed: int,
                cpu_ops_levels: Sequence[int], n_competitors: int,
                warmup: int, measure: int):
    """One sensitivity curve, one shard per SYN level.

    The merge needs the target's solo profile (for the drop baseline),
    so it takes ``(results, solo)`` — callers close over their profile
    block's output.
    """
    fields = spec_params(spec)
    shards = [
        Shard("sensitivity_point",
              {"app": app, "spec": fields, "seed": seed, "level": level,
               "cpu_ops": cpu_ops, "n_competitors": n_competitors,
               "warmup": warmup, "measure": measure},
              tag=f"curve:{app}@L{level}")
        for level, cpu_ops in enumerate(cpu_ops_levels)
    ]

    def merge(results: Sequence[ShardResult], solo: SoloProfile):
        from ..core.prediction import SensitivityCurve

        points = [
            (r.payload["competing"],
             performance_drop(solo.throughput, r.payload["target_pps"]))
            for r in results
        ]
        return SensitivityCurve(app=app, points=points)

    return shards, merge


def corun_shard(placement: Sequence[Tuple[str, int]], spec: PlatformSpec,
                seed: int, warmup: int, measure: int,
                tag: str = "") -> Shard:
    """One co-run placement as a shard (Figure 2 cell, split, mix...)."""
    return Shard("corun", {
        "placement": [[app, core] for app, core in placement],
        "spec": spec_params(spec), "seed": seed,
        "warmup": warmup, "measure": measure,
    }, tag=tag)


def corun_measurement(payload: Dict) -> "CoRunMeasurement":
    """Rebuild a :class:`CoRunMeasurement` from a corun shard payload.

    The raw :class:`RunResult` stays in the worker (it is not
    serializable and no merge needs it); ``result`` is None.
    """
    from ..core.validation import CoRunMeasurement

    return CoRunMeasurement(
        apps=dict(payload["apps"]),
        throughput=dict(payload["throughput"]),
        refs_per_sec=dict(payload["refs_per_sec"]),
        result=None,
    )


# -- parallel front-ends ------------------------------------------------------

def _runner(jobs: int, runner: Optional[SweepRunner]) -> SweepRunner:
    if runner is not None:
        return runner
    return SweepRunner(SweepOptions(jobs=jobs))


def profile_apps_parallel(apps, spec, seed, warmup_packets, measure_packets,
                          repeats: int = 1, jobs: int = 1,
                          runner: Optional[SweepRunner] = None
                          ) -> Dict[str, SoloProfile]:
    """Sharded :func:`repro.core.profiler.profile_apps`."""
    apps = list(apps)
    shards, merge = profile_block(apps, spec, seed, warmup_packets,
                                  measure_packets, repeats)
    outcome = _runner(jobs, runner).run(shards)
    outcome.raise_for_quarantine()
    return merge(outcome.results)


def sweep_sensitivity_parallel(app, spec, seed, cpu_ops_levels,
                               n_competitors, warmup_packets,
                               measure_packets, solo=None, jobs: int = 1,
                               runner: Optional[SweepRunner] = None):
    """Sharded :func:`repro.core.prediction.sweep_sensitivity`."""
    shards: List[Shard] = []
    prof_merge = None
    if solo is None:
        prof_shards, prof_merge = profile_block(
            [app], spec, seed, warmup_packets, measure_packets)
        shards.extend(prof_shards)
    curve_shards, merge_curve = curve_block(
        app, spec, seed, cpu_ops_levels, n_competitors,
        warmup_packets, measure_packets)
    shards.extend(curve_shards)
    outcome = _runner(jobs, runner).run(shards)
    outcome.raise_for_quarantine()
    cut = len(shards) - len(curve_shards)
    if prof_merge is not None:
        solo = prof_merge(outcome.results[:cut])[app]
    return merge_curve(outcome.results[cut:], solo)


def build_predictor_parallel(cls, apps, spec, seed, cpu_ops_levels,
                             n_competitors, warmup_packets, measure_packets,
                             jobs: int = 1,
                             runner: Optional[SweepRunner] = None):
    """Sharded :meth:`ContentionPredictor.build`: all profiles and every
    (app, SYN level) co-run resolve concurrently in one sweep."""
    prof_shards, merge_profiles = profile_block(
        apps, spec, seed, warmup_packets, measure_packets)
    curve_blocks = [
        curve_block(app, spec, seed, cpu_ops_levels, n_competitors,
                    warmup_packets, measure_packets)
        for app in apps
    ]
    shards = list(prof_shards)
    for curve_shards, _ in curve_blocks:
        shards.extend(curve_shards)
    outcome = _runner(jobs, runner).run(shards)
    outcome.raise_for_quarantine()
    profiles = merge_profiles(outcome.results[:len(prof_shards)])
    curves = {}
    pos = len(prof_shards)
    for app, (curve_shards, merge_curve) in zip(apps, curve_blocks):
        curves[app] = merge_curve(
            outcome.results[pos:pos + len(curve_shards)], profiles[app])
        pos += len(curve_shards)
    return cls(profiles=profiles, curves=curves)
