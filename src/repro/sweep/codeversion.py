"""Code-version fingerprint for cache invalidation.

A cached shard result is only valid for the code that produced it; the
sweep cache therefore mixes a fingerprint of the ``repro`` package's
sources into every shard key. Editing any ``.py`` file under the package
changes the fingerprint and silently invalidates the whole cache — no
manual flushing, no stale results after a refactor.

The fingerprint hashes file *contents* (not mtimes), so a ``git checkout``
back to an earlier revision re-validates that revision's cached shards.
"""

from __future__ import annotations

import hashlib
import os
from typing import Optional

_CACHED: Optional[str] = None


def code_version(refresh: bool = False) -> str:
    """Hex fingerprint of every ``.py`` source under the repro package.

    Memoized per process (the sources cannot change under a running
    interpreter in any way that matters to already-imported code); pass
    ``refresh=True`` to force a re-scan.
    """
    global _CACHED
    if _CACHED is not None and not refresh:
        return _CACHED
    import repro

    root = os.path.dirname(os.path.abspath(repro.__file__))
    digest = hashlib.sha256()
    for dirpath, dirnames, filenames in sorted(os.walk(root)):
        dirnames.sort()
        for name in sorted(filenames):
            if not name.endswith(".py"):
                continue
            path = os.path.join(dirpath, name)
            digest.update(os.path.relpath(path, root).encode())
            with open(path, "rb") as fh:
                digest.update(fh.read())
    _CACHED = digest.hexdigest()[:16]
    return _CACHED
