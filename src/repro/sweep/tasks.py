"""Shard executors: the tasks a sweep worker knows how to run.

Every task takes a plain-JSON ``params`` dict and returns a plain-JSON
payload — both cross the process boundary and the result cache, so no
live objects are allowed. Tasks wrap the *same* underlying functions the
serial experiment code calls (``profile_solo``, ``run_corun``,
``sweep_level``, ``measure_mix``), which is what makes a sharded sweep
bit-identical to a serial one: identical arithmetic, different schedule.

Platform specs travel as their constructor-field dict (see
:func:`spec_from_params`); JSON round-trips every field losslessly.

The ``fault`` task exists for the orchestrator's fault-injection test
suite: it misbehaves (raise / hang / SIGKILL) for a configurable number
of attempts, coordinating across worker processes through marker files.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import asdict
from typing import Any, Callable, Dict

from ..hw.topology import PlatformSpec

TASKS: Dict[str, Callable[[Dict[str, Any]], Any]] = {}


def task(name: str):
    """Register a shard executor under ``name``."""
    def register(fn):
        TASKS[name] = fn
        return fn
    return register


def run_task(kind: str, params: Dict[str, Any]) -> Any:
    """Execute one shard description (the worker entry point)."""
    try:
        fn = TASKS[kind]
    except KeyError:
        raise KeyError(f"unknown shard kind {kind!r}; "
                       f"known: {', '.join(sorted(TASKS))}") from None
    return fn(params)


def spec_params(spec: PlatformSpec) -> Dict[str, Any]:
    """A platform spec as the plain dict a shard carries."""
    from ..obs.report import platform_dict

    return platform_dict(spec)


def spec_from_params(fields: Dict[str, Any]) -> PlatformSpec:
    """Rebuild a platform spec from its shard-param dict."""
    return PlatformSpec(**fields)


# -- simulation tasks ---------------------------------------------------------

@task("profile")
def _task_profile(p: Dict[str, Any]) -> Dict[str, Any]:
    """Solo-profile one flow type (one Table 1 row)."""
    from ..core.profiler import profile_solo

    profile = profile_solo(
        p["app"], spec_from_params(p["spec"]), seed=p["seed"],
        warmup_packets=p["warmup"], measure_packets=p["measure"],
        core=p.get("core", 0),
    )
    return asdict(profile)


@task("corun")
def _task_corun(p: Dict[str, Any]) -> Dict[str, Any]:
    """Run an arbitrary placement of flows (Figure 2 cell, Figure 9 mix,
    a scheduling split, or a prediction validation run)."""
    from ..core.validation import run_corun

    data_domains = p.get("data_domains")
    if data_domains is not None:
        data_domains = {int(core): domain
                        for core, domain in data_domains.items()}
    corun = run_corun(
        [(app, core) for app, core in p["placement"]],
        spec_from_params(p["spec"]), seed=p["seed"],
        warmup_packets=p["warmup"], measure_packets=p["measure"],
        data_domains=data_domains,
    )
    return {
        "apps": corun.apps,
        "throughput": corun.throughput,
        "refs_per_sec": corun.refs_per_sec,
    }


@task("sensitivity_point")
def _task_sensitivity_point(p: Dict[str, Any]) -> Dict[str, Any]:
    """One SYN level of a sensitivity sweep (prediction method, step 2)."""
    from ..core.prediction import sweep_level

    competing, target_pps = sweep_level(
        p["app"], spec_from_params(p["spec"]), p["seed"],
        p["level"], p["cpu_ops"], p["n_competitors"],
        p["warmup"], p["measure"],
    )
    return {"competing": competing, "target_pps": target_pps}


@task("multiflow_mix")
def _task_multiflow_mix(p: Dict[str, Any]) -> Dict[str, Any]:
    """One core-sharing mix of the Section 6 study."""
    from ..experiments.multiflow import measure_mix

    measured = measure_mix(
        p["mix"], spec_from_params(p["spec"]), p["seed"],
        p["warmup"], p["measure"],
    )
    return {"label": "+".join(p["mix"]), "pps": measured}


@task("check_scenario")
def _task_check_scenario(p: Dict[str, Any]) -> Dict[str, Any]:
    """One fuzzer scenario under the invariant checks (see repro.check).

    The payload carries the exact end-of-run counters, so the check
    runner can assert serial and sharded execution agree bit-for-bit.
    """
    from ..check.runner import scenario_payload
    from ..check.scenarios import ScenarioConfig

    config = ScenarioConfig.from_dict(p["config"])
    return scenario_payload(config, engine=p.get("engine"))


@task("guard_scenario")
def _task_guard_scenario(p: Dict[str, Any]) -> Dict[str, Any]:
    """One fuzzer scenario run under the SLO guard (see repro.guard).

    The payload carries the guard's full event stream and per-flow
    verdicts, so a sharded fuzz campaign can assert determinism (and
    zero unhandled violations) exactly like a serial one.
    """
    from ..check.scenarios import ScenarioConfig
    from ..guard.fuzz import guard_scenario_payload

    config = ScenarioConfig.from_dict(p["config"])
    return guard_scenario_payload(config, engine=p.get("engine"))


# -- fault injection (test suite) --------------------------------------------

def _count_attempt(state_dir: str, token: str) -> int:
    """Record one attempt in a marker file; returns prior attempt count.

    Attempt counting must survive worker death (a SIGKILL'd worker cannot
    report anything), so it lives on disk, not in memory.
    """
    os.makedirs(state_dir, exist_ok=True)
    marker = os.path.join(state_dir, f"{token}.attempts")
    with open(marker, "a+") as fh:
        fh.seek(0)
        prior = len(fh.read())
        fh.write("x")
        fh.flush()
        os.fsync(fh.fileno())
    return prior


@task("fault")
def _task_fault(p: Dict[str, Any]) -> Dict[str, Any]:
    """A deliberately faulty shard for orchestrator tests.

    ``mode`` is ``raise`` / ``hang`` / ``sigkill`` / ``ok``; the fault
    fires on the first ``fail_times`` attempts (counted via marker files
    in ``state_dir``) and the shard succeeds afterwards — exercising the
    retry, timeout-kill, and quarantine paths end to end.
    """
    mode = p.get("mode", "ok")
    fail_times = int(p.get("fail_times", 0))
    token = p.get("token", "shard")
    attempt = 0
    if p.get("state_dir"):
        attempt = _count_attempt(p["state_dir"], token)
    if attempt < fail_times:
        if mode == "raise":
            raise RuntimeError(f"injected failure of {token!r} "
                               f"(attempt {attempt})")
        if mode == "hang":
            time.sleep(float(p.get("hang_seconds", 3600.0)))
        if mode == "sigkill":
            os.kill(os.getpid(), signal.SIGKILL)
    if p.get("sleep"):
        time.sleep(float(p["sleep"]))
    return {"token": token, "value": p.get("value"), "attempts_seen": attempt}
