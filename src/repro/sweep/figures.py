"""Registry of figure grids: every experiment as a ``(shards, merge)`` pair.

Each entry maps a figure name to its module-level ``grid(config)``
builder. :func:`run_figure` is the sharded equivalent of calling the
experiment module's ``run()`` — the merged result is bit-identical to
the serial one regardless of job count, completion order, or cache
state (the shards run the same seeded simulations the serial loops do,
and the merges consume their results positionally in shard order).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..experiments import fig2, fig5, fig6, fig9, multiflow, table1
from ..experiments.common import ExperimentConfig
from .orchestrator import SweepOptions, SweepRunner

#: figure name -> grid builder returning ``(shards, merge)``.
FIGURE_GRIDS: Dict[str, Callable] = {
    "table1": table1.grid,
    "fig2": fig2.grid,
    "fig5": fig5.grid,
    "fig6": fig6.grid,
    "fig9": fig9.grid,
    "multiflow": multiflow.grid,
}


def run_figure(name: str, config: ExperimentConfig,
               runner: Optional[SweepRunner] = None, jobs: int = 1,
               **grid_kwargs):
    """Run one figure as a sweep; returns the experiment's result object.

    Equivalent to ``experiments.<name>.run(config)`` for any ``jobs``.
    Pass a shared :class:`SweepRunner` to reuse one cache/pool setup
    across figures (duplicate shards — e.g. the solo profiles every
    figure needs — then cost one execution per content key).
    """
    try:
        grid = FIGURE_GRIDS[name]
    except KeyError:
        raise KeyError(f"unknown figure {name!r}; "
                       f"known: {', '.join(FIGURE_GRIDS)}") from None
    if runner is None:
        runner = SweepRunner(SweepOptions(jobs=jobs))
    shards, merge = grid(config, **grid_kwargs)
    outcome = runner.run(shards)
    outcome.raise_for_quarantine()
    return merge(outcome.results)
