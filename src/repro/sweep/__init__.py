"""repro.sweep — sharded experiment sweeps with caching and fault tolerance.

Decomposes the repository's experiment grids (figure studies, solo
profiles, sensitivity sweeps) into independent, content-addressed
*shards*, executes them serially or across a ``multiprocessing`` worker
pool, and merges the results deterministically: the merged output is
bit-identical to the serial run for any job count, shard completion
order, or cache state.

Layers:

* :mod:`~repro.sweep.shard` — shard identity: canonical JSON, content
  keys, :class:`Shard` / :class:`ShardResult`.
* :mod:`~repro.sweep.cache` — content-addressed result cache (on-disk
  or in-memory), hash-validated against truncation/corruption.
* :mod:`~repro.sweep.tasks` — the executable task registry (what a
  shard *does*); pure functions of the shard params.
* :mod:`~repro.sweep.worker` — the pool worker loop.
* :mod:`~repro.sweep.orchestrator` — :class:`SweepRunner`: dedup,
  cache consult, pool management, per-shard timeout, retry with
  bounded backoff, poison-shard quarantine, obs integration.
* :mod:`~repro.sweep.parallel` — shard-block builders and the
  ``jobs > 1`` front-ends the analysis layer delegates to.
* :mod:`~repro.sweep.figures` — every figure as a ``(shards, merge)``
  grid; :func:`run_figure`.
"""

from .cache import MemoryCache, ResultCache, default_cache_dir
from .codeversion import code_version
from .figures import FIGURE_GRIDS, run_figure
from .orchestrator import (SweepError, SweepOptions, SweepOutcome,
                           SweepRunner, run_shards)
from .shard import Shard, ShardResult, canonical_json, shard_key
from .tasks import run_task

__all__ = [
    "FIGURE_GRIDS",
    "MemoryCache",
    "ResultCache",
    "Shard",
    "ShardResult",
    "SweepError",
    "SweepOptions",
    "SweepOutcome",
    "SweepRunner",
    "canonical_json",
    "code_version",
    "default_cache_dir",
    "run_figure",
    "run_shards",
    "run_task",
    "shard_key",
]
