"""The sweep worker process.

One worker owns one task queue: the orchestrator hands it exactly one
shard at a time and waits for the matching result on the shared result
queue, so at any moment the orchestrator knows precisely which shard a
worker holds — the knowledge that makes timeout-kill, crash detection,
and retry accounting exact instead of heuristic.

Messages:

* task queue:   ``(index, kind, params)`` or ``None`` (shutdown).
* result queue: ``(worker_id, index, status, payload_or_traceback,
  seconds)`` with ``status`` in ``{"ok", "error"}``.

A worker that raises reports the traceback and *keeps serving* (a bad
shard must not cost a process); a worker that dies (crash, SIGKILL,
orchestrator timeout-kill) simply never reports, and the orchestrator
notices via its exit code.
"""

from __future__ import annotations

import signal
import time
import traceback


def worker_main(worker_id: int, task_q, result_q, engine: str) -> None:
    """Serve shards until the ``None`` sentinel arrives."""
    # The orchestrator owns Ctrl-C handling; workers must not race it to
    # a KeyboardInterrupt traceback.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    from .. import fastpath
    from .tasks import run_task

    while True:
        item = task_q.get()
        if item is None:
            return
        index, kind, params = item
        start = time.perf_counter()
        try:
            with fastpath.use_engine(engine):
                payload = run_task(kind, params)
        except Exception:
            result_q.put((worker_id, index, "error",
                          traceback.format_exc(),
                          time.perf_counter() - start))
        else:
            result_q.put((worker_id, index, "ok", payload,
                          time.perf_counter() - start))
