"""Content-addressed result caches for sweep shards.

A cache maps a shard key (see :func:`repro.sweep.shard.shard_key`) to the
shard's JSON payload. Because the key already encodes config, seed,
engine, and code version, invalidation is automatic: any change to those
inputs produces a different key and the stale entry is simply never read
again.

Two implementations share the interface:

* :class:`ResultCache` — one JSON file per shard under a root directory,
  written atomically (temp file + rename) and verified on read: the file
  must parse, carry the expected key, and its payload must hash to the
  stored ``payload_sha256``. A truncated, corrupted, or tampered file is
  *detected and treated as a miss* (counted in ``stats["corrupt"]``), so
  a damaged cache can only cost recomputation, never serve wrong data.
* :class:`MemoryCache` — in-process dict, used to share shards between
  figures within one invocation when no disk cache is configured.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Dict, Optional

from .shard import canonical_json, payload_digest

#: Schema marker inside every cache file.
FILE_SCHEMA = "repro.sweep_cache/1"

#: Environment variable overriding the default cache directory.
CACHE_ENV = "REPRO_SWEEP_CACHE"


def default_cache_dir() -> str:
    """The disk cache location: ``$REPRO_SWEEP_CACHE`` or ``~/.cache``."""
    env = os.environ.get(CACHE_ENV)
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro-sweep")


class MemoryCache:
    """Process-local shard cache (shares work across figures in one run)."""

    def __init__(self) -> None:
        self._store: Dict[str, Any] = {}
        self.stats: Dict[str, int] = {"hits": 0, "misses": 0, "corrupt": 0,
                                      "writes": 0}

    def get(self, key: str) -> Optional[Any]:
        if key in self._store:
            self.stats["hits"] += 1
            # Decouple the caller from the stored object.
            return json.loads(self._store[key])
        self.stats["misses"] += 1
        return None

    def put(self, key: str, payload: Any) -> None:
        self._store[key] = canonical_json(payload)
        self.stats["writes"] += 1

    def __len__(self) -> int:
        return len(self._store)


class ResultCache:
    """Directory-backed content-addressed cache of shard payloads."""

    def __init__(self, root: Optional[str] = None):
        self.root = root if root is not None else default_cache_dir()
        self.stats: Dict[str, int] = {"hits": 0, "misses": 0, "corrupt": 0,
                                      "writes": 0}

    def path(self, key: str) -> str:
        """The file holding ``key``'s payload (two-level fan-out)."""
        return os.path.join(self.root, key[:2], key + ".json")

    def get(self, key: str) -> Optional[Any]:
        """The cached payload, or None on miss *or* integrity failure."""
        path = self.path(key)
        try:
            with open(path) as fh:
                doc = json.load(fh)
        except FileNotFoundError:
            self.stats["misses"] += 1
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            self.stats["corrupt"] += 1
            self.stats["misses"] += 1
            return None
        if (not isinstance(doc, dict)
                or doc.get("schema") != FILE_SCHEMA
                or doc.get("key") != key
                or "payload" not in doc
                or payload_digest(doc["payload"]) != doc.get("payload_sha256")):
            self.stats["corrupt"] += 1
            self.stats["misses"] += 1
            return None
        self.stats["hits"] += 1
        return doc["payload"]

    def put(self, key: str, payload: Any) -> None:
        """Store ``payload`` atomically (concurrent writers are safe)."""
        path = self.path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        doc = {
            "schema": FILE_SCHEMA,
            "key": key,
            "payload_sha256": payload_digest(payload),
            "payload": payload,
        }
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                   prefix=".tmp-", suffix=".json")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(doc, fh)
                fh.write("\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats["writes"] += 1

    def __len__(self) -> int:
        count = 0
        if not os.path.isdir(self.root):
            return 0
        for dirpath, _dirnames, filenames in os.walk(self.root):
            count += sum(1 for n in filenames
                         if n.endswith(".json") and not n.startswith(".tmp-"))
        return count
