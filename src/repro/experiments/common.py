"""Shared experiment configuration.

Experiments run on a scaled-down platform by default (see
``PlatformSpec.scaled``): caches, tables, and the traffic address universe
shrink together, preserving residency ratios and therefore contention
behaviour, while packet counts stay simulation-tractable. ``scale=1``
reproduces the full-size platform (slow; hours for the complete suite).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from ..constants import DEFAULT_SEED
from ..hw.topology import PlatformSpec


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by all experiments."""

    scale: int = 8
    seed: int = DEFAULT_SEED
    #: Packets for solo-profile runs (warm-up / measured). Warm-up must be
    #: long enough to populate the scaled data structures and caches.
    solo_warmup: int = 5000
    solo_measure: int = 2000
    #: Packets for co-run experiments. The warm-up matches the solo
    #: profile's so drops are measured between equally-warm states.
    corun_warmup: int = 5000
    corun_measure: int = 1500
    #: Independent repetitions averaged per measurement (the paper uses 5).
    repeats: int = 1

    def spec(self) -> PlatformSpec:
        """The full two-socket platform at this scale."""
        return PlatformSpec.westmere().scaled(self.scale)

    def socket_spec(self) -> PlatformSpec:
        """A single-socket platform (cheaper for one-socket experiments)."""
        return self.spec().single_socket()

    def quicker(self, factor: int = 2) -> "ExperimentConfig":
        """The same config with packet counts divided by ``factor``."""
        return replace(
            self,
            solo_warmup=max(300, self.solo_warmup // factor),
            solo_measure=max(300, self.solo_measure // factor),
            corun_warmup=max(200, self.corun_warmup // factor),
            corun_measure=max(200, self.corun_measure // factor),
        )


#: Configuration used by the benchmark harness.
BENCH_CONFIG = ExperimentConfig()

#: Tiny configuration for integration tests.
TEST_CONFIG = ExperimentConfig(
    scale=64, solo_warmup=500, solo_measure=500,
    corun_warmup=300, corun_measure=300,
)
