"""Figure 7: measured vs. model-estimated hit-to-miss conversion (MON).

A MON flow shares the cache with SYN competitors (the cache-only
configuration of Figure 3(a)); for each competition level we measure the
hit-to-miss conversion rate — overall, and separately for each MON
function (``flow_statistics``, ``radix_ip_lookup``, ``check_ip_header``,
``skb_recycle``) — and compare against the Appendix A analytical model.

Paper shapes: the model reproduces the *shape* (sharp rise then plateau)
but overestimates the value; ``flow_statistics`` (uniform table access)
converts almost fully and matches the model; ``check_ip_header`` and
``skb_recycle`` (per-packet hot lines) barely convert; the radix lookup
falls in between (hot top levels, cold deep levels).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..apps.registry import app_factory
from ..apps.synthetic import SWEEP_CPU_OPS, syn_factory
from ..core.model import CacheModel
from ..core.reporting import format_series
from ..hw.machine import Machine
from .common import ExperimentConfig

#: The Figure 7 function breakdown.
FUNCTIONS = ("flow_statistics", "radix_ip_lookup", "check_ip_header",
             "skb_recycle")


def mon_working_set_lines(spec, seed: int) -> int:
    """Cacheable chunks W of a MON flow (the model's working-set size).

    Instantiates a MON pipeline and sums the cache lines of its uniformly
    accessed structures (routing trie + NetFlow buckets and entries).
    """
    machine = Machine(spec, seed=seed)
    fr = machine.add_flow(app_factory("MON"), core=0, label="probe")
    lines = 0
    for element in fr.flow.elements:
        for attr in ("region", "buckets_region"):
            region = getattr(element, attr, None)
            if region is not None:
                lines += region.n_lines
    return lines


def conversion(solo_rate: float, corun_rate: float) -> float:
    """Hit-to-miss conversion from solo/co-run hit rates (clamped)."""
    if solo_rate <= 0:
        return 0.0
    return min(1.0, max(0.0, 1.0 - corun_rate / solo_rate))


@dataclass
class Fig7Result:
    """Measured and model conversion-rate series."""

    #: [(competing refs/sec, overall measured conversion)]
    measured: List[Tuple[float, float]]
    #: function name -> [(competing refs/sec, conversion)]
    per_function: Dict[str, List[Tuple[float, float]]]
    #: [(competing refs/sec, model conversion)]
    model: List[Tuple[float, float]]
    working_set_lines: int

    def render(self) -> str:
        """Measured, model, and per-function series as text."""
        blocks = [format_series(
            "MON (measured)",
            [(x / 1e6, round(100 * y, 1)) for x, y in self.measured],
            x_label="competing Mrefs/s", y_label="conversion %",
        ), format_series(
            "MON (estimated, Appendix A model)",
            [(x / 1e6, round(100 * y, 1)) for x, y in self.model],
            x_label="competing Mrefs/s", y_label="conversion %",
        )]
        for fn, pts in self.per_function.items():
            blocks.append(format_series(
                fn, [(x / 1e6, round(100 * y, 1)) for x, y in pts],
                x_label="competing Mrefs/s", y_label="conversion %",
            ))
        return "\n".join(blocks)

    def model_overestimates(self) -> bool:
        """The paper's observation: estimated >= measured at high competition."""
        if not self.measured or not self.model:
            return False
        return self.model[-1][1] >= self.measured[-1][1] - 0.05


def run(config: ExperimentConfig,
        cpu_ops_levels: Sequence[int] = SWEEP_CPU_OPS,
        n_competitors: int = 5,
        app: str = "MON") -> Fig7Result:
    """Measure conversion for ``app`` vs. SYN in the cache-only setup."""
    spec = config.spec()
    if spec.n_sockets < 2:
        raise ValueError("the cache-only configuration needs two sockets")
    # Solo tag hit rates come from a dedicated solo run.
    machine = Machine(spec, seed=config.seed)
    fr = machine.add_flow(app_factory(app), core=0, label=app)
    solo_stats = machine.run(
        warmup_packets=config.solo_warmup,
        measure_packets=config.solo_measure,
    )[app]
    solo_hit_rates = {fn: solo_stats.tag_hit_rate(fn) for fn in FUNCTIONS}
    solo_overall = solo_stats.l3_hit_rate

    measured: List[Tuple[float, float]] = []
    per_function: Dict[str, List[Tuple[float, float]]] = {
        fn: [] for fn in FUNCTIONS
    }
    for level, cpu_ops in enumerate(cpu_ops_levels):
        machine = Machine(spec, seed=config.seed + 17 * level)
        machine.add_flow(app_factory(app), core=0, label=app)
        syn_labels = []
        for i in range(n_competitors):
            # Cache-only: competitors beside the target, data remote.
            run_ = machine.add_flow(
                syn_factory(cpu_ops_per_ref=cpu_ops), core=1 + i,
                data_domain=1, label=f"SYN{i}",
            )
            syn_labels.append(run_.label)
        result = machine.run(warmup_packets=config.corun_warmup,
                             measure_packets=config.corun_measure)
        competing = sum(result[lbl].l3_refs_per_sec for lbl in syn_labels)
        stats = result[app]
        measured.append((competing, conversion(solo_overall,
                                               stats.l3_hit_rate)))
        for fn in FUNCTIONS:
            per_function[fn].append(
                (competing,
                 conversion(solo_hit_rates[fn], stats.tag_hit_rate(fn)))
            )
    measured.sort()
    for fn in FUNCTIONS:
        per_function[fn].sort()

    working_set = mon_working_set_lines(spec, config.seed)
    model = CacheModel(
        cache_lines=spec.l3_lines,
        target_hits_per_sec=solo_stats.l3_hits_per_sec,
        working_set_chunks=working_set,
    )
    model_points = [
        (refs, model.conversion_rate(refs)) for refs, _ in measured
    ]
    return Fig7Result(measured=measured, per_function=per_function,
                      model=model_points, working_set_lines=working_set)
