"""Figure 5: realistic competitors behave like SYN at equal refs/sec.

Overlays each flow type's SYN sensitivity curve (Figure 4(c) / the sweep
of the prediction method) with the realistic co-run measurements of
Figure 2(a), plotting the latter at their *measured* competing refs/sec.
The paper's observation (b): the realistic points fall on (near) the SYN
curves — damage is determined by the competitors' cache refs/sec, not by
what processing they do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..apps.registry import REALISTIC_APPS
from ..core.prediction import SensitivityCurve, sweep_sensitivity
from ..core.profiler import SoloProfile
from ..core.reporting import format_series
from .common import ExperimentConfig
from . import fig2


@dataclass
class Fig5Result:
    """SYN curves plus realistic (refs/sec, drop) points per target type."""

    curves: Dict[str, SensitivityCurve]
    #: target -> [(competitor type, measured competing refs/sec, drop), ...]
    realistic_points: Dict[str, List[Tuple[str, float, float]]]

    def deviation(self, target: str) -> float:
        """Mean |realistic drop - curve(realistic refs)| for ``target``.

        This is the residual of the paper's SYN-equivalence claim; the
        prediction method inherits it as its first error source.
        """
        curve = self.curves[target]
        points = self.realistic_points[target]
        if not points:
            return 0.0
        return sum(
            abs(drop - curve.predict(refs)) for _, refs, drop in points
        ) / len(points)

    def render(self) -> str:
        """Curves and realistic points as text."""
        blocks = []
        for target, curve in sorted(self.curves.items()):
            blocks.append(format_series(
                f"{target}(S) SYN curve",
                [(x / 1e6, round(100 * y, 2)) for x, y in curve.points],
                x_label="competing Mrefs/s", y_label="drop %",
            ))
            blocks.append(format_series(
                f"{target}(R) realistic points",
                [(comp, round(refs / 1e6, 1), round(100 * drop, 2))
                 for comp, refs, drop in self.realistic_points[target]],
                x_label="competitor, Mrefs/s", y_label="drop %",
            ))
        return "\n".join(blocks)


def grid(config: ExperimentConfig,
         apps: Sequence[str] = REALISTIC_APPS):
    """The overlay as shards: the Figure 2 grid plus per-app SYN curves.

    Composes :func:`fig2.grid` with one
    :func:`~repro.sweep.parallel.curve_block` per app; shared solo
    profiles dedupe by content key inside the sweep.
    """
    from ..apps.synthetic import SWEEP_CPU_OPS
    from ..sweep.parallel import curve_block

    apps = tuple(apps)
    spec = config.socket_spec()
    fig2_shards, merge_fig2 = fig2.grid(config, apps=apps)
    blocks = [
        curve_block(app, spec, config.seed, SWEEP_CPU_OPS, 5,
                    config.corun_warmup, config.corun_measure)
        for app in apps
    ]
    shards = list(fig2_shards)
    for curve_shards, _ in blocks:
        shards.extend(curve_shards)

    def merge(results) -> Fig5Result:
        fig2_result = merge_fig2(results[:len(fig2_shards)])
        curves: Dict[str, SensitivityCurve] = {}
        pos = len(fig2_shards)
        for app, (curve_shards, merge_curve) in zip(apps, blocks):
            curves[app] = merge_curve(
                results[pos:pos + len(curve_shards)],
                fig2_result.profiles[app])
            pos += len(curve_shards)
        return _finish(apps, fig2_result, curves)

    return shards, merge


def _finish(apps: Sequence[str], fig2_result: fig2.Fig2Result,
            curves: Dict[str, SensitivityCurve]) -> Fig5Result:
    """Overlay assembly shared by the serial and sharded paths."""
    realistic: Dict[str, List[Tuple[str, float, float]]] = {}
    for target in apps:
        points = []
        for competitor in apps:
            corun = fig2_result.measurements[(target, competitor)]
            refs = corun.competing_refs(exclude=f"{target}@0")
            points.append(
                (competitor, refs, fig2_result.drops[(target, competitor)])
            )
        realistic[target] = points
    return Fig5Result(curves=curves, realistic_points=realistic)


def run(config: ExperimentConfig,
        apps: Sequence[str] = REALISTIC_APPS,
        fig2_result: Optional[fig2.Fig2Result] = None,
        curves: Optional[Dict[str, SensitivityCurve]] = None) -> Fig5Result:
    """Build the overlay from a Figure 2 run plus per-app SYN sweeps."""
    spec = config.socket_spec()
    if fig2_result is None:
        fig2_result = fig2.run(config, apps=apps)
    profiles: Dict[str, SoloProfile] = fig2_result.profiles
    if curves is None:
        curves = {
            app: sweep_sensitivity(
                app, spec, seed=config.seed,
                warmup_packets=config.corun_warmup,
                measure_packets=config.corun_measure,
                solo=profiles[app],
            )
            for app in apps
        }
    return _finish(apps, fig2_result, curves)
