"""Figure 8: prediction errors for the two-flow-type workloads.

For every (target X, 5 competitors of type Y) pair of Figure 2:

* (a) the method's error: predicted (from competitors' *solo* refs/sec)
  minus measured drop;
* (b) the error assuming perfect knowledge of the competition (predicted
  at the competitors' *measured* co-run refs/sec);
* (c) per-target average absolute errors for both variants.

Paper shape: average error under ~2%, worst under ~3%; the solo-refs
overestimate accounts for the gap between (a) and (b), concentrated on
sensitive-competitor scenarios (5 IP / 5 MON).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..apps.registry import REALISTIC_APPS
from ..core.prediction import ContentionPredictor, sweep_sensitivity
from ..core.reporting import format_table, pct
from .common import ExperimentConfig
from . import fig2


@dataclass
class Fig8Result:
    """Prediction errors per (target, competitor-type) pair."""

    apps: Tuple[str, ...]
    #: (target, competitor) -> (measured, predicted, predicted_perfect)
    entries: Dict[Tuple[str, str], Tuple[float, float, float]]

    def error(self, target: str, competitor: str) -> float:
        """Predicted minus measured drop (the method's signed error)."""
        measured, predicted, _ = self.entries[(target, competitor)]
        return predicted - measured

    def error_perfect(self, target: str, competitor: str) -> float:
        """Signed error when the competition is known exactly."""
        measured, _, perfect = self.entries[(target, competitor)]
        return perfect - measured

    def average_abs_error(self, target: str, perfect: bool = False) -> float:
        """Figure 8(c): mean |error| across a target's five scenarios."""
        errors = [
            self.error_perfect(target, c) if perfect else self.error(target, c)
            for c in self.apps
        ]
        return sum(abs(e) for e in errors) / len(errors)

    def worst_abs_error(self, perfect: bool = False) -> float:
        """Largest |error| over every (target, competitor) pair."""
        values = []
        for target in self.apps:
            for competitor in self.apps:
                e = (self.error_perfect(target, competitor) if perfect
                     else self.error(target, competitor))
                values.append(abs(e))
        return max(values)

    def render(self) -> str:
        """The Figure 8 tables as text."""
        rows = []
        for target in self.apps:
            for competitor in self.apps:
                measured, predicted, perfect = self.entries[
                    (target, competitor)
                ]
                rows.append([
                    f"{target} vs 5x{competitor}",
                    pct(measured), pct(predicted),
                    pct(predicted - measured), pct(perfect - measured),
                ])
        table = format_table(
            ["scenario", "measured", "predicted", "error", "error (perfect)"],
            rows, title="Figure 8: prediction errors",
        )
        avg_rows = [
            [t, pct(self.average_abs_error(t)),
             pct(self.average_abs_error(t, perfect=True))]
            for t in self.apps
        ]
        averages = format_table(
            ["target", "avg |error|", "avg |error| (perfect)"],
            avg_rows, title="Figure 8(c): average errors",
        )
        return table + "\n\n" + averages


def run(config: ExperimentConfig,
        apps: Sequence[str] = REALISTIC_APPS,
        fig2_result: Optional[fig2.Fig2Result] = None,
        predictor: Optional[ContentionPredictor] = None,
        n_competitors: int = 5) -> Fig8Result:
    """Predict every Figure 2 scenario and compare to its measurement."""
    apps = tuple(apps)
    spec = config.socket_spec()
    if fig2_result is None:
        fig2_result = fig2.run(config, apps=apps,
                               n_competitors=n_competitors)
    if predictor is None:
        curves = {
            app: sweep_sensitivity(
                app, spec, seed=config.seed,
                warmup_packets=config.corun_warmup,
                measure_packets=config.corun_measure,
                solo=fig2_result.profiles[app],
            )
            for app in apps
        }
        predictor = ContentionPredictor(profiles=fig2_result.profiles,
                                        curves=curves)
    entries: Dict[Tuple[str, str], Tuple[float, float, float]] = {}
    for target in apps:
        for competitor in apps:
            measured = fig2_result.drops[(target, competitor)]
            predicted = predictor.predict_drop(
                target, [competitor] * n_competitors
            )
            corun = fig2_result.measurements[(target, competitor)]
            actual_refs = corun.competing_refs(exclude=f"{target}@0")
            perfect = predictor.predict_drop(target,
                                             competing_refs=actual_refs)
            entries[(target, competitor)] = (measured, predicted, perfect)
    return Fig8Result(apps=apps, entries=entries)
