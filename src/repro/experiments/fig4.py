"""Figure 4: which resource is contended — cache, memory controller, or both.

Reproduces the three configurations of the paper's Figure 3 by placing
competitor cores and competitor data across the two sockets:

* **cache-only** (3a): competitors run on the target's socket but their
  data lives in the remote domain — they share the target's L3 but use
  the other memory controller.
* **mc-only** (3b): competitors run on the other socket but their data
  lives in the target's domain — they use the target's memory controller
  (through QPI) but a different L3.
* **both** (3c): competitors run on the target's socket with local data.

For each configuration and each realistic flow type, the target co-runs
with 5 SYN flows of increasing rate; the series is (competing L3 refs/sec,
target drop). Paper shape: the cache dominates (MON suffers up to ~32%
cache-only vs ~6% MC-only).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..apps.registry import REALISTIC_APPS, app_factory
from ..apps.synthetic import SWEEP_CPU_OPS, syn_factory
from ..core.profiler import SoloProfile, profile_apps
from ..core.reporting import format_series
from ..hw.counters import performance_drop
from ..hw.machine import Machine
from .common import ExperimentConfig

CONFIGURATIONS = ("cache", "mc", "both")


def _placement(configuration: str, spec, n_competitors: int):
    """(competitor cores, competitor data domain) for a Figure 3 config.

    The target always runs on core 0 (socket 0) with local data.
    """
    if n_competitors >= spec.cores_per_socket:
        raise ValueError("competitors must fit on one socket")
    if configuration == "cache":
        return list(range(1, 1 + n_competitors)), 1
    if configuration == "mc":
        base = spec.cores_per_socket
        return list(range(base, base + n_competitors)), 0
    if configuration == "both":
        return list(range(1, 1 + n_competitors)), 0
    raise ValueError(f"unknown configuration {configuration!r}")


@dataclass
class Fig4Result:
    """Per-configuration, per-app (competing refs/sec, drop) series."""

    #: (configuration, app) -> [(competing_refs_per_sec, drop), ...]
    series: Dict[Tuple[str, str], List[Tuple[float, float]]]
    profiles: Dict[str, SoloProfile]

    def max_drop(self, configuration: str, app: str) -> float:
        """Largest drop observed for ``app`` in ``configuration``."""
        return max((d for _, d in self.series[(configuration, app)]),
                   default=0.0)

    def cache_dominates(self) -> bool:
        """The paper's headline: cache-only >> MC-only damage, per app."""
        return all(
            self.max_drop("cache", app) >= self.max_drop("mc", app)
            for app in self.profiles
        )

    def render(self) -> str:
        """All Figure 4 series as text."""
        blocks = []
        for (configuration, app), points in sorted(self.series.items()):
            blocks.append(format_series(
                f"Fig4[{configuration}] {app}",
                [(x / 1e6, round(100 * y, 2)) for x, y in points],
                x_label="competing Mrefs/s", y_label="drop %",
            ))
        return "\n".join(blocks)


def run(config: ExperimentConfig,
        apps: Sequence[str] = REALISTIC_APPS,
        configurations: Sequence[str] = CONFIGURATIONS,
        cpu_ops_levels: Sequence[int] = SWEEP_CPU_OPS,
        n_competitors: int = 5,
        profiles: Optional[Dict[str, SoloProfile]] = None) -> Fig4Result:
    """Sweep SYN competition in each Figure 3 configuration."""
    spec = config.spec()
    if spec.n_sockets < 2:
        raise ValueError("Figure 4 needs the two-socket platform")
    if profiles is None:
        profiles = profile_apps(
            apps, spec, seed=config.seed,
            warmup_packets=config.solo_warmup,
            measure_packets=config.solo_measure,
            repeats=config.repeats,
        )
    series: Dict[Tuple[str, str], List[Tuple[float, float]]] = {}
    for configuration in configurations:
        cores, data_domain = _placement(configuration, spec, n_competitors)
        for app in apps:
            points: List[Tuple[float, float]] = []
            for level, cpu_ops in enumerate(cpu_ops_levels):
                machine = Machine(spec, seed=config.seed + 31 * level)
                target = machine.add_flow(app_factory(app), core=0, label=app)
                syn_labels = []
                for i, core in enumerate(cores):
                    run_ = machine.add_flow(
                        syn_factory(cpu_ops_per_ref=cpu_ops), core=core,
                        data_domain=data_domain, label=f"SYN{i}",
                    )
                    syn_labels.append(run_.label)
                result = machine.run(warmup_packets=config.corun_warmup,
                                     measure_packets=config.corun_measure)
                competing = sum(
                    result[lbl].l3_refs_per_sec for lbl in syn_labels
                )
                drop = performance_drop(
                    profiles[app].throughput, result[app].packets_per_sec
                )
                points.append((competing, drop))
            series[(configuration, app)] = sorted(points)
    return Fig4Result(series=series, profiles=profiles)
