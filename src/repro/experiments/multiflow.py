"""Section 6: multiple flows per core and the limits of L3-only prediction.

Two flows time-sharing a core would, under pure time-slicing, each run at
half their solo rate (aggregate = one solo rate). In reality their data
structures fight over the core's private L1/L2 between turns, so the
aggregate falls short — a slowdown invisible to a predictor that only
reasons about shared-L3 references (the target sees *zero* L3
competitors here; every loss is private-cache interference).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..apps.registry import app_factory
from ..click.multiflow import shared_core_factory
from ..core.profiler import profile_solo
from ..core.reporting import format_table, pct
from ..hw.machine import Machine
from .common import ExperimentConfig


@dataclass
class MultiflowResult:
    """Aggregate throughput of co-scheduled flows vs. the time-slice ideal."""

    #: [(mix label, ideal aggregate pps, measured aggregate pps)]
    rows: List[Tuple[str, float, float]]

    def shortfall(self, label: str) -> float:
        """Fraction of the time-slicing ideal lost to L1/L2 interference."""
        for row_label, ideal, measured in self.rows:
            if row_label == label:
                return 1.0 - measured / ideal if ideal else 0.0
        raise KeyError(label)

    def render(self) -> str:
        """The core-sharing table as text."""
        rows = [
            [label, f"{ideal:,.0f}", f"{measured:,.0f}",
             pct(1.0 - measured / ideal if ideal else 0.0)]
            for label, ideal, measured in self.rows
        ]
        return format_table(
            ["core mix", "time-slice ideal pps", "measured pps",
             "L1/L2 interference loss"],
            rows,
            title="Section 6: flows sharing one core",
        )


def run(config: ExperimentConfig,
        mixes: Tuple[Tuple[str, ...], ...] = (("MON", "MON"),
                                              ("MON", "IP"),
                                              ("MON", "FW"))) -> MultiflowResult:
    """Run each mix time-shared on a single otherwise-idle core."""
    spec = config.socket_spec()
    solos = {}
    rows: List[Tuple[str, float, float]] = []
    for mix in mixes:
        for app in mix:
            if app not in solos:
                solos[app] = profile_solo(
                    app, spec, seed=config.seed,
                    warmup_packets=config.solo_warmup,
                    measure_packets=config.solo_measure,
                ).throughput
        # Pure time-slicing: each packet turn costs 1/solo seconds, so the
        # aggregate rate is the harmonic mean of the member rates (times
        # the member count over count: n / sum(1/r_i) * ... for round-robin
        # one-packet turns the aggregate is n / sum(1/r_i)).
        ideal = len(mix) / sum(1.0 / solos[app] for app in mix)
        machine = Machine(spec, seed=config.seed)
        label = "+".join(mix)
        machine.add_flow(shared_core_factory(
            [app_factory(app) for app in mix], name=label,
        ), core=0, label=label)
        stats = machine.run(
            warmup_packets=config.corun_warmup * len(mix),
            measure_packets=config.corun_measure * len(mix),
        )[label]
        rows.append((label, ideal, stats.packets_per_sec))
    return MultiflowResult(rows=rows)
