"""Section 6: multiple flows per core and the limits of L3-only prediction.

Two flows time-sharing a core would, under pure time-slicing, each run at
half their solo rate (aggregate = one solo rate). In reality their data
structures fight over the core's private L1/L2 between turns, so the
aggregate falls short — a slowdown invisible to a predictor that only
reasons about shared-L3 references (the target sees *zero* L3
competitors here; every loss is private-cache interference).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..apps.registry import app_factory
from ..click.multiflow import shared_core_factory
from ..core.profiler import profile_solo
from ..core.reporting import format_table, pct
from ..hw.machine import Machine
from .common import ExperimentConfig


@dataclass
class MultiflowResult:
    """Aggregate throughput of co-scheduled flows vs. the time-slice ideal."""

    #: [(mix label, ideal aggregate pps, measured aggregate pps)]
    rows: List[Tuple[str, float, float]]

    def shortfall(self, label: str) -> float:
        """Fraction of the time-slicing ideal lost to L1/L2 interference."""
        for row_label, ideal, measured in self.rows:
            if row_label == label:
                return 1.0 - measured / ideal if ideal else 0.0
        raise KeyError(label)

    def render(self) -> str:
        """The core-sharing table as text."""
        rows = [
            [label, f"{ideal:,.0f}", f"{measured:,.0f}",
             pct(1.0 - measured / ideal if ideal else 0.0)]
            for label, ideal, measured in self.rows
        ]
        return format_table(
            ["core mix", "time-slice ideal pps", "measured pps",
             "L1/L2 interference loss"],
            rows,
            title="Section 6: flows sharing one core",
        )


#: Default core-sharing mixes of the study.
DEFAULT_MIXES: Tuple[Tuple[str, ...], ...] = (("MON", "MON"),
                                              ("MON", "IP"),
                                              ("MON", "FW"))


def measure_mix(mix: Sequence[str], spec, seed: int,
                warmup_packets: int, measure_packets: int) -> float:
    """Measured aggregate pps of one mix time-shared on core 0.

    The independently-runnable unit of the study (one sweep shard); the
    packet counts are per-member (the machine runs ``len(mix)`` times as
    many so each member sees its usual window).
    """
    machine = Machine(spec, seed=seed)
    label = "+".join(mix)
    machine.add_flow(shared_core_factory(
        [app_factory(app) for app in mix], name=label,
    ), core=0, label=label)
    stats = machine.run(
        warmup_packets=warmup_packets * len(mix),
        measure_packets=measure_packets * len(mix),
    )[label]
    return stats.packets_per_sec


def grid(config: ExperimentConfig,
         mixes: Tuple[Tuple[str, ...], ...] = DEFAULT_MIXES):
    """The study as shards: solo profiles (first-appearance order, as the
    serial loop discovers them) plus one shard per core-sharing mix."""
    from ..sweep.parallel import profile_block
    from ..sweep.shard import Shard
    from ..sweep.tasks import spec_params

    spec = config.socket_spec()
    unique_apps: List[str] = []
    for mix in mixes:
        for app in mix:
            if app not in unique_apps:
                unique_apps.append(app)
    prof_shards, merge_profiles = profile_block(
        unique_apps, spec, config.seed,
        config.solo_warmup, config.solo_measure)
    fields = spec_params(spec)
    mix_shards = [
        Shard("multiflow_mix",
              {"mix": list(mix), "spec": fields, "seed": config.seed,
               "warmup": config.corun_warmup,
               "measure": config.corun_measure},
              tag=f"multiflow:{'+'.join(mix)}")
        for mix in mixes
    ]
    shards = prof_shards + mix_shards

    def merge(results) -> MultiflowResult:
        profiles = merge_profiles(results[:len(prof_shards)])
        solos = {app: profiles[app].throughput for app in unique_apps}
        rows: List[Tuple[str, float, float]] = []
        for mix, shard_result in zip(mixes, results[len(prof_shards):]):
            ideal = len(mix) / sum(1.0 / solos[app] for app in mix)
            rows.append(("+".join(mix), ideal,
                         shard_result.payload["pps"]))
        return MultiflowResult(rows=rows)

    return shards, merge


def run(config: ExperimentConfig,
        mixes: Tuple[Tuple[str, ...], ...] = DEFAULT_MIXES) -> MultiflowResult:
    """Run each mix time-shared on a single otherwise-idle core."""
    spec = config.socket_spec()
    solos = {}
    rows: List[Tuple[str, float, float]] = []
    for mix in mixes:
        for app in mix:
            if app not in solos:
                solos[app] = profile_solo(
                    app, spec, seed=config.seed,
                    warmup_packets=config.solo_warmup,
                    measure_packets=config.solo_measure,
                ).throughput
        # Pure time-slicing: each packet turn costs 1/solo seconds, so the
        # aggregate rate is the harmonic mean of the member rates (times
        # the member count over count: n / sum(1/r_i) * ... for round-robin
        # one-packet turns the aggregate is n / sum(1/r_i)).
        ideal = len(mix) / sum(1.0 / solos[app] for app in mix)
        label = "+".join(mix)
        measured = measure_mix(mix, spec, config.seed,
                               config.corun_warmup, config.corun_measure)
        rows.append((label, ideal, measured))
    return MultiflowResult(rows=rows)
