"""Section 6: where refs/sec stops being a sufficient aggressiveness metric.

The paper scopes its result to saturated-cache workloads and notes: "If
the working-set sizes of the flows are close to their fair share of the
cache, then considering only the competing cache refs/sec may not be
sufficient to characterize a workload's aggressiveness."

This experiment makes that boundary concrete: a MON target co-runs with
SYN_MAX competitors whose arrays shrink from the standard profiling size
down to a sliver of the cache. Small-array competitors reference the
cache *faster* (their accesses hit), yet damage the target *less* (hits
do not evict) — the refs/sec-based prediction overestimates their damage,
exactly as Section 6 warns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..apps.registry import app_factory
from ..apps.synthetic import syn_factory
from ..constants import SYN_ARRAY_FRACTION
from ..core.prediction import SensitivityCurve, sweep_sensitivity
from ..core.profiler import SoloProfile, profile_solo
from ..core.reporting import format_table, pct
from ..hw.counters import performance_drop
from ..hw.machine import Machine
from .common import ExperimentConfig

#: Competitor working sets as fractions of the L3, from "sliver" to the
#: standard profiling size.
DEFAULT_FRACTIONS = (0.05, 0.1, 0.2, SYN_ARRAY_FRACTION)


@dataclass
class LimitsResult:
    """Per-fraction competitor behaviour vs. the refs/sec prediction."""

    #: [(fraction, competing refs/sec, measured drop, predicted drop)]
    rows: List[Tuple[float, float, float, float]]
    target: str

    def overestimate(self, fraction: float) -> float:
        """Predicted minus measured drop for a working-set fraction."""
        for f, _, measured, predicted in self.rows:
            if f == fraction:
                return predicted - measured
        raise KeyError(fraction)

    def render(self) -> str:
        """The Section 6 table as text."""
        rows = [
            [f"{fraction:.2f} x L3", f"{refs / 1e6:.1f}M", pct(measured),
             pct(predicted), pct(predicted - measured)]
            for fraction, refs, measured, predicted in self.rows
        ]
        return format_table(
            ["competitor working set", "competing refs/s",
             f"{self.target} drop (measured)", "drop (refs/s prediction)",
             "overestimate"],
            rows,
            title="Section 6: small working sets break the refs/sec metric",
        )


def run(config: ExperimentConfig, target: str = "MON",
        fractions: Tuple[float, ...] = DEFAULT_FRACTIONS,
        n_competitors: int = 5,
        solo: Optional[SoloProfile] = None,
        curve: Optional[SensitivityCurve] = None) -> LimitsResult:
    """Measure drop vs. competitor working-set size at SYN_MAX rate."""
    spec = config.socket_spec()
    if solo is None:
        solo = profile_solo(target, spec, seed=config.seed,
                            warmup_packets=config.solo_warmup,
                            measure_packets=config.solo_measure)
    if curve is None:
        curve = sweep_sensitivity(
            target, spec, seed=config.seed,
            warmup_packets=config.corun_warmup,
            measure_packets=config.corun_measure, solo=solo,
        )
    rows: List[Tuple[float, float, float, float]] = []
    for fraction in fractions:
        array_bytes = max(4096, int(spec.l3_size * fraction))
        machine = Machine(spec, seed=config.seed)
        machine.add_flow(app_factory(target), core=0, label=target)
        labels = []
        for i in range(n_competitors):
            fr = machine.add_flow(
                syn_factory(cpu_ops_per_ref=0, array_bytes=array_bytes),
                core=1 + i, label=f"SYN{i}",
            )
            labels.append(fr.label)
        result = machine.run(warmup_packets=config.corun_warmup,
                             measure_packets=config.corun_measure)
        competing = sum(result[lbl].l3_refs_per_sec for lbl in labels)
        measured = performance_drop(solo.throughput,
                                    result[target].packets_per_sec)
        predicted = curve.predict(competing)
        rows.append((fraction, competing, measured, predicted))
    return LimitsResult(rows=rows, target=target)
