"""Figure 9: prediction for a mixed workload.

The paper's 12-flow mix — 2 MON, 2 VPN, 1 FW, 1 RE per processor — with
measured and predicted drop for every flow. Paper shape: maximum absolute
error ~1.3%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..core.prediction import ContentionPredictor
from ..core.reporting import format_table, pct
from ..core.validation import run_corun
from ..hw.counters import performance_drop
from .common import ExperimentConfig

#: The paper's per-socket mix.
SOCKET_MIX = ("MON", "MON", "VPN", "VPN", "FW", "RE")


@dataclass
class Fig9Result:
    """Per-flow measured vs. predicted drops for the mixed workload."""

    #: [(label, app, measured, predicted)]
    rows: List[Tuple[str, str, float, float]]

    def max_abs_error(self) -> float:
        """Largest |predicted - measured| across the mix."""
        return max(abs(p - m) for _, _, m, p in self.rows)

    def mean_abs_error(self) -> float:
        """Mean |predicted - measured| across the mix."""
        return sum(abs(p - m) for _, _, m, p in self.rows) / len(self.rows)

    def render(self) -> str:
        """The Figure 9 table as text."""
        table_rows = [
            [label, pct(measured), pct(predicted), pct(predicted - measured)]
            for label, _, measured, predicted in self.rows
        ]
        return format_table(
            ["flow", "measured drop", "predicted drop", "error"],
            table_rows, title="Figure 9: mixed workload",
        )


def _placement(spec, socket_mix: Sequence[str]) -> List[Tuple[str, int]]:
    """The two-socket core assignment of the mix (validated)."""
    if spec.n_sockets != 2:
        raise ValueError("the mixed workload uses both sockets")
    if len(socket_mix) > spec.cores_per_socket:
        raise ValueError("mix does not fit a socket")
    placement: List[Tuple[str, int]] = []
    for socket in range(2):
        for i, app in enumerate(socket_mix):
            placement.append((app, socket * spec.cores_per_socket + i))
    return placement


def _finish(placement: Sequence[Tuple[str, int]], per_socket: int,
            throughput, predictor: ContentionPredictor) -> Fig9Result:
    """Row assembly shared by the serial and sharded paths."""
    rows: List[Tuple[str, str, float, float]] = []
    for app, core in placement:
        label = f"{app}@{core}"
        solo = predictor.profiles[app]
        measured = performance_drop(solo.throughput, throughput[label])
        socket = core // per_socket
        competitors = [
            other for other, other_core in placement
            if other_core != core and other_core // per_socket == socket
        ]
        predicted = predictor.predict_drop(app, competitors)
        rows.append((label, app, measured, predicted))
    return Fig9Result(rows=rows)


def grid(config: ExperimentConfig,
         socket_mix: Sequence[str] = SOCKET_MIX):
    """The mixed workload as shards, predictor included.

    One solo-profile shard and one SYN-curve block per distinct flow
    type in the mix (identical content keys to the Figure 5 / predictor
    shards, so a shared cache or in-sweep dedup pays for them once),
    plus the single 12-flow co-run. ``merge`` builds the
    :class:`ContentionPredictor` and the rows exactly as :func:`run`.
    """
    from ..apps.synthetic import SWEEP_CPU_OPS
    from ..sweep.parallel import (corun_measurement, corun_shard,
                                  curve_block, profile_block)

    spec = config.spec()
    socket_spec = config.socket_spec()
    placement = _placement(spec, socket_mix)
    apps = sorted(set(socket_mix))
    prof_shards, merge_profiles = profile_block(
        apps, socket_spec, config.seed,
        config.solo_warmup, config.solo_measure)
    blocks = [
        curve_block(app, socket_spec, config.seed, SWEEP_CPU_OPS, 5,
                    config.corun_warmup, config.corun_measure)
        for app in apps
    ]
    shards = list(prof_shards)
    for curve_shards, _ in blocks:
        shards.extend(curve_shards)
    shards.append(corun_shard(placement, spec, config.seed,
                              config.corun_warmup, config.corun_measure,
                              tag="fig9:" + "+".join(socket_mix)))

    def merge(results) -> Fig9Result:
        profiles = merge_profiles(results[:len(prof_shards)])
        curves = {}
        pos = len(prof_shards)
        for app, (curve_shards, merge_curve) in zip(apps, blocks):
            curves[app] = merge_curve(
                results[pos:pos + len(curve_shards)], profiles[app])
            pos += len(curve_shards)
        predictor = ContentionPredictor(profiles=profiles, curves=curves)
        corun = corun_measurement(results[pos].payload)
        return _finish(placement, spec.cores_per_socket,
                       corun.throughput, predictor)

    return shards, merge


def run(config: ExperimentConfig,
        predictor: ContentionPredictor,
        socket_mix: Sequence[str] = SOCKET_MIX) -> Fig9Result:
    """Run the 12-flow mix and compare measured vs. predicted drops."""
    spec = config.spec()
    placement = _placement(spec, socket_mix)
    corun = run_corun(placement, spec, seed=config.seed,
                      warmup_packets=config.corun_warmup,
                      measure_packets=config.corun_measure)
    return _finish(placement, spec.cores_per_socket,
                   corun.throughput, predictor)
