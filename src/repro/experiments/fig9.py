"""Figure 9: prediction for a mixed workload.

The paper's 12-flow mix — 2 MON, 2 VPN, 1 FW, 1 RE per processor — with
measured and predicted drop for every flow. Paper shape: maximum absolute
error ~1.3%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..core.prediction import ContentionPredictor
from ..core.reporting import format_table, pct
from ..core.validation import run_corun
from ..hw.counters import performance_drop
from .common import ExperimentConfig

#: The paper's per-socket mix.
SOCKET_MIX = ("MON", "MON", "VPN", "VPN", "FW", "RE")


@dataclass
class Fig9Result:
    """Per-flow measured vs. predicted drops for the mixed workload."""

    #: [(label, app, measured, predicted)]
    rows: List[Tuple[str, str, float, float]]

    def max_abs_error(self) -> float:
        """Largest |predicted - measured| across the mix."""
        return max(abs(p - m) for _, _, m, p in self.rows)

    def mean_abs_error(self) -> float:
        """Mean |predicted - measured| across the mix."""
        return sum(abs(p - m) for _, _, m, p in self.rows) / len(self.rows)

    def render(self) -> str:
        """The Figure 9 table as text."""
        table_rows = [
            [label, pct(measured), pct(predicted), pct(predicted - measured)]
            for label, _, measured, predicted in self.rows
        ]
        return format_table(
            ["flow", "measured drop", "predicted drop", "error"],
            table_rows, title="Figure 9: mixed workload",
        )


def run(config: ExperimentConfig,
        predictor: ContentionPredictor,
        socket_mix: Sequence[str] = SOCKET_MIX) -> Fig9Result:
    """Run the 12-flow mix and compare measured vs. predicted drops."""
    spec = config.spec()
    if spec.n_sockets != 2:
        raise ValueError("the mixed workload uses both sockets")
    if len(socket_mix) > spec.cores_per_socket:
        raise ValueError("mix does not fit a socket")
    placement = []
    for socket in range(2):
        for i, app in enumerate(socket_mix):
            placement.append((app, socket * spec.cores_per_socket + i))
    corun = run_corun(placement, spec, seed=config.seed,
                      warmup_packets=config.corun_warmup,
                      measure_packets=config.corun_measure)
    rows: List[Tuple[str, str, float, float]] = []
    per_socket = spec.cores_per_socket
    for app, core in placement:
        label = f"{app}@{core}"
        solo = predictor.profiles[app]
        measured = performance_drop(solo.throughput, corun.throughput[label])
        socket = core // per_socket
        competitors = [
            other for other, other_core in placement
            if other_core != core and other_core // per_socket == socket
        ]
        predicted = predictor.predict_drop(app, competitors)
        rows.append((label, app, measured, predicted))
    return Fig9Result(rows=rows)
