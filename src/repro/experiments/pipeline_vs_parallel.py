"""Section 2.2: parallel (run-to-completion) vs. pipelined parallelization.

* **Parallel**: one core performs every processing step for a packet.
* **Pipeline**: the element chain is split across cores connected by
  handoff queues; descriptors/headers ping-pong between private caches and
  buffer recycling costs extra synchronization.

Paper shapes: the parallel approach wins for every realistic workload
("pipelining results in 10-15 extra cache misses per packet"), and only a
crafted workload — enough processing steps over per-stage tables sized so
the combined working set thrashes one cache but each stage's fits its own
— can invert the outcome (and then only when stages run on different
sockets, i.e. different L3s).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..apps.registry import app_factory
from ..click.elements.checkipheader import CheckIPHeader
from ..click.handoff import build_pipelined_flow
from ..apps.ipforward import DecIPTTL, RadixIPLookup
from ..apps.netflow import NetFlow
from ..click.element import Element
from ..core.reporting import format_table
from ..hw.machine import Machine
from ..mem.access import TAGS
from ..net.flowgen import UniformRandomTraffic
from .common import ExperimentConfig


class ScanElement(Element):
    """The crafted workload's stage: N random reads over a private table."""

    def __init__(self, table_bytes: int, refs_per_packet: int,
                 name_suffix: str = ""):
        self.table_bytes = table_bytes
        self.refs_per_packet = refs_per_packet
        self.region = None
        self.rng = None
        self._tag = TAGS.register("scan")
        self._suffix = name_suffix

    def initialize(self, env) -> None:
        self.region = env.space.domain(env.domain).alloc(
            self.table_bytes, f"scan.table{self._suffix}"
        )
        self.rng = env.rng

    def process(self, ctx, packet):
        n_lines = self.region.n_lines
        randrange = self.rng.randrange
        touch = ctx.touch_line
        base = self.region.base >> 6
        tag = self._tag
        for _ in range(self.refs_per_packet):
            ctx.compute(4, 5)
            touch(base + randrange(n_lines), tag)
        return packet


@dataclass
class Comparison:
    """One workload's parallel-vs-pipeline outcome."""

    workload: str
    n_stages: int
    parallel_pps: float
    pipeline_pps: float
    parallel_refs_per_packet: float
    pipeline_refs_per_packet: float

    @property
    def per_core_ratio(self) -> float:
        """Pipeline per-core throughput relative to parallel (>1: pipeline wins)."""
        return (self.pipeline_pps / self.n_stages) / self.parallel_pps

    @property
    def extra_refs_per_packet(self) -> float:
        """Extra shared-cache references pipelining costs per packet."""
        return self.pipeline_refs_per_packet - self.parallel_refs_per_packet


@dataclass
class PipelineStudyResult:
    """All parallel-vs-pipeline comparisons of the study."""

    comparisons: List[Comparison]

    def render(self) -> str:
        """The Section 2.2 comparison table as text."""
        rows = [
            [c.workload, c.n_stages,
             f"{c.parallel_pps:,.0f}", f"{c.pipeline_pps / c.n_stages:,.0f}",
             f"{c.per_core_ratio:.2f}x", f"{c.extra_refs_per_packet:.1f}"]
            for c in self.comparisons
        ]
        return format_table(
            ["workload", "stages", "parallel pps/core", "pipeline pps/core",
             "pipeline/parallel", "extra L3 refs/pkt"],
            rows, title="Section 2.2: parallel vs. pipeline",
        )


def _mon_stages():
    """MON's element chain split into two stages."""
    return [
        lambda env: _init_all(env, [CheckIPHeader(), RadixIPLookup()]),
        lambda env: _init_all(env, [DecIPTTL(), NetFlow()]),
    ]


def _init_all(env, elements):
    for element in elements:
        element.initialize(env)
    return elements


def _scan_stages(table_bytes: int, refs: int):
    return [
        lambda env: _init_all(env, [ScanElement(table_bytes, refs, ".0")]),
        lambda env: _init_all(env, [ScanElement(table_bytes, refs, ".1")]),
    ]


def _measure_parallel(config: ExperimentConfig, factory) -> Tuple[float, float]:
    machine = Machine(config.spec(), seed=config.seed)
    fr = machine.add_flow(factory, core=0, label="parallel")
    result = machine.run(warmup_packets=config.solo_warmup,
                         measure_packets=config.solo_measure)
    stats = result["parallel"]
    return stats.packets_per_sec, stats.l3_refs_per_packet


def _measure_pipelined(config: ExperimentConfig, source_factory,
                       stage_factories, cores) -> Tuple[float, float]:
    machine = Machine(config.spec(), seed=config.seed)
    build_pipelined_flow(machine, "pipe", source_factory, stage_factories,
                         cores=cores)
    result = machine.run(warmup_packets=config.solo_warmup,
                         measure_packets=config.solo_measure)
    last = f"pipe.s{len(stage_factories) - 1}"
    pps = result[last].packets_per_sec
    total_refs = sum(
        result[f"pipe.s{i}"].l3_refs_per_sec
        for i in range(len(stage_factories))
        if f"pipe.s{i}" in result.stats
    )
    refs_per_packet = total_refs / pps if pps else 0.0
    return pps, refs_per_packet


def run(config: ExperimentConfig,
        include_adversarial: bool = True) -> PipelineStudyResult:
    """Compare parallel vs. pipelined execution for MON and (optionally)
    the crafted adversarial workload."""
    spec = config.spec()
    comparisons: List[Comparison] = []

    # Realistic workload: MON split across two same-socket cores.
    par_pps, par_refs = _measure_parallel(config, app_factory("MON"))

    def mon_source(env):
        return UniformRandomTraffic(env.rng, addr_bits=env.spec.address_bits)

    pipe_pps, pipe_refs = _measure_pipelined(
        config, mon_source, _mon_stages(), cores=[0, 1]
    )
    comparisons.append(Comparison(
        workload="MON", n_stages=2,
        parallel_pps=par_pps, pipeline_pps=pipe_pps,
        parallel_refs_per_packet=par_refs,
        pipeline_refs_per_packet=pipe_refs,
    ))

    if include_adversarial:
        # The crafted workload: two stages, each with an ~L3-sized private
        # table and many references per packet. Parallel runs both tables
        # on one core (combined 2x L3: thrash); the pipeline puts one
        # stage per *socket*, so each table fits its own L3.
        table = int(spec.l3_size * 0.9)
        refs = 100

        def scan_factory(env):
            from ..click.pipeline import Pipeline

            return Pipeline(
                name="SCANx2", env=env,
                source=UniformRandomTraffic(
                    env.rng, addr_bits=env.spec.address_bits),
                elements=[ScanElement(table, refs, ".a"),
                          ScanElement(table, refs, ".b")],
            )

        par_pps, par_refs = _measure_parallel(config, scan_factory)
        pipe_pps, pipe_refs = _measure_pipelined(
            config,
            lambda env: UniformRandomTraffic(
                env.rng, addr_bits=env.spec.address_bits),
            _scan_stages(table, refs),
            cores=[0, spec.cores_per_socket],  # one stage per socket
        )
        comparisons.append(Comparison(
            workload="adversarial-scan", n_stages=2,
            parallel_pps=par_pps, pipeline_pps=pipe_pps,
            parallel_refs_per_packet=par_refs,
            pipeline_refs_per_packet=pipe_refs,
        ))
    return PipelineStudyResult(comparisons=comparisons)
