"""Figure 10: the (small) benefit of contention-aware scheduling.

For several 12-flow combinations, evaluate every distinct flow-to-socket
split, and report the average per-flow drop under the best and worst
placement. Paper shapes: the realistic maximum gain is ~2% (the 6 MON +
6 FW combination — an equal mix of the most and least sensitive/aggressive
types); the adversarial 6 SYN_MAX + 6 FW combination reaches only ~6%;
for 6 MON + 6 FW the worst placement packs all MON flows on one socket.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..core.profiler import SoloProfile, profile_apps
from ..core.reporting import format_table, pct
from ..core.scheduling import PlacementStudy, StudyResult
from .common import ExperimentConfig

#: Flow combinations evaluated (name -> 12 flows).
DEFAULT_COMBINATIONS: Dict[str, Tuple[str, ...]] = {
    "6MON+6FW": ("MON",) * 6 + ("FW",) * 6,
    "6MON+6IP": ("MON",) * 6 + ("IP",) * 6,
    "6MON+6RE": ("MON",) * 6 + ("RE",) * 6,
    "6IP+6FW": ("IP",) * 6 + ("FW",) * 6,
    "6RE+6FW": ("RE",) * 6 + ("FW",) * 6,
    "6VPN+6FW": ("VPN",) * 6 + ("FW",) * 6,
    "6SYN_MAX+6FW": ("SYN_MAX",) * 6 + ("FW",) * 6,
}


@dataclass
class Fig10Result:
    """Best/worst placement outcomes per combination."""

    studies: Dict[str, StudyResult]

    def gain(self, combination: str) -> float:
        """Best-vs-worst placement gap for one combination."""
        return self.studies[combination].scheduling_gain

    def max_realistic_gain(self) -> float:
        """Largest gain among the non-SYN combinations (paper: ~2%)."""
        return max(
            (study.scheduling_gain for name, study in self.studies.items()
             if "SYN" not in name),
            default=0.0,
        )

    def render(self) -> str:
        """Figure 10(a) and 10(b) tables as text."""
        rows = []
        for name, study in self.studies.items():
            rows.append([
                name,
                pct(study.best.average_drop),
                pct(study.worst.average_drop),
                pct(study.scheduling_gain),
            ])
        table = format_table(
            ["combination", "best placement", "worst placement", "gain"],
            rows, title="Figure 10(a): contention-aware scheduling benefit",
        )
        per_flow = self.per_flow_table("6MON+6FW")
        return table + ("\n\n" + per_flow if per_flow else "")

    def per_flow_table(self, combination: str) -> str:
        """Figure 10(b): per-flow drops under best and worst placement."""
        study = self.studies.get(combination)
        if study is None:
            return ""
        best, worst = study.best, study.worst

        def cell(outcome, label):
            # The two placements assign flows to different cores, so a
            # label may exist in only one of them.
            drop = outcome.per_flow_drop.get(label)
            return "--" if drop is None else pct(drop)

        labels = sorted(set(best.per_flow_drop) | set(worst.per_flow_drop),
                        key=lambda l: (l.split("@")[0],
                                       int(l.split("@")[1])))
        rows = [
            [label, cell(best, label), cell(worst, label)]
            for label in labels
        ]
        return format_table(
            ["flow", "best placement", "worst placement"],
            rows, title=f"Figure 10(b): per-flow drops, {combination}",
        )


def run(config: ExperimentConfig,
        combinations: Optional[Dict[str, Tuple[str, ...]]] = None,
        profiles: Optional[Dict[str, SoloProfile]] = None,
        method: str = "simulate") -> Fig10Result:
    """Evaluate best/worst placements for each combination."""
    if combinations is None:
        combinations = DEFAULT_COMBINATIONS
    spec = config.spec()
    apps_needed = sorted({app for combo in combinations.values()
                          for app in combo})
    if profiles is None:
        profiles = profile_apps(
            apps_needed, spec, seed=config.seed,
            warmup_packets=config.solo_warmup,
            measure_packets=config.solo_measure,
            repeats=config.repeats,
        )
    study = PlacementStudy(
        spec, profiles, seed=config.seed,
        warmup_packets=config.corun_warmup,
        measure_packets=config.corun_measure,
    )
    return Fig10Result(studies={
        name: study.run(list(combo), method=method)
        for name, combo in combinations.items()
    })
