"""Table 1: solo-run characteristics of each packet-processing flow type."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from ..apps.registry import REALISTIC_APPS
from ..core.profiler import SoloProfile, profile_apps
from ..core.reporting import format_table
from .common import ExperimentConfig

#: The paper's Table 1, for side-by-side comparison in reports.
PAPER_TABLE1 = {
    #        cpi   refs/s(M) hits/s(M)  cyc/pkt refs/pkt miss/pkt l2hits/pkt
    "IP":  (1.33, 25.85, 20.21, 1813, 14.64, 3.19, 18.58),
    "MON": (1.43, 27.26, 21.32, 2278, 19.40, 4.23, 19.58),
    "FW":  (1.63, 2.71, 2.13, 23907, 20.22, 4.29, 56.10),
    "RE":  (1.18, 18.18, 5.52, 27433, 155.87, 108.51, 45.63),
    "VPN": (0.56, 9.45, 7.08, 8679, 25.63, 6.41, 30.71),
}


@dataclass
class Table1Result:
    """Measured solo profiles plus the rendering used in reports."""

    profiles: Dict[str, SoloProfile]

    def rows(self):
        """Table rows in the paper's column order."""
        out = []
        for app, p in self.profiles.items():
            out.append([
                app,
                p.cycles_per_instruction,
                p.l3_refs_per_sec / 1e6,
                p.l3_hits_per_sec / 1e6,
                p.cycles_per_packet,
                p.l3_refs_per_packet,
                p.l3_misses_per_packet,
                p.l2_hits_per_packet,
            ])
        return out

    def render(self) -> str:
        """The Table 1 reproduction as text."""
        return format_table(
            ["flow", "cyc/instr", "L3refs/s(M)", "L3hits/s(M)",
             "cyc/pkt", "L3refs/pkt", "L3miss/pkt", "L2hits/pkt"],
            self.rows(),
            title="Table 1: solo-run characteristics",
        )

    def ordering(self, metric: str) -> list:
        """App names sorted descending by a profile attribute."""
        return sorted(self.profiles,
                      key=lambda a: getattr(self.profiles[a], metric),
                      reverse=True)


def grid(config: ExperimentConfig,
         apps: Sequence[str] = REALISTIC_APPS):
    """The table as shards: one solo profile per (app, repeat)."""
    from ..sweep.parallel import profile_block

    apps = tuple(apps)
    shards, merge_profiles = profile_block(
        apps, config.socket_spec(), config.seed,
        config.solo_warmup, config.solo_measure, config.repeats)

    def merge(results) -> Table1Result:
        return Table1Result(profiles=merge_profiles(results))

    return shards, merge


def run(config: ExperimentConfig,
        apps: Sequence[str] = REALISTIC_APPS) -> Table1Result:
    """Profile every flow type solo (Table 1)."""
    profiles = profile_apps(
        apps, config.socket_spec(), seed=config.seed,
        warmup_packets=config.solo_warmup,
        measure_packets=config.solo_measure,
        repeats=config.repeats,
    )
    return Table1Result(profiles=profiles)
