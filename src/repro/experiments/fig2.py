"""Figure 2: the effect of resource contention between realistic flows.

(a) For each pair of flow types (X, Y): a flow of type X co-runs with 5
flows of type Y on one socket; report X's performance drop.
(b) Average drop per target type across its five scenarios.

Paper shapes to reproduce: MON is the most sensitive type (worst drop from
RE/MON-class competitors), FW both suffers and causes the least, RE is the
most aggressive competitor, and sensitivity ordering follows solo-run
hits/sec.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..apps.registry import REALISTIC_APPS
from ..core.profiler import SoloProfile, profile_apps
from ..core.reporting import format_table, pct
from ..core.validation import CoRunMeasurement, measure_drop
from .common import ExperimentConfig

#: Paper Figure 2(b): average drop per target type (percent).
PAPER_FIG2B = {"IP": 18.81, "MON": 20.86, "FW": 4.65, "RE": 6.34, "VPN": 9.84}


@dataclass
class Fig2Result:
    """Pairwise drops and the per-target averages."""

    apps: Tuple[str, ...]
    profiles: Dict[str, SoloProfile]
    #: (target, competitor) -> measured drop (fraction).
    drops: Dict[Tuple[str, str], float]
    #: (target, competitor) -> the underlying co-run measurement.
    measurements: Dict[Tuple[str, str], CoRunMeasurement]

    def average_drop(self, target: str) -> float:
        """Figure 2(b): mean drop of ``target`` across all competitor types."""
        values = [self.drops[(target, c)] for c in self.apps]
        return sum(values) / len(values)

    def averages(self) -> Dict[str, float]:
        """Figure 2(b): per-target average drops."""
        return {app: self.average_drop(app) for app in self.apps}

    def most_sensitive(self) -> str:
        """The target type with the highest average drop."""
        return max(self.apps, key=self.average_drop)

    def most_aggressive(self) -> str:
        """The competitor type causing the highest mean drop."""
        def caused(comp: str) -> float:
            return sum(self.drops[(t, comp)] for t in self.apps) / len(self.apps)

        return max(self.apps, key=caused)

    def max_drop(self) -> float:
        """The worst pair drop in the matrix."""
        return max(self.drops.values())

    def render(self) -> str:
        """The Figure 2 matrix as text."""
        header = ["target \\ 5x competitor", *self.apps, "avg (2b)"]
        rows = []
        for target in self.apps:
            rows.append([
                target,
                *[pct(self.drops[(target, c)]) for c in self.apps],
                pct(self.average_drop(target)),
            ])
        return format_table(header, rows,
                           title="Figure 2: contention-induced drop")


def grid(config: ExperimentConfig,
         apps: Sequence[str] = REALISTIC_APPS,
         n_competitors: int = 5):
    """The study as independent shards: ``(shards, merge)``.

    One shard per solo profile and one per (target, competitor, repeat)
    co-run — the sweep orchestrator runs them in any order on any number
    of workers, and ``merge`` rebuilds a :class:`Fig2Result` identical
    to :func:`run`'s (same seeds, same arithmetic, fixed merge order).
    """
    from ..sweep.parallel import (corun_measurement, corun_shard,
                                  profile_block)

    apps = tuple(apps)
    spec = config.socket_spec()
    prof_shards, merge_profiles = profile_block(
        apps, spec, config.seed, config.solo_warmup, config.solo_measure,
        config.repeats)
    corun_shards = []
    for target in apps:
        for competitor in apps:
            for rep in range(config.repeats):
                placement = [(target, 0)] + [
                    (competitor, core + 1) for core in range(n_competitors)
                ]
                corun_shards.append(corun_shard(
                    placement, spec, config.seed + 1009 * rep,
                    config.corun_warmup, config.corun_measure,
                    tag=f"fig2:{target} vs {n_competitors}x{competitor}"
                        + (f"#{rep}" if config.repeats > 1 else "")))
    shards = prof_shards + corun_shards

    def merge(results) -> Fig2Result:
        profiles = merge_profiles(results[:len(prof_shards)])
        it = iter(results[len(prof_shards):])
        drops: Dict[Tuple[str, str], float] = {}
        measurements: Dict[Tuple[str, str], CoRunMeasurement] = {}
        for target in apps:
            for competitor in apps:
                total = 0.0
                last = None
                for _rep in range(config.repeats):
                    corun = corun_measurement(next(it).payload)
                    total += corun.drop(f"{target}@0", profiles[target])
                    last = corun
                drops[(target, competitor)] = total / config.repeats
                measurements[(target, competitor)] = last
        return Fig2Result(apps=apps, profiles=profiles, drops=drops,
                          measurements=measurements)

    return shards, merge


def run(config: ExperimentConfig,
        apps: Sequence[str] = REALISTIC_APPS,
        profiles: Optional[Dict[str, SoloProfile]] = None,
        n_competitors: int = 5) -> Fig2Result:
    """Run the full pairwise co-run study."""
    apps = tuple(apps)
    spec = config.socket_spec()
    if profiles is None:
        profiles = profile_apps(
            apps, spec, seed=config.seed,
            warmup_packets=config.solo_warmup,
            measure_packets=config.solo_measure,
            repeats=config.repeats,
        )
    drops: Dict[Tuple[str, str], float] = {}
    measurements: Dict[Tuple[str, str], CoRunMeasurement] = {}
    for target in apps:
        for competitor in apps:
            total = 0.0
            last = None
            for rep in range(config.repeats):
                drop, corun = measure_drop(
                    target, [competitor] * n_competitors, spec,
                    solo=profiles[target],
                    seed=config.seed + 1009 * rep,
                    warmup_packets=config.corun_warmup,
                    measure_packets=config.corun_measure,
                )
                total += drop
                last = corun
            drops[(target, competitor)] = total / config.repeats
            measurements[(target, competitor)] = last
    return Fig2Result(apps=apps, profiles=profiles, drops=drops,
                      measurements=measurements)
