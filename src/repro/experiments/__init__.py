"""One module per table/figure of the paper's evaluation.

Every experiment exposes ``run(config) -> <Result>`` where the result has
a ``render()`` method producing the table/series the paper reports. The
benchmark harness under ``benchmarks/`` drives these and prints the
output; ``EXPERIMENTS.md`` records paper-vs-measured for each.
"""

from .common import ExperimentConfig

__all__ = ["ExperimentConfig"]
