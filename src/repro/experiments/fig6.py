"""Figure 6: worst-case drop bound from Equation 1.

Plots ``drop = 1/(1 + 1/(delta*h))`` (full hit-to-miss conversion) against
solo hits/sec for three values of delta, and places each realistic flow
type on the delta = 43.75 ns curve using its measured solo profile. The
paper's point: hits/sec alone bounds a flow's worst-case sensitivity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..apps.registry import REALISTIC_APPS
from ..constants import DELTA_NS
from ..core.equation1 import figure6_series, worst_case_drop
from ..core.profiler import SoloProfile, profile_apps
from ..core.reporting import format_series, format_table, pct
from .common import ExperimentConfig


@dataclass
class Fig6Result:
    """Delta curves plus the per-app worst-case points."""

    #: delta (ns) -> [(hits/sec, worst-case drop)].
    curves: Dict[float, List[Tuple[float, float]]]
    #: app -> (solo hits/sec, worst-case drop at the platform delta).
    app_points: Dict[str, Tuple[float, float]]
    profiles: Dict[str, SoloProfile]

    def render(self) -> str:
        """The Figure 6 curves and data points as text."""
        blocks = []
        for delta, points in sorted(self.curves.items()):
            sampled = points[:: max(1, len(points) // 12)]
            blocks.append(format_series(
                f"worst-case drop, delta={delta}ns",
                [(h / 1e6, round(100 * d, 1)) for h, d in sampled],
                x_label="solo Mhits/s", y_label="drop %",
            ))
        rows = [
            [app, hits / 1e6, pct(drop)]
            for app, (hits, drop) in sorted(self.app_points.items())
        ]
        blocks.append(format_table(
            ["flow", "solo Mhits/s", f"max drop (delta={DELTA_NS}ns)"],
            rows, title="Figure 6 data points",
        ))
        return "\n".join(blocks)


def grid(config: ExperimentConfig,
         apps: Sequence[str] = REALISTIC_APPS,
         deltas_ns: Sequence[float] = (30.0, DELTA_NS, 60.0)):
    """The figure as shards: one solo profile per (app, repeat).

    The delta curves are analytic; only the measured profiles cost
    simulation time, so they are the sweep's shards and ``merge``
    finishes the figure exactly as :func:`run` would.
    """
    from ..sweep.parallel import profile_block

    apps = tuple(apps)
    shards, merge_profiles = profile_block(
        apps, config.socket_spec(), config.seed,
        config.solo_warmup, config.solo_measure, config.repeats)

    def merge(results) -> Fig6Result:
        return _finish(merge_profiles(results), deltas_ns)

    return shards, merge


def _finish(profiles: Dict[str, SoloProfile],
            deltas_ns: Sequence[float]) -> Fig6Result:
    """Analytic tail shared by the serial and sharded paths."""
    max_hits = max(p.l3_hits_per_sec for p in profiles.values()) * 1.6
    curves = figure6_series(max_hits, deltas_ns=deltas_ns)
    app_points = {
        app: (p.l3_hits_per_sec, worst_case_drop(p.l3_hits_per_sec))
        for app, p in profiles.items()
    }
    return Fig6Result(curves=curves, app_points=app_points,
                      profiles=profiles)


def run(config: ExperimentConfig,
        apps: Sequence[str] = REALISTIC_APPS,
        deltas_ns: Sequence[float] = (30.0, DELTA_NS, 60.0),
        profiles: Optional[Dict[str, SoloProfile]] = None) -> Fig6Result:
    """Analytical curves + measured solo profiles."""
    if profiles is None:
        profiles = profile_apps(
            apps, config.socket_spec(), seed=config.seed,
            warmup_packets=config.solo_warmup,
            measure_packets=config.solo_measure,
            repeats=config.repeats,
        )
    return _finish(profiles, deltas_ns)
