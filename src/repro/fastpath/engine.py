"""The batch engine: Machine.run(engine="batch").

Drop-in replacement for the scalar event loop in
:mod:`repro.hw.machine` with identical observable results. The global
structure is unchanged — a heap interleaves cores at memory-reference
granularity, each turn runs one core until its clock passes the next
core's — but the engine differs in two ways:

* **Pregeneration** (see :mod:`repro.fastpath.streams`): flows whose
  generation is *timing-pure* consume pregenerated, flattened packet
  blocks with numpy-precomputed set indices instead of re-entering the
  functional layer per packet, and identical streams are reused across
  machines through a process-wide cache — which is where dense sweeps
  (Figure 2's 25 co-runs, sensitivity curves) stop paying generation at
  all.
* **Suspended window loops**: each flow's inner loop runs inside a
  generator that the driver resumes with ``send(next core's clock)``.
  All hot bindings (cache sets, block arrays, counter accumulators)
  live in generator locals across windows, so a window costs one C-level
  resume instead of the scalar engine's per-window rebinding — the
  dominant cost when co-running cores interleave every few references.

Exactness rules the implementation follows to the letter:

* the per-reference clock updates perform the *same float operations in
  the same order* as the scalar engine (``now = clock + gap`` then
  ``clock = now + lat``); counter accumulators append onto the running
  value in the same sequence, so float results are bit-equal, not merely
  close;
* memory controllers and the QPI link are stateful queueing models fed
  by request timestamps — they are called in exactly the scalar order
  with exactly the scalar arguments;
* DMA invalidations, counter snapshots, metrics samples, and the
  max-events guard happen at the same points of the global interleaving;
* flows that are *not* timing-pure (throttled flows, control elements,
  pipeline handoff stages) and all flows of a traced run fall back to
  per-packet generation with code identical to the scalar loop.

``tests/differential`` asserts the equivalence across every registered
application, topologies, and throttling configurations.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import List

from ..hw.machine import unwrap_probes
from .streams import BATCH_PACKETS, StreamSupplier, StubFlow, is_timing_pure


def _replay_gen(fr, sup, shared, env):
    """Window loop of one pregenerated (timing-pure) flow.

    Yields the flow's clock whenever it passes ``limit`` (the next
    core's clock, received via ``send``). On ``close()`` the ``finally``
    block flushes counter accumulators and pins flow-protocol state to
    the consumed packet count.
    """
    (flows, lat_l1, lat_l2, lat_l3, lat_dram, mcs, qpi,
     l1_ways, l2_ways, l3_ways, max_events, domain_shift,
     sampler, metrics_due, metrics_on, ev, nw, stop_cell) = shared
    (my_l1, my_l1_n, my_l2, my_l2_n, my_l3, my_l3_n, home) = env
    c = fr.counters
    i = fr.index
    warmup_target = fr.warmup_target
    measure_target = fr.measure_target

    # Accumulators: identical in-place update order to the scalar engine,
    # flushed to the CoreCounters at every packet boundary (the only
    # points where snapshots/metrics/other readers observe them).
    l1h = c.l1_hits
    l2h = c.l2_hits
    l3r = c.l3_refs
    l3h = c.l3_hits
    l3m = c.l3_misses
    rr = c.remote_refs
    g = c.gap_cycles
    mcw = c.mc_wait_cycles

    block = None
    gaps = lines = tags = l1i = l2i = l3i = doms = samep = bounds = None
    j = 0
    pkt_end = 0
    k = 0
    loaded = False       # a packet is loaded (scalar: prog_len >= 0)
    steps = 0            # packets loaded so far (== generation calls)
    dropped_last = 0

    limit = yield        # primed; first send() starts the first window
    clock = fr.clock
    events = ev[0]
    try:
        while True:
            if j >= pkt_end:
                # -- packet boundary --------------------------------------
                if loaded:
                    trailing = block.trailing[k]
                    clock += trailing
                    g += trailing
                    c.l1_hits = l1h
                    c.l2_hits = l2h
                    c.l3_refs = l3r
                    c.l3_hits = l3h
                    c.l3_misses = l3m
                    c.remote_refs = rr
                    c.gap_cycles = g
                    c.mc_wait_cycles = mcw
                    if not block.idle[k]:
                        c.packets += 1
                        if (fr.latencies is not None
                                and fr.snap_start is not None
                                and not fr.done):
                            fr.latencies.append(clock - fr.packet_start)
                    if c.packets == warmup_target and fr.snap_start is None:
                        c.cycles = clock
                        fr.snap_start = c.copy()
                    elif c.packets == measure_target and not fr.done:
                        c.cycles = clock
                        fr.snap_end = c.copy()
                        fr.done = True
                        if fr.measured:
                            nw[0] -= 1
                            if nw[0] == 0:
                                stop_cell[0] = True
                                ev[0] = events
                                fr.clock = clock
                                limit = yield clock
                    if metrics_on and clock >= metrics_due[i]:
                        sampler.sample(i, clock, c)
                # -- load next pregenerated packet ------------------------
                if events > max_events:
                    ev[0] = events
                    raise RuntimeError(
                        f"simulation exceeded {max_events} events; "
                        "reduce packet counts or platform scale"
                    )
                if block is None or steps - block.start >= block.n_packets:
                    block = sup.next_block()
                    gaps = block.gaps
                    lines = block.lines
                    tags = block.tags
                    l1i = block.l1i
                    l2i = block.l2i
                    l3i = block.l3i
                    doms = block.doms
                    samep = block.samep
                    bounds = block.bounds
                k = steps - block.start
                steps += 1
                fr.clock = clock
                fr.packet_start = clock
                c.instructions += block.instr[k]
                dropped_last = block.dropped[k]
                dma = block.dma[k]
                if dma:
                    for line in dma:
                        s = my_l1[line % my_l1_n]
                        if line in s:
                            s.remove(line)
                        s = my_l2[line % my_l2_n]
                        if line in s:
                            s.remove(line)
                        s = my_l3[line % my_l3_n]
                        if line in s:
                            s.remove(line)
                j = bounds[k]
                pkt_end = bounds[k + 1]
                loaded = True
                if clock > limit:
                    ev[0] = events
                    fr.clock = clock
                    limit = yield clock
                    events = ev[0]
                continue

            # -- one pregenerated memory reference ------------------------
            gap = gaps[j]
            now = clock + gap
            if samep[j]:
                # Same line as the previous reference of this packet: an
                # unconditional L1 hit (it is the MRU line; invalidations
                # only happen at packet boundaries).
                l1h += 1
                clock = now + lat_l1
            else:
                line = lines[j]
                s = my_l1[l1i[j]]
                if line in s:
                    s.remove(line)
                    s.append(line)
                    l1h += 1
                    clock = now + lat_l1
                else:
                    s.append(line)
                    if len(s) > l1_ways:
                        s.pop(0)
                    s2 = my_l2[l2i[j]]
                    if line in s2:
                        s2.remove(line)
                        s2.append(line)
                        l2h += 1
                        clock = now + lat_l2
                    else:
                        s2.append(line)
                        if len(s2) > l2_ways:
                            s2.pop(0)
                        l3r += 1
                        tag = tags[j]
                        c.tag_refs[tag] += 1
                        s3 = my_l3[l3i[j]]
                        if line in s3:
                            s3.remove(line)
                            s3.append(line)
                            l3h += 1
                            c.tag_hits[tag] += 1
                            clock = now + lat_l3
                        else:
                            s3.append(line)
                            if len(s3) > l3_ways:
                                s3.pop(0)
                            l3m += 1
                            dom = doms[j]
                            wait = mcs[dom].request(now)
                            lat = lat_dram + wait
                            mcw += wait
                            if dom != home:
                                lat += qpi.transfer(now)
                                rr += 1
                            clock = now + lat
            g += gap
            j += 1
            events += 1
            if clock > limit:
                ev[0] = events
                fr.clock = clock
                limit = yield clock
                events = ev[0]
    finally:
        # close(): flush accumulators (suspension points are the only
        # places locals can differ from the counters) and pin protocol
        # state (dropped, round-robin turns) to the consumed count —
        # pregeneration may have run the functional layer ahead.
        c.l1_hits = l1h
        c.l2_hits = l2h
        c.l3_refs = l3r
        c.l3_hits = l3h
        c.l3_misses = l3m
        c.remote_refs = rr
        c.gap_cycles = g
        c.mc_wait_cycles = mcw
        fr.clock = clock
        if steps:
            sup.patch_flow_state(steps, dropped_last)


def _live_gen(fr, shared, env, tracer, trace_on, mem_sample):
    """Window loop of one live flow: scalar-identical per-packet path."""
    (flows, lat_l1, lat_l2, lat_l3, lat_dram, mcs, qpi,
     l1_ways, l2_ways, l3_ways, max_events, domain_shift,
     sampler, metrics_due, metrics_on, ev, nw, stop_cell) = shared
    (my_l1, my_l1_n, my_l2, my_l2_n, my_l3, my_l3_n, home) = env
    fl = fr.flow
    ctx = fr.ctx
    c = fr.counters
    i = fr.index
    tag_refs = c.tag_refs
    tag_hits = c.tag_hits
    warmup_target = fr.warmup_target
    measure_target = fr.measure_target
    prog = fr.prog
    pc = fr.pc
    prog_len = fr.prog_len

    limit = yield
    clock = fr.clock
    events = ev[0]
    try:
        while True:
            if pc >= prog_len:
                # -- packet boundary --------------------------------------
                if prog_len >= 0:
                    clock += ctx.trailing_gap
                    c.gap_cycles += ctx.trailing_gap
                    if not ctx.is_idle:
                        c.packets += 1
                        if (fr.latencies is not None
                                and fr.snap_start is not None
                                and not fr.done):
                            fr.latencies.append(clock - fr.packet_start)
                        if trace_on:
                            tracer.packet(
                                i, fr.packet_start, clock, c.packets,
                                marks=getattr(fl, "trace_marks", None))
                    if c.packets == warmup_target and fr.snap_start is None:
                        c.cycles = clock
                        fr.snap_start = c.copy()
                        if trace_on:
                            tracer.phase(i, clock, "measure_begin",
                                         packets=c.packets)
                    elif c.packets == measure_target and not fr.done:
                        c.cycles = clock
                        fr.snap_end = c.copy()
                        fr.done = True
                        if trace_on:
                            tracer.phase(i, clock, "measure_end",
                                         packets=c.packets)
                        if fr.measured:
                            nw[0] -= 1
                            if nw[0] == 0:
                                stop_cell[0] = True
                                ev[0] = events
                                fr.clock = clock
                                limit = yield clock
                    if metrics_on and clock >= metrics_due[i]:
                        sampler.sample(i, clock, c)
                # -- generate next packet ---------------------------------
                if events > max_events:
                    ev[0] = events
                    raise RuntimeError(
                        f"simulation exceeded {max_events} events; "
                        "reduce packet counts or platform scale"
                    )
                ctx.reset()
                # Keep the public run state current: flows with live
                # feedback (ControlElement, ThrottledFlow) read their
                # own clock and counters during generation.
                fr.clock = clock
                fr.packet_start = clock
                dma = fl.run_packet(ctx)
                ctx.finish_packet()
                c.instructions += ctx.instructions
                if dma:
                    for line in dma:
                        s = my_l1[line % my_l1_n]
                        if line in s:
                            s.remove(line)
                        s = my_l2[line % my_l2_n]
                        if line in s:
                            s.remove(line)
                        s = my_l3[line % my_l3_n]
                        if line in s:
                            s.remove(line)
                prog = fr.prog = ctx.program
                pc = 0
                prog_len = len(prog)
                if prog_len == 0 and ctx.trailing_gap <= 0:
                    raise RuntimeError(
                        f"flow {fr.label!r} produced an empty, "
                        "zero-time packet"
                    )
                if clock > limit:
                    ev[0] = events
                    fr.clock = clock
                    limit = yield clock
                    events = ev[0]
                continue

            # -- one memory reference -------------------------------------
            gap = prog[pc]
            line = prog[pc + 1]
            now = clock + gap
            s = my_l1[line % my_l1_n]
            if line in s:
                s.remove(line)
                s.append(line)
                c.l1_hits += 1
                clock = now + lat_l1
            else:
                s.append(line)
                if len(s) > l1_ways:
                    s.pop(0)
                s2 = my_l2[line % my_l2_n]
                if line in s2:
                    s2.remove(line)
                    s2.append(line)
                    c.l2_hits += 1
                    clock = now + lat_l2
                else:
                    s2.append(line)
                    if len(s2) > l2_ways:
                        s2.pop(0)
                    c.l3_refs += 1
                    tag = prog[pc + 2]
                    tag_refs[tag] += 1
                    s3 = my_l3[line % my_l3_n]
                    if line in s3:
                        s3.remove(line)
                        s3.append(line)
                        c.l3_hits += 1
                        tag_hits[tag] += 1
                        clock = now + lat_l3
                    else:
                        s3.append(line)
                        if len(s3) > l3_ways:
                            s3.pop(0)
                        c.l3_misses += 1
                        dom = line >> domain_shift
                        wait = mcs[dom].request(now)
                        lat = lat_dram + wait
                        c.mc_wait_cycles += wait
                        if dom != home:
                            lat += qpi.transfer(now)
                            c.remote_refs += 1
                        clock = now + lat
                        if trace_on and c.l3_misses % mem_sample == 0:
                            tracer.mem(i, now, wait, dom, dom != home)
            c.gap_cycles += gap
            pc += 3
            events += 1
            if clock > limit:
                ev[0] = events
                fr.clock = clock
                limit = yield clock
                events = ev[0]
    finally:
        fr.clock = clock
        fr.pc = pc
        fr.prog_len = prog_len


def run_batch(machine, warmup_packets: int = 200,
              measure_packets: int = 1000,
              max_events: int = None,
              batch: int = BATCH_PACKETS):
    """Execute ``machine`` with the batch engine. See module docstring."""
    from ..hw.machine import MAX_EVENTS, RunResult, _DOMAIN_LINE_SHIFT
    from ..mem.access import TAGS

    if max_events is None:
        max_events = MAX_EVENTS
    if machine._ran:
        raise RuntimeError("machine already ran; build a fresh Machine")
    if not machine.flows:
        raise RuntimeError("no flows configured")
    machine._ran = True

    flows = machine.flows
    for fr in flows:
        weight = float(getattr(fr.flow, "measure_weight", 1.0))
        fr.warmup_target = max(50, int(warmup_packets * weight))
        fr.measure_target = fr.warmup_target + max(100, int(measure_packets * weight))

    if machine.record_latencies:
        for fr in flows:
            fr.latencies = []

    n_waiting = sum(1 for fr in flows if fr.measured)
    if n_waiting == 0:
        raise RuntimeError("at least one flow must be measured")

    spec = machine.spec
    lat_dram = spec.lat_l3 + spec.lat_dram_extra
    l3_by_socket = machine.l3
    n_tags = len(TAGS)

    heap: List = []
    for fr in flows:
        fr.counters._grow_tags()
        if len(fr.counters.tag_refs) < n_tags:  # pragma: no cover - defensive
            raise RuntimeError("tag registry changed mid-run")
        heappush(heap, (fr.clock, fr.index))

    checker = machine.checker
    if checker is not None:
        # Same probe wrapping as the scalar engine: the checker observes
        # packet boundaries through the sampler protocol, at identical
        # points of the global interleaving.
        checker.install(machine)
    guard = machine.guard
    if guard is not None:
        # Guard probe stacks outermost, exactly like the scalar engine.
        guard.install(machine)
    tracer = machine.tracer
    trace_on = tracer.active
    sampler = machine.metrics
    metrics_on = sampler is not None
    if trace_on:
        tracer.begin_run(machine)
    metrics_due = None
    if metrics_on:
        sampler.begin(machine)
        metrics_due = sampler.next_due
    mem_sample = tracer.mem_sample if trace_on else 0

    # Shared mutable cells: only one generator runs at a time, and each
    # syncs the cells at its suspension points, so reads/writes happen in
    # exactly the scalar engine's order.
    ev = [0]             # global event (memory reference) count
    nw = [n_waiting]     # measured flows still short of their target
    stop_cell = [False]
    shared = (flows, spec.lat_l1, spec.lat_l2, spec.lat_l3, lat_dram,
              machine.mcs, machine.qpi,
              spec.l1_ways, spec.l2_ways, spec.l3_ways, max_events,
              _DOMAIN_LINE_SHIFT,
              sampler, metrics_due, metrics_on, ev, nw, stop_cell)

    # One suspended window loop per flow. Timing-pure flows replay
    # pregenerated blocks; a traced run keeps every flow on the
    # scalar-identical live path so per-packet marks and sampled miss
    # events stay byte-equal.
    gens: List = []
    for fr in flows:
        env = (machine._l1[fr.core].sets, machine._l1[fr.core].n_sets,
               machine._l2[fr.core].sets, machine._l2[fr.core].n_sets,
               l3_by_socket[fr.socket].sets, l3_by_socket[fr.socket].n_sets,
               fr.socket)
        cacheable = True
        if isinstance(fr.flow, StubFlow) and fr.flow.touched:
            # Something reached through the stub before the run (and may
            # have mutated the real flow): the cached stream can no
            # longer be trusted. Run the materialized flow live without
            # reading or extending the cache.
            fr.flow = fr.flow.materialize()
            cacheable = False
        if not trace_on and is_timing_pure(fr.flow):
            sup = StreamSupplier(
                fr, machine.seed, spec,
                machine._l1[fr.core].n_sets, machine._l2[fr.core].n_sets,
                l3_by_socket[fr.socket].n_sets, _DOMAIN_LINE_SHIFT,
                batch=batch, cacheable=cacheable,
            )
            gen = _replay_gen(fr, sup, shared, env)
        else:
            gen = _live_gen(fr, shared, env, tracer, trace_on, mem_sample)
        gen.send(None)
        gens.append(gen)

    try:
        while heap:
            clock, i = heappop(heap)
            limit = heap[0][0] if heap else float("inf")
            clock = gens[i].send(limit)
            if stop_cell[0]:
                break
            if ev[0] > max_events:
                raise RuntimeError(
                    f"simulation exceeded {max_events} events; "
                    "reduce packet counts or platform scale"
                )
            heappush(heap, (clock, i))
    finally:
        # Suspended loops flush accumulators and pin flow state in their
        # finally blocks.
        for gen in gens:
            gen.close()

    end_clock = max(fr.clock for fr in flows)
    for fr in flows:
        if fr.snap_start is not None and fr.snap_end is None:
            fr.counters.cycles = fr.clock
            fr.snap_end = fr.counters.copy()
    # End-of-run flush for closed control loops — the scalar engine runs
    # the same hook at this exact point. StubFlow carries ``finish_run =
    # None`` as a class attribute so cached skeletons are not
    # materialized just to be asked.
    for fr in flows:
        hook = getattr(fr.flow, "finish_run", None)
        if hook is not None:
            hook()
    if metrics_on:
        sampler.finish(flows)
    if trace_on:
        tracer.end_run(end_clock, ev[0])
    result = RunResult(machine.spec, flows, ev[0], end_clock,
                       metrics=unwrap_probes(sampler))
    if checker is not None:
        checker.after_run(machine, result)
    if guard is not None:
        guard.after_run(machine, result)
    return result
