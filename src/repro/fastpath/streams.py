"""Packet-stream pregeneration and caching for the batch engine.

The scalar engine interleaves *generation* (running the application's
functional layer to produce one packet's access program) with *replay*
(charging that program against the cache hierarchy). The batch engine
separates the two: flows whose generation is **timing-pure** — the
produced packet sequence depends only on flow-internal state (tables,
seeded RNG), never on live run state such as counters, clocks, or other
flows — have their packets pregenerated in blocks of ``BATCH_PACKETS``
and flattened into arrays the replay loop consumes directly.

Pregeneration is *exactly* equivalent because for a timing-pure flow the
k-th call to ``run_packet`` produces the same program no matter when it
is issued; the engine still applies every per-packet side effect (DMA
invalidation, counter updates, snapshots) at the same point of the
global interleaving as the scalar engine.

Pure flows additionally declare a ``stream_signature``: a hashable value
that, together with the machine seed, core, and platform spec, fully
determines the generated stream. Streams of signatured flows are stored
in a process-wide :class:`StreamCache` in *region-relative* form — each
referenced line is re-expressed as (region index, line offset) against
the flow's allocation list — so a later machine that builds the same
flow (possibly at different absolute addresses, because other flows
were allocated first) can rebase and replay the stream without paying
generation again. That is the dominant cost of dense experiment sweeps
(Figure 2's 25 co-runs re-generate the same five flow types over and
over), and the reason ``engine="batch"`` is fast.

Cached replay preserves everything the engine observes — counters,
clocks, drop counts (patched via ``dropped``) — but leaves app-internal
diagnostic state (element hit counters, RNG position) untouched, since
the functional layer never runs. The differential suite pins down the
engine-visible equivalence.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

import numpy as np

#: Default pregeneration block size (packets per block).
BATCH_PACKETS = 256

#: Default cache capacity in stored memory references. One ref costs
#: ~40 bytes across the arrays, so the default is on the order of
#: 150 MB — far more than the experiment suites need, small enough to
#: never matter on a development machine.
DEFAULT_CACHE_REFS = 4_000_000


def is_timing_pure(flow) -> bool:
    """True when ``flow`` declares generation independent of run state."""
    return bool(getattr(flow, "timing_pure", False))


def stream_signature(flow):
    """The flow's stream signature, or None when it cannot be cached."""
    return getattr(flow, "stream_signature", None)


class PacketBlock:
    """One block of pregenerated packets, flattened for the replay loop.

    All per-reference sequences are plain Python lists (fastest to index
    from the interpreter loop); the numpy round-trip happens once per
    block to precompute set indices and home domains.
    """

    __slots__ = (
        "start", "n_packets", "gaps", "lines", "tags",
        "l1i", "l2i", "l3i", "doms", "samep",
        "bounds", "trailing", "instr", "idle", "dma", "dropped",
    )

    def __init__(self, start: int, n_packets: int,
                 gaps: List[int], lines: List[int], tags: List[int],
                 bounds: List[int], trailing: List[int], instr: List[int],
                 idle: List[bool], dma: List[Optional[Tuple[int, ...]]],
                 dropped: List[int]):
        self.start = start              # absolute index of first packet
        self.n_packets = n_packets
        self.gaps = gaps
        self.lines = lines
        self.tags = tags
        self.bounds = bounds            # ref offset per packet, len n+1
        self.trailing = trailing
        self.instr = instr
        self.idle = idle
        self.dma = dma                  # per packet: tuple of lines or None
        self.dropped = dropped          # cumulative flow.dropped after packet
        self.l1i: List[int] = []
        self.l2i: List[int] = []
        self.l3i: List[int] = []
        self.doms: List[int] = []
        self.samep: List[bool] = []

    @property
    def n_refs(self) -> int:
        return len(self.lines)

    def finalize(self, l1_nsets: int, l2_nsets: int, l3_nsets: int,
                 domain_shift: int) -> None:
        """Precompute per-reference cache set indices and home domains.

        This is the vectorized part of the batch engine's address path:
        one numpy pass per block replaces three modulo operations and a
        shift per reference in the interpreter loop. ``samep`` marks
        references to the same line as their predecessor *within one
        packet*: such a reference is an unconditional L1 hit (the line
        was made most-recently-used by the previous reference and
        nothing — not even a DMA invalidation, which only happens at
        packet boundaries — can intervene), so the replay loop skips the
        membership probes entirely.
        """
        if not self.lines:
            self.l1i = []
            self.l2i = []
            self.l3i = []
            self.doms = []
            self.samep = []
            return
        arr = np.asarray(self.lines, dtype=np.int64)
        self.l1i = (arr % l1_nsets).tolist()
        self.l2i = (arr % l2_nsets).tolist()
        self.l3i = (arr % l3_nsets).tolist()
        self.doms = (arr >> domain_shift).tolist()
        same = np.zeros(len(arr), dtype=bool)
        if len(arr) > 1:
            same[1:] = arr[1:] == arr[:-1]
        # A packet boundary invalidates the "previous reference" chain.
        for b in self.bounds[:-1]:
            if b < len(same):
                same[b] = False
        self.samep = same.tolist()


class _RelativeBlock:
    """A PacketBlock in region-relative, numpy form (the cached shape)."""

    __slots__ = ("start", "n_packets", "gaps", "ridx", "rdelta", "tags",
                 "bounds", "trailing", "instr", "idle",
                 "dma_ridx", "dma_rdelta", "dma_bounds", "dropped")

    def __init__(self, block: PacketBlock, region_table):
        self.start = block.start
        self.n_packets = block.n_packets
        self.gaps = np.asarray(block.gaps, dtype=np.int64)
        self.tags = np.asarray(block.tags, dtype=np.int64)
        self.bounds = list(block.bounds)
        self.trailing = list(block.trailing)
        self.instr = list(block.instr)
        self.idle = list(block.idle)
        self.dropped = list(block.dropped)
        lines = np.asarray(block.lines, dtype=np.int64)
        self.ridx, self.rdelta = region_table.relativize(lines)
        # DMA lines, flattened with per-packet bounds.
        flat: List[int] = []
        dma_bounds = [0]
        for dma in block.dma:
            if dma:
                flat.extend(dma)
            dma_bounds.append(len(flat))
        dlines = np.asarray(flat, dtype=np.int64)
        self.dma_ridx, self.dma_rdelta = region_table.relativize(dlines)
        self.dma_bounds = dma_bounds

    @property
    def n_refs(self) -> int:
        return len(self.gaps)

    def rebase(self, region_table: "RegionTable") -> PacketBlock:
        """Materialize a PacketBlock against another machine's regions."""
        lines = region_table.absolutize(self.ridx, self.rdelta)
        dlines = region_table.absolutize(self.dma_ridx, self.dma_rdelta)
        dlist = dlines.tolist()
        dma: List[Optional[Tuple[int, ...]]] = []
        bounds = self.dma_bounds
        for k in range(self.n_packets):
            lo, hi = bounds[k], bounds[k + 1]
            dma.append(tuple(dlist[lo:hi]) if hi > lo else None)
        return PacketBlock(
            self.start, self.n_packets,
            self.gaps.tolist(), lines.tolist(), self.tags.tolist(),
            list(self.bounds), list(self.trailing), list(self.instr),
            list(self.idle), dma, list(self.dropped),
        )


class RegionTable:
    """A flow's allocated regions, indexable for relativize/absolutize.

    Regions are listed in allocation order (which is deterministic for a
    given factory, seed, core, and spec), so region *index* is the stable
    coordinate across machines while region *base* moves with whatever
    was allocated earlier.
    """

    def __init__(self, regions):
        self.regions = list(regions)
        order = sorted(range(len(self.regions)),
                       key=lambda i: self.regions[i].base)
        self._starts = np.asarray(
            [self.regions[i].base >> 6 for i in order], dtype=np.int64)
        self._ends = np.asarray(
            [(self.regions[i].end + 63) >> 6 for i in order], dtype=np.int64)
        self._order = np.asarray(order, dtype=np.int64)
        self._bases_by_index = np.asarray(
            [r.base >> 6 for r in self.regions], dtype=np.int64)

    def fingerprint(self) -> Tuple:
        """Shape check for cache hits: sizes/names in allocation order."""
        return tuple((r.name, r.size) for r in self.regions)

    def relativize(self, lines: np.ndarray):
        """Map absolute lines to (region index, line offset).

        Lines outside every region get index -1 and keep their absolute
        value in the offset — they rebase only onto machines where the
        address happens to be identical, which the cache key guarantees
        never to rely on (a signatured flow touches only its own
        regions; the -1 path is a defensive escape hatch, and any -1
        entry disqualifies the stream from cache storage).
        """
        if len(lines) == 0:
            return (np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64))
        pos = np.searchsorted(self._starts, lines, side="right") - 1
        pos = np.clip(pos, 0, len(self._starts) - 1)
        inside = (lines >= self._starts[pos]) & (lines < self._ends[pos])
        ridx = np.where(inside, self._order[pos], -1)
        rdelta = np.where(inside, lines - self._starts[pos], lines)
        return ridx, rdelta

    def absolutize(self, ridx: np.ndarray, rdelta: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`relativize` against *this* machine's bases."""
        if len(ridx) == 0:
            return np.zeros(0, dtype=np.int64)
        starts = np.asarray(
            [self.regions[i].base >> 6 for i in range(len(self.regions))],
            dtype=np.int64)
        # Region bases in relativize() order are start-of-region lines.
        out = np.where(ridx >= 0, starts[np.clip(ridx, 0, None)] + rdelta,
                       rdelta)
        return out


class StreamMeta:
    """Construction metadata cached with a stream.

    Enough to *skip flow construction entirely* on later machines: the
    region layout to re-allocate (``(name, size, is_data_domain,
    abs_domain)`` in allocation-capture order) and the flow attributes
    the engine and experiment code read. See :class:`StubFlow`.
    """

    __slots__ = ("layout", "flow_name", "measure_weight", "shared_k",
                 "trigger_packets", "has_dropped", "has_forwarded")

    def __init__(self, layout: Tuple, flow_name: str, measure_weight: float,
                 shared_k: Optional[int], trigger_packets: Optional[int],
                 has_dropped: bool, has_forwarded: bool = False):
        self.layout = layout
        self.flow_name = flow_name
        self.measure_weight = measure_weight
        self.shared_k = shared_k
        self.trigger_packets = trigger_packets
        self.has_dropped = has_dropped
        self.has_forwarded = has_forwarded


def build_meta(flow, regions, data_domain: int) -> StreamMeta:
    """Record a flow's construction metadata for later skeleton builds."""
    layout = tuple(
        (r.name, r.size, r.domain == data_domain, r.domain) for r in regions
    )
    shared_k = None
    if getattr(flow, "turns", None) is not None and getattr(flow, "flows", None):
        shared_k = len(flow.flows)
    trigger = getattr(flow, "trigger_packets", None)
    return StreamMeta(
        layout,
        getattr(flow, "name", flow.__class__.__name__),
        float(getattr(flow, "measure_weight", 1.0)),
        shared_k,
        trigger if isinstance(trigger, int) else None,
        hasattr(flow, "dropped"),
        hasattr(flow, "forwarded"),
    )


class _ReplayDomain:
    """One domain's view of a :class:`_ReplaySpace`."""

    def __init__(self, space: "_ReplaySpace", domain: int):
        self._space = space
        self._domain = domain

    @property
    def regions(self):
        return self._space.queue(self._domain)

    def alloc(self, size: int, name: str):
        return self._space.take(self._domain, size, name)


class _ReplaySpace:
    """An AddressSpace look-alike serving a flow's recorded regions.

    Used when a :class:`StubFlow` must materialize its real flow: the
    regions were already bump-allocated (by the skeleton build) at the
    exact addresses construction would have produced, so the factory's
    allocation calls are satisfied from the recorded list — asserting
    that name, rounded size, and domain match what was recorded.
    """

    def __init__(self, regions):
        self._queues: Dict[int, List] = {}
        for region in regions:
            self._queues.setdefault(region.domain, []).append(region)
        self._cursors: Dict[int, int] = {d: 0 for d in self._queues}

    def queue(self, d: int) -> List:
        return self._queues.get(d, [])

    def domain(self, d: int) -> _ReplayDomain:
        return _ReplayDomain(self, d)

    def alloc(self, size: int, name: str, domain: int = 0):
        return self.take(domain, size, name)

    def take(self, d: int, size: int, name: str):
        from ..constants import CACHE_LINE

        rounded = (size + CACHE_LINE - 1) & ~(CACHE_LINE - 1)
        queue = self._queues.get(d, [])
        cursor = self._cursors.get(d, 0)
        if cursor >= len(queue):
            raise RuntimeError(
                f"skeleton materialization: factory allocated more regions "
                f"in domain {d} than were recorded (wanted {name!r})"
            )
        region = queue[cursor]
        if region.size != rounded or region.name != name:
            raise RuntimeError(
                "skeleton materialization: allocation mismatch "
                f"(recorded {region.name!r}/{region.size}B, factory asked "
                f"{name!r}/{rounded}B) — the factory is not deterministic "
                "for its stream signature"
            )
        self._cursors[d] = cursor + 1
        return region


class StubFlow:
    """Construction-free stand-in for a flow with a fully cached stream.

    In dense sweeps, flow *construction* (radix tries, rule tables,
    automata) costs as much as the replayed run once streams come from
    the cache. When :meth:`Machine.add_flow` runs under the ambient
    batch engine and the stream cache holds both the factory's stream
    and its :class:`StreamMeta`, it bump-allocates the recorded region
    layout (byte-identical to what construction would have produced)
    and installs this stub instead of calling the factory.

    The real flow is built lazily via :meth:`materialize` — same
    factory, same derived RNG, allocations served back from the
    recorded regions — when the cached stream runs dry mid-run, when
    the machine is explicitly run with the scalar engine, or when any
    code touches an attribute the stub does not carry. An attribute
    touch also sets ``touched``: outside code may have mutated the flow,
    so the batch engine then runs it live instead of trusting the cache.
    """

    timing_pure = True
    #: Machine.add_flow probes this generically; the stub has no run
    #: state to bind (materialize() forwards the hook to the real flow).
    attach_run = None
    #: The engines' end-of-run flush probes this generically too; a
    #: cached skeleton has no control loop to flush, and the class
    #: attribute keeps the probe from materializing it.
    finish_run = None

    _OWN = frozenset({
        "_factory", "_meta", "_regions", "_seed", "_core", "_domain",
        "_spec", "_attach", "_flow", "_patched", "_absent", "touched",
        "name", "measure_weight", "stream_signature", "dropped", "forwarded",
        "turns", "_next", "packets", "triggered", "trigger_packets",
    })

    def __init__(self, factory, meta: StreamMeta, signature, regions,
                 seed: int, core: int, domain: int, spec):
        self._factory = factory
        self._meta = meta
        self._regions = list(regions)
        self._seed = seed
        self._core = core
        self._domain = domain
        self._spec = spec
        self._attach = None
        self._flow = None
        self._patched = False
        self.touched = False
        self.name = meta.flow_name
        self.measure_weight = meta.measure_weight
        self.stream_signature = signature
        # Mirror the real flow's attribute surface: state attrs it has
        # get live shadows; ones it lacks raise AttributeError without
        # materializing (so hasattr probes stay cheap and faithful).
        absent = set()
        if meta.has_dropped:
            self.dropped = 0
        else:
            absent.add("dropped")
        if getattr(meta, "has_forwarded", False):
            self.forwarded = 0
        else:
            absent.add("forwarded")
        if meta.shared_k:
            self.turns = [0] * meta.shared_k
            self._next = 0
        else:
            absent.update(("turns", "_next"))
        if meta.trigger_packets is not None:
            self.trigger_packets = meta.trigger_packets
            self.packets = 0
            self.triggered = False
        else:
            absent.update(("packets", "triggered", "trigger_packets"))
        self._absent = frozenset(absent)

    def materialize(self):
        """Build (once) and return the real flow this stub stands for."""
        flow = self._flow
        if flow is None:
            import random

            from ..hw.machine import FlowEnv

            rng = random.Random(
                (self._seed * 1_000_003 + self._core * 7919) & 0xFFFFFFFF)
            env = FlowEnv(space=_ReplaySpace(self._regions),
                          domain=self._domain, spec=self._spec, rng=rng)
            flow = self._factory(env)
            object.__setattr__(self, "_flow", flow)
            if self._attach is not None:
                self._attach(flow)
            if not self._patched:
                # Before run-state patching the live flow owns the
                # engine-visible state; drop the stub's shadows so reads
                # delegate. After patching the shadows *are* the state.
                for attr in ("dropped", "forwarded", "turns", "_next",
                             "packets", "triggered"):
                    try:
                        object.__delattr__(self, attr)
                    except AttributeError:
                        pass
        return flow

    def __getattr__(self, name):
        if name.startswith("__") and name.endswith("__"):
            raise AttributeError(name)
        if name in self.__dict__.get("_absent", ()):
            raise AttributeError(name)
        flow = self.materialize()
        object.__setattr__(self, "touched", True)
        return getattr(flow, name)

    def __setattr__(self, name, value):
        if name in self._OWN:
            object.__setattr__(self, name, value)
        else:
            flow = self.materialize()
            object.__setattr__(self, "touched", True)
            setattr(flow, name, value)

    def __repr__(self):
        state = "materialized" if self._flow is not None else "skeleton"
        return f"<StubFlow {self.name!r} ({state})>"


class CachedStream:
    """All blocks generated so far for one (signature, seed, core, spec)."""

    def __init__(self, fingerprint: Tuple):
        self.fingerprint = fingerprint
        self.blocks: List[_RelativeBlock] = []
        self.n_packets = 0
        self.n_refs = 0
        #: Construction metadata enabling skeleton (construction-free)
        #: flow builds; set on the first successful block store.
        self.meta: Optional[StreamMeta] = None
        #: True once a generation pass ended without storing (e.g. a
        #: region-external line was seen); further stores are refused so
        #: the cache never serves a stream with holes.
        self.poisoned = False

    def append(self, rel: _RelativeBlock) -> None:
        self.blocks.append(rel)
        self.n_packets += rel.n_packets
        self.n_refs += rel.n_refs

    def block_at(self, packet_index: int) -> Optional[_RelativeBlock]:
        """The cached block starting exactly at ``packet_index``."""
        # Blocks are appended in order and all but the last have
        # BATCH_PACKETS packets, so direct indexing suffices.
        for rel in self.blocks:
            if rel.start == packet_index:
                return rel
            if rel.start > packet_index:
                break
        return None


class StreamCache:
    """Process-wide LRU cache of region-relative packet streams."""

    def __init__(self, max_refs: int = DEFAULT_CACHE_REFS):
        self.max_refs = max_refs
        self._streams: Dict[Tuple, CachedStream] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._streams)

    @property
    def total_refs(self) -> int:
        return sum(s.n_refs for s in self._streams.values())

    def clear(self) -> None:
        self._streams.clear()
        self.hits = 0
        self.misses = 0

    def lookup(self, key: Tuple, fingerprint: Tuple) -> Optional[CachedStream]:
        stream = self._streams.get(key)
        if stream is None:
            self.misses += 1
            return None
        if stream.fingerprint != fingerprint:
            # Same signature but different allocation shape: treat as a
            # miss and drop the stale entry (defensive; signatures are
            # supposed to pin the shape).
            del self._streams[key]
            self.misses += 1
            return None
        # LRU touch: move to the end of the (insertion-ordered) dict.
        del self._streams[key]
        self._streams[key] = stream
        self.hits += 1
        return stream

    def stream_for(self, key: Tuple, fingerprint: Tuple) -> CachedStream:
        """The stream to append generated blocks to (created on demand)."""
        stream = self._streams.get(key)
        if stream is None or stream.fingerprint != fingerprint:
            stream = CachedStream(fingerprint)
            self._streams[key] = stream
        return stream

    def skeleton_meta(self, key: Tuple) -> Optional[StreamMeta]:
        """Construction metadata for ``key`` if a usable stream is cached.

        Non-None means :meth:`Machine.add_flow` may skip construction and
        install a :class:`StubFlow` over the recorded region layout.
        """
        stream = self._streams.get(key)
        if stream is None or stream.poisoned or stream.n_packets == 0:
            return None
        return stream.meta

    def evict_to_capacity(self) -> None:
        while self.total_refs > self.max_refs and len(self._streams) > 1:
            oldest = next(iter(self._streams))
            del self._streams[oldest]


#: The process-wide cache instance (cleared via repro.fastpath).
STREAM_CACHE = StreamCache()


def key_for_signature(sig, seed: int, core: int, spec) -> Tuple:
    """The cache key pinning a signatured stream (see :func:`stream_key`)."""
    return (sig, seed, core, dataclasses.astuple(spec))


def stream_key(flow, seed: int, core: int, spec) -> Optional[Tuple]:
    """Cache key for a flow's stream, or None when uncacheable.

    The per-flow RNG is derived from (machine seed, core) and the flow's
    construction consumes it deterministically, so (signature, seed,
    core, spec) pins the entire generated stream. The data domain is
    *not* part of the key: it only shifts absolute addresses, which the
    region-relative encoding removes.
    """
    sig = stream_signature(flow)
    if sig is None:
        return None
    return key_for_signature(sig, seed, core, spec)


class StreamSupplier:
    """Feeds PacketBlocks for one flow-run: cached replay or generation.

    The supplier serves blocks strictly in order. On a cache hit it
    rebases stored blocks; when the cache runs out mid-run it *catches
    up* the (still fresh, never-run) flow instance by generating and
    discarding the already-replayed prefix, then continues live —
    exactly what the scalar engine would have paid for the whole run.
    """

    def __init__(self, fr, seed: int, spec, l1_nsets: int, l2_nsets: int,
                 l3_nsets: int, domain_shift: int,
                 batch: int = BATCH_PACKETS, cache: StreamCache = None,
                 cacheable: bool = True):
        self.fr = fr
        self.flow = fr.flow
        self.batch = batch
        self.cache = cache if cache is not None else STREAM_CACHE
        self._geom = (l1_nsets, l2_nsets, l3_nsets, domain_shift)
        self._next_packet = 0
        self._generated = 0        # packets actually produced by the flow
        self._dropped_base = int(getattr(self.flow, "dropped", 0) or 0)
        self._forwarded_base = int(getattr(self.flow, "forwarded", 0) or 0)
        self._regions = RegionTable(getattr(fr, "regions", []) or [])
        self.key = (stream_key(self.flow, seed, fr.core, spec)
                    if cacheable else None)
        self._cached: Optional[CachedStream] = None
        self.from_cache = False
        if self.key is not None and self._regions.regions:
            stream = self.cache.lookup(self.key, self._regions.fingerprint())
            if stream is not None and stream.n_packets > 0:
                self._cached = stream
                self.from_cache = True
        # AccessContext for generation, private to the supplier (the
        # engine never reads fr.ctx for pregenerated flows).
        from ..mem.access import AccessContext

        self._ctx = AccessContext()

    # -- generation ------------------------------------------------------

    def _materialize(self):
        """Ensure self.flow is a real (non-stub) flow before generating."""
        flow = self.flow
        if isinstance(flow, StubFlow):
            flow = flow.materialize()
            self.flow = flow
            self.fr.flow = flow
        return flow

    def _generate_block(self, start: int) -> PacketBlock:
        """Run the flow ``batch`` times, recording a flattened block."""
        ctx = self._ctx
        flow = self._materialize()
        gaps: List[int] = []
        lines: List[int] = []
        tags: List[int] = []
        bounds = [0]
        trailing: List[int] = []
        instr: List[int] = []
        idle: List[bool] = []
        dma: List[Optional[Tuple[int, ...]]] = []
        dropped: List[int] = []
        for _ in range(self.batch):
            ctx.reset()
            lines_dma = flow.run_packet(ctx)
            ctx.finish_packet()
            prog = ctx.program
            if not prog and ctx.trailing_gap <= 0:
                raise RuntimeError(
                    f"flow {getattr(flow, 'name', flow)!r} produced an "
                    "empty, zero-time packet"
                )
            gaps.extend(prog[0::3])
            lines.extend(prog[1::3])
            tags.extend(prog[2::3])
            bounds.append(len(lines))
            trailing.append(ctx.trailing_gap)
            instr.append(ctx.instructions)
            idle.append(ctx.is_idle)
            dma.append(tuple(lines_dma) if lines_dma else None)
            dropped.append(int(getattr(flow, "dropped", 0) or 0))
            self._generated += 1
        block = PacketBlock(start, self.batch, gaps, lines, tags, bounds,
                            trailing, instr, idle, dma, dropped)
        block.finalize(*self._geom)
        return block

    def _store(self, block: PacketBlock) -> None:
        if self.key is None or not self._regions.regions:
            return
        stream = self.cache.stream_for(self.key, self._regions.fingerprint())
        if stream.poisoned:
            return
        if stream.n_packets != block.start:
            # Out-of-order store (a previous run cached a longer or
            # shorter prefix): only extend contiguously.
            if stream.n_packets > block.start:
                return
            stream.poisoned = True
            return
        rel = _RelativeBlock(block, self._regions)
        if len(rel.ridx) and bool(np.any(rel.ridx < 0)):
            # The flow touched a line outside its own regions: not
            # rebasable, so never serve this stream to other machines.
            stream.poisoned = True
            return
        if len(rel.dma_ridx) and bool(np.any(rel.dma_ridx < 0)):
            stream.poisoned = True
            return
        stream.append(rel)
        if stream.meta is None:
            stream.meta = build_meta(self.flow, self._regions.regions,
                                     self.fr.data_domain)
        self.cache.evict_to_capacity()

    def _catch_up(self, upto: int) -> None:
        """Fast-forward the fresh flow past ``upto`` replayed packets."""
        ctx = self._ctx
        flow = self._materialize()
        while self._generated < upto:
            ctx.reset()
            flow.run_packet(ctx)
            ctx.finish_packet()
            self._generated += 1

    # -- the engine-facing API -------------------------------------------

    def next_block(self) -> PacketBlock:
        """The next block of packets (cached replay or live generation)."""
        start = self._next_packet
        if self._cached is not None:
            rel = self._cached.block_at(start)
            if rel is not None:
                block = rel.rebase(self._regions)
                block.finalize(*self._geom)
                self._next_packet = start + block.n_packets
                return block
            # Cache exhausted: catch the fresh flow instance up to the
            # replayed prefix, then continue generating (and extending
            # the cache) from there.
            self._catch_up(start)
            self._cached = None
        block = self._generate_block(start)
        self._store(block)
        self._next_packet = start + block.n_packets
        return block

    def patch_flow_state(self, consumed_packets: int, dropped_cum: int) -> None:
        """Pin engine-visible flow state to the *consumed* packet count.

        Pregeneration always runs the functional layer in 256-packet
        blocks, so at the end of a run the flow may have generated ahead
        of what the engine consumed (and under cached replay it never
        generated at all). ``dropped`` is part of the documented flow
        protocol (experiment code reads ``Pipeline.dropped`` after a
        run), so it is reset to the value the scalar engine would have
        left: the cumulative count at the last consumed packet.
        Round-robin bookkeeping of a shared-core flow and the trigger
        state of a two-faced flow are recomputed the same way; deeper
        app-internal diagnostic state (element hit counters, RNG
        position) is documented as unspecified under the batch engine.
        """
        flow = self.flow
        if isinstance(flow, StubFlow):
            # Never-materialized skeleton: write the engine-visible state
            # directly onto the stub (attribute probes on a stub would
            # materialize the real flow, which is exactly what skipping
            # construction avoids).
            flow._patched = True
            meta = flow._meta
            if meta.has_dropped:
                flow.dropped = self._dropped_base + dropped_cum
            if getattr(meta, "has_forwarded", False):
                # A pipeline forwards every non-dropped packet (it never
                # produces idle packets), so the forwarded count is fully
                # determined by the consumed count and the drop count.
                flow.forwarded = (self._forwarded_base + consumed_packets
                                  - dropped_cum)
            if meta.shared_k:
                k = meta.shared_k
                flow.turns = [(consumed_packets - m + k - 1) // k
                              for m in range(k)]
                flow._next = consumed_packets % k
            if meta.trigger_packets is not None:
                flow.packets = consumed_packets
                flow.triggered = consumed_packets > meta.trigger_packets
            return
        if hasattr(flow, "dropped"):
            flow.dropped = self._dropped_base + dropped_cum
        if hasattr(flow, "forwarded"):
            flow.forwarded = (self._forwarded_base + consumed_packets
                              - dropped_cum)
        if getattr(flow, "turns", None) is not None \
                and getattr(flow, "flows", None):
            k = len(flow.flows)
            for m in range(k):
                flow.turns[m] = (consumed_packets - m + k - 1) // k
            flow._next = consumed_packets % k
        if hasattr(flow, "trigger_packets") and hasattr(flow, "packets"):
            flow.packets = consumed_packets
            flow.triggered = consumed_packets > flow.trigger_packets
