"""repro.fastpath — the batch execution engine and its stream cache.

Public surface:

* ``Machine.run(engine="batch")`` — run the batch engine directly.
* :func:`use_engine` — context manager setting the ambient default
  engine, so whole experiment suites (which build many Machines
  internally) switch without threading an argument everywhere::

      with repro.fastpath.use_engine("batch"):
          result = fig2.run(config)

* :func:`set_default_engine` / :func:`default_engine` — process-wide
  default (what ``Machine.run()`` uses when no engine is named).
* :func:`clear_stream_cache` / :func:`stream_cache_stats` — manage the
  process-wide pregenerated-stream cache.
* :class:`DifferentialRunner` (in :mod:`repro.fastpath.diff`) — runs a
  scenario on both engines and asserts equivalent results.

This module imports lazily: engine selection is plain bookkeeping, the
numpy-backed machinery loads on first use.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import List

#: Engines Machine.run accepts.
ENGINES = ("scalar", "batch")

_default: List[str] = ["scalar"]


def default_engine() -> str:
    """The engine ``Machine.run()`` uses when none is named."""
    return _default[-1]


def set_default_engine(engine: str) -> None:
    """Set the process-wide default engine (``"scalar"`` or ``"batch"``)."""
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r} (choose from {ENGINES})")
    _default[0] = engine


@contextmanager
def use_engine(engine: str):
    """Run a block with ``engine`` as the ambient default.

    Nests: the innermost ``use_engine`` wins, and the previous default is
    restored on exit regardless of exceptions.
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r} (choose from {ENGINES})")
    _default.append(engine)
    try:
        yield
    finally:
        _default.pop()


def clear_stream_cache() -> None:
    """Drop every cached pregenerated stream (and reset hit statistics)."""
    from .streams import STREAM_CACHE

    STREAM_CACHE.clear()


def stream_cache_stats() -> dict:
    """Hit/miss/occupancy statistics of the process-wide stream cache."""
    from .streams import STREAM_CACHE

    return {
        "streams": len(STREAM_CACHE),
        "refs": STREAM_CACHE.total_refs,
        "hits": STREAM_CACHE.hits,
        "misses": STREAM_CACHE.misses,
    }


def __getattr__(name):  # lazy re-exports (keep numpy off the import path)
    if name == "run_batch":
        from .engine import run_batch

        return run_batch
    if name in ("BATCH_PACKETS", "STREAM_CACHE", "StreamCache",
                "StreamSupplier", "StubFlow", "is_timing_pure",
                "stream_signature", "stream_key"):
        from . import streams

        return getattr(streams, name)
    if name in ("DifferentialRunner", "DifferentialReport", "Scenario",
                "FlowSpec", "generate_scenarios", "compare_results"):
        from . import diff

        return getattr(diff, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
