"""Differential testing of the batch engine against the scalar oracle.

The batch engine (:mod:`repro.fastpath.engine`) promises *exact*
equivalence with the scalar event loop — same integer counters, same
floating-point clocks, same drop counts — across pregeneration, cached
replay, and skeleton (construction-skipped) builds. This module turns
that promise into an executable check: a :class:`Scenario` describes one
seeded (platform, flow placement, packet budget) configuration; a
:class:`DifferentialRunner` runs it on the scalar engine and then on the
batch engine (cold cache, warm cache, and warm-with-skeleton machines)
and reports every divergence.

:func:`generate_scenarios` spans the registry's application set, both
platform topologies, remote-domain placement, shared-core multiplexing,
throttling, two-faced adversaries, and cross-core handoff — the flow
shapes the experiment suite actually uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..apps.registry import APP_NAMES, app_factory
from ..apps.synthetic import syn_factory, syn_max_factory
from ..click.multiflow import shared_core_factory
from ..core.throttling import ThrottledFlow, TwoFacedFlow, throttled_factory
from ..hw.machine import Machine
from ..hw.topology import PlatformSpec
from . import clear_stream_cache, use_engine

#: CoreCounters fields compared exactly (integers and — because the batch
#: engine preserves float operation order — accumulated cycle floats).
COUNTER_FIELDS = (
    "cycles", "instructions", "packets", "l1_hits", "l2_hits",
    "l3_refs", "l3_hits", "l3_misses", "remote_refs",
    "mc_wait_cycles", "gap_cycles",
)

#: FlowStats-derived rates compared to relative tolerance REL_TOL (they
#: are pure functions of the exact counters, so this is belt-and-braces).
DERIVED_FIELDS = (
    "packets_per_sec", "cycles_per_packet", "l3_refs_per_sec",
    "l3_hits_per_sec", "l3_misses_per_sec", "l3_hit_rate",
    "l3_refs_per_packet", "l3_misses_per_packet", "l2_hits_per_packet",
)

REL_TOL = 1e-9


def _spec(scale: int = 64, sockets: int = 1) -> PlatformSpec:
    spec = PlatformSpec.westmere().scaled(scale)
    return spec.single_socket() if sockets == 1 else spec


@dataclass(frozen=True)
class FlowSpec:
    """One flow placement inside a scenario."""

    factory: Callable
    core: int
    data_domain: Optional[int] = None
    label: Optional[str] = None


@dataclass(frozen=True)
class Scenario:
    """A seeded, fully reproducible machine configuration.

    ``build()`` constructs a fresh :class:`Machine` each time it is
    called; the differential runner builds one per engine/pass so no run
    state leaks between engines (factories are stateless closures).
    """

    name: str
    flows: Tuple[FlowSpec, ...]
    seed: int = 12345
    scale: int = 64
    sockets: int = 1
    warmup: int = 60
    measure: int = 200
    #: Extra machine wiring (e.g. handoff pipelines) applied after the
    #: regular flows are added.
    extra: Optional[Callable[[Machine], None]] = None

    def build(self) -> Machine:
        machine = Machine(_spec(self.scale, self.sockets), seed=self.seed)
        for fs in self.flows:
            machine.add_flow(fs.factory, core=fs.core,
                             data_domain=fs.data_domain, label=fs.label)
        if self.extra is not None:
            self.extra(machine)
        return machine

    def run(self, engine: str):
        machine = self.build()
        result = machine.run(warmup_packets=self.warmup,
                             measure_packets=self.measure, engine=engine)
        return machine, result


def _flow_state(fr) -> Dict[str, object]:
    """Engine-visible end-of-run flow state, beyond the counters."""
    flow = fr.flow
    state: Dict[str, object] = {"clock": fr.clock}
    state["dropped"] = getattr(flow, "dropped", None)
    state["forwarded"] = getattr(flow, "forwarded", None)
    turns = getattr(flow, "turns", None)
    if turns is not None:
        state["turns"] = list(turns)
    if hasattr(flow, "triggered"):
        state["triggered"] = flow.triggered
        state["packets"] = flow.packets
    return state


def compare_results(ref_machine, ref_result, alt_machine, alt_result,
                    label: str = "batch") -> List[str]:
    """Every divergence between a reference and an alternate run.

    Counters, tag breakdowns, clocks, events, and drop state must match
    exactly; derived per-flow rates must agree to ``REL_TOL`` relative.
    Returns human-readable divergence strings (empty means equivalent).
    """
    divergences: List[str] = []

    def diverge(what: str, ref, alt) -> None:
        divergences.append(f"[{label}] {what}: scalar={ref!r} {label}={alt!r}")

    if ref_result.events != alt_result.events:
        diverge("events", ref_result.events, alt_result.events)
    if ref_result.end_clock != alt_result.end_clock:
        diverge("end_clock", ref_result.end_clock, alt_result.end_clock)

    if len(ref_machine.flows) != len(alt_machine.flows):
        diverge("n_flows", len(ref_machine.flows), len(alt_machine.flows))
        return divergences

    for ref_fr, alt_fr in zip(ref_machine.flows, alt_machine.flows):
        where = f"flow {ref_fr.label!r}"
        for fname in COUNTER_FIELDS:
            ref_v = getattr(ref_fr.counters, fname)
            alt_v = getattr(alt_fr.counters, fname)
            if ref_v != alt_v:
                diverge(f"{where} counters.{fname}", ref_v, alt_v)
        if list(ref_fr.counters.tag_refs) != list(alt_fr.counters.tag_refs):
            diverge(f"{where} tag_refs", list(ref_fr.counters.tag_refs),
                    list(alt_fr.counters.tag_refs))
        if list(ref_fr.counters.tag_hits) != list(alt_fr.counters.tag_hits):
            diverge(f"{where} tag_hits", list(ref_fr.counters.tag_hits),
                    list(alt_fr.counters.tag_hits))
        ref_state = _flow_state(ref_fr)
        alt_state = _flow_state(alt_fr)
        for key in sorted(set(ref_state) | set(alt_state)):
            if ref_state.get(key) != alt_state.get(key):
                diverge(f"{where} {key}", ref_state.get(key),
                        alt_state.get(key))

    if sorted(ref_result.stats) != sorted(alt_result.stats):
        diverge("measured flow labels", sorted(ref_result.stats),
                sorted(alt_result.stats))
        return divergences
    for flabel in ref_result.stats:
        ref_stats = ref_result.stats[flabel]
        alt_stats = alt_result.stats[flabel]
        for fname in DERIVED_FIELDS:
            ref_v = float(getattr(ref_stats, fname))
            alt_v = float(getattr(alt_stats, fname))
            denom = max(abs(ref_v), abs(alt_v), 1e-300)
            if abs(ref_v - alt_v) / denom > REL_TOL:
                diverge(f"stats[{flabel!r}].{fname}", ref_v, alt_v)
    return divergences


@dataclass
class DifferentialReport:
    """Outcome of one scenario: per-pass divergences (empty = pass)."""

    scenario: str
    divergences: Dict[str, List[str]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not any(self.divergences.values())

    def summary(self) -> str:
        if self.ok:
            return f"{self.scenario}: OK"
        lines = [f"{self.scenario}: DIVERGED"]
        for run_label, divs in self.divergences.items():
            lines.extend(f"  {d}" for d in divs)
        return "\n".join(lines)


class DifferentialRunner:
    """Run scenarios on both engines and collect divergences.

    Each scenario is executed four ways:

    * ``scalar`` — the reference oracle;
    * ``batch-cold`` — batch engine, stream cache cleared first
      (pregeneration path);
    * ``batch-warm`` — batch engine again (cached-replay path; machines
      built under the ambient batch engine, so signatured flows come up
      as construction-skipped skeletons);
    * ``batch-scalar-dispatch`` (optional) — a machine *built* under the
      ambient batch engine but *run* with ``engine="scalar"``, proving
      skeleton machines materialize back to real flows losslessly.
    """

    def __init__(self, clear_cache: bool = True,
                 scalar_dispatch: bool = False):
        self.clear_cache = clear_cache
        self.scalar_dispatch = scalar_dispatch

    def run(self, scenario: Scenario) -> DifferentialReport:
        report = DifferentialReport(scenario.name)
        ref_machine, ref_result = scenario.run("scalar")
        if self.clear_cache:
            clear_stream_cache()
        with use_engine("batch"):
            for pass_label in ("batch-cold", "batch-warm"):
                machine, result = scenario.run(engine=None)
                report.divergences[pass_label] = compare_results(
                    ref_machine, ref_result, machine, result, pass_label)
            if self.scalar_dispatch:
                machine = scenario.build()
                result = machine.run(warmup_packets=scenario.warmup,
                                     measure_packets=scenario.measure,
                                     engine="scalar")
                report.divergences["batch-scalar-dispatch"] = \
                    compare_results(ref_machine, ref_result, machine,
                                    result, "batch-scalar-dispatch")
        return report

    def run_all(self, scenarios: Sequence[Scenario]
                ) -> List[DifferentialReport]:
        return [self.run(sc) for sc in scenarios]


# -- scenario generation ----------------------------------------------------


def _twofaced_factory(trigger_packets: int):
    def build(env):
        return TwoFacedFlow(app_factory("FW")(env), syn_max_factory()(env),
                            trigger_packets=trigger_packets)

    return build


def _handoff_extra(machine: Machine) -> None:
    from ..click.handoff import build_pipelined_flow
    from ..click.elements.checkipheader import CheckIPHeader
    from ..apps.ipforward import DecIPTTL, RadixIPLookup
    from ..net.flowgen import UniformRandomTraffic

    def source_factory(env):
        return UniformRandomTraffic(env.rng, payload_bytes=64,
                                    addr_bits=env.spec.address_bits)

    def init_all(env, elements):
        for element in elements:
            element.initialize(env)
        return elements

    build_pipelined_flow(
        machine, "pipe",
        source_factory,
        [lambda env: init_all(env, [CheckIPHeader()]),
         lambda env: init_all(env, [RadixIPLookup(), DecIPTTL()])],
        cores=[2, 3],
    )


def generate_scenarios() -> List[Scenario]:
    """The differential suite: ≥25 scenarios spanning the registry."""
    scenarios: List[Scenario] = []

    # 1) Every registry application solo on a single socket (8).
    for app in APP_NAMES:
        scenarios.append(Scenario(
            name=f"solo-{app}",
            flows=(FlowSpec(app_factory(app), core=0),),
            warmup=50, measure=150,
        ))

    # 2) Pairwise co-runs covering distinct contention mixes (4).
    for a, b in (("IP", "MON"), ("FW", "VPN"), ("RE", "DPI"),
                 ("IP", "SYN_MAX")):
        scenarios.append(Scenario(
            name=f"corun-{a}-{b}",
            flows=(FlowSpec(app_factory(a), core=0),
                   FlowSpec(app_factory(b), core=1)),
        ))

    # 3) The full five-app realistic mix on one socket (1).
    scenarios.append(Scenario(
        name="corun-all-realistic",
        flows=tuple(FlowSpec(app_factory(app), core=i)
                    for i, app in enumerate(("IP", "MON", "FW", "RE", "VPN"))),
        warmup=40, measure=120,
    ))

    # 4) SYN sweep levels against MON (the sensitivity-curve shape) (3).
    for cpu_ops in (1440, 360, 0):
        scenarios.append(Scenario(
            name=f"syn-sweep-{cpu_ops}",
            flows=(FlowSpec(app_factory("MON"), core=0),
                   FlowSpec(syn_factory(cpu_ops_per_ref=cpu_ops), core=1)),
        ))

    # 5) Two-socket topologies: cross-socket co-run, remote data
    #    placement, and both-sockets loading (3).
    scenarios.append(Scenario(
        name="dual-cross-socket",
        flows=(FlowSpec(app_factory("MON"), core=0),
               FlowSpec(app_factory("IP"), core=6)),
        sockets=2,
    ))
    scenarios.append(Scenario(
        name="dual-remote-domain",
        flows=(FlowSpec(app_factory("VPN"), core=0, data_domain=1),
               FlowSpec(syn_factory(cpu_ops_per_ref=20), core=6)),
        sockets=2,
    ))
    scenarios.append(Scenario(
        name="dual-both-loaded",
        flows=(FlowSpec(app_factory("IP"), core=0),
               FlowSpec(app_factory("MON"), core=1),
               FlowSpec(app_factory("IP"), core=6, data_domain=0),
               FlowSpec(app_factory("FW"), core=7)),
        sockets=2, warmup=40, measure=120,
    ))

    # 6) Shared-core multiplexing, two and three members (2).
    scenarios.append(Scenario(
        name="shared-core-2",
        flows=(FlowSpec(shared_core_factory(
            [app_factory("MON"), app_factory("IP")], name="mix2"), core=0),),
    ))
    scenarios.append(Scenario(
        name="shared-core-3-vs-syn",
        flows=(FlowSpec(shared_core_factory(
            [app_factory("IP"), app_factory("MON"), app_factory("FW")],
            name="mix3"), core=0),
            FlowSpec(syn_factory(cpu_ops_per_ref=60), core=1)),
    ))

    # 7) Throttling: solo, and containing a SYN_MAX aggressor (2).
    scenarios.append(Scenario(
        name="throttled-solo",
        flows=(FlowSpec(throttled_factory(app_factory("MON"), 2e7), core=0),),
    ))
    scenarios.append(Scenario(
        name="throttled-aggressor",
        flows=(FlowSpec(app_factory("MON"), core=0),
               FlowSpec(throttled_factory(syn_max_factory(), 1.5e7), core=1)),
    ))

    # 8) Two-faced adversary triggering mid-run (trigger < warmup+measure)
    #    next to a victim (1).
    scenarios.append(Scenario(
        name="twofaced-mid-run",
        flows=(FlowSpec(app_factory("MON"), core=0),
               FlowSpec(_twofaced_factory(trigger_packets=120), core=1)),
    ))

    # 9) Cross-core handoff pipeline (impure flows, live path) beside a
    #    signatured flow (1).
    scenarios.append(Scenario(
        name="handoff-pipeline",
        flows=(FlowSpec(app_factory("IP"), core=0),),
        extra=_handoff_extra,
    ))

    # 10) Seed sensitivity: the same mixes under different seeds (2).
    for seed in (7, 991):
        scenarios.append(Scenario(
            name=f"seed-{seed}",
            flows=(FlowSpec(app_factory("IP"), core=0),
                   FlowSpec(app_factory("RE"), core=1)),
            seed=seed,
        ))

    # 11) Window-shape extremes: tiny windows (snapshot boundaries close
    #     together) and a larger-than-block measurement window crossing
    #     several pregeneration blocks (2).
    scenarios.append(Scenario(
        name="tiny-windows",
        flows=(FlowSpec(app_factory("IP"), core=0),
               FlowSpec(app_factory("MON"), core=1)),
        warmup=1, measure=5,
    ))
    scenarios.append(Scenario(
        name="multi-block-windows",
        flows=(FlowSpec(app_factory("IP"), core=0),),
        warmup=300, measure=900,
    ))

    # 12) Platform-scale variation (different cache geometry) (1).
    scenarios.append(Scenario(
        name="scale-16",
        flows=(FlowSpec(app_factory("IP"), core=0),
               FlowSpec(app_factory("MON"), core=1)),
        scale=16, warmup=40, measure=120,
    ))

    return scenarios
