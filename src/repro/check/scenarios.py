"""Randomized, well-formed experiment configurations.

A :class:`ScenarioConfig` is a plain-data description of one seeded
machine setup: platform shape (scale, sockets), measurement window, and
a list of :class:`FlowConf` placements drawn from the full application
registry — plain pipelines, synthetics, shared-core multiplexes,
throttled flows, and two-faced adversaries, with optional remote NUMA
data placement. Configurations serialize losslessly to JSON (they are
what the regression corpus stores and what the sweep-equality shard task
receives) and hash to a stable content digest.

:func:`generate` derives scenarios deterministically from a master seed:
scenario *i* of seed *S* is always the same configuration, so a failure
reported by CI as ``--scenarios 200 --seed 0x5EED`` is reproducible with
the scenario's serialized config alone.
"""

from __future__ import annotations

import dataclasses
import hashlib
import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..apps.registry import APP_NAMES, REALISTIC_APPS, app_factory
from ..apps.synthetic import syn_factory, syn_max_factory
from ..click.multiflow import shared_core_factory
from ..core.throttling import TwoFacedFlow, throttled_factory
from ..hw.machine import Machine
from ..hw.topology import PlatformSpec
from ..sweep.shard import canonical_json

#: Flow-wrapper kinds the generator can produce.
FLOW_KINDS = ("app", "syn", "shared", "throttled", "twofaced")

#: SYN cpu-ops levels (the paper's sensitivity-sweep x axis).
SYN_LEVELS = (0, 60, 360, 1440)

#: Throttle targets (L3 refs/sec) reasonable at scale 16-64.
THROTTLE_RATES = (1.2e7, 2.0e7, 3.0e7)


@dataclass(frozen=True)
class FlowConf:
    """One flow placement (plain data; see :meth:`factory`)."""

    kind: str                       #: one of FLOW_KINDS
    core: int
    app: Optional[str] = None       #: app / throttled / twofaced base type
    apps: Tuple[str, ...] = ()      #: shared-core member types
    cpu_ops: Optional[int] = None   #: SYN intensity (None = SYN_MAX)
    rate: Optional[float] = None    #: throttle target refs/sec
    trigger: Optional[int] = None   #: two-faced trigger packet count
    data_domain: Optional[int] = None

    def factory(self):
        """The flow factory this configuration describes."""
        if self.kind == "app":
            return app_factory(self.app)
        if self.kind == "syn":
            if self.cpu_ops is None:
                return syn_max_factory()
            return syn_factory(cpu_ops_per_ref=self.cpu_ops)
        if self.kind == "shared":
            return shared_core_factory(
                [app_factory(a) for a in self.apps],
                name="mix-" + "-".join(self.apps))
        if self.kind == "throttled":
            return throttled_factory(app_factory(self.app), self.rate)
        if self.kind == "twofaced":
            trigger = self.trigger

            def build(env, app=self.app):
                return TwoFacedFlow(app_factory(app)(env),
                                    syn_max_factory()(env),
                                    trigger_packets=trigger)

            return build
        raise ValueError(f"unknown flow kind {self.kind!r}")

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"kind": self.kind, "core": self.core}
        if self.app is not None:
            out["app"] = self.app
        if self.apps:
            out["apps"] = list(self.apps)
        if self.cpu_ops is not None:
            out["cpu_ops"] = self.cpu_ops
        if self.rate is not None:
            out["rate"] = self.rate
        if self.trigger is not None:
            out["trigger"] = self.trigger
        if self.data_domain is not None:
            out["data_domain"] = self.data_domain
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FlowConf":
        return cls(
            kind=data["kind"], core=data["core"], app=data.get("app"),
            apps=tuple(data.get("apps", ())), cpu_ops=data.get("cpu_ops"),
            rate=data.get("rate"), trigger=data.get("trigger"),
            data_domain=data.get("data_domain"),
        )


@dataclass(frozen=True)
class ScenarioConfig:
    """A fully seeded, reproducible machine configuration."""

    seed: int
    scale: int = 64
    sockets: int = 1
    warmup: int = 30
    measure: int = 100
    flows: Tuple[FlowConf, ...] = ()
    name: str = ""

    def spec(self) -> PlatformSpec:
        spec = PlatformSpec.westmere().scaled(self.scale)
        return spec.single_socket() if self.sockets == 1 else spec

    def build(self, checker=None, metrics=None) -> Machine:
        """A fresh machine implementing this configuration."""
        machine = Machine(self.spec(), seed=self.seed, checker=checker,
                          metrics=metrics)
        for fc in self.flows:
            machine.add_flow(fc.factory(), core=fc.core,
                             data_domain=fc.data_domain)
        return machine

    def run(self, engine: Optional[str] = None, checker=None):
        """Build and run once; returns ``(machine, result)``."""
        machine = self.build(checker=checker)
        result = machine.run(warmup_packets=self.warmup,
                             measure_packets=self.measure, engine=engine)
        return machine, result

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed, "scale": self.scale,
            "sockets": self.sockets, "warmup": self.warmup,
            "measure": self.measure, "name": self.name,
            "flows": [fc.to_dict() for fc in self.flows],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ScenarioConfig":
        return cls(
            seed=data["seed"], scale=data.get("scale", 64),
            sockets=data.get("sockets", 1), warmup=data.get("warmup", 30),
            measure=data.get("measure", 100), name=data.get("name", ""),
            flows=tuple(FlowConf.from_dict(f) for f in data.get("flows", ())),
        )

    def digest(self) -> str:
        """Content hash of the configuration (name excluded)."""
        doc = self.to_dict()
        doc.pop("name", None)
        return hashlib.sha256(
            canonical_json(doc).encode()).hexdigest()[:16]

    def describe(self) -> str:
        parts = []
        for fc in self.flows:
            what = {
                "app": fc.app,
                "syn": f"SYN({fc.cpu_ops if fc.cpu_ops is not None else 'max'})",
                "shared": "+".join(fc.apps),
                "throttled": f"thr({fc.app}@{fc.rate:.2g})"
                if fc.rate else f"thr({fc.app})",
                "twofaced": f"2faced({fc.app},t={fc.trigger})",
            }[fc.kind]
            where = f"@{fc.core}"
            if fc.data_domain is not None:
                where += f"/d{fc.data_domain}"
            parts.append(what + where)
        return (f"{self.name or 'scenario'}[seed={self.seed} "
                f"scale={self.scale} sockets={self.sockets} "
                f"w={self.warmup} m={self.measure}] " + " ".join(parts))


def _gen_flow(rng: random.Random, core: int, sockets: int,
              cores_per_socket: int) -> FlowConf:
    kind = rng.choices(FLOW_KINDS, weights=(55, 15, 10, 10, 10))[0]
    data_domain = None
    if sockets == 2 and rng.random() < 0.2:
        # Remote data placement: home the data on the other socket.
        data_domain = 1 - (core // cores_per_socket)
    if kind == "app":
        return FlowConf("app", core, app=rng.choice(APP_NAMES),
                        data_domain=data_domain)
    if kind == "syn":
        cpu_ops = rng.choice(SYN_LEVELS + (None,))
        return FlowConf("syn", core, cpu_ops=cpu_ops,
                        data_domain=data_domain)
    if kind == "shared":
        members = tuple(rng.sample(REALISTIC_APPS, rng.choice((2, 3))))
        return FlowConf("shared", core, apps=members,
                        data_domain=data_domain)
    if kind == "throttled":
        return FlowConf("throttled", core,
                        app=rng.choice(("IP", "MON", "RE")),
                        rate=rng.choice(THROTTLE_RATES),
                        data_domain=data_domain)
    # twofaced
    return FlowConf("twofaced", core, app=rng.choice(("FW", "MON")),
                    trigger=rng.choice((40, 120, 250)),
                    data_domain=data_domain)


def generate_one(master_seed: int, index: int) -> ScenarioConfig:
    """Scenario ``index`` of the stream seeded by ``master_seed``."""
    rng = random.Random((master_seed * 1_000_003 + index) & 0xFFFFFFFFFFFF)
    sockets = 2 if rng.random() < 0.25 else 1
    scale = rng.choice((64, 64, 64, 16))
    spec = PlatformSpec.westmere().scaled(scale)
    cores_per_socket = spec.cores_per_socket
    total_cores = cores_per_socket * sockets
    n_flows = rng.choices((1, 2, 3, 4), weights=(25, 35, 25, 15))[0]
    n_flows = min(n_flows, total_cores)
    cores = rng.sample(range(total_cores), n_flows)
    flows = tuple(_gen_flow(rng, core, sockets, cores_per_socket)
                  for core in sorted(cores))
    config = ScenarioConfig(
        seed=rng.randrange(1, 1 << 31),
        scale=scale, sockets=sockets,
        warmup=rng.choice((1, 10, 30, 60)),
        measure=rng.choice((60, 100, 150, 200)),
        flows=flows,
    )
    name = f"scn{index:04d}-{config.digest()[:8]}"
    return dataclasses.replace(config, name=name)


def generate(n: int, master_seed: int) -> List[ScenarioConfig]:
    """``n`` deterministic scenarios for ``master_seed``."""
    return [generate_one(master_seed, i) for i in range(n)]
