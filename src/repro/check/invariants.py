"""The runtime invariant engine.

An :class:`InvariantChecker` audits a :class:`~repro.hw.machine.Machine`
run against the conservation laws the simulator's arithmetic must
preserve no matter what configuration, engine, or seed produced the run:

* **Reference conservation** — every memory reference lands in exactly
  one level, so ``l3_refs == l3_hits + l3_misses`` per flow, the per-tag
  breakdowns sum back to the totals, and the per-flow level counts sum
  to the machine-wide event count.
* **Packet conservation** — a pipeline forwards or drops every packet it
  processes: ``forwarded + dropped`` tracks the engine's packet count
  (within one packet: generation runs ahead of replay by at most one
  in-flight packet).
* **Cycle accounting** — a flow's clock decomposes exactly into issued
  gaps plus per-level latencies plus memory-controller queueing (plus a
  lower-bounded QPI term for remote references); counters and clocks are
  monotone between observations.
* **Physical rate bounds** — a measured window cannot report more L3
  references per second than the latency floor allows.
* **Cache structure** — every L1/L2/L3 set respects its associativity
  and indexing, occupancy never exceeds capacity, and the flows' region
  allocations (which partition resident lines by owner) never overlap.

The checker hooks the engines twice. During the run it observes packet
boundaries through the machine's metrics-sampler protocol (the
:class:`_CheckProbe` wraps any real sampler, so observability keeps
working); both engines flush their counter accumulators at exactly those
points, which makes the windowed checks engine-agnostic. After the run
it audits the complete machine state and the measured statistics.

By default violations are *collected* (``checker.violations``) so a
fuzzing driver can report, shrink, and serialize them; ``strict=True``
raises :class:`InvariantViolationError` at the first failed audit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

#: Probe cadence when no metrics sampler provides one (simulated cycles).
DEFAULT_PROBE_INTERVAL = 100_000.0

#: Relative tolerance for float identities (clock decomposition). The
#: engines accumulate the clock as a long chain of additions while the
#: checker recomputes it as a sum of products, so bit-equality is not
#: available — but any real accounting bug shifts the clock by whole
#: latencies (>= 4 cycles), many orders of magnitude above this.
REL_TOL = 1e-9


@dataclass(frozen=True)
class Violation:
    """One failed invariant check."""

    invariant: str            #: machine-readable invariant name
    where: str                #: flow label, cache name, or "machine"
    detail: str               #: human-readable explanation
    phase: str = "end"        #: "window" (mid-run probe) or "end"
    clock: Optional[float] = None

    def __str__(self) -> str:
        at = f" @clock={self.clock:.1f}" if self.clock is not None else ""
        return f"[{self.invariant}] {self.where}{at}: {self.detail}"


class InvariantViolationError(AssertionError):
    """Raised in strict mode when an audit fails."""

    def __init__(self, violations: List[Violation]):
        self.violations = list(violations)
        lines = [str(v) for v in self.violations]
        super().__init__(
            f"{len(lines)} invariant violation(s):\n" + "\n".join(lines))


def _close(a: float, b: float, rel_tol: float) -> bool:
    return abs(a - b) <= rel_tol * max(abs(a), abs(b), 1.0)


class _CheckProbe:
    """Sampler-protocol adapter feeding packet boundaries to a checker.

    Wraps the machine's real :class:`~repro.obs.MetricsSampler` (if any):
    ``begin``/``sample``/``finish`` are forwarded so time series keep
    recording, and ``next_due`` aliases the inner sampler's deadline list
    (both engines bind that list once, before the hot loop, and expect
    in-place mutation). Without an inner sampler the probe runs its own
    deadline schedule at the checker's interval.
    """

    #: Lets :func:`repro.hw.machine.unwrap_probes` peel probe stacks
    #: (e.g. an SLO-guard probe stacked on top of this one).
    is_metrics_probe = True

    def __init__(self, checker: "InvariantChecker", inner=None):
        self._checker = checker
        self._inner = inner
        self._machine = None
        self.next_due: List[float] = []

    @property
    def inner(self):
        return self._inner

    def begin(self, machine) -> None:
        self._machine = machine
        if self._inner is not None:
            self._inner.begin(machine)
            self.next_due = self._inner.next_due
        else:
            interval = self._checker.interval_cycles
            self.next_due = [interval] * len(machine.flows)
        self._checker._begin_run(machine)

    def sample(self, flow_index: int, clock: float, counters) -> None:
        self._checker.check_window(self._machine, flow_index, clock,
                                   counters)
        if self._inner is not None:
            # Advances next_due[flow_index] in place.
            self._inner.sample(flow_index, clock, counters)
        else:
            due = self.next_due[flow_index]
            interval = self._checker.interval_cycles
            while due <= clock:
                due += interval
            self.next_due[flow_index] = due

    def finish(self, flows) -> None:
        if self._inner is not None:
            self._inner.finish(flows)

    # RunResult/report consumers only ever see the unwrapped sampler
    # (Machine.run calls checker.unwrap), but keep payload() harmless in
    # case a probe leaks into serialization code.
    def payload(self):  # pragma: no cover - defensive
        return self._inner.payload() if self._inner is not None else {}


@dataclass
class _FlowTrack:
    """Last-observed monotone state of one flow (windowed checks)."""

    clock: float = 0.0
    fields: Optional[Tuple] = None


class InvariantChecker:
    """Collects (or raises on) invariant violations of machine runs.

    One checker may audit several runs (e.g. the scalar and batch
    executions of the same scenario); violations accumulate with the
    run's engine label when set via :attr:`context`.
    """

    def __init__(self, interval_cycles: float = DEFAULT_PROBE_INTERVAL,
                 strict: bool = False, rel_tol: float = REL_TOL,
                 check_occupancy: bool = True):
        if interval_cycles <= 0:
            raise ValueError("probe interval must be positive")
        self.interval_cycles = float(interval_cycles)
        self.strict = strict
        self.rel_tol = rel_tol
        self.check_occupancy = check_occupancy
        self.violations: List[Violation] = []
        #: Free-form label prefixed to ``where`` (e.g. the engine name).
        self.context: str = ""
        self.runs_checked = 0
        self.windows_checked = 0
        self._tracks: List[_FlowTrack] = []

    # -- engine hooks -------------------------------------------------------

    def install(self, machine) -> None:
        """Wrap ``machine.metrics`` with the packet-boundary probe."""
        if isinstance(machine.metrics, _CheckProbe):  # pragma: no cover
            return  # already installed (defensive; machines run once)
        machine.metrics = _CheckProbe(self, machine.metrics)

    @staticmethod
    def unwrap(sampler):
        """The real metrics sampler behind a probe (or the sampler itself).

        Probe-generic: peels any stack of metrics probes (this checker's,
        the SLO guard's), not just a single ``_CheckProbe``.
        """
        from ..hw.machine import unwrap_probes

        return unwrap_probes(sampler)

    def _begin_run(self, machine) -> None:
        self._tracks = [_FlowTrack() for _ in machine.flows]

    # -- reporting ----------------------------------------------------------

    @property
    def ok(self) -> bool:
        return not self.violations

    def _report(self, invariant: str, where: str, detail: str,
                phase: str = "end", clock: Optional[float] = None) -> None:
        if self.context:
            where = f"{self.context}:{where}"
        self.violations.append(
            Violation(invariant, where, detail, phase=phase, clock=clock))

    def raise_if_failed(self) -> None:
        if self.violations:
            raise InvariantViolationError(self.violations)

    # -- windowed (mid-run) checks -----------------------------------------

    def check_window(self, machine, flow_index: int, clock: float,
                     counters) -> None:
        """Audit one flow at a packet boundary mid-run."""
        self.windows_checked += 1
        fr = machine.flows[flow_index]
        label = fr.label
        self.check_counters(counters, label, phase="window", clock=clock)

        track = self._tracks[flow_index] if flow_index < len(self._tracks) \
            else _FlowTrack()
        if clock < track.clock:
            self._report("clock-monotone", label,
                         f"boundary clock went backwards: {track.clock} -> "
                         f"{clock}", phase="window", clock=clock)
        fields = (counters.instructions, counters.packets,
                  counters.l1_hits, counters.l2_hits, counters.l3_refs,
                  counters.l3_hits, counters.l3_misses,
                  counters.remote_refs, counters.mc_wait_cycles,
                  counters.gap_cycles)
        if track.fields is not None:
            for prev, cur in zip(track.fields, fields):
                if cur < prev:
                    self._report(
                        "counter-monotone", label,
                        f"counter decreased between boundaries: "
                        f"{track.fields} -> {fields}",
                        phase="window", clock=clock)
                    break
        track.clock = clock
        track.fields = fields

        self._check_clock_accounting(machine.spec, clock, counters, label,
                                     phase="window")
        if self.check_occupancy:
            for cache in machine.l3:
                occ = cache.occupancy()
                if occ > cache.capacity_lines:
                    self._report(
                        "l3-capacity", cache.name,
                        f"occupancy {occ} exceeds capacity "
                        f"{cache.capacity_lines} lines",
                        phase="window", clock=clock)

    # -- per-flow checks ----------------------------------------------------

    def check_counters(self, counters, where: str, phase: str = "end",
                       clock: Optional[float] = None) -> None:
        """Reference-conservation and sign checks of one counter set."""
        c = counters
        if c.l3_refs != c.l3_hits + c.l3_misses:
            self._report(
                "l3-conservation", where,
                f"l3_refs={c.l3_refs} != l3_hits={c.l3_hits} + "
                f"l3_misses={c.l3_misses}", phase=phase, clock=clock)
        if sum(c.tag_refs) != c.l3_refs:
            self._report(
                "tag-refs-conservation", where,
                f"sum(tag_refs)={sum(c.tag_refs)} != l3_refs={c.l3_refs}",
                phase=phase, clock=clock)
        if sum(c.tag_hits) != c.l3_hits:
            self._report(
                "tag-hits-conservation", where,
                f"sum(tag_hits)={sum(c.tag_hits)} != l3_hits={c.l3_hits}",
                phase=phase, clock=clock)
        for name in ("instructions", "packets", "l1_hits", "l2_hits",
                     "l3_refs", "l3_hits", "l3_misses", "remote_refs"):
            if getattr(c, name) < 0:
                self._report("counter-sign", where,
                             f"{name}={getattr(c, name)} is negative",
                             phase=phase, clock=clock)
        for name in ("mc_wait_cycles", "gap_cycles", "cycles"):
            if getattr(c, name) < 0.0:
                self._report("counter-sign", where,
                             f"{name}={getattr(c, name)} is negative",
                             phase=phase, clock=clock)
        if c.remote_refs > c.l3_misses:
            self._report(
                "remote-refs-bound", where,
                f"remote_refs={c.remote_refs} > l3_misses={c.l3_misses}",
                phase=phase, clock=clock)

    def _check_clock_accounting(self, spec, clock: float, counters,
                                where: str, phase: str = "end") -> None:
        """The clock must decompose into gaps + latencies + queueing.

        Exact (to float tolerance) when the flow never went remote; with
        remote references the QPI term is only lower-bounded (its
        queueing wait is not separately counted), so the decomposition
        becomes a two-sided bound: the local part must not exceed the
        clock, and the clock must be reachable given non-negative waits.
        """
        c = counters
        lat_dram = spec.lat_l3 + spec.lat_dram_extra
        local = (c.gap_cycles
                 + c.l1_hits * spec.lat_l1
                 + c.l2_hits * spec.lat_l2
                 + c.l3_hits * spec.lat_l3
                 + c.l3_misses * lat_dram
                 + c.mc_wait_cycles)
        if c.remote_refs == 0:
            if not _close(clock, local, self.rel_tol):
                self._report(
                    "clock-accounting", where,
                    f"clock={clock!r} != gaps+latencies+mc_wait={local!r} "
                    f"(diff {clock - local!r})", phase=phase, clock=clock)
        else:
            floor = local + c.remote_refs * spec.qpi_extra_cycles
            tol = self.rel_tol * max(abs(clock), abs(floor), 1.0)
            if clock + tol < floor:
                self._report(
                    "clock-accounting", where,
                    f"clock={clock!r} below remote-access floor {floor!r}",
                    phase=phase, clock=clock)
            if local > clock + tol:
                self._report(
                    "clock-accounting", where,
                    f"local cycle components {local!r} exceed clock "
                    f"{clock!r}", phase=phase, clock=clock)

    def check_flow_protocol(self, fr) -> None:
        """Packet conservation of the flow-protocol state.

        Generation runs at most one packet ahead of the engine's
        completed-packet count (the in-flight packet at the instant the
        run stopped), hence the ``{0, 1}`` slack.
        """
        flow = fr.flow
        c = fr.counters
        forwarded = getattr(flow, "forwarded", None)
        dropped = getattr(flow, "dropped", None)
        if forwarded is not None and dropped is not None:
            ahead = (forwarded + dropped) - c.packets
            if ahead not in (0, 1):
                self._report(
                    "packet-conservation", fr.label,
                    f"forwarded={forwarded} + dropped={dropped} vs "
                    f"packets={c.packets} (generation ahead by {ahead})")
        turns = getattr(flow, "turns", None)
        if turns is not None and getattr(flow, "flows", None):
            total = sum(turns)
            ahead = total - c.packets
            if getattr(flow, "timing_pure", False):
                if ahead not in (0, 1):
                    self._report(
                        "turns-conservation", fr.label,
                        f"sum(turns)={total} vs packets={c.packets} "
                        f"(ahead by {ahead})")
            elif total < c.packets:
                self._report(
                    "turns-conservation", fr.label,
                    f"sum(turns)={total} < packets={c.packets}")
            if max(turns) - min(turns) > 1:
                self._report(
                    "turns-round-robin", fr.label,
                    f"turns {turns} diverge by more than one")
        if getattr(flow, "trigger_packets", None) is not None \
                and hasattr(flow, "triggered"):
            expect = flow.packets > flow.trigger_packets
            if bool(flow.triggered) != expect:
                self._report(
                    "trigger-state", fr.label,
                    f"triggered={flow.triggered} but packets="
                    f"{flow.packets} vs trigger={flow.trigger_packets}")
        self.check_guard_state(fr)

    def check_guard_state(self, fr) -> None:
        """Sanity of throttle/guard control state on wrapper flows.

        Throttle loops must never produce a negative inserted gap or a
        negative adjustment count; guard-controllable flows additionally
        keep their escalation bookkeeping consistent (an active throttle
        limit implies the supervisor reached at least the first
        tightening rung — rung 2 of the warn→tighten→quarantine ladder).
        """
        flow = fr.flow
        if hasattr(flow, "extra_gap"):
            if flow.extra_gap < 0:
                self._report(
                    "guard-state", fr.label,
                    f"negative throttle gap {flow.extra_gap!r}")
            if getattr(flow, "adjustments", 0) < 0:
                self._report(
                    "guard-state", fr.label,
                    f"negative adjustment count {flow.adjustments!r}")
        if not getattr(flow, "guard_controllable", False):
            return
        limit = flow.limit_refs_per_sec
        if limit is not None and limit <= 0:
            self._report(
                "guard-state", fr.label,
                f"non-positive throttle limit {limit!r}")
        if flow.rung < 0:
            self._report(
                "guard-state", fr.label, f"negative rung {flow.rung!r}")
        if flow.suspended_until < 0:
            self._report(
                "guard-state", fr.label,
                f"negative suspension deadline {flow.suspended_until!r}")
        if limit is not None and flow.rung < 2:
            self._report(
                "guard-state", fr.label,
                f"throttle limit {limit!r} set but rung={flow.rung} "
                "(ladder never passed the tighten rung)")

    # -- cache checks -------------------------------------------------------

    def check_caches(self, machine) -> None:
        """Structural soundness and capacity of every cache."""
        caches = list(machine.l3)
        caches.extend(machine._l1.values())
        caches.extend(machine._l2.values())
        for cache in caches:
            for problem in cache.validate():
                self._report("cache-structure", cache.name, problem)
            occ = cache.occupancy()
            if occ > cache.capacity_lines:
                self._report(
                    "cache-capacity", cache.name,
                    f"occupancy {occ} exceeds capacity "
                    f"{cache.capacity_lines} lines")

    def check_occupancy_partition(self, machine) -> None:
        """Resident L3 lines partition by owning flow's regions.

        Region allocations are bump-allocated and must never overlap; a
        resident line therefore belongs to at most one flow. Lines
        outside every region (e.g. shared infrastructure) are counted as
        orphans but not failed — the partition identity (per-flow counts
        plus orphans equals total occupancy) must still hold.
        """
        intervals: List[Tuple[int, int, str]] = []
        for fr in machine.flows:
            for region in getattr(fr, "regions", []) or []:
                start = region.base >> 6
                end = (region.end + 63) >> 6
                intervals.append((start, end, fr.label))
        intervals.sort()
        for (s0, e0, l0), (s1, e1, l1) in zip(intervals, intervals[1:]):
            if s1 < e0:
                self._report(
                    "region-overlap", "machine",
                    f"regions of {l0!r} [{s0},{e0}) and {l1!r} "
                    f"[{s1},{e1}) overlap")
                return  # attribution below would double-count

        import bisect
        starts = [iv[0] for iv in intervals]
        per_flow = {fr.label: 0 for fr in machine.flows}
        orphans = 0
        total = 0
        for cache in machine.l3:
            for line in cache.resident_lines():
                total += 1
                pos = bisect.bisect_right(starts, line) - 1
                if pos >= 0 and line < intervals[pos][1]:
                    per_flow[intervals[pos][2]] += 1
                else:
                    orphans += 1
        if sum(per_flow.values()) + orphans != total:
            self._report(
                "occupancy-partition", "machine",
                f"per-flow occupancies {per_flow} + orphans {orphans} "
                f"!= total {total}")

    # -- the end-of-run audit ----------------------------------------------

    def check_machine(self, machine, result) -> None:
        """The full post-run audit (see module docstring)."""
        spec = machine.spec
        total_refs = 0
        max_clock = 0.0
        for fr in machine.flows:
            c = fr.counters
            self.check_counters(c, fr.label)
            self.check_flow_protocol(fr)
            self._check_clock_accounting(spec, fr.clock, c, fr.label)
            total_refs += c.l1_hits + c.l2_hits + c.l3_refs
            if fr.clock > max_clock:
                max_clock = fr.clock
            if fr.clock < 0.0:
                self._report("clock-monotone", fr.label,
                             f"negative end clock {fr.clock}")
            if fr.snap_start is not None and fr.snap_end is not None:
                delta = fr.snap_end.delta(fr.snap_start)
                self.check_counters(delta, f"{fr.label}.window")
                if delta.cycles < 0.0:
                    self._report("window-monotone", fr.label,
                                 f"measurement window has negative span "
                                 f"{delta.cycles}")

        if total_refs != result.events:
            self._report(
                "event-conservation", "machine",
                f"sum of per-flow references {total_refs} != "
                f"engine event count {result.events}")
        if result.end_clock != max_clock:
            self._report(
                "end-clock", "machine",
                f"result.end_clock={result.end_clock!r} != max flow "
                f"clock {max_clock!r}")

        # Measured statistics: physical rate bounds + window accounting.
        lat_dram = spec.lat_l3 + spec.lat_dram_extra
        for label in result.flow_labels:
            stats = result[label]
            d = stats.counts
            floor = (d.l1_hits * spec.lat_l1 + d.l2_hits * spec.lat_l2
                     + d.l3_hits * spec.lat_l3 + d.l3_misses * lat_dram)
            tol = self.rel_tol * max(abs(d.cycles), abs(floor), 1.0)
            if d.cycles + tol < floor:
                self._report(
                    "window-cycle-floor", label,
                    f"window cycles {d.cycles!r} below latency floor "
                    f"{floor!r}")
            if d.cycles > 0:
                max_refs_per_sec = spec.freq_hz / spec.lat_l3
                if stats.l3_refs_per_sec > max_refs_per_sec * (1 + 1e-9):
                    self._report(
                        "refs-rate-bound", label,
                        f"l3_refs_per_sec={stats.l3_refs_per_sec:.4g} "
                        f"exceeds physical bound "
                        f"{max_refs_per_sec:.4g}")

        self.check_caches(machine)
        if self.check_occupancy:
            self.check_occupancy_partition(machine)

    def after_run(self, machine, result) -> None:
        """Engine hook: run the full audit; raise when strict."""
        self.runs_checked += 1
        self.check_machine(machine, result)
        if self.strict:
            self.raise_if_failed()
