"""``python -m repro.check`` — entry point for the fuzzer CLI."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
