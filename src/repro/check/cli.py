"""``repro-check`` — the scenario fuzzer / invariant-suite CLI.

Examples::

    repro-check --scenarios 200 --seed 0x5EED --engine both
    repro-check --scenarios 20 --inject-fault l3-snapshot-leak --no-corpus
    repro-check --replay tests/corpus
    python -m repro.check --scenarios 5 --json

Exit status 0 means every scenario passed every invariant (and, with
``--engine both``, that the engines agreed exactly); 1 means at least
one violation (reproductions are shrunk and written to the corpus
unless ``--no-corpus``); 2 means bad usage.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .corpus import DEFAULT_CORPUS_DIR, corpus_paths, load_repro
from .invariants import DEFAULT_PROBE_INTERVAL
from .runner import (CheckOptions, CheckRunner, DEFAULT_SEED, ENGINE_SETS,
                     run_config)


def _seed(text: str) -> int:
    """Accept decimal and ``0x…`` seeds (the CI seed is hex)."""
    try:
        return int(text, 0)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid seed {text!r}") from None


def _non_negative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError("must be >= 0")
    return value


def _positive_float(text: str) -> float:
    value = float(text)
    if value <= 0:
        raise argparse.ArgumentTypeError("must be > 0")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-check",
        description="Fuzz randomized scenarios through the simulator's "
                    "runtime invariant checks.")
    parser.add_argument("--scenarios", type=_non_negative_int, default=50,
                        metavar="N", help="scenarios to generate and check "
                        "(default: %(default)s)")
    parser.add_argument("--seed", type=_seed, default=DEFAULT_SEED,
                        metavar="S", help="master seed, decimal or 0x-hex "
                        "(default: 0x%(default)X)")
    parser.add_argument("--engine", choices=sorted(ENGINE_SETS),
                        default="both",
                        help="engine(s) to run each scenario on; 'both' "
                        "also cross-checks exact result equality "
                        "(default: %(default)s)")
    parser.add_argument("--shrink", dest="shrink", action="store_true",
                        default=True, help="shrink failing scenarios to a "
                        "minimal reproduction (default)")
    parser.add_argument("--no-shrink", dest="shrink", action="store_false",
                        help="record failures unshrunk")
    parser.add_argument("--corpus-dir", default=DEFAULT_CORPUS_DIR,
                        metavar="DIR", help="where failure repros are "
                        "written (default: %(default)s)")
    parser.add_argument("--no-corpus", dest="corpus_dir",
                        action="store_const", const=None,
                        help="do not record failures")
    parser.add_argument("--probe-interval", type=_positive_float,
                        default=DEFAULT_PROBE_INTERVAL, metavar="CYCLES",
                        help="cadence of the windowed invariant probe "
                        "(default: %(default)s)")
    parser.add_argument("--sweep-equality", type=_non_negative_int,
                        default=0, metavar="N",
                        help="also run the first N scenarios through the "
                        "sharded sweep orchestrator and require payload "
                        "equality with serial execution (default: off)")
    parser.add_argument("--inject-fault", metavar="NAME", default=None,
                        help="self-test: apply a named fault from "
                        "repro.check.faults to every run (the suite is "
                        "then expected to FAIL)")
    parser.add_argument("--list-faults", action="store_true",
                        help="list known injectable faults and exit")
    parser.add_argument("--no-occupancy", dest="occupancy",
                        action="store_false", default=True,
                        help="skip the per-probe L3 occupancy partition "
                        "audit (faster on huge sweeps)")
    parser.add_argument("--fail-fast", action="store_true",
                        help="stop at the first failing scenario")
    parser.add_argument("--replay", metavar="DIR", default=None,
                        help="replay every corpus entry in DIR instead of "
                        "fuzzing (regression mode)")
    parser.add_argument("--report", metavar="PATH", default=None,
                        help="write the run report JSON to PATH")
    parser.add_argument("--json", action="store_true",
                        help="print the run report JSON to stdout")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="suppress per-failure progress lines")
    return parser


def _replay(args) -> int:
    """Regression mode: every corpus entry must now run clean."""
    paths = corpus_paths(args.replay)
    if not paths:
        print(f"repro-check: no corpus entries under {args.replay}")
        return 0
    engines = ENGINE_SETS[args.engine]
    failed = 0
    for path in paths:
        entry = load_repro(path)
        violations = run_config(entry.config, engines,
                                probe_interval=args.probe_interval,
                                check_occupancy=args.occupancy)
        status = "FAIL" if violations else "ok"
        if violations:
            failed += 1
        if violations or not args.quiet:
            print(f"repro-check: replay {path}: {status}")
        for line in violations[:10]:
            print(f"  {line}")
    print(f"repro-check: replayed {len(paths)} corpus entries, "
          f"{failed} still failing")
    return 1 if failed else 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_faults:
        from .faults import fault_names
        for name in fault_names():
            print(name)
        return 0
    if args.replay is not None:
        return _replay(args)

    options = CheckOptions(
        scenarios=args.scenarios,
        seed=args.seed,
        engines=ENGINE_SETS[args.engine],
        shrink=args.shrink,
        corpus_dir=args.corpus_dir,
        probe_interval=args.probe_interval,
        inject_fault=args.inject_fault,
        sweep_equality=args.sweep_equality,
        check_occupancy=args.occupancy,
        fail_fast=args.fail_fast,
    )

    def progress(i, total, outcome):
        if outcome.ok or args.quiet:
            return
        print(f"repro-check: FAIL {outcome.config.describe()}")
        for line in outcome.violations[:10]:
            print(f"  {line}")
        if outcome.shrunk is not None:
            print(f"  shrunk to: {outcome.shrunk.describe()}")
        if outcome.corpus_path is not None:
            print(f"  recorded: {outcome.corpus_path}")

    runner = CheckRunner(options, progress=progress)
    result = runner.run()

    command = "repro-check " + " ".join(argv if argv is not None
                                        else sys.argv[1:])
    report = result.report(command=command.strip())
    if args.report:
        report.write(args.report)
    if args.json:
        print(report.to_json())
    else:
        verdict = "ok" if result.ok else "FAILED"
        print(f"repro-check: {len(result.outcomes)} scenarios, "
              f"{result.runs_checked} runs, "
              f"{result.windows_checked} windows checked, "
              f"{len(result.failures)} failing — {verdict} "
              f"({result.seconds:.1f}s)")
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
