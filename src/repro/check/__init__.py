"""repro.check — randomized scenario fuzzing and runtime invariants.

The package has four layers:

* :mod:`~repro.check.invariants` — an :class:`InvariantChecker` that
  hooks into :class:`~repro.hw.machine.Machine` (both engines) and
  verifies machine-wide conservation laws during and after execution;
* :mod:`~repro.check.scenarios` — deterministic generation of
  well-formed random experiment configurations;
* :mod:`~repro.check.shrink` / :mod:`~repro.check.corpus` — reduction of
  failures to minimal reproductions, serialized into the content-
  addressed regression corpus under ``tests/corpus/``;
* :mod:`~repro.check.runner` / :mod:`~repro.check.cli` — the fuzzing
  loop and the ``repro-check`` command.

:mod:`~repro.check.faults` injects deliberate bugs to prove the checks
actually fire.
"""

from .corpus import (DEFAULT_CORPUS_DIR, ReproEntry, corpus_paths,
                     iter_corpus, load_repro, save_repro)
from .invariants import (DEFAULT_PROBE_INTERVAL, InvariantChecker,
                         InvariantViolationError, Violation)
from .runner import (CheckOptions, CheckResult, CheckRunner, DEFAULT_SEED,
                     ScenarioOutcome, run_config, scenario_payload,
                     sweep_equality_check)
from .scenarios import FlowConf, ScenarioConfig, generate, generate_one
from .shrink import shrink

__all__ = [
    "DEFAULT_CORPUS_DIR", "DEFAULT_PROBE_INTERVAL", "DEFAULT_SEED",
    "CheckOptions", "CheckResult", "CheckRunner", "FlowConf",
    "InvariantChecker", "InvariantViolationError", "ReproEntry",
    "ScenarioConfig", "ScenarioOutcome", "Violation", "corpus_paths",
    "generate", "generate_one", "iter_corpus", "load_repro", "run_config",
    "save_repro", "scenario_payload", "shrink", "sweep_equality_check",
]
