"""The regression corpus: content-addressed JSON repros of failures.

Every failure the fuzzer finds is serialized into ``tests/corpus/`` as a
small JSON document (schema ``repro.check_repro/1``) holding the
(shrunken) scenario configuration, the violations observed when it was
captured, and capture metadata (engines, injected fault, if any). The
file name is the configuration's content digest, so re-finding the same
minimal configuration never duplicates an entry.

``tests/corpus/test_replay.py`` replays every entry on each test run and
asserts the configuration now passes the invariant suite — the corpus is
the permanent regression gate that fixed bugs stay fixed.
"""

from __future__ import annotations

import glob
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .scenarios import ScenarioConfig

#: Schema marker of corpus entries (bump on breaking change).
SCHEMA = "repro.check_repro/1"

#: Default corpus location, relative to the repository root.
DEFAULT_CORPUS_DIR = os.path.join("tests", "corpus")


@dataclass
class ReproEntry:
    """One serialized failure: config + observed violations + metadata."""

    config: ScenarioConfig
    violations: List[str] = field(default_factory=list)
    engines: List[str] = field(default_factory=list)
    injected_fault: Optional[str] = None
    note: str = ""
    schema: str = SCHEMA

    @property
    def digest(self) -> str:
        return self.config.digest()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": self.schema,
            "digest": self.digest,
            "config": self.config.to_dict(),
            "violations": list(self.violations),
            "engines": list(self.engines),
            "injected_fault": self.injected_fault,
            "note": self.note,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ReproEntry":
        if data.get("schema") != SCHEMA:
            raise ValueError(
                f"not a corpus entry (schema={data.get('schema')!r})")
        return cls(
            config=ScenarioConfig.from_dict(data["config"]),
            violations=list(data.get("violations", [])),
            engines=list(data.get("engines", [])),
            injected_fault=data.get("injected_fault"),
            note=data.get("note", ""),
        )


def entry_path(corpus_dir: str, entry: ReproEntry) -> str:
    return os.path.join(corpus_dir, f"repro_{entry.digest}.json")


def save_repro(corpus_dir: str, entry: ReproEntry) -> str:
    """Write ``entry`` into the corpus; returns its path.

    Content-addressed: saving the same minimal configuration twice
    overwrites the same file rather than accumulating duplicates.
    """
    os.makedirs(corpus_dir, exist_ok=True)
    path = entry_path(corpus_dir, entry)
    with open(path, "w") as fh:
        json.dump(entry.to_dict(), fh, indent=2, sort_keys=False)
        fh.write("\n")
    return path


def load_repro(path: str) -> ReproEntry:
    with open(path) as fh:
        return ReproEntry.from_dict(json.load(fh))


def corpus_paths(corpus_dir: str) -> List[str]:
    """All corpus entry files, sorted for deterministic replay order."""
    return sorted(glob.glob(os.path.join(corpus_dir, "repro_*.json")))


def iter_corpus(corpus_dir: str) -> List[ReproEntry]:
    """Every entry of the corpus (empty when the directory is missing)."""
    return [load_repro(path) for path in corpus_paths(corpus_dir)]
