"""Deliberate, reversible bug injection for the invariant suite.

Each fault monkeypatches one seam of the simulator so that runs under it
violate a specific conservation law — proving, end to end, that the
invariant engine actually catches the class of bug it claims to guard
against (a checker that never fires is indistinguishable from one that
checks nothing). Faults are context managers: the patch is always
removed on exit, so an injecting test cannot poison later tests.

Available faults:

* ``l3-snapshot-leak`` — :meth:`CoreCounters.copy` leaks an extra,
  growing L3-hit count into every snapshot, corrupting measurement
  windows without touching the live counters (caught by the window
  conservation checks: ``l3_refs != l3_hits + l3_misses`` on the delta).
* ``event-undercount`` — the engine's :class:`RunResult` silently drops
  one event from the machine-wide reference count (caught by
  event conservation: per-flow level counts no longer sum to events).
* ``forwarded-leak`` — :class:`Pipeline` occasionally forgets to count
  a forwarded packet (caught by packet conservation on the scalar
  engine; the batch engine re-derives the counter, which is itself a
  documented equivalence property).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Dict, Iterator

FAULTS: Dict[str, Callable] = {}


def fault(name: str):
    """Register a fault context-manager factory under ``name``."""
    def register(fn):
        FAULTS[name] = fn
        return fn
    return register


def fault_names():
    return sorted(FAULTS)


@contextmanager
def inject(name: str) -> Iterator[None]:
    """Apply fault ``name`` for the duration of the ``with`` block."""
    try:
        factory = FAULTS[name]
    except KeyError:
        raise KeyError(f"unknown fault {name!r}; "
                       f"known: {', '.join(fault_names())}") from None
    with factory():
        yield


@fault("l3-snapshot-leak")
@contextmanager
def _l3_snapshot_leak() -> Iterator[None]:
    from ..hw.counters import CoreCounters

    orig_copy = CoreCounters.copy
    calls = [0]

    def leaky_copy(self):
        snap = orig_copy(self)
        calls[0] += 1
        # A *growing* leak: consecutive snapshots differ, so window
        # deltas cannot cancel it out.
        snap.l3_hits += calls[0]
        return snap

    CoreCounters.copy = leaky_copy
    try:
        yield
    finally:
        CoreCounters.copy = orig_copy


@fault("event-undercount")
@contextmanager
def _event_undercount() -> Iterator[None]:
    from ..hw import machine as machine_mod

    orig_result = machine_mod.RunResult

    class ShortResult(orig_result):
        def __init__(self, spec, flows, events, end_clock, metrics=None):
            super().__init__(spec, flows, max(0, events - 1), end_clock,
                             metrics=metrics)

    machine_mod.RunResult = ShortResult
    try:
        yield
    finally:
        machine_mod.RunResult = orig_result


@fault("forwarded-leak")
@contextmanager
def _forwarded_leak() -> Iterator[None]:
    from ..click.pipeline import Pipeline

    orig_run = Pipeline.run_packet
    calls = [0]

    def leaky_run(self, ctx):
        dma = orig_run(self, ctx)
        calls[0] += 1
        if calls[0] % 50 == 0 and self.forwarded > 0:
            self.forwarded -= 1
        return dma

    Pipeline.run_packet = leaky_run
    try:
        yield
    finally:
        Pipeline.run_packet = orig_run
