"""The fuzzing loop: generate → run → check → shrink → record.

:class:`CheckRunner` drives N deterministic scenarios (see
:mod:`~repro.check.scenarios`) through the simulator with a live
:class:`~repro.check.invariants.InvariantChecker` attached, on one or
both execution engines. Per scenario it collects:

* **invariant violations** — conservation/monotonicity/capacity breaches
  observed by the windowed probe and the end-of-run audit;
* **engine-equality divergences** — when both engines run, their results
  are compared field-exactly with the differential harness
  (:func:`repro.fastpath.diff.compare_results`);
* **sweep-equality divergences** (opt-in sample) — the scenario executed
  through the sharded sweep orchestrator (``jobs=2``, worker processes)
  must produce byte-identical payloads to the serial in-process run.

Failing scenarios are (optionally) shrunk to a minimal reproduction and
serialized into the regression corpus (:mod:`~repro.check.corpus`). The
whole run summarizes into a ``repro.run_report/1`` document of kind
``check`` for CI artifact upload.
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..fastpath import clear_stream_cache
from ..fastpath.diff import compare_results
from ..hw.counters import SCALAR_FIELDS
from ..obs.report import RunReport
from .corpus import DEFAULT_CORPUS_DIR, ReproEntry, save_repro
from .invariants import DEFAULT_PROBE_INTERVAL, InvariantChecker
from .scenarios import ScenarioConfig, generate
from .shrink import shrink

#: Default master seed (also the CI acceptance seed).
DEFAULT_SEED = 0x5EED

#: Engine sets selectable from the CLI.
ENGINE_SETS = {
    "scalar": ("scalar",),
    "batch": ("batch",),
    "both": ("scalar", "batch"),
}


@dataclass
class CheckOptions:
    """Knobs of one fuzzing run."""

    scenarios: int = 50
    seed: int = DEFAULT_SEED
    engines: Tuple[str, ...] = ("scalar", "batch")
    #: Shrink failing configurations to a minimal reproduction.
    shrink: bool = True
    #: Directory failures are serialized into (None: do not record).
    corpus_dir: Optional[str] = DEFAULT_CORPUS_DIR
    #: Probe cadence of the windowed invariant checks, in cycles.
    probe_interval: float = DEFAULT_PROBE_INTERVAL
    #: Named fault from :mod:`repro.check.faults` applied to every run
    #: (self-test mode: the run is then *expected* to fail).
    inject_fault: Optional[str] = None
    #: Cross-check the first N scenarios through the sharded sweep
    #: orchestrator (serial vs ``jobs=2`` payload equality).
    sweep_equality: int = 0
    #: Verify the L3 occupancy partition during windowed probes
    #: (O(cache lines) per probe; disable for very large sweeps).
    check_occupancy: bool = True
    #: Stop after the first failing scenario.
    fail_fast: bool = False

    def __post_init__(self) -> None:
        if self.scenarios < 0:
            raise ValueError("scenarios must be >= 0")
        for engine in self.engines:
            if engine not in ("scalar", "batch"):
                raise ValueError(f"unknown engine {engine!r}")


@dataclass
class ScenarioOutcome:
    """What happened to one scenario."""

    config: ScenarioConfig
    violations: List[str] = field(default_factory=list)
    engines: Tuple[str, ...] = ()
    shrunk: Optional[ScenarioConfig] = None
    corpus_path: Optional[str] = None
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.config.name,
            "digest": self.config.digest(),
            "ok": self.ok,
            "violations": list(self.violations),
            "engines": list(self.engines),
            "seconds": round(self.seconds, 4),
        }
        if self.shrunk is not None:
            out["shrunk"] = self.shrunk.to_dict()
        if self.corpus_path is not None:
            out["corpus_path"] = self.corpus_path
        return out


@dataclass
class CheckResult:
    """Aggregate outcome of a fuzzing run."""

    outcomes: List[ScenarioOutcome]
    options: CheckOptions
    runs_checked: int = 0
    windows_checked: int = 0
    seconds: float = 0.0

    @property
    def failures(self) -> List[ScenarioOutcome]:
        return [o for o in self.outcomes if not o.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    def report(self, command: str = "") -> RunReport:
        """The run as a ``kind="check"`` run report."""
        opts = self.options
        report = RunReport.new(
            "check", command=command, seed=opts.seed,
            config={
                "scenarios": opts.scenarios,
                "seed": opts.seed,
                "engines": list(opts.engines),
                "shrink": opts.shrink,
                "probe_interval": opts.probe_interval,
                "inject_fault": opts.inject_fault,
                "sweep_equality": opts.sweep_equality,
            })
        report.results = {
            "checked": len(self.outcomes),
            "failed": len(self.failures),
            "runs_checked": self.runs_checked,
            "windows_checked": self.windows_checked,
            "seconds": round(self.seconds, 3),
            "failures": [o.summary() for o in self.failures],
        }
        return report


def run_config(config: ScenarioConfig, engines: Sequence[str],
               probe_interval: float = DEFAULT_PROBE_INTERVAL,
               check_occupancy: bool = True,
               tally: Optional[Dict[str, int]] = None) -> List[str]:
    """Run one configuration under the invariant checks; all violations.

    The scenario runs once per engine with a fresh machine and a fresh
    (non-strict) checker, then — when both engines ran cleanly — the two
    results are compared field-exactly. ``tally`` (when given) gets its
    ``"runs"`` / ``"windows"`` entries incremented with checker totals.
    """
    violations: List[str] = []
    runs: Dict[str, Tuple[Any, Any]] = {}
    for engine in engines:
        checker = InvariantChecker(interval_cycles=probe_interval,
                                   check_occupancy=check_occupancy)
        checker.context = f"{config.name or 'scenario'}/{engine}"
        try:
            machine, result = config.run(engine=engine, checker=checker)
        except Exception as exc:  # noqa: BLE001 - a crash IS a finding
            violations.append(
                f"crash[{config.name}/{engine}]: "
                f"{type(exc).__name__}: {exc}")
            continue
        finally:
            if tally is not None:
                tally["runs"] = tally.get("runs", 0) + checker.runs_checked
                tally["windows"] = (tally.get("windows", 0)
                                    + checker.windows_checked)
        violations.extend(str(v) for v in checker.violations)
        runs[engine] = (machine, result)
    if "scalar" in runs and "batch" in runs:
        ref_machine, ref_result = runs["scalar"]
        alt_machine, alt_result = runs["batch"]
        violations.extend(
            f"engine-equality[{config.name}]: {line}"
            for line in compare_results(ref_machine, ref_result,
                                        alt_machine, alt_result))
    return violations


def sweep_equality_check(config: ScenarioConfig) -> List[str]:
    """Serial vs sharded execution of one scenario must agree exactly.

    The scenario runs once inline (``jobs=1``) and once through worker
    processes (``jobs=2``, split into one shard per engine) — the plain
    JSON payloads crossing the process boundary must be identical.
    """
    from ..sweep.orchestrator import SweepOptions, SweepRunner
    from ..sweep.shard import Shard

    shards = [
        Shard(kind="check_scenario",
              params={"config": config.to_dict(), "engine": engine},
              tag=f"{config.name}/{engine}")
        for engine in ("scalar", "batch")
    ]
    serial = SweepRunner(SweepOptions(jobs=1)).run(shards)
    sharded = SweepRunner(SweepOptions(jobs=2, shard_timeout=600.0)).run(shards)
    problems: List[str] = []
    serial_payloads = serial.payloads()
    sharded_payloads = sharded.payloads()
    for i, shard in enumerate(shards):
        tag = shard.tag
        key = serial.results[i].key
        a = serial_payloads.get(key)
        b = sharded_payloads.get(key)
        if a is None or b is None:
            problems.append(
                f"sweep-equality[{tag}]: shard missing "
                f"(serial={'ok' if a is not None else 'absent'}, "
                f"jobs=2={'ok' if b is not None else 'absent'})")
        elif a != b:
            problems.append(
                f"sweep-equality[{tag}]: serial and jobs=2 payloads differ")
    return problems


def scenario_payload(config: ScenarioConfig,
                     engine: Optional[str] = None) -> Dict[str, Any]:
    """One scenario's run as a plain-JSON payload (the shard currency).

    Carries the exact end-of-run counters of every flow plus the
    machine-wide totals — everything two executions must agree on — and
    any invariant violations observed while producing them.
    """
    checker = InvariantChecker()
    checker.context = f"{config.name or 'scenario'}/{engine or 'default'}"
    machine, result = config.run(engine=engine, checker=checker)
    flows = []
    for fr in machine.flows:
        flows.append({
            "label": fr.label,
            "clock": fr.clock,
            "counters": {name: getattr(fr.counters, name)
                         for name in SCALAR_FIELDS},
        })
    return {
        "name": config.name,
        "engine": engine,
        "events": result.events,
        "end_clock": result.end_clock,
        "flows": flows,
        "violations": [str(v) for v in checker.violations],
    }


class CheckRunner:
    """Drives the generate → run → check → shrink → record loop."""

    def __init__(self, options: Optional[CheckOptions] = None,
                 progress=None):
        self.options = options or CheckOptions()
        #: Optional ``progress(index, total, outcome)`` callback.
        self.progress = progress

    def _fault_context(self):
        if self.options.inject_fault:
            from .faults import inject
            return inject(self.options.inject_fault)
        return contextlib.nullcontext()

    def _fails(self, config: ScenarioConfig) -> bool:
        """Shrink predicate: does ``config`` still misbehave?"""
        opts = self.options
        with self._fault_context():
            return bool(run_config(config, opts.engines,
                                   probe_interval=opts.probe_interval,
                                   check_occupancy=opts.check_occupancy))

    def check_one(self, config: ScenarioConfig, index: int = 0,
                  tally: Optional[Dict[str, int]] = None) -> ScenarioOutcome:
        """Run, check, and (on failure) shrink + record one scenario."""
        opts = self.options
        start = time.perf_counter()
        with self._fault_context():
            violations = run_config(
                config, opts.engines,
                probe_interval=opts.probe_interval,
                check_occupancy=opts.check_occupancy, tally=tally)
            if index < opts.sweep_equality:
                violations.extend(sweep_equality_check(config))
        outcome = ScenarioOutcome(config=config, violations=violations,
                                  engines=opts.engines)
        if violations:
            minimal = config
            if opts.shrink:
                minimal = shrink(config, self._fails)
                if minimal is not config:
                    outcome.shrunk = minimal
            if opts.corpus_dir:
                entry = ReproEntry(
                    config=minimal,
                    violations=violations[:20],
                    engines=list(opts.engines),
                    injected_fault=opts.inject_fault,
                    note=f"found by repro-check seed={opts.seed:#x} "
                         f"scenario={config.name}",
                )
                outcome.corpus_path = save_repro(opts.corpus_dir, entry)
        outcome.seconds = time.perf_counter() - start
        return outcome

    def run(self) -> CheckResult:
        """The full fuzzing loop over ``options.scenarios`` scenarios."""
        opts = self.options
        start = time.perf_counter()
        # Pregenerated packet streams are keyed by flow identity; a long
        # fuzzing run would otherwise grow the process-wide cache without
        # bound (every scenario is unique).
        clear_stream_cache()
        configs = generate(opts.scenarios, opts.seed)
        outcomes: List[ScenarioOutcome] = []
        tally: Dict[str, int] = {}
        for i, config in enumerate(configs):
            outcome = self.check_one(config, index=i, tally=tally)
            outcomes.append(outcome)
            if self.progress is not None:
                self.progress(i, len(configs), outcome)
            if not outcome.ok and opts.fail_fast:
                break
            if i % 25 == 24:
                clear_stream_cache()
        clear_stream_cache()
        return CheckResult(outcomes=outcomes, options=opts,
                           runs_checked=tally.get("runs", 0),
                           windows_checked=tally.get("windows", 0),
                           seconds=time.perf_counter() - start)
