"""Greedy shrinking of failing scenario configurations.

Given a failing :class:`~repro.check.scenarios.ScenarioConfig` and a
predicate ``fails(config) -> bool`` (re-running the scenario through the
invariant checks), :func:`shrink` searches for a *minimal* configuration
that still fails, by repeatedly applying order-preserving reductions:

1. drop one flow at a time;
2. simplify wrapper flows to their plain base application
   (two-faced/throttled -> base app, shared-core -> fewer members);
3. collapse a two-socket platform to one socket (remapping cores);
4. halve the measurement window (and the warm-up) toward their minima.

Each reduction is kept only if the reduced configuration still fails.
The loop runs to a fixpoint under a budget of predicate evaluations, so
shrinking is deterministic and bounded even for flaky predicates.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional

from .scenarios import FlowConf, ScenarioConfig

#: Ceiling on predicate evaluations per shrink.
DEFAULT_BUDGET = 60

MIN_WARMUP = 1
MIN_MEASURE = 30


def _simplified_flow(fc: FlowConf) -> List[FlowConf]:
    """Simpler variants of one flow configuration (may be empty)."""
    out: List[FlowConf] = []
    if fc.kind in ("twofaced", "throttled"):
        out.append(FlowConf("app", fc.core, app=fc.app,
                            data_domain=fc.data_domain))
    if fc.kind == "syn" and fc.cpu_ops is None:
        out.append(FlowConf("syn", fc.core, cpu_ops=0,
                            data_domain=fc.data_domain))
    if fc.kind == "shared":
        if len(fc.apps) > 2:
            out.append(dataclasses.replace(fc, apps=fc.apps[:2]))
        else:
            out.append(FlowConf("app", fc.core, app=fc.apps[0],
                                data_domain=fc.data_domain))
    if fc.data_domain is not None:
        out.append(dataclasses.replace(fc, data_domain=None))
    return out


def _candidates(config: ScenarioConfig) -> List[ScenarioConfig]:
    """All one-step reductions of ``config``, in preference order."""
    out: List[ScenarioConfig] = []
    flows = config.flows

    # 1) Drop one flow (most aggressive first).
    if len(flows) > 1:
        for i in range(len(flows)):
            out.append(dataclasses.replace(
                config, flows=flows[:i] + flows[i + 1:]))

    # 2) Simplify one flow.
    for i, fc in enumerate(flows):
        for simpler in _simplified_flow(fc):
            out.append(dataclasses.replace(
                config, flows=flows[:i] + (simpler,) + flows[i + 1:]))

    # 3) Collapse to a single socket.
    if config.sockets == 2:
        spec = config.spec()
        per = spec.cores_per_socket
        used = sorted(fc.core for fc in flows)
        if len(used) <= per:
            remap = {core: i for i, core in enumerate(used)}
            out.append(dataclasses.replace(
                config, sockets=1,
                flows=tuple(dataclasses.replace(fc, core=remap[fc.core],
                                                data_domain=None)
                            for fc in flows)))

    # 4) Halve the windows.
    if config.measure > MIN_MEASURE:
        out.append(dataclasses.replace(
            config, measure=max(MIN_MEASURE, config.measure // 2)))
    if config.warmup > MIN_WARMUP:
        out.append(dataclasses.replace(
            config, warmup=max(MIN_WARMUP, config.warmup // 2)))

    return out


def shrink(config: ScenarioConfig,
           fails: Callable[[ScenarioConfig], bool],
           budget: int = DEFAULT_BUDGET) -> ScenarioConfig:
    """A minimal (under the reduction set) config that still fails.

    ``config`` itself is assumed to fail; if no reduction reproduces the
    failure within ``budget`` predicate evaluations, the original (or
    best-so-far) configuration is returned.
    """
    current = config
    evaluations = 0
    progress = True
    while progress and evaluations < budget:
        progress = False
        for candidate in _candidates(current):
            if evaluations >= budget:
                break
            evaluations += 1
            if fails(candidate):
                current = candidate
                progress = True
                break
    if current is not config:
        current = dataclasses.replace(
            current, name=(config.name or "scenario") + "-min")
    return current
