"""repro.obs: observability for the simulated platform.

Three layers, wired through the whole stack:

* **Tracing** (:mod:`.trace`, :mod:`.chrometrace`) — structured events
  from the timing engine and the Click pipeline layer (run phases,
  per-packet spans with element attribution, sampled cache/MC events) to
  pluggable sinks, including JSONL and the Chrome ``trace_event`` format
  (viewable in ``about:tracing`` / Perfetto).
* **Metrics** (:mod:`.metrics`) — periodic counter snapshots at a
  configurable simulated-time interval, yielding per-core time series
  (throughput, L3 refs/sec, hit rate, MC wait) with percentile summaries
  instead of a single end-of-run delta.
* **Run reports** (:mod:`.report`, :mod:`.recorder`) — a serializable
  :class:`RunReport` schema used by the CLIs (``--json``) and the
  ``BENCH_<name>.json`` benchmark records.

Use :func:`observe` to enable observability across code that builds
machines internally (profilers, sweeps, studies), or pass ``tracer=`` /
``metrics=`` to :class:`~repro.hw.machine.Machine` directly.
"""

from .trace import (
    KIND_GUARD,
    KIND_MEM,
    KIND_META,
    KIND_PACKET,
    KIND_PHASE,
    JsonlSink,
    ListSink,
    NULL_SINK,
    NULL_TRACER,
    NullSink,
    TraceEvent,
    TraceSink,
    Tracer,
)
from .chrometrace import ChromeTraceSink, to_chrome_trace, write_chrome_trace
from .metrics import FlowSeries, MetricsSampler, percentile
from .report import (
    RunReport,
    SCHEMA,
    flow_stats_dict,
    platform_dict,
    validate_report,
)
from .recorder import BenchRecorder, load_record
from .session import ObsSession, current_session, observe

__all__ = [
    "KIND_GUARD",
    "KIND_MEM",
    "KIND_META",
    "KIND_PACKET",
    "KIND_PHASE",
    "JsonlSink",
    "ListSink",
    "NULL_SINK",
    "NULL_TRACER",
    "NullSink",
    "TraceEvent",
    "TraceSink",
    "Tracer",
    "ChromeTraceSink",
    "to_chrome_trace",
    "write_chrome_trace",
    "FlowSeries",
    "MetricsSampler",
    "percentile",
    "RunReport",
    "SCHEMA",
    "flow_stats_dict",
    "platform_dict",
    "validate_report",
    "BenchRecorder",
    "load_record",
    "ObsSession",
    "current_session",
    "observe",
]
