"""Structured tracing for the simulated platform.

The paper's methodology is built on *measurement*; this module gives the
reproduction the equivalent of its Oprofile runs as a first-class,
machine-readable stream. A :class:`Tracer` is attached to a
:class:`~repro.hw.machine.Machine` and receives hook calls from the
timing engine: run phases (warm-up complete, measurement window closed),
per-packet completion spans (with per-element attribution supplied by the
:class:`~repro.click.pipeline.Pipeline` layer), and sampled memory-system
events (L3 misses and their memory-controller queueing).

Events go to a pluggable :class:`TraceSink`. The module-level
:data:`NULL_TRACER` is what machines use when tracing is off: the engine
checks a single boolean (``tracer.active``) and skips every hook, so the
disabled hot path costs nothing but that check (see
``tests/test_obs_overhead.py``). When tracing is enabled, the
``packet_sample`` / ``mem_sample`` knobs bound event volume.

Timestamps are simulated cycles; sinks that need wall-clock units convert
via the frequency carried by the run-begin metadata event.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, List, Optional, Union

#: Event kinds emitted by the engine hooks.
KIND_META = "meta"      #: run begin/end metadata (flows, platform, freq)
KIND_PHASE = "phase"    #: per-flow phase marker (measure_begin, measure_end)
KIND_PACKET = "packet"  #: one completed packet span (start..end cycles)
KIND_MEM = "mem"        #: sampled memory-system event (L3 miss / MC wait)
KIND_GUARD = "guard"    #: SLO-guard action (warn/tighten/quarantine/restore)


class TraceEvent:
    """One structured trace event.

    ``ts`` (and ``dur`` for spans) are simulated cycles. ``run`` numbers
    the machine run within this tracer's lifetime (a tracer may observe
    several machines, e.g. a profile sweep); ``flow``/``core`` identify
    the emitting flow, or are ``None`` for run-level events.
    """

    __slots__ = ("ts", "kind", "name", "run", "flow", "core", "dur", "args")

    def __init__(self, ts: float, kind: str, name: str, run: int,
                 flow: Optional[str] = None, core: Optional[int] = None,
                 dur: float = 0.0, args: Optional[Dict[str, Any]] = None):
        self.ts = ts
        self.kind = kind
        self.name = name
        self.run = run
        self.flow = flow
        self.core = core
        self.dur = dur
        self.args = args if args is not None else {}

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "ts": self.ts, "kind": self.kind, "name": self.name,
            "run": self.run,
        }
        if self.flow is not None:
            out["flow"] = self.flow
        if self.core is not None:
            out["core"] = self.core
        if self.dur:
            out["dur"] = self.dur
        if self.args:
            out["args"] = self.args
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"TraceEvent({self.kind}:{self.name} ts={self.ts:.0f} "
                f"run={self.run} flow={self.flow})")


class TraceSink:
    """Where trace events go. Subclasses override :meth:`emit`."""

    def emit(self, event: TraceEvent) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources; safe to call more than once."""


class NullSink(TraceSink):
    """Discards everything (the disabled-tracing sink)."""

    def emit(self, event: TraceEvent) -> None:  # pragma: no cover - never hot
        pass


#: Module-level shared null sink; ``Tracer(None)`` and machines without a
#: tracer route here and stay off the traced path entirely.
NULL_SINK = NullSink()


class ListSink(TraceSink):
    """Collects events in memory (tests, ad-hoc analysis)."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def emit(self, event: TraceEvent) -> None:
        self.events.append(event)

    def by_kind(self, kind: str) -> List[TraceEvent]:
        """Just the events of one kind, in emission order."""
        return [e for e in self.events if e.kind == kind]


class JsonlSink(TraceSink):
    """Writes one JSON object per line (stream-appendable, grep-able)."""

    def __init__(self, path_or_file: Union[str, IO[str]]):
        if isinstance(path_or_file, str):
            self._file: IO[str] = open(path_or_file, "w")
            self._owns = True
        else:
            self._file = path_or_file
            self._owns = False
        self.emitted = 0

    def emit(self, event: TraceEvent) -> None:
        self._file.write(json.dumps(event.to_dict()) + "\n")
        self.emitted += 1

    def close(self) -> None:
        if self._owns and not self._file.closed:
            self._file.close()


class Tracer:
    """Engine-facing hook object with sampling and an on/off guard.

    The engine reads :attr:`active` once per run and, when false, never
    calls a hook. ``packet_sample=N`` keeps one packet span in N per flow;
    ``mem_sample=M`` keeps one L3-miss event in M per flow.
    """

    def __init__(self, sink: Optional[TraceSink] = None,
                 packet_sample: int = 1, mem_sample: int = 64,
                 enabled: bool = True):
        if packet_sample < 1 or mem_sample < 1:
            raise ValueError("sampling intervals must be >= 1")
        self.sink = sink if sink is not None else NULL_SINK
        self.packet_sample = packet_sample
        self.mem_sample = mem_sample
        self.enabled = enabled
        self._run_id = -1
        self._flow_labels: List[str] = []
        self._flow_cores: List[int] = []
        self.freq_hz: Optional[float] = None

    @property
    def active(self) -> bool:
        """True when hooks should fire: enabled and a real sink attached."""
        return self.enabled and not isinstance(self.sink, NullSink)

    # -- engine hooks (called only when ``active``) -------------------------

    def begin_run(self, machine) -> int:
        """Register a machine run; emits the run metadata event."""
        self._run_id += 1
        spec = machine.spec
        self.freq_hz = spec.freq_hz
        self._flow_labels = [fr.label for fr in machine.flows]
        self._flow_cores = [fr.core for fr in machine.flows]
        self.sink.emit(TraceEvent(
            0.0, KIND_META, "run_begin", self._run_id,
            args={
                "freq_hz": spec.freq_hz,
                "scale": spec.scale,
                "seed": machine.seed,
                "flows": [
                    {"label": fr.label, "core": fr.core,
                     "socket": fr.socket, "data_domain": fr.data_domain,
                     "measured": fr.measured}
                    for fr in machine.flows
                ],
            },
        ))
        return self._run_id

    def phase(self, flow_index: int, ts: float, name: str,
              **args: Any) -> None:
        """A per-flow phase marker (``measure_begin`` / ``measure_end``)."""
        self.sink.emit(TraceEvent(
            ts, KIND_PHASE, name, self._run_id,
            flow=self._flow_labels[flow_index],
            core=self._flow_cores[flow_index], args=args,
        ))

    def packet(self, flow_index: int, start: float, end: float, seq: int,
               marks=None) -> None:
        """One completed packet span; subject to ``packet_sample``.

        ``marks`` is the per-element attribution recorded by the flow's
        pipeline during generation: ``[(element, refs, instructions), ...]``.
        """
        if seq % self.packet_sample:
            return
        args: Dict[str, Any] = {"seq": seq}
        if marks:
            args["elements"] = [list(m) for m in marks]
        self.sink.emit(TraceEvent(
            start, KIND_PACKET, "packet", self._run_id,
            flow=self._flow_labels[flow_index],
            core=self._flow_cores[flow_index],
            dur=end - start, args=args,
        ))

    def mem(self, flow_index: int, ts: float, wait: float,
            domain: int, remote: bool) -> None:
        """A sampled L3 miss: DRAM fill with MC queueing ``wait`` cycles."""
        self.sink.emit(TraceEvent(
            ts, KIND_MEM, "l3_miss", self._run_id,
            flow=self._flow_labels[flow_index],
            core=self._flow_cores[flow_index],
            args={"mc_wait": wait, "domain": domain, "remote": remote},
        ))

    def guard(self, flow_index: int, ts: float, action: str,
              **args: Any) -> None:
        """One SLO-guard event (violation, escalation rung, recovery)."""
        self.sink.emit(TraceEvent(
            ts, KIND_GUARD, action, self._run_id,
            flow=self._flow_labels[flow_index],
            core=self._flow_cores[flow_index], args=args,
        ))

    def end_run(self, end_clock: float, events: int) -> None:
        """Close the current run's stream with engine totals."""
        self.sink.emit(TraceEvent(
            end_clock, KIND_META, "run_end", self._run_id,
            args={"events": events},
        ))

    def close(self) -> None:
        """Close the underlying sink."""
        self.sink.close()


#: Shared inactive tracer: the default for machines built without tracing.
NULL_TRACER = Tracer(NULL_SINK, enabled=False)
