"""Benchmark recording: ``BENCH_<name>.json`` artifacts.

Each benchmark (the paper's tables/figures under ``benchmarks/``) records
its headline series — throughputs, drop matrices, curves, timings — as
one JSON file per figure. Runs accumulate a performance trajectory across
PRs: CI uploads the files as artifacts, and ``benchmarks/record.py``
regenerates them standalone without the pytest harness.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Any, Dict, Optional

#: Schema identifier for benchmark records.
SCHEMA = "repro.bench_record/1"


def _jsonable(value: Any) -> Any:
    """Coerce payload values into JSON-serializable shapes.

    Benchmarks hand over whatever their result objects hold: tuples,
    tuple-keyed dicts (e.g. the Figure 2 matrix), dataclasses (solo
    profiles), numpy scalars. Keys become strings; sequences become
    lists; unknown objects fall back to ``repr``.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {
            ("/".join(map(str, k)) if isinstance(k, tuple) else str(k)):
                _jsonable(v)
            for k, v in value.items()
        }
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, bool)) or value is None:
        return value
    if isinstance(value, (int, float)):
        return value
    item = getattr(value, "item", None)  # numpy scalars
    if callable(item):
        try:
            return item()
        except (TypeError, ValueError):
            pass
    return repr(value)


class BenchRecorder:
    """Writes one ``BENCH_<name>.json`` per recorded benchmark."""

    def __init__(self, out_dir: str = "bench_reports",
                 config: Optional[Any] = None):
        self.out_dir = out_dir
        self.config = config if config is not None else {}
        self.written: Dict[str, str] = {}

    def record(self, name: str, data: Dict[str, Any],
               benchmark=None) -> str:
        """Write the record for ``name``; returns the file path.

        ``benchmark`` optionally carries a pytest-benchmark fixture whose
        wall-clock stats are embedded under ``timing`` (seconds).
        """
        if not name or any(c in name for c in "/\\"):
            raise ValueError(f"bad benchmark name {name!r}")
        record: Dict[str, Any] = {
            "schema": SCHEMA,
            "name": name,
            "config": _jsonable(self.config),
            "data": _jsonable(data),
        }
        timing = _benchmark_timing(benchmark)
        if timing:
            record["timing"] = timing
        os.makedirs(self.out_dir, exist_ok=True)
        path = os.path.join(self.out_dir, f"BENCH_{name}.json")
        with open(path, "w") as fh:
            json.dump(record, fh, indent=2)
            fh.write("\n")
        self.written[name] = path
        return path


def _benchmark_timing(benchmark) -> Dict[str, float]:
    """Extract wall-clock stats from a pytest-benchmark fixture, if any."""
    if benchmark is None:
        return {}
    try:
        stats = benchmark.stats.stats
        return {
            "mean_s": float(stats.mean),
            "min_s": float(stats.min),
            "max_s": float(stats.max),
            "rounds": int(stats.rounds),
        }
    except (AttributeError, TypeError):
        return {}


def load_record(path: str) -> Dict[str, Any]:
    """Read a ``BENCH_*.json`` file back, checking its schema marker."""
    with open(path) as fh:
        record = json.load(fh)
    if record.get("schema") != SCHEMA:
        raise ValueError(f"{path}: not a bench record "
                         f"(schema {record.get('schema')!r})")
    return record
