"""Observability sessions: ambient tracer/metrics configuration.

The analysis layers (profiler, prediction sweeps, scheduling studies)
construct machines internally; threading tracer and sampler arguments
through every call chain would touch every signature in the package.
Instead, an :class:`ObsSession` installs process-ambient defaults:

    with observe(tracer=tracer, metrics_interval_us=50.0) as session:
        predictor = ContentionPredictor.build(["MON", "RE"], spec)
        # every Machine built inside inherits the tracer and gets a
        # fresh MetricsSampler

    session.samplers        # one per machine run, in construction order

A machine built with explicit ``tracer=`` / ``metrics=`` arguments always
wins over the ambient session. Sessions nest; the innermost applies.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, List, Optional

from .metrics import MetricsSampler
from .trace import NULL_TRACER, Tracer

_CURRENT: List["ObsSession"] = []


class ObsSession:
    """One scope of ambient observability configuration."""

    def __init__(self, tracer: Optional[Tracer] = None,
                 metrics_interval_us: Optional[float] = None,
                 metrics_interval_cycles: Optional[float] = None):
        if metrics_interval_us is not None and metrics_interval_cycles is not None:
            raise ValueError("specify at most one metrics interval unit")
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._interval_us = metrics_interval_us
        self._interval_cycles = metrics_interval_cycles
        #: Samplers handed to machines, in machine-construction order.
        self.samplers: List[MetricsSampler] = []

    @property
    def metrics_enabled(self) -> bool:
        return (self._interval_us is not None
                or self._interval_cycles is not None)

    def new_sampler(self) -> Optional[MetricsSampler]:
        """A fresh sampler for one machine (None when metrics are off)."""
        if not self.metrics_enabled:
            return None
        sampler = MetricsSampler(interval_us=self._interval_us,
                                 interval_cycles=self._interval_cycles)
        self.samplers.append(sampler)
        return sampler

    def timeseries_payload(self) -> Dict[str, Dict[str, list]]:
        """All sampled series, keyed ``run<N>`` in machine order."""
        out: Dict[str, Dict[str, list]] = {}
        for index, sampler in enumerate(self.samplers):
            payload = sampler.payload()
            if payload:
                out[f"run{index}"] = payload
        return out

    def close(self) -> None:
        """Flush the tracer's sink (writes file-backed trace formats)."""
        if self.tracer is not NULL_TRACER:
            self.tracer.close()


def current_session() -> Optional[ObsSession]:
    """The innermost active session, or None."""
    return _CURRENT[-1] if _CURRENT else None


@contextmanager
def observe(tracer: Optional[Tracer] = None,
            metrics_interval_us: Optional[float] = None,
            metrics_interval_cycles: Optional[float] = None):
    """Scope ambient observability over a block of machine-building code."""
    session = ObsSession(tracer=tracer,
                         metrics_interval_us=metrics_interval_us,
                         metrics_interval_cycles=metrics_interval_cycles)
    _CURRENT.append(session)
    try:
        yield session
    finally:
        _CURRENT.pop()
        session.close()
