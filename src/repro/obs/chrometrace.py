"""Chrome ``trace_event`` export.

Converts the structured event stream into the Trace Event Format consumed
by ``about:tracing`` and Perfetto: one *process* per machine run, one
*thread* per core, packet spans as complete ("X") events with nested
per-element child spans, phase markers and sampled memory events as
instants. Timestamps are converted from simulated cycles to microseconds
using the frequency carried by the ``run_begin`` metadata event.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, List, Union

from .trace import (
    KIND_MEM,
    KIND_META,
    KIND_PACKET,
    KIND_PHASE,
    TraceEvent,
    TraceSink,
)


class ChromeTraceSink(TraceSink):
    """Buffers events and writes a ``trace_event`` JSON file on close."""

    def __init__(self, path_or_file: Union[str, IO[str]]):
        self._target = path_or_file
        if isinstance(path_or_file, str):
            # Probe writability up front: the file is only written on
            # close, and a bad path must not surface after a long run.
            with open(path_or_file, "a"):
                pass
        self._events: List[TraceEvent] = []
        self.written = False

    def emit(self, event: TraceEvent) -> None:
        self._events.append(event)

    def close(self) -> None:
        if self.written:
            return
        payload = to_chrome_trace(self._events)
        if isinstance(self._target, str):
            with open(self._target, "w") as fh:
                json.dump(payload, fh)
        else:
            json.dump(payload, self._target)
        self.written = True


def _us(cycles: float, freq_hz: float) -> float:
    return cycles / freq_hz * 1e6


def to_chrome_trace(events: List[TraceEvent]) -> Dict[str, Any]:
    """The Trace Event Format document for a structured event stream."""
    out: List[Dict[str, Any]] = []
    freq_by_run: Dict[int, float] = {}
    for event in events:
        run = event.run
        if event.kind == KIND_META and event.name == "run_begin":
            freq_by_run[run] = float(event.args.get("freq_hz", 1e9))
            flows = event.args.get("flows", [])
            labels = ", ".join(f["label"] for f in flows) or "machine"
            out.append({
                "ph": "M", "name": "process_name", "pid": run, "tid": 0,
                "args": {"name": f"run {run}: {labels}"},
            })
            for flow in flows:
                out.append({
                    "ph": "M", "name": "thread_name", "pid": run,
                    "tid": flow["core"],
                    "args": {"name": f"core {flow['core']}: {flow['label']}"},
                })
            continue
        freq = freq_by_run.get(run, 1e9)
        ts = _us(event.ts, freq)
        tid = event.core if event.core is not None else 0
        if event.kind == KIND_PACKET:
            dur = _us(event.dur, freq)
            out.append({
                "ph": "X", "name": "packet", "cat": "packet",
                "pid": run, "tid": tid, "ts": ts, "dur": dur,
                "args": {"seq": event.args.get("seq"), "flow": event.flow},
            })
            out.extend(_element_spans(event, run, tid, ts, dur))
        elif event.kind == KIND_PHASE:
            out.append({
                "ph": "i", "s": "t", "name": event.name, "cat": "phase",
                "pid": run, "tid": tid, "ts": ts,
                "args": dict(event.args, flow=event.flow),
            })
        elif event.kind == KIND_MEM:
            out.append({
                "ph": "i", "s": "t", "name": event.name, "cat": "mem",
                "pid": run, "tid": tid, "ts": ts,
                "args": dict(event.args, flow=event.flow),
            })
        else:  # run_end and any future metadata
            out.append({
                "ph": "i", "s": "g", "name": event.name, "cat": "meta",
                "pid": run, "tid": tid, "ts": ts, "args": dict(event.args),
            })
    return {"traceEvents": out, "displayTimeUnit": "ms"}


def _element_spans(event: TraceEvent, run: int, tid: int, ts: float,
                   dur: float) -> List[Dict[str, Any]]:
    """Child spans subdividing a packet by per-element attribution.

    The engine times whole packets (element boundaries have no cycle
    timestamps of their own), so each element's share of the span is
    apportioned by its recorded work: references weighted against the
    packet total, with every element getting a minimum share for its
    instruction stream.
    """
    marks = event.args.get("elements")
    if not marks or dur <= 0:
        return []
    weights = [refs + 1.0 for _, refs, _ in marks]
    total = sum(weights)
    spans: List[Dict[str, Any]] = []
    cursor = ts
    for (name, refs, instructions), weight in zip(marks, weights):
        share = dur * weight / total
        spans.append({
            "ph": "X", "name": name, "cat": "element",
            "pid": run, "tid": tid, "ts": cursor, "dur": share,
            "args": {"refs": refs, "instructions": instructions},
        })
        cursor += share
    return spans


def write_chrome_trace(events: List[TraceEvent],
                       path_or_file: Union[str, IO[str]]) -> None:
    """Write an event list (e.g. from a :class:`ListSink`) as a trace file."""
    payload = to_chrome_trace(events)
    if isinstance(path_or_file, str):
        with open(path_or_file, "w") as fh:
            json.dump(payload, fh)
    else:
        json.dump(payload, path_or_file)
