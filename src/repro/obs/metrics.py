"""Time-series metrics: periodic counter sampling during a run.

The seed engine only exposed one end-of-run counter delta per flow; the
paper's measurement methodology (and any LENS-style multi-resource
analysis) wants per-resource *time series*. A :class:`MetricsSampler`
snapshots each flow's :class:`~repro.hw.counters.CoreCounters` at a
configurable simulated-time interval; consecutive snapshots yield
interval rates (throughput, L3 refs/sec, hit rate, MC wait fraction)
exposed as :class:`FlowSeries` with percentile summaries.

Sampling happens at packet boundaries (the engine's natural quiescent
points), so sample timestamps carry the actual clock of the boundary that
triggered them rather than the nominal grid point; rates are computed
over the actual elapsed cycles and stay exact. The telescoping property
holds by construction: interval deltas sum to the end-of-run totals
(asserted in ``tests/test_obs_metrics.py``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Interval-point fields whose percentile summaries are most useful.
SUMMARY_FIELDS = ("pps", "l3_refs_per_sec", "l3_hit_rate", "mc_wait_frac")


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile of ``values`` (q in [0, 100])."""
    if not 0.0 <= q <= 100.0:
        raise ValueError("percentile must be in [0, 100]")
    if not values:
        raise ValueError("no values")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = q / 100.0 * (len(ordered) - 1)
    lo = int(position)
    hi = min(lo + 1, len(ordered) - 1)
    frac = position - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac


class FlowSeries:
    """One flow's sampled counter history and its derived interval rates."""

    def __init__(self, label: str, core: int, freq_hz: float,
                 snaps: List[Tuple[float, Any]]):
        self.label = label
        self.core = core
        self.freq_hz = freq_hz
        #: ``[(clock_cycles, CoreCounters snapshot), ...]`` in time order.
        self.snaps = snaps

    def __len__(self) -> int:
        return len(self.snaps)

    def totals(self):
        """Counter delta across the whole sampled range."""
        if len(self.snaps) < 2:
            raise ValueError(f"flow {self.label!r} has fewer than 2 samples")
        return self.snaps[-1][1].delta(self.snaps[0][1])

    def points(self) -> List[Dict[str, float]]:
        """Interval rates between consecutive snapshots.

        Each point covers ``(t0_s, t1_s]`` in simulated seconds and
        reports the raw deltas plus the derived per-resource rates the
        paper's analysis is built on.
        """
        freq = self.freq_hz
        out: List[Dict[str, float]] = []
        for (c0, s0), (c1, s1) in zip(self.snaps, self.snaps[1:]):
            dc = c1 - c0
            if dc <= 0:
                continue
            d = s1.delta(s0)
            seconds = dc / freq
            refs = d.l3_refs
            out.append({
                "t0_s": c0 / freq,
                "t1_s": c1 / freq,
                "cycles": dc,
                "packets": d.packets,
                "instructions": d.instructions,
                "pps": d.packets / seconds,
                "l3_refs": refs,
                "l3_refs_per_sec": refs / seconds,
                "l3_hits_per_sec": d.l3_hits / seconds,
                "l3_misses_per_sec": d.l3_misses / seconds,
                "l3_hit_rate": d.l3_hits / refs if refs else 0.0,
                "mc_wait_frac": d.mc_wait_cycles / dc,
                "remote_refs_per_sec": d.remote_refs / seconds,
            })
        return out

    def series(self, field: str) -> List[Tuple[float, float]]:
        """``(t1_s, value)`` pairs of one derived field over time."""
        return [(p["t1_s"], p[field]) for p in self.points()]

    def drop_series(self, solo_pps: float) -> List[Tuple[float, float]]:
        """Per-interval throughput drop vs. a solo baseline rate."""
        if solo_pps <= 0:
            raise ValueError("solo throughput must be positive")
        return [(p["t1_s"], (solo_pps - p["pps"]) / solo_pps)
                for p in self.points()]

    def summary(self, fields: Sequence[str] = SUMMARY_FIELDS,
                qs: Sequence[float] = (0, 50, 90, 99, 100)) -> Dict[str, Dict[str, float]]:
        """Percentile summary of interval rates: ``{field: {p50: ...}}``."""
        points = self.points()
        out: Dict[str, Dict[str, float]] = {}
        for field in fields:
            values = [p[field] for p in points]
            if not values:
                continue
            stats = {f"p{q:g}": percentile(values, q) for q in qs}
            stats["mean"] = sum(values) / len(values)
            out[field] = stats
        return out


class MetricsSampler:
    """Samples every flow's counters at a fixed simulated-time interval.

    Attach one to a :class:`~repro.hw.machine.Machine` (``metrics=``
    argument, or implicitly through an :func:`repro.obs.observe`
    session). The engine checks a single boolean to decide whether the
    sampler exists, then compares the flow clock against
    :attr:`next_due` at packet boundaries — both O(1).
    """

    def __init__(self, interval_us: Optional[float] = None,
                 interval_cycles: Optional[float] = None):
        if (interval_us is None) == (interval_cycles is None):
            raise ValueError(
                "specify exactly one of interval_us / interval_cycles")
        if interval_us is not None and interval_us <= 0:
            raise ValueError("interval_us must be positive")
        if interval_cycles is not None and interval_cycles <= 0:
            raise ValueError("interval_cycles must be positive")
        self._interval_us = interval_us
        self.interval_cycles = interval_cycles
        self.freq_hz: Optional[float] = None
        #: Per-flow next sample deadline in cycles (engine fast path).
        self.next_due: List[float] = []
        self._snaps: List[List[Tuple[float, Any]]] = []
        self._labels: List[str] = []
        self._cores: List[int] = []
        self._begun = False

    # -- engine protocol ----------------------------------------------------

    def begin(self, machine) -> None:
        """Bind to a machine at run start; takes the t=0 snapshot."""
        if self._begun:
            raise RuntimeError("sampler already attached to a run; "
                               "build a fresh MetricsSampler per machine")
        self._begun = True
        self.freq_hz = machine.spec.freq_hz
        if self.interval_cycles is None:
            self.interval_cycles = self._interval_us * 1e-6 * self.freq_hz
        interval = self.interval_cycles
        for fr in machine.flows:
            self._labels.append(fr.label)
            self._cores.append(fr.core)
            snap = fr.counters.copy()
            snap.cycles = 0.0
            self._snaps.append([(0.0, snap)])
            self.next_due.append(interval)

    def sample(self, flow_index: int, clock: float, counters) -> None:
        """Snapshot one flow at ``clock`` and advance its deadline."""
        snap = counters.copy()
        snap.cycles = clock
        self._snaps[flow_index].append((clock, snap))
        due = self.next_due[flow_index]
        interval = self.interval_cycles
        while due <= clock:
            due += interval
        self.next_due[flow_index] = due

    def finish(self, flows) -> None:
        """Final snapshot per flow at its end-of-run clock."""
        for i, fr in enumerate(flows):
            last_clock = self._snaps[i][-1][0]
            if fr.clock > last_clock:
                snap = fr.counters.copy()
                snap.cycles = fr.clock
                self._snaps[i].append((fr.clock, snap))

    # -- results ------------------------------------------------------------

    @property
    def flow_labels(self) -> List[str]:
        return list(self._labels)

    def series(self, flow: str) -> FlowSeries:
        """The sampled series of the flow labelled ``flow``."""
        try:
            index = self._labels.index(flow)
        except ValueError:
            raise KeyError(f"no sampled flow {flow!r}; "
                           f"have {self._labels}") from None
        return FlowSeries(flow, self._cores[index], self.freq_hz,
                          self._snaps[index])

    def all_series(self) -> Dict[str, FlowSeries]:
        """Every flow's series, keyed by label."""
        return {label: self.series(label) for label in self._labels}

    def payload(self) -> Dict[str, List[Dict[str, float]]]:
        """JSON-ready interval points per flow (RunReport timeseries)."""
        out: Dict[str, List[Dict[str, float]]] = {}
        for label in self._labels:
            points = self.series(label).points()
            if points:
                out[label] = points
        return out
