"""Machine-readable run reports.

A :class:`RunReport` is the canonical serialized record of one experiment
or CLI invocation: what was run (kind, command, config, seed, scale), on
what simulated hardware (the full calibration-constant set of the
:class:`~repro.hw.topology.PlatformSpec`), what came out (per-flow
statistics, kind-specific results), and — when metrics sampling was on —
the per-flow time series. Reports serialize to JSON (``to_json`` /
``write``) and CSV (``flows_csv`` / ``timeseries_csv``); the
``benchmarks/record.py`` harness wraps them into ``BENCH_<name>.json``
files so the repository accumulates a performance trajectory across PRs.

The module is deliberately free of imports from :mod:`repro.hw` /
:mod:`repro.click`: everything is duck-typed, which keeps the
observability layer import-cycle-free (the machine imports ``obs``).
"""

from __future__ import annotations

import csv
import dataclasses
import io
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: Schema identifier embedded in every report (bump on breaking change).
SCHEMA = "repro.run_report/1"

#: Keys every serialized report must carry.
REQUIRED_KEYS = ("schema", "kind", "platform", "config", "flows", "results")

#: The PlatformSpec fields recorded as calibration constants.
_PLATFORM_FIELDS = (
    "n_sockets", "cores_per_socket", "freq_hz",
    "l1_size", "l1_ways", "l2_size", "l2_ways", "l3_size", "l3_ways",
    "lat_l1", "lat_l2", "lat_l3", "lat_dram_extra",
    "mc_service_cycles", "qpi_extra_cycles", "qpi_service_cycles",
    "scale",
)

#: Per-flow statistic columns (FlowStats property names).
FLOW_STAT_FIELDS = (
    "packets", "cycles", "seconds", "packets_per_sec",
    "cycles_per_packet", "cycles_per_instruction",
    "l3_refs_per_sec", "l3_hits_per_sec", "l3_misses_per_sec",
    "l3_hit_rate", "l3_refs_per_packet", "l3_misses_per_packet",
    "l2_hits_per_packet",
)


def platform_dict(spec) -> Dict[str, Any]:
    """The calibration constants of a PlatformSpec, as plain data."""
    return {name: getattr(spec, name) for name in _PLATFORM_FIELDS}


def flow_stats_dict(label: str, stats) -> Dict[str, Any]:
    """One flow's measured-window statistics as plain data."""
    out: Dict[str, Any] = {"label": label}
    for name in FLOW_STAT_FIELDS:
        out[name] = getattr(stats, name)
    latencies = getattr(stats, "latencies", None)
    if latencies:
        out["latency_ns"] = {
            f"p{q:g}": stats.latency_percentile_ns(q)
            for q in (50, 90, 99)
        }
    return out


def _config_dict(config) -> Dict[str, Any]:
    """A config object (dataclass or mapping) as plain data."""
    if config is None:
        return {}
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        return dataclasses.asdict(config)
    if isinstance(config, dict):
        return dict(config)
    raise TypeError(f"cannot serialize config of type {type(config)!r}")


@dataclass
class RunReport:
    """One run's machine-readable record. Build with :meth:`new`."""

    kind: str
    command: str = ""
    seed: Optional[int] = None
    scale: Optional[int] = None
    config: Dict[str, Any] = field(default_factory=dict)
    platform: Dict[str, Any] = field(default_factory=dict)
    flows: List[Dict[str, Any]] = field(default_factory=list)
    results: Dict[str, Any] = field(default_factory=dict)
    timeseries: Dict[str, Any] = field(default_factory=dict)
    #: Volatile execution metadata (sweep parallelism, cache hit/miss and
    #: retry counters, wall-clock). Everything *outside* this key is
    #: deterministic: byte-identical across job counts and cache states.
    execution: Dict[str, Any] = field(default_factory=dict)
    schema: str = SCHEMA

    @classmethod
    def new(cls, kind: str, spec=None, config=None, command: str = "",
            seed: Optional[int] = None) -> "RunReport":
        """A report pre-filled from a PlatformSpec and an experiment config."""
        config_data = _config_dict(config)
        if seed is None:
            seed = config_data.get("seed")
        scale = None
        if spec is not None:
            scale = spec.scale
        elif "scale" in config_data:
            scale = config_data["scale"]
        return cls(
            kind=kind, command=command, seed=seed, scale=scale,
            config=config_data,
            platform=platform_dict(spec) if spec is not None else {},
        )

    # -- population ---------------------------------------------------------

    def add_result_flows(self, result) -> None:
        """Append every flow of a :class:`~repro.hw.machine.RunResult`."""
        for label in result.flow_labels:
            self.flows.append(flow_stats_dict(label, result[label]))

    def attach_metrics(self, sampler, name: str = "run0") -> None:
        """Embed a sampler's interval time series under ``timeseries``."""
        payload = sampler.payload()
        if payload:
            self.timeseries[name] = payload

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        out = dataclasses.asdict(self)
        # Serial runs carry no execution metadata; omitting the empty key
        # keeps their documents byte-identical to pre-sweep reports (and
        # to the committed goldens).
        if not out["execution"]:
            del out["execution"]
        # Keep the schema marker first for human readers of the JSON.
        return {"schema": out.pop("schema"), **out}

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def write(self, path: str) -> str:
        """Write the JSON document to ``path``; returns the path."""
        with open(path, "w") as fh:
            fh.write(self.to_json())
            fh.write("\n")
        return path

    def flows_csv(self) -> str:
        """The per-flow statistics table as CSV text."""
        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow(("label",) + FLOW_STAT_FIELDS)
        for flow in self.flows:
            writer.writerow([flow.get("label")] +
                            [flow.get(name) for name in FLOW_STAT_FIELDS])
        return buf.getvalue()

    def timeseries_csv(self, run: str = "run0",
                       flow: Optional[str] = None) -> str:
        """One run's sampled time series as CSV (all flows or one)."""
        series = self.timeseries.get(run)
        if not series:
            raise KeyError(f"report has no timeseries for {run!r}")
        labels = [flow] if flow is not None else sorted(series)
        columns = None
        buf = io.StringIO()
        writer = csv.writer(buf)
        for label in labels:
            for point in series[label]:
                if columns is None:
                    columns = sorted(point)
                    writer.writerow(["flow"] + columns)
                writer.writerow([label] + [point.get(c) for c in columns])
        if columns is None:
            raise KeyError(f"no points recorded for {labels!r}")
        return buf.getvalue()


def validate_report(data: Dict[str, Any]) -> List[str]:
    """Schema-check a deserialized report; returns problems (empty = valid)."""
    problems: List[str] = []
    if not isinstance(data, dict):
        return [f"report must be an object, got {type(data).__name__}"]
    for key in REQUIRED_KEYS:
        if key not in data:
            problems.append(f"missing required key {key!r}")
    if problems:
        return problems
    if data["schema"] != SCHEMA:
        problems.append(f"unknown schema {data['schema']!r}")
    if not isinstance(data["kind"], str) or not data["kind"]:
        problems.append("kind must be a non-empty string")
    for key in ("platform", "config", "results"):
        if not isinstance(data[key], dict):
            problems.append(f"{key} must be an object")
    if not isinstance(data["flows"], list):
        problems.append("flows must be a list")
    else:
        for i, flow in enumerate(data["flows"]):
            if not isinstance(flow, dict) or "label" not in flow:
                problems.append(f"flows[{i}] must be an object with a label")
    if not isinstance(data.get("execution", {}), dict):
        problems.append("execution must be an object")
    timeseries = data.get("timeseries", {})
    if not isinstance(timeseries, dict):
        problems.append("timeseries must be an object")
    else:
        for run, series in timeseries.items():
            if not isinstance(series, dict):
                problems.append(f"timeseries[{run!r}] must map flows to points")
                continue
            for label, points in series.items():
                if not isinstance(points, list):
                    problems.append(
                        f"timeseries[{run!r}][{label!r}] must be a list")
    return problems
