"""IPv4 address utilities (addresses are plain ints for speed)."""

from __future__ import annotations

import random


def ip_to_int(dotted: str) -> int:
    """Parse ``'a.b.c.d'`` into a 32-bit integer."""
    parts = dotted.split(".")
    if len(parts) != 4:
        raise ValueError(f"not an IPv4 address: {dotted!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"octet out of range in {dotted!r}")
        value = (value << 8) | octet
    return value


def int_to_ip(value: int) -> str:
    """Format a 32-bit integer as dotted-quad."""
    if not 0 <= value <= 0xFFFFFFFF:
        raise ValueError(f"not a 32-bit value: {value}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def prefix_mask(prefix_len: int) -> int:
    """Network mask for a prefix of ``prefix_len`` bits."""
    if not 0 <= prefix_len <= 32:
        raise ValueError(f"prefix length out of range: {prefix_len}")
    if prefix_len == 0:
        return 0
    return (0xFFFFFFFF << (32 - prefix_len)) & 0xFFFFFFFF


def network_of(addr: int, prefix_len: int) -> int:
    """The network part of ``addr`` under a ``prefix_len`` mask."""
    return addr & prefix_mask(prefix_len)


def random_ip(rng: random.Random) -> int:
    """A uniformly random IPv4 address (the paper's worst-case input)."""
    return rng.getrandbits(32)
