"""Traffic generators.

The paper crafts input traffic per application so as to *maximize* each
application's sensitivity to contention (Section 2.1): uniformly random
destination addresses for IP forwarding (random trie paths), random
addresses drawn from a fixed population for NetFlow (a live table of a
known size), non-matching addresses for the firewall (every packet scans
all rules), and content with a controlled redundancy fraction for
redundancy elimination. Each generator here reproduces one of those
input classes.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Sequence

from ..constants import DEFAULT_PAYLOAD_BYTES
from .packet import Packet


class TrafficSource:
    """Interface: an unbounded (or replayed) stream of packets."""

    def next_packet(self) -> Packet:
        """Produce the next packet."""
        raise NotImplementedError

    def __iter__(self):
        while True:
            yield self.next_packet()

    def take(self, n: int) -> List[Packet]:
        """The next ``n`` packets as a list (test/example helper)."""
        return [self.next_packet() for _ in range(n)]


class UniformRandomTraffic(TrafficSource):
    """Uniformly random src/dst addresses; static payload.

    This is the paper's input for IP forwarding: random destinations
    maximize routing-trie path diversity and hence cache sensitivity.
    """

    def __init__(self, rng: random.Random,
                 payload_bytes: int = DEFAULT_PAYLOAD_BYTES,
                 sport: int = 1000, dport: int = 2000, addr_bits: int = 32):
        self.rng = rng
        self.payload = b"\xa5" * payload_bytes
        self.sport = sport
        self.dport = dport
        self.addr_bits = addr_bits

    def next_packet(self) -> Packet:
        rng = self.rng
        bits = self.addr_bits
        return Packet.udp(
            src=rng.getrandbits(bits), dst=rng.getrandbits(bits),
            sport=self.sport, dport=self.dport, payload=self.payload,
        )


class FlowPopulationTraffic(TrafficSource):
    """Random draws from a fixed population of 5-tuples.

    The paper sizes NetFlow's input "such that the NetFlow hash table
    contains 100000 entries"; a fixed population of that size reproduces
    a live table of exactly that many flows, each accessed uniformly.
    """

    def __init__(self, rng: random.Random, n_flows: int,
                 payload_bytes: int = DEFAULT_PAYLOAD_BYTES,
                 addr_bits: int = 32):
        if n_flows <= 0:
            raise ValueError("population must have at least one flow")
        self.rng = rng
        self.payload = b"\x5a" * payload_bytes
        self.addr_bits = addr_bits
        self.population: List[tuple] = [
            (rng.getrandbits(addr_bits), rng.getrandbits(addr_bits),
             rng.randrange(1024, 65536), rng.randrange(1, 1024))
            for _ in range(n_flows)
        ]

    def next_packet(self) -> Packet:
        src, dst, sport, dport = self.rng.choice(self.population)
        return Packet.udp(src=src, dst=dst, sport=sport, dport=dport,
                          payload=self.payload)


class RedundantTraffic(TrafficSource):
    """Traffic whose payload repeats recently-seen content.

    ``redundancy`` is the probability that a packet's payload is a repeat
    of one of the last ``pool_size`` distinct payloads — the traffic class
    redundancy elimination exists to compress.
    """

    def __init__(self, rng: random.Random, redundancy: float = 0.5,
                 payload_bytes: int = DEFAULT_PAYLOAD_BYTES,
                 pool_size: int = 128, n_flows: int = 4096,
                 addr_bits: int = 32):
        if not 0.0 <= redundancy <= 1.0:
            raise ValueError("redundancy must be in [0, 1]")
        self.rng = rng
        self.redundancy = redundancy
        self.payload_bytes = payload_bytes
        self.pool: List[bytes] = []
        self.pool_size = pool_size
        self.n_flows = n_flows
        self.addr_bits = addr_bits

    def next_packet(self) -> Packet:
        rng = self.rng
        if self.pool and rng.random() < self.redundancy:
            payload = rng.choice(self.pool)
        else:
            payload = rng.randbytes(self.payload_bytes)
            self.pool.append(payload)
            if len(self.pool) > self.pool_size:
                self.pool.pop(0)
        bits = self.addr_bits
        return Packet.udp(
            src=rng.getrandbits(bits), dst=rng.getrandbits(bits),
            sport=rng.randrange(1024, 65536),
            dport=rng.randrange(1, 1024) % self.n_flows + 1,
            payload=payload,
        )


class ReplaySource(TrafficSource):
    """Replay a fixed packet sequence, cyclically by default."""

    def __init__(self, packets: Sequence[Packet], cycle: bool = True):
        if not packets:
            raise ValueError("nothing to replay")
        self.packets = list(packets)
        self.cycle = cycle
        self._i = 0

    def next_packet(self) -> Packet:
        if self._i >= len(self.packets):
            if not self.cycle:
                raise StopIteration("replay exhausted")
            self._i = 0
        pkt = self.packets[self._i]
        self._i += 1
        return pkt

    @classmethod
    def from_sources(cls, sources: Iterable[TrafficSource], n_each: int,
                     cycle: bool = True) -> "ReplaySource":
        """Pre-capture ``n_each`` packets from each source into one replay."""
        captured: List[Packet] = []
        for src in sources:
            captured.extend(src.take(n_each))
        return cls(captured, cycle=cycle)
