"""Realistic synthetic workload models: IMIX sizes, Zipf flow popularity.

The paper's generators draw flows uniformly (the worst case for cache
sensitivity). Real traffic is skewed: a few heavy hitters dominate (Zipf)
and packet sizes follow the classic IMIX trimodal mix. These sources let
the examples and ablation benchmarks explore how skew changes contention
(heavy hitters keep their table entries cache-hot, *reducing* sensitivity
— which is exactly why the paper crafts uniform traffic).
"""

from __future__ import annotations

import bisect
import itertools
import random
from typing import List, Optional, Sequence, Tuple

from .flowgen import TrafficSource
from .packet import Packet

#: The classic simple IMIX: (payload bytes, weight). The canonical mix is
#: stated in total frame sizes (64/594/1518); payloads subtract the
#: 42-byte Ethernet+IP+UDP overhead (64-byte frames carry ~22 bytes).
IMIX_MIX: Tuple[Tuple[int, int], ...] = ((22, 7), (552, 4), (1476, 1))


class ZipfFlowTraffic(TrafficSource):
    """A fixed flow population with Zipf(``alpha``) popularity."""

    def __init__(self, rng: random.Random, n_flows: int, alpha: float = 1.0,
                 payload_bytes: int = 128, addr_bits: int = 32):
        if n_flows <= 0:
            raise ValueError("population must have at least one flow")
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.rng = rng
        self.alpha = alpha
        self.payload = b"\x33" * payload_bytes
        self.population: List[tuple] = [
            (rng.getrandbits(addr_bits), rng.getrandbits(addr_bits),
             rng.randrange(1024, 65536), rng.randrange(1, 1024))
            for _ in range(n_flows)
        ]
        # Cumulative Zipf weights over ranks 1..n.
        weights = [1.0 / (rank ** alpha) for rank in range(1, n_flows + 1)]
        self._cdf = list(itertools.accumulate(weights))
        self._total = self._cdf[-1]

    def pick_rank(self) -> int:
        """Zipf-distributed flow rank (0 = most popular)."""
        x = self.rng.random() * self._total
        return bisect.bisect_left(self._cdf, x)

    def next_packet(self) -> Packet:
        src, dst, sport, dport = self.population[self.pick_rank()]
        return Packet.udp(src=src, dst=dst, sport=sport, dport=dport,
                          payload=self.payload)

    def expected_top_share(self, top_n: int) -> float:
        """Fraction of traffic the ``top_n`` most popular flows carry."""
        if top_n <= 0:
            return 0.0
        top_n = min(top_n, len(self._cdf))
        return self._cdf[top_n - 1] / self._total


class IMIXTraffic(TrafficSource):
    """Random-address traffic with IMIX packet sizes."""

    def __init__(self, rng: random.Random,
                 mix: Sequence[Tuple[int, int]] = IMIX_MIX,
                 addr_bits: int = 32,
                 inner: Optional[TrafficSource] = None):
        if not mix:
            raise ValueError("empty size mix")
        if any(size < 0 or weight <= 0 for size, weight in mix):
            raise ValueError("sizes must be >= 0 and weights positive")
        self.rng = rng
        self.addr_bits = addr_bits
        self.inner = inner
        self._sizes: List[int] = []
        for size, weight in mix:
            self._sizes.extend([size] * weight)
        self._payloads = {size: b"\x44" * size for size, _ in mix}

    def next_packet(self) -> Packet:
        size = self.rng.choice(self._sizes)
        if self.inner is not None:
            packet = self.inner.next_packet()
            packet.payload = self._payloads[size]
            packet.ip.total_length = 28 + size
            packet.l4.length = 8 + size
            return packet
        bits = self.addr_bits
        return Packet.udp(src=self.rng.getrandbits(bits),
                          dst=self.rng.getrandbits(bits),
                          payload=self._payloads[size])

    def average_payload(self) -> float:
        """Expected payload bytes per packet under the mix."""
        return sum(self._sizes) / len(self._sizes)
