"""Packet substrate: addresses, checksums, headers, packets, traffic generators."""

from .addresses import (
    ip_to_int,
    int_to_ip,
    prefix_mask,
    network_of,
    random_ip,
)
from .checksum import internet_checksum, verify_checksum, incremental_update16
from .headers import EthernetHeader, IPv4Header, UDPHeader, TCPHeader
from .packet import Packet
from .flowgen import (
    TrafficSource,
    UniformRandomTraffic,
    FlowPopulationTraffic,
    RedundantTraffic,
    ReplaySource,
)
from .traces import ZipfFlowTraffic, IMIXTraffic
from .pcapfile import PcapReader, PcapWriter, read_pcap, write_pcap

__all__ = [
    "ip_to_int",
    "int_to_ip",
    "prefix_mask",
    "network_of",
    "random_ip",
    "internet_checksum",
    "verify_checksum",
    "incremental_update16",
    "EthernetHeader",
    "IPv4Header",
    "UDPHeader",
    "TCPHeader",
    "Packet",
    "TrafficSource",
    "UniformRandomTraffic",
    "FlowPopulationTraffic",
    "RedundantTraffic",
    "ReplaySource",
    "ZipfFlowTraffic",
    "IMIXTraffic",
    "PcapReader",
    "PcapWriter",
    "read_pcap",
    "write_pcap",
]
