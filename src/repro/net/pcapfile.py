"""Minimal pcap (libpcap classic format) reader/writer.

Lets the examples and tools exchange traffic with standard tooling
(tcpdump/wireshark can open what we write). Only the classic microsecond
format is implemented — magic ``0xa1b2c3d4``, both endiannesses on read —
which is all the simulator needs for trace replay.
"""

from __future__ import annotations

import struct
from typing import BinaryIO, Iterable, Iterator, List, Tuple

from .packet import Packet

#: Classic pcap magic (microsecond timestamps).
PCAP_MAGIC = 0xA1B2C3D4
#: Ethernet link type.
LINKTYPE_ETHERNET = 1

_GLOBAL_HDR = struct.Struct("<IHHiIII")
_RECORD_HDR = struct.Struct("<IIII")


class PcapWriter:
    """Write packets to a pcap stream."""

    def __init__(self, stream: BinaryIO, snaplen: int = 65535):
        self._stream = stream
        self.packets_written = 0
        stream.write(_GLOBAL_HDR.pack(
            PCAP_MAGIC, 2, 4, 0, 0, snaplen, LINKTYPE_ETHERNET
        ))

    def write(self, packet: Packet, timestamp: float = 0.0) -> None:
        """Append one packet at ``timestamp`` seconds."""
        data = packet.to_bytes()
        seconds = int(timestamp)
        micros = int(round((timestamp - seconds) * 1_000_000))
        self._stream.write(_RECORD_HDR.pack(seconds, micros, len(data),
                                            len(data)))
        self._stream.write(data)
        self.packets_written += 1

    def write_all(self, packets: Iterable[Packet],
                  interval: float = 1e-6) -> int:
        """Write packets spaced ``interval`` seconds apart; returns count."""
        n = 0
        for i, packet in enumerate(packets):
            self.write(packet, timestamp=i * interval)
            n += 1
        return n


class PcapReader:
    """Read packets from a pcap stream."""

    def __init__(self, stream: BinaryIO):
        self._stream = stream
        header = stream.read(_GLOBAL_HDR.size)
        if len(header) < _GLOBAL_HDR.size:
            raise ValueError("truncated pcap global header")
        magic = struct.unpack("<I", header[:4])[0]
        if magic == PCAP_MAGIC:
            self._endian = "<"
        elif magic == struct.unpack(">I", struct.pack("<I", PCAP_MAGIC))[0]:
            self._endian = ">"
        else:
            raise ValueError(f"not a classic pcap file (magic {magic:#x})")
        fields = struct.unpack(self._endian + "IHHiIII", header)
        self.snaplen = fields[5]
        self.linktype = fields[6]
        if self.linktype != LINKTYPE_ETHERNET:
            raise ValueError(f"unsupported link type {self.linktype}")

    def __iter__(self) -> Iterator[Tuple[float, bytes]]:
        record = struct.Struct(self._endian + "IIII")
        while True:
            header = self._stream.read(record.size)
            if not header:
                return
            if len(header) < record.size:
                raise ValueError("truncated pcap record header")
            seconds, micros, caplen, origlen = record.unpack(header)
            data = self._stream.read(caplen)
            if len(data) < caplen:
                raise ValueError("truncated pcap record body")
            yield seconds + micros / 1_000_000, data

    def packets(self, strict: bool = False) -> Iterator[Tuple[float, Packet]]:
        """Parsed packets; non-IPv4/UDP/TCP records are skipped unless
        ``strict`` (then they raise)."""
        for timestamp, data in self:
            try:
                yield timestamp, Packet.from_bytes(data)
            except ValueError:
                if strict:
                    raise


def write_pcap(path: str, packets: Iterable[Packet],
               interval: float = 1e-6) -> int:
    """Write ``packets`` to ``path``; returns the number written."""
    with open(path, "wb") as stream:
        return PcapWriter(stream).write_all(packets, interval=interval)


def read_pcap(path: str) -> List[Packet]:
    """All parseable packets from ``path``."""
    with open(path, "rb") as stream:
        return [packet for _, packet in PcapReader(stream).packets()]
