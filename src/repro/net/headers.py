"""Protocol headers with real serialization.

Headers are mutable dataclasses kept in native Python fields for speed in
the simulation hot path; :meth:`pack`/:meth:`unpack` produce and parse the
actual wire format (big-endian, per the RFCs) and are exercised by the
functional tests and the pcap-style replay tooling.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from .checksum import internet_checksum

PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17

_ETH_FMT = struct.Struct("!6s6sH")
_IPV4_FMT = struct.Struct("!BBHHHBBHII")
_UDP_FMT = struct.Struct("!HHHH")
_TCP_FMT = struct.Struct("!HHIIBBHHH")


def _mac_bytes(mac: int) -> bytes:
    return mac.to_bytes(6, "big")


@dataclass
class EthernetHeader:
    """Ethernet II header (MACs as 48-bit ints)."""

    dst: int = 0
    src: int = 0
    ethertype: int = 0x0800

    LENGTH = 14

    def pack(self) -> bytes:
        return _ETH_FMT.pack(_mac_bytes(self.dst), _mac_bytes(self.src),
                             self.ethertype)

    @classmethod
    def unpack(cls, data: bytes) -> "EthernetHeader":
        dst, src, ethertype = _ETH_FMT.unpack_from(data)
        return cls(dst=int.from_bytes(dst, "big"),
                   src=int.from_bytes(src, "big"), ethertype=ethertype)


@dataclass
class IPv4Header:
    """IPv4 header (no options; IHL fixed at 5)."""

    src: int = 0
    dst: int = 0
    ttl: int = 64
    protocol: int = PROTO_UDP
    total_length: int = 20
    identification: int = 0
    tos: int = 0
    flags_fragment: int = 0
    checksum: int = 0

    LENGTH = 20

    def compute_checksum(self) -> int:
        """Checksum of this header with the checksum field zeroed."""
        return internet_checksum(self._pack_with_checksum(0))

    def finalize(self) -> "IPv4Header":
        """Fill in the checksum field; returns self for chaining."""
        self.checksum = self.compute_checksum()
        return self

    def _pack_with_checksum(self, checksum: int) -> bytes:
        return _IPV4_FMT.pack(
            (4 << 4) | 5, self.tos, self.total_length, self.identification,
            self.flags_fragment, self.ttl, self.protocol, checksum,
            self.src, self.dst,
        )

    def pack(self) -> bytes:
        return self._pack_with_checksum(self.checksum)

    @classmethod
    def unpack(cls, data: bytes) -> "IPv4Header":
        (vihl, tos, total_length, ident, flags_frag, ttl, proto, checksum,
         src, dst) = _IPV4_FMT.unpack_from(data)
        if vihl >> 4 != 4:
            raise ValueError(f"not an IPv4 header (version {vihl >> 4})")
        if vihl & 0xF != 5:
            raise ValueError("IPv4 options are not supported")
        return cls(src=src, dst=dst, ttl=ttl, protocol=proto,
                   total_length=total_length, identification=ident, tos=tos,
                   flags_fragment=flags_frag, checksum=checksum)

    def is_valid(self) -> bool:
        """Header-level validity: version/ttl/length sanity plus checksum."""
        return (
            0 < self.ttl <= 255
            and self.total_length >= self.LENGTH
            and self.checksum == self.compute_checksum()
        )


@dataclass
class UDPHeader:
    """UDP header (checksum optional, as the RFC allows for IPv4)."""

    sport: int = 0
    dport: int = 0
    length: int = 8
    checksum: int = 0

    LENGTH = 8

    def pack(self) -> bytes:
        return _UDP_FMT.pack(self.sport, self.dport, self.length, self.checksum)

    @classmethod
    def unpack(cls, data: bytes) -> "UDPHeader":
        sport, dport, length, checksum = _UDP_FMT.unpack_from(data)
        return cls(sport=sport, dport=dport, length=length, checksum=checksum)


@dataclass
class TCPHeader:
    """TCP header (no options; data offset fixed at 5)."""

    sport: int = 0
    dport: int = 0
    seq: int = 0
    ack: int = 0
    flags: int = 0
    window: int = 65535
    checksum: int = 0
    urgent: int = 0

    LENGTH = 20

    def pack(self) -> bytes:
        return _TCP_FMT.pack(self.sport, self.dport, self.seq, self.ack,
                             5 << 4, self.flags, self.window, self.checksum,
                             self.urgent)

    @classmethod
    def unpack(cls, data: bytes) -> "TCPHeader":
        (sport, dport, seq, ack, offset, flags, window, checksum,
         urgent) = _TCP_FMT.unpack_from(data)
        if offset >> 4 != 5:
            raise ValueError("TCP options are not supported")
        return cls(sport=sport, dport=dport, seq=seq, ack=ack, flags=flags,
                   window=window, checksum=checksum, urgent=urgent)
