"""The simulated packet.

A :class:`Packet` carries real header objects and payload bytes (the
functional layer forwards, filters, fingerprints, and encrypts them), plus
an optional ``buffer`` :class:`~repro.mem.region.Region` binding the packet
to simulated memory so its cache-line footprint can be modeled.
"""

from __future__ import annotations

from typing import Optional

from ..mem.region import Region
from .headers import EthernetHeader, IPv4Header, TCPHeader, UDPHeader, PROTO_TCP


class Packet:
    """One packet: Ethernet + IPv4 + (UDP|TCP) + payload."""

    __slots__ = ("eth", "ip", "l4", "payload", "buffer", "annotations")

    def __init__(self, ip: IPv4Header, l4, payload: bytes = b"",
                 eth: Optional[EthernetHeader] = None,
                 buffer: Optional[Region] = None):
        self.eth = eth if eth is not None else EthernetHeader()
        self.ip = ip
        self.l4 = l4
        self.payload = payload
        self.buffer = buffer
        self.annotations: Optional[dict] = None

    # -- construction helpers -------------------------------------------------

    #: Shared default Ethernet header for generated packets. Elements never
    #: mutate layer-2 fields, so sources may share one instance (pass a
    #: fresh ``eth=`` to a constructor if a packet needs its own).
    DEFAULT_ETH = EthernetHeader()

    @classmethod
    def udp(cls, src: int, dst: int, sport: int = 1000, dport: int = 2000,
            payload: bytes = b"", ttl: int = 64,
            compute_checksum: bool = False) -> "Packet":
        """Build a UDP packet with a consistent length field.

        ``compute_checksum=False`` leaves the IP checksum zero — checksum
        offload, as a NIC would do; validating elements treat a zero
        checksum as offloaded. Pass True for fully self-contained packets.
        """
        l4 = UDPHeader(sport=sport, dport=dport,
                       length=UDPHeader.LENGTH + len(payload))
        ip = IPv4Header(
            src=src, dst=dst, ttl=ttl, protocol=17,
            total_length=IPv4Header.LENGTH + UDPHeader.LENGTH + len(payload),
        )
        if compute_checksum:
            ip.finalize()
        return cls(ip=ip, l4=l4, payload=payload, eth=cls.DEFAULT_ETH)

    @classmethod
    def tcp(cls, src: int, dst: int, sport: int = 1000, dport: int = 2000,
            payload: bytes = b"", ttl: int = 64, seq: int = 0,
            compute_checksum: bool = False) -> "Packet":
        """Build a TCP packet with a consistent length field."""
        l4 = TCPHeader(sport=sport, dport=dport, seq=seq)
        ip = IPv4Header(
            src=src, dst=dst, ttl=ttl, protocol=PROTO_TCP,
            total_length=IPv4Header.LENGTH + TCPHeader.LENGTH + len(payload),
        )
        if compute_checksum:
            ip.finalize()
        return cls(ip=ip, l4=l4, payload=payload, eth=cls.DEFAULT_ETH)

    # -- properties -------------------------------------------------------------

    @property
    def wire_length(self) -> int:
        """Bytes on the wire (Ethernet header + IP total length)."""
        return EthernetHeader.LENGTH + self.ip.total_length

    @property
    def header_bytes(self) -> int:
        """Bytes of headers preceding the payload."""
        return EthernetHeader.LENGTH + IPv4Header.LENGTH + self.l4.LENGTH

    def five_tuple(self) -> tuple:
        """(src, dst, proto, sport, dport) — the NetFlow key."""
        return (self.ip.src, self.ip.dst, self.ip.protocol,
                self.l4.sport, self.l4.dport)

    def flow_hash(self) -> int:
        """Deterministic hash of the 5-tuple (used by RSS and NetFlow)."""
        src, dst, proto, sport, dport = self.five_tuple()
        h = (src * 0x9E3779B1) & 0xFFFFFFFF
        h ^= (dst * 0x85EBCA77) & 0xFFFFFFFF
        h ^= (((sport << 16) | dport) * 0xC2B2AE3D) & 0xFFFFFFFF
        h ^= proto * 0x27D4EB2F
        h &= 0xFFFFFFFF
        h ^= h >> 15
        h = (h * 0x2545F491) & 0xFFFFFFFF
        h ^= h >> 13
        return h

    # -- serialization ------------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize to actual wire bytes."""
        return self.eth.pack() + self.ip.pack() + self.l4.pack() + self.payload

    @classmethod
    def from_bytes(cls, data: bytes) -> "Packet":
        """Parse wire bytes back into a Packet (UDP and TCP only)."""
        eth = EthernetHeader.unpack(data)
        ip = IPv4Header.unpack(data[EthernetHeader.LENGTH:])
        off = EthernetHeader.LENGTH + IPv4Header.LENGTH
        if ip.protocol == PROTO_TCP:
            l4 = TCPHeader.unpack(data[off:])
            off += TCPHeader.LENGTH
        elif ip.protocol == 17:
            l4 = UDPHeader.unpack(data[off:])
            off += UDPHeader.LENGTH
        else:
            raise ValueError(f"unsupported protocol {ip.protocol}")
        end = EthernetHeader.LENGTH + ip.total_length
        return cls(eth=eth, ip=ip, l4=l4, payload=data[off:end])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        from .addresses import int_to_ip

        return (
            f"Packet({int_to_ip(self.ip.src)}:{self.l4.sport} -> "
            f"{int_to_ip(self.ip.dst)}:{self.l4.dport}, "
            f"proto={self.ip.protocol}, len={self.wire_length})"
        )
