"""Internet checksum (RFC 1071) and incremental update (RFC 1624).

IP forwarding updates the header checksum after decrementing the TTL; the
incremental form is what real forwarders (and Click's ``DecIPTTL``) use.
"""

from __future__ import annotations


def internet_checksum(data: bytes) -> int:
    """RFC 1071 one's-complement checksum of ``data`` (16-bit result)."""
    total = 0
    n = len(data)
    # Sum 16-bit big-endian words; pad a trailing odd byte with zero.
    for i in range(0, n - 1, 2):
        total += (data[i] << 8) | data[i + 1]
    if n % 2:
        total += data[-1] << 8
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def verify_checksum(data: bytes) -> bool:
    """True if ``data`` (including its checksum field) sums to zero."""
    total = 0
    n = len(data)
    for i in range(0, n - 1, 2):
        total += (data[i] << 8) | data[i + 1]
    if n % 2:
        total += data[-1] << 8
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return total == 0xFFFF


def incremental_update16(checksum: int, old_word: int, new_word: int) -> int:
    """RFC 1624 incremental checksum update for one 16-bit field change.

    ``checksum`` is the current header checksum; returns the checksum after
    the field changes from ``old_word`` to ``new_word``.
    """
    if not 0 <= checksum <= 0xFFFF:
        raise ValueError("checksum must be a 16-bit value")
    if not (0 <= old_word <= 0xFFFF and 0 <= new_word <= 0xFFFF):
        raise ValueError("words must be 16-bit values")
    # HC' = ~(~HC + ~m + m')   (RFC 1624 eqn. 3)
    total = (~checksum & 0xFFFF) + (~old_word & 0xFFFF) + new_word
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF
