"""repro.guard: the online SLO guard (runtime supervisor).

The paper's promise is *predictable* performance: Section 4 predicts any
flow's drop from its competitors' solo refs/sec and contains hidden
aggressiveness by throttling a flow's memory-access rate. This package
closes that loop at runtime:

* **Admission** (:mod:`.admission`) — a proposed flow mix is admitted
  only if every flow's predicted drop stays within its declared SLO;
  rejections carry per-flow headroom and counter-proposals (alternative
  placements, or throttle targets derived by inverting the victims'
  sensitivity curves).
* **Monitoring** (:mod:`.supervisor`) — live per-flow drop and refs/sec
  observed through the engines' sampler-probe protocol (the same hook
  the invariant engine uses), so the guard works identically under the
  scalar and batch engines.
* **Enforcement** — an escalation ladder per misbehaving flow: warn →
  tighten its throttle target (with hysteresis and exponential backoff
  of re-tightening) → quarantine (suspend on its core). Two-faced flows
  are detected as deviations from their solo profile.
* **Graceful degradation** — every action is a structured
  :class:`GuardEvent` emitted into the trace/metrics/RunReport pipeline
  (``kind="guard"``, payload schema ``repro.guard_report/1``); throttles
  are relaxed and restored when pressure subsides.

``repro-guard`` (:mod:`.cli`) drives the Section 4 two-faced containment
demo and a random-SLO fuzz over :mod:`repro.check` scenarios.
"""

from .admission import AdmissionController, AdmissionDecision, FlowRequest
from .slo import GUARD_SCHEMA, FlowSLO, parse_slo
from .supervisor import (
    DEFAULT_GUARD_INTERVAL,
    GuardConfig,
    GuardEvent,
    SLOGuard,
)
from .wrappers import GuardedFlow, guarded_factory

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "FlowRequest",
    "GUARD_SCHEMA",
    "FlowSLO",
    "parse_slo",
    "DEFAULT_GUARD_INTERVAL",
    "GuardConfig",
    "GuardEvent",
    "SLOGuard",
    "GuardedFlow",
    "guarded_factory",
]
