"""The Section 4 two-faced containment experiment, end to end.

A victim flow with a declared SLO shares its socket with a pack of flows
that profiled as an innocent application but turn into SYN_MAX-style
cache antagonists mid-run (:class:`~repro.core.throttling.TwoFacedFlow`).
Admission control sees only the innocent profiles and (correctly, per
the offline numbers) admits the mix; the runtime supervisor then watches
the victim's windowed drop blow through its SLO, attributes it to the
aggressors' solo-profile deviation, and walks the escalation ladder
until the victim is back inside its SLO.

``run_demo`` executes one configured run — guarded (``enforce=True``) or
the monitor-only comparison (``enforce=False``) — and returns the
admission decision, the guard, the run result, and the ``kind="guard"``
report. Everything is deterministic: the paired guarded/unguarded
reports are committed as goldens and replayed byte-stably in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..apps.registry import app_factory
from ..apps.synthetic import syn_max_factory
from ..constants import DEFAULT_SEED
from ..core.prediction import ContentionPredictor
from ..core.throttling import TwoFacedFlow
from ..hw.machine import Machine
from ..hw.topology import PlatformSpec
from .admission import AdmissionController, FlowRequest
from .supervisor import GuardConfig, SLOGuard
from .wrappers import guarded_factory

#: Acceptance margin on the victim's post-containment drop (the paper's
#: prediction-error bound: within 3 percentage points).
CONTAINMENT_MARGIN = 0.03

#: SYN levels for the demo's (small) offline sensitivity sweeps.
DEMO_SWEEP_LEVELS = (0, 360, 1440)


@dataclass
class DemoConfig:
    """The pinned two-faced containment scenario."""

    scale: int = 64
    seed: int = DEFAULT_SEED
    victim_app: str = "MON"
    innocent_app: str = "IP"
    n_aggressors: int = 5
    slo: float = 0.10
    trigger_packets: int = 30
    warmup: int = 40
    measure: int = 1600
    profile_measure: int = 400
    engine: Optional[str] = None
    guarded: bool = True
    interval_cycles: float = 40_000.0

    @property
    def victim_label(self) -> str:
        return f"{self.victim_app}@0"

    @property
    def aggressor_labels(self) -> List[str]:
        # The aggressors masquerade as the innocent app — their labels
        # (and their offline profiles) carry the innocent identity.
        return [f"{self.innocent_app}@{core}"
                for core in range(1, 1 + self.n_aggressors)]

    def spec(self) -> PlatformSpec:
        return PlatformSpec.westmere().scaled(self.scale).single_socket()

    def guard_config(self) -> GuardConfig:
        return GuardConfig(
            interval_cycles=self.interval_cycles,
            enforce=self.guarded,
        )


def build_demo_predictor(config: DemoConfig) -> ContentionPredictor:
    """The (small) offline prediction apparatus for the demo's app pair.

    Profiled with the demo run's warm-up and a comparable measurement
    window, so solo baselines and live windowed rates are commensurable.
    """
    return ContentionPredictor.build(
        (config.victim_app, config.innocent_app), config.spec(),
        seed=config.seed, cpu_ops_levels=DEMO_SWEEP_LEVELS,
        n_competitors=2, warmup_packets=config.warmup,
        measure_packets=config.profile_measure,
    )


def _aggressor_factory(config: DemoConfig):
    def build(env):
        return TwoFacedFlow(
            app_factory(config.innocent_app)(env),
            syn_max_factory()(env),
            trigger_packets=config.trigger_packets)

    return build


def run_demo(config: Optional[DemoConfig] = None,
             predictor: Optional[ContentionPredictor] = None,
             tracer=None,
             ) -> Tuple[object, SLOGuard, object, object]:
    """One demo run: returns ``(decision, guard, result, report)``.

    ``predictor`` lets callers reuse one offline profiling pass across
    the guarded and unguarded runs (it is deterministic either way).
    """
    if config is None:
        config = DemoConfig()
    if predictor is None:
        predictor = build_demo_predictor(config)
    spec = config.spec()

    # Admission: the mix as declared — the aggressors present their
    # innocent profiles, so the (correct) prediction admits the mix.
    requests = [FlowRequest(config.victim_app, 0, slo=config.slo,
                            label=config.victim_label)]
    requests.extend(
        FlowRequest(config.innocent_app, core, label=label)
        for core, label in enumerate(config.aggressor_labels, start=1))
    controller = AdmissionController(predictor, spec)
    decision = controller.evaluate(requests)

    victim_profile = predictor.profiles[config.victim_app]
    innocent_profile = predictor.profiles[config.innocent_app]
    baselines = {
        config.victim_label: (victim_profile.throughput,
                              victim_profile.l3_refs_per_sec),
    }
    for label in config.aggressor_labels:
        baselines[label] = (innocent_profile.throughput,
                            innocent_profile.l3_refs_per_sec)
    guard = SLOGuard(
        slos={config.victim_label: config.slo},
        baselines=baselines,
        config=config.guard_config(),
        admission=decision,
    )

    machine = Machine(spec, seed=config.seed, guard=guard, tracer=tracer)
    machine.add_flow(guarded_factory(app_factory(config.victim_app)),
                     core=0, label=config.victim_label)
    for core, label in enumerate(config.aggressor_labels, start=1):
        machine.add_flow(guarded_factory(_aggressor_factory(config)),
                         core=core, label=label, measured=False)
    result = machine.run(warmup_packets=config.warmup,
                         measure_packets=config.measure,
                         engine=config.engine)

    mode = "guarded" if config.guarded else "unguarded"
    report = guard.report(
        command=f"repro-guard --inject two-faced ({mode})",
        spec=spec, config=config)
    return decision, guard, result, report


def victim_verdict(guard: SLOGuard, config: DemoConfig,
                   margin: float = CONTAINMENT_MARGIN) -> dict:
    """The acceptance numbers: did containment keep the victim's SLO?"""
    for row in guard.flow_summaries():
        if row["label"] != config.victim_label:
            continue
        post = row.get("drop_post_containment")
        overall = row.get("drop_overall")
        effective = post if post is not None else overall
        return {
            "label": row["label"],
            "slo": config.slo,
            "drop_overall": overall,
            "drop_post_containment": post,
            "contained": guard.last_containment_clock is not None,
            "within_slo": (effective is not None
                           and effective <= config.slo + margin),
        }
    raise KeyError(f"victim {config.victim_label!r} not in guard states")
