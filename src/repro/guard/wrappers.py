"""The guard's control element: a wrapper flow the supervisor can steer.

:class:`GuardedFlow` is the runtime analogue of
:class:`~repro.core.throttling.ThrottledFlow`, with two differences: the
throttle target is *externally set* (and re-set) by the
:class:`~repro.guard.supervisor.SLOGuard` escalation ladder instead of
fixed at construction, and the flow supports *quarantine* — a bounded
suspension during which it emits only idle packets (time advances, no
work is done, no packets are counted).

Like every flow with live counter feedback the wrapper is not
timing-pure: both engines run it on the scalar-identical live path, so
the guard's closed loop is deterministic and bit-equal across engines.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..mem.access import AccessContext


class GuardedFlow:
    """Wrap a flow with a supervisor-steerable throttle and quarantine."""

    #: Reads live counters during generation; never pregenerated.
    timing_pure = False
    #: Never cached: the guard may alter behaviour mid-run.
    stream_signature = None
    #: Marker the supervisor uses to discover its control surface.
    guard_controllable = True

    def __init__(self, inner, adjust_every: int = 16, gain: float = 0.6,
                 idle_stall: float = 512.0):
        if adjust_every <= 0:
            raise ValueError("adjust_every must be positive")
        if idle_stall <= 0:
            raise ValueError("idle_stall must be positive")
        self.inner = inner
        self.name = f"guarded({getattr(inner, 'name', '?')})"
        self.measure_weight = getattr(inner, "measure_weight", 1.0)
        self.adjust_every = adjust_every
        self.gain = gain
        self.idle_stall = float(idle_stall)
        #: Current throttle target (None: unthrottled).
        self.limit_refs_per_sec: Optional[float] = None
        #: Extra inter-reference gap the throttle currently inserts.
        self.extra_gap = 0.0
        #: Absolute clock until which the flow is quarantined.
        self.suspended_until = 0.0
        #: Escalation rung the supervisor has this flow on (0 = clean).
        self.rung = 0
        self.adjustments = 0
        self.limit_changes = 0
        self.suspensions = 0
        self.idle_packets = 0
        self._count = 0
        self._last_count = 0
        self._last_refs = 0
        self._last_clock = 0.0
        self._fr = None
        self._freq = 0.0

    def attach_run(self, machine, flow_run) -> None:
        """Bind to the live run state (counter feedback loop)."""
        self._fr = flow_run
        self._freq = machine.spec.freq_hz
        inner_attach = getattr(self.inner, "attach_run", None)
        if inner_attach is not None:
            inner_attach(machine, flow_run)

    # -- supervisor control surface -----------------------------------------

    def set_limit(self, refs_per_sec: float) -> None:
        """(Re-)target the throttle; resets the feedback window to now."""
        if refs_per_sec <= 0:
            raise ValueError("throttle target must be positive")
        self.limit_refs_per_sec = float(refs_per_sec)
        self.limit_changes += 1
        if self._fr is not None:
            self._last_refs = self._fr.counters.l3_refs
            self._last_clock = self._fr.clock
            self._last_count = self._count

    def suspend_until(self, clock: float) -> None:
        """Quarantine: emit only idle packets until ``clock``."""
        if clock < 0:
            raise ValueError("suspension deadline cannot be negative")
        self.suspended_until = float(clock)
        self.suspensions += 1

    def release(self) -> None:
        """Drop every restriction (throttle and quarantine)."""
        self.limit_refs_per_sec = None
        self.extra_gap = 0.0
        self.suspended_until = 0.0

    # -- flow protocol -------------------------------------------------------

    def run_packet(self, ctx: AccessContext):
        """Quarantine stall, throttle delay, then the inner flow."""
        fr = self._fr
        if fr is not None and fr.clock < self.suspended_until:
            # Quarantined: advance time without doing (or counting) work.
            self.idle_packets += 1
            ctx.mark_idle(self.idle_stall)
            return None
        gap = int(self.extra_gap)
        if gap > 0:
            ctx.compute(gap, max(2, gap // 2))
        dma = self.inner.run_packet(ctx)
        self._count += 1
        if (fr is not None and self.limit_refs_per_sec is not None
                and self._count % self.adjust_every == 0):
            self._adjust(self._count - self._last_count)
        return dma

    def _adjust(self, span: int) -> None:
        """One closed-loop step over the last ``span`` packets."""
        fr = self._fr
        d_refs = fr.counters.l3_refs - self._last_refs
        d_clock = fr.clock - self._last_clock
        self._last_refs = fr.counters.l3_refs
        self._last_clock = fr.clock
        self._last_count = self._count
        if d_clock <= 0 or span <= 0:
            return
        target = self.limit_refs_per_sec
        rate = d_refs * self._freq / d_clock
        error = (rate - target) / target
        cycles_per_packet = d_clock / span
        if error > 0:
            self.extra_gap += self.gain * error * cycles_per_packet
        else:
            self.extra_gap = max(
                0.0,
                self.extra_gap + 0.25 * self.gain * error * cycles_per_packet,
            )
        self.adjustments += 1

    def finish_run(self) -> None:
        """End-of-run flush: engage the loop over the final partial window."""
        if (self._fr is not None and self.limit_refs_per_sec is not None
                and self._count > self._last_count):
            self._adjust(self._count - self._last_count)
        hook = getattr(self.inner, "finish_run", None)
        if hook is not None:
            hook()

    def stats(self) -> Dict[str, Any]:
        """Control-surface statistics for reports and invariant checks."""
        return {
            "limit_refs_per_sec": self.limit_refs_per_sec,
            "extra_gap": self.extra_gap,
            "rung": self.rung,
            "adjustments": self.adjustments,
            "limit_changes": self.limit_changes,
            "suspensions": self.suspensions,
            "idle_packets": self.idle_packets,
            "engaged": self.adjustments > 0,
        }


def guarded_factory(inner_factory, adjust_every: int = 16, gain: float = 0.6,
                    idle_stall: float = 512.0):
    """Machine-compatible factory wrapping ``inner_factory`` for the guard."""

    def build(env):
        return GuardedFlow(inner_factory(env), adjust_every=adjust_every,
                           gain=gain, idle_stall=idle_stall)

    return build
