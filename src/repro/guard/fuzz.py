"""Random-SLO fuzz: the guard must stay sane on arbitrary scenarios.

Reuses the :mod:`repro.check` scenario generator: every generated flow
is wrapped in a :class:`~repro.guard.wrappers.GuardedFlow` (giving the
supervisor a control surface on every core) and a deterministic subset
of flows gains a random SLO drawn from :data:`SLO_LEVELS`. The guard
runs with self-calibrated baselines and full enforcement, stacked on an
:class:`~repro.check.InvariantChecker`, on both engines.

The contract under test is *not* that random SLOs are met — many are
infeasible by construction — but that the guard itself never misbehaves:

* no crash anywhere in the probe/escalation path;
* zero *unhandled* violations (every breached window produced a
  structured guard event);
* all machine and guard-state invariants hold;
* the scalar and batch engines produce byte-identical guard event
  streams (the guard's control decisions are deterministic).
"""

from __future__ import annotations

import random
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..check.invariants import InvariantChecker
from ..check.runner import DEFAULT_SEED
from ..check.scenarios import ScenarioConfig, generate_one
from ..hw.machine import Machine
from .slo import GUARD_SCHEMA
from .supervisor import GuardConfig, SLOGuard
from .wrappers import guarded_factory

#: SLO levels the fuzzer assigns (max tolerated drop fractions).
SLO_LEVELS = (0.05, 0.1, 0.2, 0.35, 0.5)

#: Fraction of flows that get an SLO (the rest are pure competitors).
SLO_PROBABILITY = 0.7

#: Seed perturbation for the SLO-assignment stream (decoupled from the
#: scenario's own machine seed, but derived from it: same scenario →
#: same SLOs).
_SLO_SALT = 0x51_0

#: Guard knobs for fuzz runs: short quarantines so a suspended measured
#: flow cannot stretch a small scenario by millions of cycles.
FUZZ_GUARD_CONFIG = GuardConfig(quarantine_cycles=300_000.0,
                                backoff_cycles=60_000.0)


@dataclass
class GuardFuzzOptions:
    """One fuzz campaign's parameters."""

    scenarios: int = 50
    seed: int = DEFAULT_SEED
    engines: Tuple[str, ...] = ("scalar", "batch")
    fail_fast: bool = False


@dataclass
class GuardFuzzOutcome:
    """One scenario's verdict."""

    name: str
    digest: str
    description: str
    slos: Dict[str, float]
    ok: bool
    engines: Tuple[str, ...]
    windows: int = 0
    events: int = 0
    violations: List[str] = field(default_factory=list)
    unhandled: List[str] = field(default_factory=list)
    crash: Optional[str] = None
    mismatch: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name, "digest": self.digest,
            "description": self.description, "slos": dict(self.slos),
            "ok": self.ok, "engines": list(self.engines),
            "windows": self.windows, "events": self.events,
            "violations": list(self.violations),
            "unhandled": list(self.unhandled),
            "crash": self.crash, "mismatch": self.mismatch,
        }


@dataclass
class GuardFuzzResult:
    """A full campaign's outcomes."""

    options: GuardFuzzOptions
    outcomes: List[GuardFuzzOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(o.ok for o in self.outcomes)

    @property
    def failures(self) -> List[GuardFuzzOutcome]:
        return [o for o in self.outcomes if not o.ok]

    def summary(self) -> str:
        n = len(self.outcomes)
        bad = self.failures
        slos = sum(len(o.slos) for o in self.outcomes)
        events = sum(o.events for o in self.outcomes)
        head = (f"guard fuzz: {n} scenario(s), {slos} SLO(s), "
                f"{events} guard event(s), {len(bad)} failure(s)")
        lines = [head]
        for o in bad:
            what = o.crash or o.mismatch or "; ".join(
                o.unhandled + o.violations)
            lines.append(f"  FAIL {o.name}: {what}")
        return "\n".join(lines)

    def report(self, command: str = ""):
        """The campaign as a ``kind="guard"`` RunReport."""
        from ..obs.report import RunReport

        report = RunReport.new("guard", config=self.options,
                               command=command, seed=self.options.seed)
        report.results = {
            "schema": GUARD_SCHEMA,
            "mode": "fuzz",
            "ok": self.ok,
            "scenarios": [o.to_dict() for o in self.outcomes],
        }
        return report


def assign_slos(config: ScenarioConfig,
                labels: Sequence[str]) -> Dict[str, float]:
    """Deterministic random SLOs for a built scenario's flow labels."""
    rng = random.Random((config.seed ^ _SLO_SALT) & 0xFFFFFFFF)
    slos: Dict[str, float] = {}
    for label in labels:
        if rng.random() < SLO_PROBABILITY:
            slos[label] = rng.choice(SLO_LEVELS)
    return slos


def _build_guarded(config: ScenarioConfig, checker=None) -> Machine:
    """The scenario's machine with every flow wrapped for the guard."""
    machine = Machine(config.spec(), seed=config.seed, checker=checker)
    for fc in config.flows:
        machine.add_flow(guarded_factory(fc.factory()), core=fc.core,
                         data_domain=fc.data_domain)
    return machine


def run_guarded_scenario(config: ScenarioConfig,
                         engine: Optional[str] = None,
                         slos: Optional[Dict[str, float]] = None,
                         guard_config: Optional[GuardConfig] = None,
                         checker: Optional[InvariantChecker] = None,
                         ) -> Tuple[Machine, SLOGuard, Any]:
    """One guarded run of ``config``; returns (machine, guard, result).

    ``slos`` defaults to the fuzzer's deterministic assignment. The
    guard self-calibrates baselines from each flow's first window.
    """
    machine = _build_guarded(config, checker=checker)
    if slos is None:
        slos = assign_slos(config, [fr.label for fr in machine.flows])
    guard = SLOGuard(
        slos=slos,
        config=guard_config if guard_config is not None
        else FUZZ_GUARD_CONFIG)
    machine.guard = guard
    result = machine.run(warmup_packets=config.warmup,
                         measure_packets=config.measure, engine=engine)
    return machine, guard, result


def fuzz_one(config: ScenarioConfig,
             engines: Sequence[str] = ("scalar", "batch"),
             ) -> GuardFuzzOutcome:
    """Run one scenario on every engine and cross-check the guard."""
    outcome = GuardFuzzOutcome(
        name=config.name or "scenario", digest=config.digest(),
        description=config.describe(), slos={}, ok=True,
        engines=tuple(engines))
    event_streams: Dict[str, List[Dict[str, Any]]] = {}
    for engine in engines:
        checker = InvariantChecker()
        checker.context = f"{outcome.name}/{engine}"
        try:
            machine, guard, _ = run_guarded_scenario(
                config, engine=engine, checker=checker)
        except Exception:
            # A crash in the guard/probe path IS the finding.
            outcome.ok = False
            outcome.crash = f"{engine}: " + traceback.format_exc(limit=8)
            break
        outcome.slos = {label: slo for label, slo in guard.slos.items()
                        if any(fr.label == label for fr in machine.flows)}
        outcome.windows += guard.windows_observed
        outcome.events += len(guard.events)
        if guard.unhandled:
            outcome.ok = False
            outcome.unhandled.extend(
                f"{engine}: {msg}" for msg in guard.unhandled)
        if not checker.ok:
            outcome.ok = False
            outcome.violations.extend(str(v) for v in checker.violations)
        event_streams[engine] = [e.to_dict() for e in guard.events]
    if len(event_streams) == len(engines) > 1:
        first = engines[0]
        for engine in engines[1:]:
            if event_streams[engine] != event_streams[first]:
                outcome.ok = False
                outcome.mismatch = (
                    f"guard event streams diverge between {first!r} "
                    f"({len(event_streams[first])} events) and "
                    f"{engine!r} ({len(event_streams[engine])} events)")
                break
    return outcome


def run_fuzz(options: GuardFuzzOptions) -> GuardFuzzResult:
    """The full campaign: ``options.scenarios`` deterministic scenarios."""
    result = GuardFuzzResult(options=options)
    for index in range(options.scenarios):
        config = generate_one(options.seed, index)
        outcome = fuzz_one(config, engines=options.engines)
        result.outcomes.append(outcome)
        if not outcome.ok and options.fail_fast:
            break
    return result


def guard_scenario_payload(config: ScenarioConfig,
                           engine: Optional[str] = None) -> Dict[str, Any]:
    """Plain-JSON payload of one guarded scenario (the sweep task unit)."""
    checker = InvariantChecker()
    checker.context = f"{config.name or 'scenario'}/{engine or 'default'}"
    machine, guard, result = run_guarded_scenario(
        config, engine=engine, checker=checker)
    return {
        "name": config.name,
        "digest": config.digest(),
        "engine": engine,
        "slos": dict(guard.slos),
        "windows": guard.windows_observed,
        "events": [e.to_dict() for e in guard.events],
        "flows": guard.flow_summaries(),
        "unhandled": list(guard.unhandled),
        "violations": [str(v) for v in checker.violations],
        "end_clock_cycles": result.end_clock,
    }
