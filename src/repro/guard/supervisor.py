"""The runtime supervisor: monitor, escalate, contain, recover.

An :class:`SLOGuard` attaches to a :class:`~repro.hw.machine.Machine`
through the engines' metrics-sampler protocol — the same packet-boundary
hook the invariant engine uses — so it observes live per-flow windows
(packets/sec, L3 refs/sec) under both the scalar and batch engines at
identical points of the interleaving. Probes stack: the guard wraps
whatever sampler (or invariant probe) is already installed and forwards
every call.

Per window the guard:

* derives each flow's interval rates and, when no offline baseline was
  declared, self-calibrates one from the flow's first window(s);
* detects *solo-profile deviation* (the paper's two-faced symptom): a
  flow whose live refs/sec exceeds its declared solo rate by more than
  ``deviation_tolerance``;
* checks each declared SLO (measured drop vs. the flow's baseline
  throughput) and, on a breach, escalates against the most deviant
  co-runner with a control surface (:class:`~repro.guard.wrappers
  .GuardedFlow`): **warn → tighten** (halve the throttle target, with a
  quiet period that doubles per rung — hysteresis plus exponential
  backoff of re-tightening) **→ quarantine** (bounded suspension);
* recovers gracefully: after ``recover_windows`` consecutive calm
  windows on every SLO'd flow the most-escalated throttle is relaxed
  step-wise and finally restored.

Every transition is a structured :class:`GuardEvent`, mirrored to the
tracer (``kind="guard"``) when tracing is active, and summarized into a
``kind="guard"`` :class:`~repro.obs.RunReport` whose ``results.schema``
is ``repro.guard_report/1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .slo import GUARD_SCHEMA, slo_map

#: Probe cadence when no metrics sampler provides one (simulated cycles).
DEFAULT_GUARD_INTERVAL = 40_000.0


@dataclass
class GuardConfig:
    """Escalation-ladder and monitoring knobs of one guard."""

    #: Window cadence when the guard owns the probe schedule (cycles).
    interval_cycles: float = DEFAULT_GUARD_INTERVAL
    #: Live refs/sec over baseline refs/sec beyond which a flow counts
    #: as deviating from its solo profile (two-faced symptom).
    deviation_tolerance: float = 1.3
    #: Multiplier applied to the throttle target per tightening rung.
    tighten_factor: float = 0.5
    #: Tightenings before the ladder escalates to quarantine.
    max_tightenings: int = 3
    #: Quiet period after an action before the next tightening; doubles
    #: per rung (hysteresis + exponential backoff of re-tightening).
    backoff_cycles: float = 80_000.0
    #: Length of one quarantine suspension (cycles).
    quarantine_cycles: float = 1_500_000.0
    #: Throttle-target floor, as a fraction of the baseline refs/sec.
    min_limit_frac: float = 0.05
    #: A window only counts as calm below ``slo * release_margin``.
    release_margin: float = 0.7
    #: Consecutive calm windows (every SLO'd flow) before one relax step.
    recover_windows: int = 4
    #: Multiplier applied to the throttle target per relax step.
    relax_factor: float = 1.5
    #: Windows used to self-calibrate a missing baseline.
    calibrate_windows: int = 1
    #: Leading windows exempt from SLO checks (cold-cache ramp-up).
    skip_windows: int = 1
    #: False: monitor and record violations, never act (the unguarded
    #: comparison run of the containment demo).
    enforce: bool = True

    def __post_init__(self) -> None:
        if self.interval_cycles <= 0:
            raise ValueError("interval_cycles must be positive")
        if self.deviation_tolerance <= 1.0:
            raise ValueError("deviation_tolerance must exceed 1.0")
        if not 0.0 < self.tighten_factor < 1.0:
            raise ValueError("tighten_factor must be in (0, 1)")
        if self.max_tightenings < 1:
            raise ValueError("need at least one tightening rung")
        if self.backoff_cycles < 0 or self.quarantine_cycles <= 0:
            raise ValueError("backoff/quarantine cycles out of range")
        if self.relax_factor <= 1.0:
            raise ValueError("relax_factor must exceed 1.0")
        if not 0.0 < self.release_margin <= 1.0:
            raise ValueError("release_margin must be in (0, 1]")
        if self.skip_windows < 0 or self.calibrate_windows < 1:
            raise ValueError("window counts out of range")


@dataclass(frozen=True)
class GuardEvent:
    """One structured guard action or observation."""

    clock: float              #: simulated cycles of the triggering window
    flow: str                 #: flow label the event concerns
    action: str               #: baseline/deviation/violation/warn/tighten/
                              #: quarantine/relax/restore
    rung: int                 #: the flow's escalation rung after the event
    detail: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {"clock": self.clock, "flow": self.flow,
                "action": self.action, "rung": self.rung,
                "detail": dict(self.detail)}

    def __str__(self) -> str:
        extra = " ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
        return (f"[guard] {self.action} {self.flow} rung={self.rung} "
                f"@clock={self.clock:.0f}" + (f" {extra}" if extra else ""))


#: Actions that change a flow's containment state (vs. observations).
CONTAINMENT_ACTIONS = ("tighten", "quarantine")


@dataclass
class _FlowState:
    """Per-flow monitoring and escalation state."""

    index: int
    label: str
    slo: Optional[float] = None
    baseline_pps: Optional[float] = None
    baseline_refs: Optional[float] = None
    control: Any = None
    last_clock: float = 0.0
    last_packets: int = 0
    last_refs: int = 0
    windows: int = 0
    pps: float = 0.0
    refs_rate: float = 0.0
    drop: Optional[float] = None
    deviation: Optional[float] = None
    breach_windows: int = 0
    calm_windows: int = 0
    violation_events: int = 0
    rung: int = 0
    last_action_clock: float = float("-inf")
    deviant_reported: bool = False
    #: Victim window history: ``(clock, drop)`` per observed window.
    drops: List[Tuple[float, float]] = field(default_factory=list)


class _GuardProbe:
    """Sampler-protocol adapter feeding windows to the supervisor.

    Identical contract to the invariant engine's probe: forwards
    ``begin``/``sample``/``finish`` to the wrapped sampler (so time
    series and stacked probes keep working) and aliases its ``next_due``
    deadline list; without an inner sampler it runs its own schedule at
    the guard's interval.
    """

    #: Lets :func:`repro.hw.machine.unwrap_probes` peel probe stacks.
    is_metrics_probe = True

    def __init__(self, guard: "SLOGuard", inner=None):
        self._guard = guard
        self._inner = inner
        self._machine = None
        self.next_due: List[float] = []

    @property
    def inner(self):
        return self._inner

    def begin(self, machine) -> None:
        self._machine = machine
        if self._inner is not None:
            self._inner.begin(machine)
            self.next_due = self._inner.next_due
        else:
            interval = self._guard.config.interval_cycles
            self.next_due = [interval] * len(machine.flows)
        self._guard._begin_run(machine)

    def sample(self, flow_index: int, clock: float, counters) -> None:
        self._guard.on_sample(flow_index, clock, counters)
        if self._inner is not None:
            # Advances next_due[flow_index] in place.
            self._inner.sample(flow_index, clock, counters)
        else:
            due = self.next_due[flow_index]
            interval = self._guard.config.interval_cycles
            while due <= clock:
                due += interval
            self.next_due[flow_index] = due

    def finish(self, flows) -> None:
        if self._inner is not None:
            self._inner.finish(flows)

    def payload(self):  # pragma: no cover - defensive
        return self._inner.payload() if self._inner is not None else {}


class SLOGuard:
    """Online SLO supervisor; attach via ``Machine(..., guard=...)``."""

    def __init__(self, slos=None, baselines=None,
                 config: Optional[GuardConfig] = None, admission=None):
        #: ``{label: max_drop}`` — the declared SLOs.
        self.slos: Dict[str, float] = slo_map(slos or {})
        #: ``{label: (solo_pps, solo_refs_per_sec)}`` — offline profiles;
        #: flows without one self-calibrate from their first window(s).
        self.baselines: Dict[str, Tuple[float, float]] = dict(
            baselines or {})
        self.config = config if config is not None else GuardConfig()
        #: Optional :class:`~repro.guard.admission.AdmissionDecision`
        #: embedded in the report (how the mix got admitted).
        self.admission = admission
        self.events: List[GuardEvent] = []
        self.states: List[_FlowState] = []
        self.freq_hz = 0.0
        self.runs = 0
        self.windows_observed = 0
        self.last_containment_clock: Optional[float] = None
        self._result = None
        self._tracer = None

    # -- engine hooks --------------------------------------------------------

    def install(self, machine) -> None:
        """Wrap ``machine.metrics`` with the guard's window probe."""
        machine.metrics = _GuardProbe(self, machine.metrics)

    def _begin_run(self, machine) -> None:
        self.runs += 1
        self.freq_hz = machine.spec.freq_hz
        tracer = machine.tracer
        self._tracer = tracer if tracer.active else None
        self.states = []
        for fr in machine.flows:
            st = _FlowState(index=fr.index, label=fr.label)
            st.slo = self.slos.get(fr.label)
            base = self.baselines.get(fr.label)
            if base is not None:
                st.baseline_pps, st.baseline_refs = base
            if getattr(fr.flow, "guard_controllable", False):
                st.control = fr.flow
            self.states.append(st)

    def _emit(self, clock: float, st: _FlowState, action: str,
              **detail: Any) -> None:
        event = GuardEvent(clock=clock, flow=st.label, action=action,
                           rung=st.rung, detail=detail)
        self.events.append(event)
        if action in CONTAINMENT_ACTIONS:
            self.last_containment_clock = clock
        if self._tracer is not None:
            self._tracer.guard(st.index, clock, action, rung=st.rung,
                               **detail)

    # -- one observation window ---------------------------------------------

    def on_sample(self, flow_index: int, clock: float, counters) -> None:
        """Process one flow's packet-boundary window."""
        st = self.states[flow_index]
        d_clock = clock - st.last_clock
        if d_clock <= 0:
            return
        d_packets = counters.packets - st.last_packets
        d_refs = counters.l3_refs - st.last_refs
        st.last_clock = clock
        st.last_packets = counters.packets
        st.last_refs = counters.l3_refs
        st.windows += 1
        self.windows_observed += 1
        seconds = d_clock / self.freq_hz
        st.pps = d_packets / seconds
        st.refs_rate = d_refs / seconds
        cfg = self.config

        if st.baseline_pps is None or st.baseline_refs is None:
            # Self-calibration: the flow's first window(s) stand in for
            # its solo profile (good enough to catch *later* deviation;
            # offline profiles via ``baselines`` are strictly better).
            if st.windows >= cfg.calibrate_windows and d_packets > 0:
                st.baseline_pps = st.pps
                st.baseline_refs = st.refs_rate
                self._emit(clock, st, "baseline", pps=st.pps,
                           refs_per_sec=st.refs_rate, windows=st.windows)
            return

        if st.baseline_refs > 0:
            st.deviation = st.refs_rate / st.baseline_refs
            if (st.deviation > cfg.deviation_tolerance
                    and not st.deviant_reported):
                st.deviant_reported = True
                self._emit(clock, st, "deviation",
                           refs_per_sec=st.refs_rate,
                           baseline_refs_per_sec=st.baseline_refs,
                           ratio=st.deviation)

        if st.slo is None or not st.baseline_pps:
            return
        if st.windows <= cfg.skip_windows:
            # A flow's first window(s) run against cold caches; judged
            # against a steady-state baseline they would read as phantom
            # violations.
            return
        st.drop = 1.0 - st.pps / st.baseline_pps
        st.drops.append((clock, st.drop))
        if st.drop > st.slo:
            st.breach_windows += 1
            st.calm_windows = 0
            st.violation_events += 1
            self._emit(clock, st, "violation", drop=st.drop, slo=st.slo)
            if cfg.enforce:
                for aggressor in self._deviant_aggressors(st):
                    self._escalate(aggressor, clock, victim=st)
        elif st.drop <= st.slo * cfg.release_margin:
            st.calm_windows += 1
            if cfg.enforce:
                self._maybe_relax(clock)

    # -- escalation ladder ---------------------------------------------------

    def _deviant_aggressors(self, victim: _FlowState) -> List[_FlowState]:
        """Solo-profile-deviant controllable co-runners, worst first.

        Every deviant gets its own ladder step per violation window —
        each on its own per-flow hysteresis clock — so a pack of
        aggressors is contained in parallel, not one at a time.
        """
        tolerance = self.config.deviation_tolerance
        out = [st for st in self.states
               if st is not victim and st.control is not None
               and st.deviation is not None and st.deviation > tolerance]
        out.sort(key=lambda st: (-st.deviation, st.index))
        return out

    def _escalate(self, st: _FlowState, clock: float,
                  victim: _FlowState) -> None:
        cfg = self.config
        flow = st.control
        if st.rung == 0:
            st.rung = 1
            st.last_action_clock = clock
            self._emit(clock, st, "warn", refs_per_sec=st.refs_rate,
                       victim=victim.label)
            return
        # Hysteresis: each rung must stay quiet twice as long as the
        # previous one before the ladder tightens again.
        quiet = cfg.backoff_cycles * (2.0 ** (st.rung - 1))
        if clock - st.last_action_clock < quiet:
            return
        if st.rung <= cfg.max_tightenings:
            current = flow.limit_refs_per_sec
            if current is None:
                current = st.refs_rate if st.refs_rate > 0 \
                    else st.baseline_refs
            floor = (st.baseline_refs or current) * cfg.min_limit_frac
            limit = max(current * cfg.tighten_factor, floor)
            flow.set_limit(limit)
            st.rung += 1
            flow.rung = st.rung
            st.last_action_clock = clock
            self._emit(clock, st, "tighten", limit_refs_per_sec=limit,
                       victim=victim.label)
            return
        if flow.suspended_until <= clock:
            until = clock + cfg.quarantine_cycles
            flow.suspend_until(until)
            st.rung = cfg.max_tightenings + 2
            flow.rung = st.rung
            st.last_action_clock = clock
            self._emit(clock, st, "quarantine", until_clock=until,
                       victim=victim.label)

    def _maybe_relax(self, clock: float) -> None:
        """One graceful-degradation step when every SLO'd flow is calm."""
        cfg = self.config
        victims = [s for s in self.states
                   if s.slo is not None and s.baseline_pps]
        if not victims:
            return
        if any(s.calm_windows < cfg.recover_windows for s in victims):
            return
        target: Optional[_FlowState] = None
        for st in self.states:
            if st.control is None \
                    or st.control.limit_refs_per_sec is None:
                continue
            if target is None or st.rung > target.rung:
                target = st
        if target is None:
            return
        flow = target.control
        limit = flow.limit_refs_per_sec * cfg.relax_factor
        base = target.baseline_refs or limit
        target.last_action_clock = clock
        if limit >= base:
            flow.release()
            target.rung = 0
            flow.rung = 0
            target.deviant_reported = False
            self._emit(clock, target, "restore")
        else:
            flow.set_limit(limit)
            self._emit(clock, target, "relax", limit_refs_per_sec=limit)
        # Hysteresis on recovery too: the next relax step needs a fresh
        # run of calm windows.
        for st in victims:
            st.calm_windows = 0

    # -- end of run ----------------------------------------------------------

    def after_run(self, machine, result) -> None:
        """Engine hook: keep the result for the final summary."""
        self._result = result

    @property
    def unhandled(self) -> List[str]:
        """Breach windows the guard failed to observe and record.

        The fuzz contract: every window-level SLO breach must have
        produced at least a ``violation`` event. Non-empty means the
        guard itself misbehaved.
        """
        out: List[str] = []
        for st in self.states:
            missing = st.breach_windows - st.violation_events
            if missing > 0:
                out.append(f"{st.label}: {missing} breach window(s) "
                           "without a guard event")
        return out

    def post_containment_drop(self, label: str) -> Optional[float]:
        """Mean windowed drop of ``label`` after the last containment.

        None when the flow has no SLO windows or nothing was contained
        (or no window completed after the last containment action).
        """
        if self.last_containment_clock is None:
            return None
        for st in self.states:
            if st.label != label:
                continue
            tail = [drop for clock, drop in st.drops
                    if clock > self.last_containment_clock]
            if not tail:
                return None
            return sum(tail) / len(tail)
        return None

    def flow_summaries(self) -> List[Dict[str, Any]]:
        """Per-flow end-of-run verdicts (the report's ``flows`` payload)."""
        out: List[Dict[str, Any]] = []
        result = self._result
        for st in self.states:
            row: Dict[str, Any] = {
                "label": st.label,
                "slo": st.slo,
                "windows": st.windows,
                "breach_windows": st.breach_windows,
                "baseline_pps": st.baseline_pps,
                "baseline_refs_per_sec": st.baseline_refs,
            }
            if st.control is not None:
                row["control"] = st.control.stats()
            if st.slo is not None and st.baseline_pps:
                overall = None
                if result is not None and st.label in result.stats:
                    measured = result[st.label].packets_per_sec
                    overall = 1.0 - measured / st.baseline_pps
                post = self.post_containment_drop(st.label)
                row["drop_overall"] = overall
                row["drop_post_containment"] = post
                final = post if post is not None else overall
                row["ok"] = final is not None and final <= st.slo
            out.append(row)
        return out

    def payload(self) -> Dict[str, Any]:
        """The guard's structured outcome (``results`` of the report)."""
        doc: Dict[str, Any] = {
            "schema": GUARD_SCHEMA,
            "enforce": self.config.enforce,
            "windows_observed": self.windows_observed,
            "contained": self.last_containment_clock is not None,
            "last_containment_clock": self.last_containment_clock,
            "events": [e.to_dict() for e in self.events],
            "flows": self.flow_summaries(),
            "unhandled": self.unhandled,
        }
        if self.admission is not None:
            doc["admission"] = self.admission.to_dict()
        return doc

    @property
    def ok(self) -> bool:
        """True when every SLO'd flow ends within its SLO (post-
        containment when containment happened) and nothing went
        unhandled."""
        if self.unhandled:
            return False
        return all(row.get("ok", True) for row in self.flow_summaries())

    def report(self, command: str = "", spec=None, config=None):
        """This run as a ``kind="guard"`` RunReport."""
        from ..obs.report import RunReport

        report = RunReport.new("guard", spec=spec, config=config,
                               command=command)
        if self._result is not None:
            report.add_result_flows(self._result)
            if spec is None:
                report.platform = _platform(self._result.spec)
                report.scale = self._result.spec.scale
        report.results = self.payload()
        return report


def _platform(spec):
    from ..obs.report import platform_dict

    return platform_dict(spec)
