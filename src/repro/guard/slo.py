"""SLO declarations: what a flow owner promises to tolerate.

An SLO here is the paper's unit of predictability: the maximum
performance drop (relative to the flow's solo throughput) the owner
accepts in production. Admission control checks *predicted* drops
against it; the runtime supervisor checks *measured* drops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

#: Schema identifier of the guard payload embedded in ``kind="guard"``
#: run reports (the ``results.schema`` key).
GUARD_SCHEMA = "repro.guard_report/1"


@dataclass(frozen=True)
class FlowSLO:
    """One flow's declared service-level objective.

    ``max_drop`` is a fraction of solo throughput in ``[0, 1)``: 0.10
    means "this flow must keep at least 90% of its solo packets/sec".
    """

    label: str
    max_drop: float

    def __post_init__(self) -> None:
        if not self.label:
            raise ValueError("SLO needs a flow label")
        if not 0.0 <= self.max_drop < 1.0:
            raise ValueError(
                f"max_drop must be in [0, 1), got {self.max_drop!r}")


def parse_slo(text: str) -> FlowSLO:
    """Parse a CLI SLO spec: ``LABEL=FRACTION`` (e.g. ``IP@0=0.10``)."""
    label, sep, frac = text.partition("=")
    if not sep or not label:
        raise ValueError(
            f"invalid SLO spec {text!r}; expected LABEL=FRACTION")
    try:
        max_drop = float(frac)
    except ValueError:
        raise ValueError(
            f"invalid SLO fraction in {text!r}: {frac!r}") from None
    return FlowSLO(label=label, max_drop=max_drop)


def slo_map(slos) -> Dict[str, float]:
    """``{label: max_drop}`` from FlowSLOs, pairs, or an existing map."""
    out: Dict[str, float] = {}
    if isinstance(slos, dict):
        items: Tuple = tuple(slos.items())
    else:
        items = tuple(slos)
    for item in items:
        if isinstance(item, FlowSLO):
            out[item.label] = item.max_drop
        else:
            label, max_drop = item
            out[FlowSLO(label, float(max_drop)).label] = float(max_drop)
    return out
