"""``python -m repro.guard`` — the ``repro-guard`` CLI."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
