"""Predictive admission control: admit a mix only if every SLO holds.

Before a flow mix runs, the :class:`AdmissionController` predicts each
flow's drop with the paper's Section 4 apparatus (solo refs/sec of its
same-socket competitors → the flow's sensitivity curve) and compares it
to the flow's declared SLO. The mix is admitted only when every flow
keeps non-negative *predicted headroom* (``slo - predicted drop``).

A rejection is actionable: the decision carries per-flow headroom plus
counter-proposals —

* **placement**: alternative socket assignments (via
  :func:`~repro.core.scheduling.enumerate_partitions`) under which every
  prediction fits, ranked by worst-case headroom;
* **throttle**: per-competitor refs/sec targets obtained by inverting
  the violated victims' sensitivity curves
  (:meth:`~repro.core.prediction.SensitivityCurve.max_competition`) —
  "this mix fits if the competitors are throttled to these rates".

Prediction deliberately over-estimates competition (competitors slow
down under contention), so an admitted mix errs on the safe side; the
runtime supervisor (:mod:`.supervisor`) catches the residual error and
two-faced flows that lie about their profile.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..core.scheduling import enumerate_partitions

#: Cap on enumerated alternative placements in one rejection.
MAX_PLACEMENT_PROPOSALS = 3


@dataclass(frozen=True)
class FlowRequest:
    """One flow of a proposed mix: what it is, where, and its SLO."""

    app: str
    core: int
    slo: Optional[float] = None
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if self.core < 0:
            raise ValueError("core cannot be negative")
        if self.slo is not None and not 0.0 <= self.slo < 1.0:
            raise ValueError(f"SLO must be in [0, 1), got {self.slo!r}")

    @property
    def name(self) -> str:
        return self.label if self.label is not None \
            else f"{self.app}@{self.core}"


@dataclass
class AdmissionDecision:
    """The controller's verdict on one proposed mix."""

    admitted: bool
    #: Per-flow rows: label/app/core/socket/slo/predicted_drop/headroom/ok.
    flows: List[Dict[str, Any]] = field(default_factory=list)
    #: Counter-proposals when rejected (placement and/or throttle kinds).
    proposals: List[Dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {"admitted": self.admitted,
                "flows": [dict(row) for row in self.flows],
                "proposals": [dict(p) for p in self.proposals]}

    def describe(self) -> str:
        lines = ["mix admitted" if self.admitted else "mix REJECTED"]
        for row in self.flows:
            slo = row["slo"]
            if slo is None:
                lines.append(f"  {row['label']}: no SLO "
                             f"(predicted drop {row['predicted_drop']:.1%})")
                continue
            verdict = "ok" if row["ok"] else "VIOLATES"
            lines.append(
                f"  {row['label']}: predicted drop "
                f"{row['predicted_drop']:.1%} vs SLO {slo:.1%} "
                f"(headroom {row['headroom']:+.1%}) {verdict}")
        for prop in self.proposals:
            if prop["kind"] == "placement":
                groups = " | ".join("+".join(g)
                                    for g in prop["assignment"])
                lines.append(f"  proposal: place {groups} "
                             f"(min headroom {prop['min_headroom']:+.1%})")
            elif prop["kind"] == "throttle":
                targets = ", ".join(
                    f"{name}→{rate:.3g} refs/s"
                    for name, rate in sorted(prop["targets"].items()))
                lines.append(f"  proposal: throttle {targets} "
                             f"(scale ×{prop['scale']:.2f})")
        return "\n".join(lines)


class AdmissionController:
    """Predict-then-admit gate over a :class:`ContentionPredictor`."""

    def __init__(self, predictor, spec):
        self.predictor = predictor
        self.spec = spec

    # -- core check ----------------------------------------------------------

    def _predict_rows(self, requests: Sequence[FlowRequest]
                      ) -> List[Dict[str, Any]]:
        rows: List[Dict[str, Any]] = []
        for req in requests:
            socket = self.spec.socket_of(req.core)
            competitors = [r.app for r in requests
                           if r is not req
                           and self.spec.socket_of(r.core) == socket]
            predicted = self.predictor.predict_drop(req.app, competitors)
            headroom = None if req.slo is None else req.slo - predicted
            rows.append({
                "label": req.name,
                "app": req.app,
                "core": req.core,
                "socket": socket,
                "slo": req.slo,
                "predicted_drop": predicted,
                "headroom": headroom,
                "ok": headroom is None or headroom >= 0.0,
            })
        return rows

    def evaluate(self, requests: Sequence[FlowRequest]
                 ) -> AdmissionDecision:
        """Admit or reject ``requests``; rejections carry proposals."""
        requests = list(requests)
        if not requests:
            raise ValueError("cannot evaluate an empty mix")
        cores = [r.core for r in requests]
        if len(set(cores)) != len(cores):
            raise ValueError("two flows mapped to the same core")
        for req in requests:
            if req.core >= self.spec.total_cores:
                raise ValueError(
                    f"core {req.core} outside the platform "
                    f"({self.spec.total_cores} cores)")
        rows = self._predict_rows(requests)
        admitted = all(row["ok"] for row in rows)
        decision = AdmissionDecision(admitted=admitted, flows=rows)
        if not admitted:
            decision.proposals = self._propose(requests, rows)
        return decision

    # -- counter-proposals ---------------------------------------------------

    def _propose(self, requests: Sequence[FlowRequest],
                 rows: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
        proposals: List[Dict[str, Any]] = []
        proposals.extend(self._placement_proposals(requests))
        throttle = self._throttle_proposal(requests, rows)
        if throttle is not None:
            proposals.append(throttle)
        return proposals

    def _placement_proposals(self, requests: Sequence[FlowRequest]
                             ) -> List[Dict[str, Any]]:
        """Feasible alternative socket assignments, best headroom first."""
        spec = self.spec
        if spec.n_sockets < 2:
            return []
        by_name = {req.name: req for req in requests}
        candidates: List[Dict[str, Any]] = []
        for groups in enumerate_partitions(
                sorted(by_name), spec.n_sockets, spec.cores_per_socket):
            worst: Optional[float] = None
            feasible = True
            for group in groups:
                apps = [by_name[name].app for name in group]
                for name in group:
                    req = by_name[name]
                    competitors = list(apps)
                    competitors.remove(req.app)
                    predicted = self.predictor.predict_drop(
                        req.app, competitors)
                    if req.slo is None:
                        continue
                    headroom = req.slo - predicted
                    if headroom < 0:
                        feasible = False
                        break
                    if worst is None or headroom < worst:
                        worst = headroom
                if not feasible:
                    break
            if feasible:
                candidates.append({
                    "kind": "placement",
                    "assignment": [list(g) for g in groups],
                    "min_headroom": worst if worst is not None else 1.0,
                })
        candidates.sort(key=lambda p: -p["min_headroom"])
        return candidates[:MAX_PLACEMENT_PROPOSALS]

    def _throttle_proposal(self, requests: Sequence[FlowRequest],
                           rows: Sequence[Dict[str, Any]]
                           ) -> Optional[Dict[str, Any]]:
        """Scale competitors' refs/sec until every violated SLO fits."""
        scale: Optional[float] = None
        for row in rows:
            if row["ok"]:
                continue
            curve = self.predictor.curves[row["app"]]
            budget = curve.max_competition(row["slo"])
            socket = row["socket"]
            competing = self.predictor.competing_refs([
                r.app for r in requests
                if r.name != row["label"]
                and self.spec.socket_of(r.core) == socket])
            if competing <= 0:
                # The prediction violates with zero competition: no
                # amount of throttling of others can help.
                return None
            if budget is None:
                continue
            needed = budget / competing
            if scale is None or needed < scale:
                scale = needed
        if scale is None or scale >= 1.0:
            return None
        targets: Dict[str, float] = {}
        victims = {row["label"] for row in rows if not row["ok"]}
        sockets_hit = {row["socket"] for row in rows if not row["ok"]}
        for req in requests:
            if req.name in victims:
                continue
            if self.spec.socket_of(req.core) not in sockets_hit:
                continue
            solo = self.predictor.profiles[req.app].l3_refs_per_sec
            targets[req.name] = solo * scale
        if not targets:
            return None
        return {"kind": "throttle", "scale": scale, "targets": targets}
