"""``repro-guard`` — the online SLO guard CLI.

Examples::

    # The Section 4 two-faced containment demo (guarded by default):
    repro-guard --inject two-faced --json
    repro-guard --inject two-faced --unguarded      # exits 1: SLO violated

    # Admission + guarded run of a declared mix:
    repro-guard --mix IP:0,MON:1,FW:2 --slo IP@0=0.10 --slo MON@1=0.15
    repro-guard --mix IP:0,IP:1 --slo IP@0=0.05 --admit-only

    # Random-SLO fuzz over repro.check scenarios:
    repro-guard --fuzz 50 --seed 0x5EED --report guard_fuzz.json

Exit status 0 means admitted and every SLO held (post-containment when
the guard had to act); 1 means a rejected mix, a violated SLO, or an
unhandled violation; 2 means bad usage.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import Dict, List, Optional

from .slo import parse_slo


def _seed(text: str) -> int:
    """Accept decimal and ``0x…`` seeds (the CI seed is hex)."""
    try:
        return int(text, 0)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid seed {text!r}") from None


def _positive_int(text: str) -> int:
    value = int(text)
    if value <= 0:
        raise argparse.ArgumentTypeError("must be > 0")
    return value


def _positive_float(text: str) -> float:
    value = float(text)
    if value <= 0:
        raise argparse.ArgumentTypeError("must be > 0")
    return value


def _slo_arg(text: str) -> object:
    try:
        return parse_slo(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _mix_arg(text: str) -> List[tuple]:
    """Parse ``APP:CORE,APP:CORE,...`` into ``[(app, core), ...]``."""
    out = []
    for part in text.split(","):
        app, sep, core = part.strip().partition(":")
        if not sep or not app:
            raise argparse.ArgumentTypeError(
                f"invalid mix entry {part!r}; expected APP:CORE")
        try:
            out.append((app, int(core)))
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"invalid core in {part!r}") from None
    if not out:
        raise argparse.ArgumentTypeError("empty mix")
    return out


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-guard",
        description="Online SLO guard: predictive admission control, "
                    "runtime monitoring, and escalating containment.")
    mode = parser.add_argument_group("mode")
    mode.add_argument("--mix", type=_mix_arg, metavar="APP:CORE,...",
                      default=None, help="evaluate and run this flow mix "
                      "under the guard")
    mode.add_argument("--inject", choices=("two-faced",), default=None,
                      help="run the Section 4 containment demo (a "
                      "two-faced aggressor pack vs an SLO'd victim)")
    mode.add_argument("--fuzz", type=_positive_int, metavar="N",
                      default=None, help="fuzz N repro.check scenarios "
                      "with random SLOs under the guard")
    parser.add_argument("--slo", type=_slo_arg, action="append",
                        default=[], metavar="LABEL=FRAC",
                        help="declare one flow's SLO, e.g. IP@0=0.10 "
                        "(repeatable)")
    parser.add_argument("--admit-only", action="store_true",
                        help="stop after the admission decision")
    parser.add_argument("--unguarded", action="store_true",
                        help="monitor and record violations but never "
                        "contain (the comparison run)")
    parser.add_argument("--trigger", type=_positive_int, metavar="N",
                        default=None, help="two-faced trigger packet "
                        "count (demo mode)")
    parser.add_argument("--scale", type=_positive_int, default=None,
                        metavar="F", help="platform scale-down factor")
    parser.add_argument("--seed", type=_seed, default=None, metavar="S",
                        help="seed, decimal or 0x-hex")
    parser.add_argument("--warmup", type=_positive_int, default=None,
                        metavar="N", help="warm-up packets per flow")
    parser.add_argument("--measure", type=_positive_int, default=None,
                        metavar="N", help="measured packets per flow")
    parser.add_argument("--engine", choices=("scalar", "batch"),
                        default=None, help="execution engine (default: "
                        "ambient)")
    parser.add_argument("--interval", type=_positive_float, default=None,
                        metavar="CYCLES", help="guard window cadence in "
                        "simulated cycles")
    parser.add_argument("--fail-fast", action="store_true",
                        help="fuzz: stop at the first failing scenario")
    parser.add_argument("--report", metavar="PATH", default=None,
                        help="write the kind=guard run report JSON to "
                        "PATH")
    parser.add_argument("--json", action="store_true",
                        help="print the run report JSON to stdout")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="write a JSONL trace of the run (guard "
                        "events included) to PATH")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="suppress per-event progress lines")
    return parser


def _command(argv: Optional[List[str]]) -> str:
    return ("repro-guard " + " ".join(
        argv if argv is not None else sys.argv[1:])).strip()


def _emit(report, args, command: str) -> None:
    report.command = command
    if args.report:
        report.write(args.report)
    if args.json:
        print(report.to_json())


def _make_tracer(path: Optional[str]):
    if path is None:
        return None
    from ..obs import JsonlSink, Tracer

    return Tracer(JsonlSink(path))


def _run_fuzz(args, command: str) -> int:
    from .fuzz import GuardFuzzOptions, run_fuzz

    options = GuardFuzzOptions(scenarios=args.fuzz,
                               fail_fast=args.fail_fast)
    if args.seed is not None:
        options.seed = args.seed
    if args.engine is not None:
        options.engines = (args.engine,)
    result = run_fuzz(options)
    _emit(result.report(), args, command)
    if not args.json:
        print(result.summary())
    return 0 if result.ok else 1


def _run_demo(args, command: str) -> int:
    from .demo import DemoConfig, run_demo, victim_verdict

    config = DemoConfig(guarded=not args.unguarded)
    overrides = {"scale": args.scale, "seed": args.seed,
                 "warmup": args.warmup, "measure": args.measure,
                 "engine": args.engine,
                 "trigger_packets": args.trigger,
                 "interval_cycles": args.interval}
    config = dataclasses.replace(
        config, **{k: v for k, v in overrides.items() if v is not None})
    if args.slo:
        if len(args.slo) != 1:
            print("repro-guard: demo mode takes at most one --slo "
                  "(the victim's)", file=sys.stderr)
            return 2
        config = dataclasses.replace(config, slo=args.slo[0].max_drop)

    tracer = _make_tracer(args.trace)
    decision, guard, _result, report = run_demo(config, tracer=tracer)
    if tracer is not None:
        tracer.close()
    _emit(report, args, command)
    verdict = victim_verdict(guard, config)
    if not args.json:
        print(decision.describe())
        if not args.quiet:
            for event in guard.events:
                print(str(event))
        mode = "guarded" if config.guarded else "unguarded"
        post = verdict["drop_post_containment"]
        print(f"repro-guard: {mode} run — victim overall drop "
              f"{verdict['drop_overall']:.1%}"
              + (f", post-containment {post:.1%}" if post is not None
                 else "")
              + f" vs SLO {config.slo:.1%}")
    if config.guarded:
        return 0 if verdict["within_slo"] else 1
    # The unguarded comparison is *expected* to violate: report failure
    # whenever the victim's measured drop exceeds its SLO.
    overall = verdict["drop_overall"]
    return 1 if overall is not None and overall > config.slo else 0


def _run_mix(args, command: str) -> int:
    from ..core.prediction import ContentionPredictor
    from ..hw.machine import Machine
    from ..hw.topology import PlatformSpec
    from ..apps.registry import app_factory
    from .admission import AdmissionController, FlowRequest
    from .demo import DEMO_SWEEP_LEVELS
    from .supervisor import GuardConfig, SLOGuard
    from .wrappers import guarded_factory

    scale = args.scale if args.scale is not None else 64
    seed = args.seed if args.seed is not None else 42
    warmup = args.warmup if args.warmup is not None else 40
    measure = args.measure if args.measure is not None else 400
    spec = PlatformSpec.westmere().scaled(scale)
    if all(core < spec.cores_per_socket for _, core in args.mix):
        spec = spec.single_socket()
    slos: Dict[str, float] = {s.label: s.max_drop for s in args.slo}

    labels = [f"{app}@{core}" for app, core in args.mix]
    unknown = sorted(set(slos) - set(labels))
    if unknown:
        print(f"repro-guard: --slo for unknown flow(s): "
              f"{', '.join(unknown)} (mix has {', '.join(labels)})",
              file=sys.stderr)
        return 2

    apps = sorted({app for app, _ in args.mix})
    predictor = ContentionPredictor.build(
        apps, spec, seed=seed, cpu_ops_levels=DEMO_SWEEP_LEVELS,
        n_competitors=2, warmup_packets=warmup, measure_packets=measure)
    controller = AdmissionController(predictor, spec)
    requests = [
        FlowRequest(app, core, slo=slos.get(label), label=label)
        for (app, core), label in zip(args.mix, labels)]
    decision = controller.evaluate(requests)
    if not args.json:
        print(decision.describe())
    if args.admit_only or not decision.admitted:
        if args.admit_only and (args.report or args.json):
            from ..obs.report import RunReport

            from .slo import GUARD_SCHEMA
            report = RunReport.new("guard", spec=spec, command=command,
                                   seed=seed)
            report.results = {"schema": GUARD_SCHEMA,
                              "admission": decision.to_dict()}
            _emit(report, args, command)
        return 0 if decision.admitted else 1

    baselines = {
        label: (predictor.profiles[app].throughput,
                predictor.profiles[app].l3_refs_per_sec)
        for (app, _), label in zip(args.mix, labels)}
    guard_config = GuardConfig(enforce=not args.unguarded)
    if args.interval is not None:
        guard_config = dataclasses.replace(
            guard_config, interval_cycles=args.interval)
    guard = SLOGuard(slos=slos, baselines=baselines, config=guard_config,
                     admission=decision)
    tracer = _make_tracer(args.trace)
    machine = Machine(spec, seed=seed, guard=guard, tracer=tracer)
    for (app, core), label in zip(args.mix, labels):
        machine.add_flow(guarded_factory(app_factory(app)), core=core,
                         label=label)
    machine.run(warmup_packets=warmup, measure_packets=measure,
                engine=args.engine)
    if tracer is not None:
        tracer.close()
    report = guard.report(command=command, spec=spec)
    _emit(report, args, command)
    if not args.json and not args.quiet:
        for event in guard.events:
            print(str(event))
    ok = guard.ok
    if not args.json:
        print(f"repro-guard: mix run — "
              f"{'every SLO held' if ok else 'SLO VIOLATED'} "
              f"({len(guard.events)} guard event(s))")
    return 0 if ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    command = _command(argv)
    modes = sum(x is not None for x in (args.mix, args.inject, args.fuzz))
    if modes > 1:
        print("repro-guard: choose one of --mix / --inject / --fuzz",
              file=sys.stderr)
        return 2
    if args.fuzz is not None:
        return _run_fuzz(args, command)
    if args.mix is not None:
        return _run_mix(args, command)
    # Default (and --inject two-faced): the containment demo.
    return _run_demo(args, command)


if __name__ == "__main__":
    sys.exit(main())
