"""repro: a reproduction of "Toward Predictable Performance in Software
Packet-Processing Platforms" (Dobrescu, Argyraki, Ratnasamy — NSDI 2012).

The package simulates the paper's two-socket multicore packet-processing
platform (shared L3 caches, memory controllers, QPI), runs real
packet-processing applications on it (IP forwarding, NetFlow, firewall,
redundancy elimination, AES VPN), and implements the paper's contributions:
contention characterization, SYN-sweep performance prediction,
contention-aware scheduling analysis, and aggressiveness containment.

Quickstart::

    from repro import Machine, PlatformSpec, app_factory

    spec = PlatformSpec.westmere().scaled(16)
    machine = Machine(spec.single_socket())
    machine.add_flow(app_factory("MON"), core=0)
    for core in range(1, 6):
        machine.add_flow(app_factory("RE"), core=core)
    result = machine.run(warmup_packets=200, measure_packets=800)
    print(result.throughput("MON@0"))
"""

from .hw.machine import Machine, RunResult, FlowEnv
from .hw.topology import PlatformSpec
from .hw.counters import FlowStats, performance_drop
from .apps.registry import app_factory, make_app, APP_NAMES, REALISTIC_APPS
from .core.profiler import profile_solo, SoloProfile
from .core.prediction import ContentionPredictor, SensitivityCurve
from .core.scheduling import PlacementStudy
from .obs import MetricsSampler, RunReport, Tracer, observe

__version__ = "1.0.0"

__all__ = [
    "Machine",
    "RunResult",
    "FlowEnv",
    "PlatformSpec",
    "FlowStats",
    "performance_drop",
    "app_factory",
    "make_app",
    "APP_NAMES",
    "REALISTIC_APPS",
    "profile_solo",
    "SoloProfile",
    "ContentionPredictor",
    "SensitivityCurve",
    "PlacementStudy",
    "MetricsSampler",
    "RunReport",
    "Tracer",
    "observe",
    "__version__",
]
