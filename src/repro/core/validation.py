"""Co-run measurements and prediction validation (Figures 2, 8, 9).

``run_corun`` builds the paper's standard experiment: a target flow plus
competitors sharing one socket (or an arbitrary placement across both),
measuring every flow's throughput and L3 refs/sec. ``measure_drop``
relates a co-run to solo profiles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..constants import (
    DEFAULT_MEASURE_PACKETS,
    DEFAULT_SEED,
    DEFAULT_WARMUP_PACKETS,
)
from ..hw.counters import performance_drop
from ..hw.machine import Machine, RunResult
from ..hw.topology import PlatformSpec
from ..apps.registry import app_factory
from .profiler import SoloProfile


@dataclass
class CoRunMeasurement:
    """Outcome of one co-run experiment."""

    #: flow label -> app name
    apps: Dict[str, str]
    #: flow label -> measured throughput (packets/sec)
    throughput: Dict[str, float]
    #: flow label -> measured L3 refs/sec
    refs_per_sec: Dict[str, float]
    result: RunResult

    def drop(self, label: str, solo: SoloProfile) -> float:
        """Measured drop of ``label`` relative to its solo profile."""
        return performance_drop(solo.throughput, self.throughput[label])

    def competing_refs(self, exclude: str) -> float:
        """Measured refs/sec of everyone except ``exclude`` (perfect knowledge)."""
        return sum(r for lbl, r in self.refs_per_sec.items() if lbl != exclude)


def run_corun(
    placement: Sequence[Tuple[str, int]],
    spec: PlatformSpec,
    seed: int = DEFAULT_SEED,
    warmup_packets: int = DEFAULT_WARMUP_PACKETS,
    measure_packets: int = DEFAULT_MEASURE_PACKETS,
    data_domains: Optional[Dict[int, int]] = None,
) -> CoRunMeasurement:
    """Run flows placed as ``[(app_name, core), ...]``.

    ``data_domains`` optionally maps a core to the NUMA domain holding that
    flow's data (for the Figure 3 configurations); the default is local
    allocation. Flow labels are ``f"{app}@{core}"``.
    """
    if not placement:
        raise ValueError("empty placement")
    machine = Machine(spec, seed=seed)
    labels: Dict[str, str] = {}
    for app, core in placement:
        domain = None if data_domains is None else data_domains.get(core)
        run = machine.add_flow(app_factory(app), core=core, data_domain=domain)
        labels[run.label] = app
    result = machine.run(warmup_packets=warmup_packets,
                         measure_packets=measure_packets)
    return CoRunMeasurement(
        apps=labels,
        throughput={lbl: result[lbl].packets_per_sec for lbl in labels},
        refs_per_sec={lbl: result[lbl].l3_refs_per_sec for lbl in labels},
        result=result,
    )


def measure_drop(
    target: str,
    competitors: Sequence[str],
    spec: PlatformSpec,
    solo: SoloProfile,
    seed: int = DEFAULT_SEED,
    warmup_packets: int = DEFAULT_WARMUP_PACKETS,
    measure_packets: int = DEFAULT_MEASURE_PACKETS,
) -> Tuple[float, CoRunMeasurement]:
    """The Figure 2 experiment: ``target`` on core 0, competitors beside it.

    Returns ``(measured_drop, measurement)``.
    """
    if len(competitors) >= spec.cores_per_socket:
        raise ValueError("competitors must fit on the target's socket")
    placement = [(target, 0)] + [
        (app, core + 1) for core, app in enumerate(competitors)
    ]
    corun = run_corun(placement, spec, seed=seed,
                      warmup_packets=warmup_packets,
                      measure_packets=measure_packets)
    target_label = f"{target}@0"
    return corun.drop(target_label, solo), corun


def pairwise_drops(
    apps: Sequence[str],
    spec: PlatformSpec,
    profiles: Dict[str, SoloProfile],
    n_competitors: int = 5,
    seed: int = DEFAULT_SEED,
    warmup_packets: int = DEFAULT_WARMUP_PACKETS,
    measure_packets: int = DEFAULT_MEASURE_PACKETS,
) -> Dict[Tuple[str, str], Tuple[float, CoRunMeasurement]]:
    """All (target, competitor-type) pairs of Figure 2(a).

    Returns ``{(X, Y): (drop of X against 5 Y flows, measurement)}``.
    """
    out: Dict[Tuple[str, str], Tuple[float, CoRunMeasurement]] = {}
    for target in apps:
        for competitor in apps:
            drop, corun = measure_drop(
                target, [competitor] * n_competitors, spec,
                solo=profiles[target], seed=seed,
                warmup_packets=warmup_packets,
                measure_packets=measure_packets,
            )
            out[(target, competitor)] = (drop, corun)
    return out
