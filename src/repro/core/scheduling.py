"""Contention-aware scheduling study (Section 5).

Given J flows and J cores across two sockets, how much does the
flow-to-core placement matter? Placements differ only in how flows are
split across sockets (cores within a socket are symmetric), so the study
enumerates the distinct 6/6 multiset splits, evaluates the average
per-flow drop for each (by full simulation or via the predictor), and
reports the best and worst — whose small difference is the paper's
argument that contention-aware scheduling "may not be worth the effort".
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..constants import (
    DEFAULT_MEASURE_PACKETS,
    DEFAULT_SEED,
    DEFAULT_WARMUP_PACKETS,
)
from ..hw.counters import performance_drop
from ..hw.topology import PlatformSpec
from .prediction import ContentionPredictor
from .profiler import SoloProfile
from .validation import run_corun

#: A split: (socket-0 flow names, socket-1 flow names), each sorted.
Split = Tuple[Tuple[str, ...], Tuple[str, ...]]


def enumerate_splits(flows: Sequence[str], per_socket: int) -> List[Split]:
    """Distinct unordered splits of ``flows`` into two ``per_socket`` groups."""
    if len(flows) != 2 * per_socket:
        raise ValueError(
            f"need exactly {2 * per_socket} flows, got {len(flows)}"
        )
    seen: Set[frozenset] = set()
    out: List[Split] = []
    indices = range(len(flows))
    for group in combinations(indices, per_socket):
        group_set = set(group)
        left = tuple(sorted(flows[i] for i in group))
        right = tuple(sorted(flows[i] for i in indices if i not in group_set))
        key = frozenset((left, right))
        if key in seen:
            continue
        seen.add(key)
        out.append((left, right))
    return out


def enumerate_partitions(flows: Sequence[str], n_groups: int,
                         group_size: int) -> List[Tuple[Tuple[str, ...], ...]]:
    """Distinct unordered partitions of ``flows`` into equal-size groups.

    Generalizes :func:`enumerate_splits` to ``n_groups`` sockets (the
    guard's admission controller enumerates alternative placements when
    a proposed mix is rejected). ``flows`` need not fill every socket —
    partially-filled groups are fine — but must fit:
    ``len(flows) <= n_groups * group_size``.
    """
    flows = list(flows)
    if len(flows) > n_groups * group_size:
        raise ValueError(
            f"{len(flows)} flows cannot fit {n_groups} groups of "
            f"{group_size}")
    seen: Set[Tuple[Tuple[str, ...], ...]] = set()
    out: List[Tuple[Tuple[str, ...], ...]] = []

    def assign(remaining: List[str], groups: List[List[str]]) -> None:
        if not remaining:
            key = tuple(sorted(tuple(sorted(g)) for g in groups))
            if key not in seen:
                seen.add(key)
                out.append(key)
            return
        flow, rest = remaining[0], remaining[1:]
        for group in groups:
            if len(group) >= group_size:
                continue
            group.append(flow)
            assign(rest, groups)
            group.pop()

    assign(flows, [[] for _ in range(n_groups)])
    return out


@dataclass
class PlacementOutcome:
    """Evaluation of one split."""

    split: Split
    per_flow_drop: Dict[str, float]  # label -> drop
    average_drop: float

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PlacementOutcome({'+'.join(self.split[0])} | "
            f"{'+'.join(self.split[1])}: avg {self.average_drop:.1%})"
        )


@dataclass
class StudyResult:
    """Best/worst placements for one flow combination."""

    outcomes: List[PlacementOutcome]

    @property
    def best(self) -> PlacementOutcome:
        """The placement with the lowest average drop."""
        return min(self.outcomes, key=lambda o: o.average_drop)

    @property
    def worst(self) -> PlacementOutcome:
        """The placement with the highest average drop."""
        return max(self.outcomes, key=lambda o: o.average_drop)

    @property
    def scheduling_gain(self) -> float:
        """Overall-performance gain of the best over the worst placement."""
        return self.worst.average_drop - self.best.average_drop


class PlacementStudy:
    """Evaluate flow-to-core placements for a flow combination."""

    def __init__(self, spec: PlatformSpec,
                 profiles: Dict[str, SoloProfile],
                 predictor: Optional[ContentionPredictor] = None,
                 seed: int = DEFAULT_SEED,
                 warmup_packets: int = DEFAULT_WARMUP_PACKETS,
                 measure_packets: int = DEFAULT_MEASURE_PACKETS):
        if spec.n_sockets != 2:
            raise ValueError("the placement study assumes two sockets")
        self.spec = spec
        self.profiles = profiles
        self.predictor = predictor
        self.seed = seed
        self.warmup_packets = warmup_packets
        self.measure_packets = measure_packets

    # -- evaluation ------------------------------------------------------------

    def _placement(self, split: Split) -> List[Tuple[str, int]]:
        """Core assignment of one split (validated)."""
        placement: List[Tuple[str, int]] = []
        per_socket = self.spec.cores_per_socket
        for socket, group in enumerate(split):
            if len(group) > per_socket:
                raise ValueError("split larger than a socket")
            for i, app in enumerate(group):
                placement.append((app, socket * per_socket + i))
        return placement

    def _outcome(self, split: Split, corun) -> PlacementOutcome:
        """Drop arithmetic shared by the serial and sharded paths."""
        drops: Dict[str, float] = {}
        for label, app in corun.apps.items():
            drops[label] = performance_drop(
                self.profiles[app].throughput, corun.throughput[label]
            )
        avg = sum(drops.values()) / len(drops)
        return PlacementOutcome(split=split, per_flow_drop=drops,
                                average_drop=avg)

    def simulate_split(self, split: Split) -> PlacementOutcome:
        """Full-machine simulation of one split."""
        corun = run_corun(self._placement(split), self.spec, seed=self.seed,
                          warmup_packets=self.warmup_packets,
                          measure_packets=self.measure_packets)
        return self._outcome(split, corun)

    def _simulate_splits_sharded(self, splits: List[Split], jobs: int,
                                 runner) -> List[PlacementOutcome]:
        """Each split's co-run as one sweep shard; outcomes in input order."""
        from ..sweep.parallel import (_runner, corun_measurement,
                                      corun_shard)

        shards = [
            corun_shard(self._placement(split), self.spec, self.seed,
                        self.warmup_packets, self.measure_packets,
                        tag="split:" + "|".join(
                            "+".join(group) for group in split))
            for split in splits
        ]
        outcome = _runner(jobs, runner).run(shards)
        outcome.raise_for_quarantine()
        return [
            self._outcome(split, corun_measurement(res.payload))
            for split, res in zip(splits, outcome.results)
        ]

    def predict_split(self, split: Split) -> PlacementOutcome:
        """Predictor-based evaluation (no simulation)."""
        if self.predictor is None:
            raise RuntimeError("no predictor configured")
        drops: Dict[str, float] = {}
        for socket, group in enumerate(split):
            for i, app in enumerate(group):
                competitors = list(group)
                competitors.remove(app)
                label = f"{app}@{socket * self.spec.cores_per_socket + i}"
                drops[label] = self.predictor.predict_drop(app, competitors)
        avg = sum(drops.values()) / len(drops)
        return PlacementOutcome(split=split, per_flow_drop=drops,
                                average_drop=avg)

    def run(self, flows: Sequence[str], method: str = "simulate",
            max_splits: Optional[int] = None, jobs: int = 1,
            runner=None) -> StudyResult:
        """Evaluate every distinct split of ``flows``.

        ``method`` is ``"simulate"`` (ground truth, slow) or ``"predict"``
        (uses the sensitivity curves, fast). ``max_splits`` caps the number
        of evaluated splits for large mixed combinations (the extremes of
        interest are found among all splits by prediction first).
        ``jobs > 1`` (or a :class:`~repro.sweep.SweepRunner` as
        ``runner``) simulates the splits as parallel sweep shards; the
        outcomes are identical to a serial pass.
        """
        splits = enumerate_splits(flows, self.spec.cores_per_socket)
        if method == "predict":
            return StudyResult([self.predict_split(s) for s in splits])
        if method != "simulate":
            raise ValueError(f"unknown method {method!r}")
        if max_splits is not None and len(splits) > max_splits:
            if self.predictor is None:
                raise RuntimeError(
                    "max_splits requires a predictor to pre-rank splits"
                )
            ranked = sorted(splits,
                            key=lambda s: self.predict_split(s).average_drop)
            half = max(1, max_splits // 2)
            splits = ranked[:half] + ranked[-half:]
        if jobs > 1 or runner is not None:
            return StudyResult(
                self._simulate_splits_sharded(splits, jobs, runner))
        return StudyResult([self.simulate_split(s) for s in splits])
