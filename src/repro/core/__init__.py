"""The paper's contribution: contention profiling, prediction, scheduling.

* :mod:`profiler` — solo-run profiles (Table 1).
* :mod:`prediction` — SYN sweeps, sensitivity curves, and the three-step
  prediction method of Section 4.
* :mod:`validation` — co-run experiments and prediction-error accounting.
* :mod:`equation1` — the worst-case drop bound (Section 3.3, Figure 6).
* :mod:`model` — the Appendix A probabilistic cache-sharing model.
* :mod:`scheduling` — placement enumeration and the contention-aware
  scheduling study of Section 5.
* :mod:`throttling` — aggressiveness containment (Section 4).
"""

from .profiler import SoloProfile, profile_solo, profile_apps
from .prediction import SensitivityCurve, ContentionPredictor, sweep_sensitivity
from .validation import CoRunMeasurement, run_corun, measure_drop
from .equation1 import worst_case_drop, drop_from_conversion
from .model import CacheModel
from .scheduling import PlacementStudy, enumerate_splits
from .throttling import ThrottledFlow, TwoFacedFlow
from .capacity import SLA, CapacityPlanner

__all__ = [
    "SoloProfile",
    "profile_solo",
    "profile_apps",
    "SensitivityCurve",
    "ContentionPredictor",
    "sweep_sensitivity",
    "CoRunMeasurement",
    "run_corun",
    "measure_drop",
    "worst_case_drop",
    "drop_from_conversion",
    "CacheModel",
    "PlacementStudy",
    "enumerate_splits",
    "ThrottledFlow",
    "TwoFacedFlow",
    "SLA",
    "CapacityPlanner",
]
