"""Equation 1: performance drop from hit-to-miss conversion (Section 3.3).

A flow achieving ``h`` cache hits/sec solo, suffering hit-to-miss
conversion rate ``kappa`` with miss penalty ``delta`` seconds, drops by::

    drop = 1 / (1 + 1 / (delta * kappa * h))

With ``kappa = 1`` this bounds the worst case (Figure 6): a flow's
worst-case sensitivity depends *only* on its solo hits/sec — the paper's
argument for hits/sec as the sensitivity metric.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..constants import DELTA_NS
from ..units import NS_PER_SEC


def drop_from_conversion(hits_per_sec: float, kappa: float,
                         delta_ns: float = DELTA_NS) -> float:
    """Equation 1 for an arbitrary conversion rate ``kappa``."""
    if hits_per_sec < 0:
        raise ValueError("hits/sec cannot be negative")
    if not 0.0 <= kappa <= 1.0:
        raise ValueError("conversion rate must be in [0, 1]")
    if delta_ns <= 0:
        raise ValueError("delta must be positive")
    delta_seconds = delta_ns / NS_PER_SEC
    extra = delta_seconds * kappa * hits_per_sec
    if extra <= 0:
        return 0.0
    return 1.0 / (1.0 + 1.0 / extra)


def worst_case_drop(hits_per_sec: float, delta_ns: float = DELTA_NS) -> float:
    """Equation 1 at ``kappa = 1``: the worst possible contention drop."""
    return drop_from_conversion(hits_per_sec, kappa=1.0, delta_ns=delta_ns)


def worst_case_curve(
    max_hits_per_sec: float,
    delta_ns: float = DELTA_NS,
    n_points: int = 61,
) -> List[Tuple[float, float]]:
    """A Figure 6 series: (hits/sec, worst-case drop) samples."""
    if n_points < 2:
        raise ValueError("need at least two points")
    if max_hits_per_sec <= 0:
        raise ValueError("max hits/sec must be positive")
    step = max_hits_per_sec / (n_points - 1)
    return [
        (i * step, worst_case_drop(i * step, delta_ns))
        for i in range(n_points)
    ]


def figure6_series(
    max_hits_per_sec: float,
    deltas_ns: Sequence[float] = (30.0, DELTA_NS, 60.0),
    n_points: int = 61,
):
    """All three delta curves of Figure 6, keyed by delta in ns."""
    return {
        delta: worst_case_curve(max_hits_per_sec, delta, n_points)
        for delta in deltas_ns
    }
