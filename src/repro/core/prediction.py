"""The paper's prediction method (Section 4).

1. Measure each flow's solo-run L3 refs/sec.
2. Co-run the target flow with SYN flows of increasing refs/sec and record
   its performance drop as a function of the competing refs/sec — the
   *sensitivity curve*.
3. Predict the target's drop in any mix as the curve value at the *sum of
   its competitors' solo refs/sec*.

The method deliberately over-estimates competition (competitors slow down
under contention and issue fewer refs/sec than solo), but the flat tail of
the sensitivity curve past the turning point keeps the resulting error
small — under 3% in the paper. ``predict_drop(..., competing_refs=...)``
supports the "perfect knowledge" variant of Figure 8(b).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..constants import (
    DEFAULT_MEASURE_PACKETS,
    DEFAULT_SEED,
    DEFAULT_WARMUP_PACKETS,
)
from ..hw.counters import performance_drop
from ..hw.machine import Machine
from ..hw.topology import PlatformSpec
from ..apps.registry import app_factory
from ..apps.synthetic import SWEEP_CPU_OPS, syn_factory
from .profiler import SoloProfile, profile_apps, profile_solo


@dataclass
class SensitivityCurve:
    """Drop vs. competing refs/sec for one flow type (one Figure 4 curve)."""

    app: str
    points: List[Tuple[float, float]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.points = sorted(self.points)
        if not self.points or self.points[0][0] > 0:
            # A flow facing zero competition suffers zero drop by definition.
            self.points.insert(0, (0.0, 0.0))

    @property
    def refs(self) -> np.ndarray:
        """Competing refs/sec coordinates of the curve points."""
        return np.array([p[0] for p in self.points])

    @property
    def drops(self) -> np.ndarray:
        """Drop coordinates of the curve points."""
        return np.array([p[1] for p in self.points])

    def predict(self, competing_refs_per_sec: float) -> float:
        """Interpolated drop at ``competing_refs_per_sec`` (clamped at ends)."""
        if competing_refs_per_sec < 0:
            raise ValueError("competition cannot be negative")
        return float(np.interp(competing_refs_per_sec, self.refs, self.drops))

    def max_competition(self, max_drop: float) -> Optional[float]:
        """Largest competing refs/sec whose predicted drop stays ≤ ``max_drop``.

        The inverse lookup the guard's admission controller uses to turn
        an SLO into a *competition budget*: the first crossing of
        ``max_drop`` on the interpolated curve. Returns ``None`` when the
        curve never exceeds ``max_drop`` (any competition is tolerable —
        at least within the swept range; beyond it the flat-tail clamp
        keeps the prediction an over-estimate).
        """
        if max_drop < 0:
            raise ValueError("max_drop cannot be negative")
        refs, drops = self.refs, self.drops
        for i in range(len(refs)):
            if drops[i] > max_drop:
                if i == 0:
                    return float(refs[0])
                span = drops[i] - drops[i - 1]
                if span <= 0:
                    return float(refs[i])
                t = (max_drop - drops[i - 1]) / span
                return float(refs[i - 1] + t * (refs[i] - refs[i - 1]))
        return None

    def turning_point(self, fraction: float = 0.8) -> float:
        """Competing refs/sec at which the drop reaches ``fraction`` of its max.

        The paper's observation (c): past this point the drop varies little.
        """
        max_drop = float(self.drops.max())
        if max_drop <= 0:
            return 0.0
        target = fraction * max_drop
        refs, drops = self.refs, self.drops
        for i in range(len(refs)):
            if drops[i] >= target:
                if i == 0:
                    return float(refs[0])
                # Linear interpolation within the crossing segment.
                span = drops[i] - drops[i - 1]
                if span <= 0:
                    return float(refs[i])
                t = (target - drops[i - 1]) / span
                return float(refs[i - 1] + t * (refs[i] - refs[i - 1]))
        return float(refs[-1])


def sweep_level(
    app: str,
    spec: PlatformSpec,
    seed: int,
    level: int,
    cpu_ops: int,
    n_competitors: int,
    warmup_packets: int,
    measure_packets: int,
) -> Tuple[float, float]:
    """One point of a sensitivity sweep: ``(competing refs/sec, target pps)``.

    This is the independently-runnable unit of step 2 — the sweep
    orchestrator runs one level per shard, and :func:`sweep_sensitivity`
    calls it serially — so both paths execute identical arithmetic.
    """
    machine = Machine(spec, seed=seed + 7 * level)
    target = machine.add_flow(app_factory(app), core=0, label=app)
    syn_labels = []
    for i in range(n_competitors):
        run = machine.add_flow(
            syn_factory(cpu_ops_per_ref=cpu_ops), core=1 + i,
            label=f"SYN{i}",
        )
        syn_labels.append(run.label)
    result = machine.run(warmup_packets=warmup_packets,
                         measure_packets=measure_packets)
    competing = sum(result[lbl].l3_refs_per_sec for lbl in syn_labels)
    return competing, result[target.label].packets_per_sec


def sweep_sensitivity(
    app: str,
    spec: PlatformSpec,
    seed: int = DEFAULT_SEED,
    cpu_ops_levels: Sequence[int] = SWEEP_CPU_OPS,
    n_competitors: int = 5,
    warmup_packets: int = DEFAULT_WARMUP_PACKETS,
    measure_packets: int = DEFAULT_MEASURE_PACKETS,
    solo: Optional[SoloProfile] = None,
    jobs: int = 1,
    runner=None,
) -> SensitivityCurve:
    """Step 2 of the method: ramp SYN competitors against ``app``.

    Each level co-runs the target with ``n_competitors`` SYN flows on the
    same socket; the x coordinate is the competitors' *measured* combined
    refs/sec, the y coordinate the target's measured drop. ``jobs > 1``
    (or a :class:`~repro.sweep.SweepRunner` as ``runner``) runs the
    levels (and the solo profile, when not supplied) as parallel shards
    via :mod:`repro.sweep`; the curve is identical either way.
    """
    if n_competitors < 1:
        raise ValueError("need at least one competitor")
    if n_competitors >= spec.cores_per_socket:
        raise ValueError("competitors must fit on the target's socket")
    if jobs > 1 or runner is not None:
        from ..sweep.parallel import sweep_sensitivity_parallel

        return sweep_sensitivity_parallel(
            app, spec, seed=seed, cpu_ops_levels=cpu_ops_levels,
            n_competitors=n_competitors, warmup_packets=warmup_packets,
            measure_packets=measure_packets, solo=solo, jobs=jobs,
            runner=runner,
        )
    if solo is None:
        solo = profile_solo(app, spec, seed=seed,
                            warmup_packets=warmup_packets,
                            measure_packets=measure_packets)
    points: List[Tuple[float, float]] = []
    for level, cpu_ops in enumerate(cpu_ops_levels):
        competing, target_pps = sweep_level(
            app, spec, seed, level, cpu_ops, n_competitors,
            warmup_packets, measure_packets,
        )
        points.append((competing, performance_drop(solo.throughput,
                                                   target_pps)))
    return SensitivityCurve(app=app, points=points)


class ContentionPredictor:
    """The full prediction apparatus: solo profiles + sensitivity curves."""

    def __init__(self, profiles: Dict[str, SoloProfile],
                 curves: Dict[str, SensitivityCurve]):
        self.profiles = profiles
        self.curves = curves

    @classmethod
    def build(cls, apps: Iterable[str], spec: PlatformSpec,
              seed: int = DEFAULT_SEED,
              cpu_ops_levels: Sequence[int] = SWEEP_CPU_OPS,
              n_competitors: int = 5,
              warmup_packets: int = DEFAULT_WARMUP_PACKETS,
              measure_packets: int = DEFAULT_MEASURE_PACKETS,
              jobs: int = 1,
              runner=None,
              ) -> "ContentionPredictor":
        """Run the full offline profiling pass for ``apps``.

        ``jobs > 1`` (or a :class:`~repro.sweep.SweepRunner` as
        ``runner``) shards the pass — every solo profile and every
        (app, SYN level) co-run is an independent simulation — across a
        :mod:`repro.sweep` worker pool; results are identical to serial.
        """
        apps = list(apps)
        if jobs > 1 or runner is not None:
            from ..sweep.parallel import build_predictor_parallel

            return build_predictor_parallel(
                cls, apps, spec, seed=seed, cpu_ops_levels=cpu_ops_levels,
                n_competitors=n_competitors, warmup_packets=warmup_packets,
                measure_packets=measure_packets, jobs=jobs, runner=runner,
            )
        profiles = profile_apps(apps, spec, seed=seed,
                                warmup_packets=warmup_packets,
                                measure_packets=measure_packets)
        curves = {
            app: sweep_sensitivity(
                app, spec, seed=seed, cpu_ops_levels=cpu_ops_levels,
                n_competitors=n_competitors, warmup_packets=warmup_packets,
                measure_packets=measure_packets, solo=profiles[app],
            )
            for app in apps
        }
        return cls(profiles=profiles, curves=curves)

    # -- prediction -------------------------------------------------------------

    def competing_refs(self, competitors: Sequence[str]) -> float:
        """Step 1+3 input: sum of the competitors' solo refs/sec."""
        total = 0.0
        for app in competitors:
            try:
                total += self.profiles[app].l3_refs_per_sec
            except KeyError:
                raise KeyError(f"no solo profile for {app!r}") from None
        return total

    def predict_drop(self, target: str,
                     competitors: Sequence[str] = (),
                     competing_refs: Optional[float] = None) -> float:
        """Predicted drop of ``target`` against ``competitors``.

        Pass ``competing_refs`` to override the solo-profile estimate with
        the actual competition (the "perfect knowledge" prediction of
        Figure 8(b)).
        """
        try:
            curve = self.curves[target]
        except KeyError:
            raise KeyError(f"no sensitivity curve for {target!r}") from None
        if competing_refs is None:
            competing_refs = self.competing_refs(competitors)
        return curve.predict(competing_refs)

    def predict_throughput(self, target: str,
                           competitors: Sequence[str] = (),
                           competing_refs: Optional[float] = None) -> float:
        """Predicted packets/sec of ``target`` in the mix."""
        drop = self.predict_drop(target, competitors, competing_refs)
        return self.profiles[target].throughput * (1.0 - drop)
