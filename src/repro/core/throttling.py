"""Aggressiveness containment (Section 4, "Containing hidden aggressiveness").

A flow may behave innocently during offline profiling and aggressively in
production (the paper's example: an FW-like flow that switches to
SYN_MAX-style behaviour on a trigger packet). The defense: monitor each
flow's memory-access rate with hardware counters and slow the flow down
through its control element whenever it exceeds its profiled rate.

:class:`ThrottledFlow` wraps any flow with that closed loop (it reads the
flow's live simulated counters). :class:`TwoFacedFlow` is the adversary.
"""

from __future__ import annotations

from typing import Any, Dict

from ..mem.access import AccessContext


class ThrottledFlow:
    """Wrap a flow; bound its L3 refs/sec at ``target_refs_per_sec``."""

    #: The throttle loop reads live counters during generation, so its
    #: packet stream cannot be pregenerated (batch engine runs it live).
    timing_pure = False
    #: Never cached: the closed loop makes the stream feedback-dependent,
    #: and the batch engine's skeleton cache must not alias the wrapper
    #: with its (possibly cacheable) inner flow.
    stream_signature = None

    def __init__(self, inner, target_refs_per_sec: float,
                 adjust_every: int = 32, gain: float = 0.6):
        if target_refs_per_sec <= 0:
            raise ValueError("target rate must be positive")
        if adjust_every <= 0:
            raise ValueError("adjust_every must be positive")
        self.inner = inner
        self.name = f"throttled({getattr(inner, 'name', '?')})"
        self.measure_weight = getattr(inner, "measure_weight", 1.0)
        self.target_refs_per_sec = target_refs_per_sec
        self.adjust_every = adjust_every
        self.gain = gain
        self.extra_gap = 0.0
        self.adjustments = 0
        self._count = 0
        self._last_count = 0
        self._last_refs = 0
        self._last_clock = 0.0
        self._fr = None
        self._freq = 0.0

    def attach_run(self, machine, flow_run) -> None:
        """Bind to the live run state (counter feedback loop)."""
        self._fr = flow_run
        self._freq = machine.spec.freq_hz
        inner_attach = getattr(self.inner, "attach_run", None)
        if inner_attach is not None:
            inner_attach(machine, flow_run)

    def run_packet(self, ctx: AccessContext):
        """Insert the current throttle delay, then run the inner flow."""
        gap = int(self.extra_gap)
        if gap > 0:
            ctx.compute(gap, max(2, gap // 2))
        dma = self.inner.run_packet(ctx)
        self._count += 1
        if self._fr is not None and self._count % self.adjust_every == 0:
            self._adjust(self.adjust_every)
        return dma

    def _adjust(self, span: int) -> None:
        fr = self._fr
        d_refs = fr.counters.l3_refs - self._last_refs
        d_clock = fr.clock - self._last_clock
        self._last_refs = fr.counters.l3_refs
        self._last_clock = fr.clock
        self._last_count = self._count
        if d_clock <= 0 or span <= 0:
            return
        rate = d_refs * self._freq / d_clock
        error = (rate - self.target_refs_per_sec) / self.target_refs_per_sec
        cycles_per_packet = d_clock / span
        if error > 0:
            self.extra_gap += self.gain * error * cycles_per_packet
        else:
            self.extra_gap = max(
                0.0,
                self.extra_gap + 0.25 * self.gain * error * cycles_per_packet,
            )
        self.adjustments += 1

    def finish_run(self) -> None:
        """End-of-run flush over the final partial adjust window.

        With ``adjust_every`` larger than the packets actually run the
        periodic loop never fires: the flow finishes with ``extra_gap``
        still 0 and no signal that the throttle never engaged. Both
        engines call this hook after the measurement snapshots close, so
        the control loop sees every run at least once (``stats()``
        surfaces ``engaged`` either way).
        """
        if self._fr is not None and self._count > self._last_count:
            self._adjust(self._count - self._last_count)
        hook = getattr(self.inner, "finish_run", None)
        if hook is not None:
            hook()

    def stats(self) -> Dict[str, Any]:
        """Throttle-loop statistics (``engaged`` flags a dead loop)."""
        return {
            "target_refs_per_sec": self.target_refs_per_sec,
            "extra_gap": self.extra_gap,
            "adjustments": self.adjustments,
            "packets": self._count,
            "engaged": self.adjustments > 0,
        }


class TwoFacedFlow:
    """A flow that turns aggressive after ``trigger_packets`` packets.

    Until the trigger it runs ``innocent`` (e.g. an FW pipeline — what the
    profiler saw); afterwards it runs ``aggressive`` (e.g. SYN_MAX). The
    paper's contrived-but-instructive attacker.
    """

    def __init__(self, innocent, aggressive, trigger_packets: int):
        if trigger_packets < 0:
            raise ValueError("trigger must be non-negative")
        self.innocent = innocent
        self.aggressive = aggressive
        self.trigger_packets = trigger_packets
        self.name = f"twofaced({getattr(innocent, 'name', '?')})"
        self.measure_weight = getattr(innocent, "measure_weight", 1.0)
        self.packets = 0
        self.triggered = False

    def attach_run(self, machine, flow_run) -> None:
        """Forward run-state bindings to both personas."""
        for flow in (self.innocent, self.aggressive):
            attach = getattr(flow, "attach_run", None)
            if attach is not None:
                attach(machine, flow_run)

    @property
    def timing_pure(self) -> bool:
        """The trigger counts own packets only — pure iff both personas are."""
        return (getattr(self.innocent, "timing_pure", False)
                and getattr(self.aggressive, "timing_pure", False))

    @property
    def stream_signature(self):
        inn = getattr(self.innocent, "stream_signature", None)
        agg = getattr(self.aggressive, "stream_signature", None)
        if inn is None or agg is None:
            return None
        return ("twofaced", self.trigger_packets, inn, agg)

    def run_packet(self, ctx: AccessContext):
        """Run the active persona (switching at the trigger)."""
        self.packets += 1
        if not self.triggered and self.packets > self.trigger_packets:
            self.triggered = True
        active = self.aggressive if self.triggered else self.innocent
        return active.run_packet(ctx)


def throttled_factory(inner_factory, target_refs_per_sec: float,
                      adjust_every: int = 32, gain: float = 0.6):
    """Machine-compatible factory wrapping ``inner_factory`` with throttling."""

    def build(env):
        return ThrottledFlow(inner_factory(env), target_refs_per_sec,
                             adjust_every=adjust_every, gain=gain)

    return build
