"""Appendix A: a simple probabilistic cache-sharing model.

The model explains the *shape* of the hit-to-miss conversion curve (sharp
rise, then flattening) without platform-specific detail:

* a competing reference evicts a target line with probability
  ``p_ev = 1/C`` (uniform competitor access over ``C`` cache lines);
* between two target references to the same chunk, the number of
  competing references ``Z`` is geometric with success probability
  ``p_t = (H_t/W) / (H_t/W + R_c)``;
* so ``P(hit) = p_t / (1 - (1 - p_ev)(1 - p_t))`` and the conversion rate
  is ``1 - P(hit)``.

Under the equal-sensitivity assumption (target and competitors slow down
alike), the solo-run rates can be used directly for ``H_t`` and ``R_c`` —
their ratio is what matters. The paper uses this model for intuition, not
prediction: it overestimates conversion for non-uniform target access
(hot trie roots, per-packet bookkeeping lines), which Figure 7 shows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from .equation1 import drop_from_conversion


@dataclass(frozen=True)
class CacheModel:
    """The Appendix A model for one target flow.

    Attributes:
        cache_lines: shared-cache capacity ``C`` in lines.
        target_hits_per_sec: ``H_t``, the target's solo cache hits/sec.
        working_set_chunks: ``W``, the target's cacheable chunks (lines).
    """

    cache_lines: int
    target_hits_per_sec: float
    working_set_chunks: int

    def __post_init__(self) -> None:
        if self.cache_lines <= 0:
            raise ValueError("cache must have at least one line")
        if self.target_hits_per_sec < 0:
            raise ValueError("hits/sec cannot be negative")
        if self.working_set_chunks <= 0:
            raise ValueError("working set must be at least one chunk")

    @property
    def p_ev(self) -> float:
        """Probability one competing reference evicts a given cached chunk."""
        return 1.0 / self.cache_lines

    def p_t(self, competing_refs_per_sec: float) -> float:
        """Probability the next reference is the target's re-reference."""
        if competing_refs_per_sec < 0:
            raise ValueError("competition cannot be negative")
        target_rate = self.target_hits_per_sec / self.working_set_chunks
        denom = target_rate + competing_refs_per_sec
        if denom <= 0:
            return 1.0
        return target_rate / denom

    def hit_probability(self, competing_refs_per_sec: float) -> float:
        """P(hit) for a reference that was a hit during the solo run."""
        p_t = self.p_t(competing_refs_per_sec)
        p_ev = self.p_ev
        denom = 1.0 - (1.0 - p_ev) * (1.0 - p_t)
        if denom <= 0:
            return 1.0
        return p_t / denom

    def conversion_rate(self, competing_refs_per_sec: float) -> float:
        """The hit-to-miss conversion rate ``kappa`` (Figure 7's estimate)."""
        return 1.0 - self.hit_probability(competing_refs_per_sec)

    def estimated_drop(self, competing_refs_per_sec: float,
                       delta_ns: float = None) -> float:
        """Model conversion rate plugged into Equation 1."""
        from ..constants import DELTA_NS

        kappa = self.conversion_rate(competing_refs_per_sec)
        return drop_from_conversion(
            self.target_hits_per_sec, kappa,
            DELTA_NS if delta_ns is None else delta_ns,
        )

    def curve(self, competition_levels: Sequence[float]
              ) -> List[Tuple[float, float]]:
        """(competing refs/sec, conversion rate) samples."""
        return [
            (refs, self.conversion_rate(refs)) for refs in competition_levels
        ]
