"""Offline solo-run profiling (Table 1 and step 1 of the prediction method).

"We measure the number of last-level cache refs/sec performed by each flow
during a solo run." A solo profile is one flow on one core with every
other core idle; the derived columns match Table 1 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable

from ..constants import (
    DEFAULT_MEASURE_PACKETS,
    DEFAULT_SEED,
    DEFAULT_WARMUP_PACKETS,
)
from ..hw.counters import FlowStats
from ..hw.machine import Machine
from ..hw.topology import PlatformSpec
from ..apps.registry import app_factory


@dataclass(frozen=True)
class SoloProfile:
    """Solo-run characteristics of one flow type (one Table 1 row)."""

    app: str
    throughput: float                 # packets/sec
    cycles_per_instruction: float
    l3_refs_per_sec: float
    l3_hits_per_sec: float
    cycles_per_packet: float
    l3_refs_per_packet: float
    l3_misses_per_packet: float
    l2_hits_per_packet: float

    @classmethod
    def from_stats(cls, app: str, stats: FlowStats) -> "SoloProfile":
        """Extract the Table 1 columns from a measured window."""
        return cls(
            app=app,
            throughput=stats.packets_per_sec,
            cycles_per_instruction=stats.cycles_per_instruction,
            l3_refs_per_sec=stats.l3_refs_per_sec,
            l3_hits_per_sec=stats.l3_hits_per_sec,
            cycles_per_packet=stats.cycles_per_packet,
            l3_refs_per_packet=stats.l3_refs_per_packet,
            l3_misses_per_packet=stats.l3_misses_per_packet,
            l2_hits_per_packet=stats.l2_hits_per_packet,
        )

    @property
    def l3_hits_per_packet(self) -> float:
        """Derived: refs minus misses per packet."""
        return self.l3_refs_per_packet - self.l3_misses_per_packet


def profile_solo(app: str, spec: PlatformSpec, seed: int = DEFAULT_SEED,
                 warmup_packets: int = DEFAULT_WARMUP_PACKETS,
                 measure_packets: int = DEFAULT_MEASURE_PACKETS,
                 core: int = 0, **app_params) -> SoloProfile:
    """Profile ``app`` running alone on ``core`` of a machine."""
    machine = Machine(spec, seed=seed)
    flow = machine.add_flow(app_factory(app, **app_params), core=core,
                            label=app)
    result = machine.run(warmup_packets=warmup_packets,
                         measure_packets=measure_packets)
    return SoloProfile.from_stats(app, result[flow.label])


def profile_apps(apps: Iterable[str], spec: PlatformSpec,
                 seed: int = DEFAULT_SEED,
                 warmup_packets: int = DEFAULT_WARMUP_PACKETS,
                 measure_packets: int = DEFAULT_MEASURE_PACKETS,
                 repeats: int = 1, jobs: int = 1,
                 runner=None) -> Dict[str, SoloProfile]:
    """Profile several flow types; averages over ``repeats`` seeded runs.

    This is how Table 1 is produced ("each number represents an average
    over 5 independent runs"; we default to 1 and let callers choose).
    ``jobs > 1`` (or a :class:`~repro.sweep.SweepRunner` passed as
    ``runner``) runs the (app, repeat) grid as parallel shards via
    :mod:`repro.sweep`; the profiles are identical to a serial pass.
    """
    if repeats <= 0:
        raise ValueError("repeats must be positive")
    if jobs > 1 or runner is not None:
        from ..sweep.parallel import profile_apps_parallel

        return profile_apps_parallel(
            apps, spec, seed=seed, warmup_packets=warmup_packets,
            measure_packets=measure_packets, repeats=repeats, jobs=jobs,
            runner=runner,
        )
    out: Dict[str, SoloProfile] = {}
    for app in apps:
        profiles = [
            profile_solo(app, spec, seed=seed + 101 * i,
                         warmup_packets=warmup_packets,
                         measure_packets=measure_packets)
            for i in range(repeats)
        ]
        out[app] = _average_profiles(app, profiles)
    return out


def _average_profiles(app: str, profiles) -> SoloProfile:
    n = len(profiles)
    if n == 1:
        return profiles[0]

    def mean(attr: str) -> float:
        return sum(getattr(p, attr) for p in profiles) / n

    return SoloProfile(
        app=app,
        throughput=mean("throughput"),
        cycles_per_instruction=mean("cycles_per_instruction"),
        l3_refs_per_sec=mean("l3_refs_per_sec"),
        l3_hits_per_sec=mean("l3_hits_per_sec"),
        cycles_per_packet=mean("cycles_per_packet"),
        l3_refs_per_packet=mean("l3_refs_per_packet"),
        l3_misses_per_packet=mean("l3_misses_per_packet"),
        l2_hits_per_packet=mean("l2_hits_per_packet"),
    )
