"""Plain-text table/series formatting for experiment output."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: str = "") -> str:
    """Fixed-width table with a rule under the header."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.rjust(widths[i]) if i else cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(name: str, points: Iterable[Sequence[float]],
                  x_label: str = "x", y_label: str = "y") -> str:
    """One figure series as aligned (x, y) pairs."""
    lines = [f"{name}: {x_label} -> {y_label}"]
    for point in points:
        coords = ", ".join(_fmt(v) for v in point)
        lines.append(f"  ({coords})")
    return "\n".join(lines)


def pct(value: float) -> str:
    """A drop/error as a percentage string."""
    return f"{100.0 * value:.2f}%"


def millions(value: float) -> str:
    """A rate in millions/sec."""
    return f"{value / 1e6:.2f}M"


def summarize_report(data: Dict) -> str:
    """Render a :class:`~repro.obs.RunReport` dict as human-readable text.

    The inverse direction of ``--json``: given a report produced by a CLI
    or :meth:`RunResult.report`, print the headline facts (kind, platform,
    per-flow throughput table) without the consumer needing to know the
    schema. Unknown/missing sections are skipped, so this renders partial
    documents too.
    """
    lines: List[str] = []
    kind = data.get("kind", "run")
    command = data.get("command") or ""
    head = f"{kind} report"
    if command:
        head += f" ({command})"
    lines.append(head)
    platform = data.get("platform") or {}
    if platform:
        lines.append(
            f"  platform: scale 1/{data.get('scale', '?')}, "
            f"{platform.get('sockets', '?')}x{platform.get('cores_per_socket', '?')} cores, "
            f"{millions(platform.get('freq_hz', 0.0))}Hz"
        )
    if data.get("seed") is not None:
        lines.append(f"  seed: {data['seed']}")
    flows = data.get("flows") or []
    if flows:
        rows = [
            [f.get("label", "?"), f"{f.get('packets_per_sec', 0.0):,.0f}",
             f"{f.get('cycles_per_packet', 0.0):.0f}",
             pct(f.get("l3_hit_rate", 0.0))]
            for f in flows
        ]
        lines.append("")
        lines.append(format_table(
            ["flow", "pkts/sec", "cyc/pkt", "L3 hit rate"], rows))
    timeseries = data.get("timeseries") or {}
    if timeseries:
        n_points = sum(
            len(points)
            for run in timeseries.values()
            for points in run.values()
        )
        lines.append("")
        lines.append(f"  time series: {len(timeseries)} run(s), "
                     f"{n_points} interval samples")
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if abs(cell) >= 1e6:
            return f"{cell:,.0f}"
        if abs(cell) >= 100:
            return f"{cell:.1f}"
        return f"{cell:.3f}"
    return str(cell)
