"""Plain-text table/series formatting for experiment output."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: str = "") -> str:
    """Fixed-width table with a rule under the header."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.rjust(widths[i]) if i else cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(name: str, points: Iterable[Sequence[float]],
                  x_label: str = "x", y_label: str = "y") -> str:
    """One figure series as aligned (x, y) pairs."""
    lines = [f"{name}: {x_label} -> {y_label}"]
    for point in points:
        coords = ", ".join(_fmt(v) for v in point)
        lines.append(f"  ({coords})")
    return "\n".join(lines)


def pct(value: float) -> str:
    """A drop/error as a percentage string."""
    return f"{100.0 * value:.2f}%"


def millions(value: float) -> str:
    """A rate in millions/sec."""
    return f"{value / 1e6:.2f}M"


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if abs(cell) >= 1e6:
            return f"{cell:,.0f}"
        if abs(cell) >= 100:
            return f"{cell:.1f}"
        return f"{cell:.3f}"
    return str(cell)
