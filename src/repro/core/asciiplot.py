"""Tiny ASCII plots for figure series in terminal reports.

The benchmark harness prints each figure's data as numbers; these helpers
add a quick visual (drop-vs-competition curves, overlayed series) so the
shape — sharp rise, flat tail, curve ordering — is visible at a glance
without any plotting dependency.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

Point = Tuple[float, float]

#: Glyphs assigned to series in order.
GLYPHS = "ox+*#@%&"


def _scale(value: float, lo: float, hi: float, cells: int) -> int:
    if hi <= lo:
        return 0
    cell = int((value - lo) / (hi - lo) * cells)
    return min(cells - 1, max(0, cell))


def plot(series: Dict[str, Sequence[Point]], width: int = 64,
         height: int = 16, x_label: str = "x", y_label: str = "y") -> str:
    """Render one or more (x, y) series on a shared-axis character grid."""
    if not series:
        raise ValueError("nothing to plot")
    if width < 8 or height < 4:
        raise ValueError("plot area too small")
    points = [p for pts in series.values() for p in pts]
    if not points:
        raise ValueError("all series are empty")
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(min(ys), 0.0), max(ys)
    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    for (name, pts), glyph in zip(sorted(series.items()), GLYPHS * 4):
        for x, y in pts:
            col = _scale(x, x_lo, x_hi, width)
            row = height - 1 - _scale(y, y_lo, y_hi, height)
            grid[row][col] = glyph
    lines = []
    for i, row in enumerate(grid):
        label = f"{y_hi:>8.3g}" if i == 0 else (
            f"{y_lo:>8.3g}" if i == height - 1 else " " * 8)
        lines.append(f"{label} |" + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(f"{'':9}{x_lo:<12.3g}{x_label:^{max(0, width - 24)}}"
                 f"{x_hi:>12.3g}")
    legend = "   ".join(
        f"{glyph}={name}"
        for (name, _), glyph in zip(sorted(series.items()), GLYPHS * 4)
    )
    lines.append(f"{'':9}{y_label}; {legend}")
    return "\n".join(lines)


def plot_curve(points: Sequence[Point], name: str = "series",
               width: int = 64, height: int = 16,
               x_label: str = "x", y_label: str = "y") -> str:
    """Single-series convenience wrapper."""
    return plot({name: points}, width=width, height=height,
                x_label=x_label, y_label=y_label)


def bar_chart(values: Dict[str, float], width: int = 50,
              unit: str = "") -> str:
    """Horizontal bars, scaled to the largest value."""
    if not values:
        raise ValueError("nothing to chart")
    peak = max(values.values())
    label_width = max(len(k) for k in values)
    lines = []
    for name, value in values.items():
        filled = 0 if peak <= 0 else int(round(value / peak * width))
        lines.append(
            f"{name:<{label_width}} |{'#' * filled:<{width}}| "
            f"{value:.3g}{unit}"
        )
    return "\n".join(lines)
