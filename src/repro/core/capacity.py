"""Capacity planning on top of the predictor.

The practical payoff of predictable performance (the paper's motivation:
operators won't accept "an unlucky configuration could cause unpredictable
drop ... violations of service-level agreements"): given per-flow-type
SLAs, decide — without running anything — whether a planned co-location
meets them, and how many flows of a type a socket can absorb.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .prediction import ContentionPredictor


@dataclass(frozen=True)
class SLA:
    """A flow type's requirement: a minimum packets/sec."""

    app: str
    min_throughput: float

    def __post_init__(self) -> None:
        if self.min_throughput < 0:
            raise ValueError("SLA throughput cannot be negative")


@dataclass
class FlowPlan:
    """One planned flow and its predicted outcome."""

    app: str
    predicted_throughput: float
    predicted_drop: float
    sla: Optional[SLA]

    @property
    def meets_sla(self) -> bool:
        """True when the predicted throughput satisfies the SLA (if any)."""
        return (self.sla is None
                or self.predicted_throughput >= self.sla.min_throughput)

    @property
    def headroom(self) -> float:
        """Relative margin over the SLA (negative = violated)."""
        if self.sla is None or self.sla.min_throughput <= 0:
            return float("inf")
        return self.predicted_throughput / self.sla.min_throughput - 1.0


@dataclass
class PlanAssessment:
    """Predicted outcome of a whole socket's deployment."""

    flows: List[FlowPlan]

    @property
    def feasible(self) -> bool:
        """True when every flow in the plan meets its SLA."""
        return all(flow.meets_sla for flow in self.flows)

    @property
    def violations(self) -> List[FlowPlan]:
        """The flows whose SLAs the plan would break."""
        return [flow for flow in self.flows if not flow.meets_sla]

    @property
    def worst_headroom(self) -> float:
        """The tightest SLA margin across the plan."""
        return min((flow.headroom for flow in self.flows),
                   default=float("inf"))


class CapacityPlanner:
    """Answer deployment questions from offline profiles alone."""

    def __init__(self, predictor: ContentionPredictor,
                 slas: Sequence[SLA] = ()):
        self.predictor = predictor
        self.slas: Dict[str, SLA] = {sla.app: sla for sla in slas}

    def assess(self, deployment: Sequence[str]) -> PlanAssessment:
        """Predict every flow's throughput in ``deployment`` (one socket)."""
        if not deployment:
            raise ValueError("empty deployment")
        flows: List[FlowPlan] = []
        for i, app in enumerate(deployment):
            competitors = list(deployment[:i]) + list(deployment[i + 1:])
            drop = self.predictor.predict_drop(app, competitors)
            throughput = self.predictor.profiles[app].throughput * (1 - drop)
            flows.append(FlowPlan(
                app=app, predicted_throughput=throughput,
                predicted_drop=drop, sla=self.slas.get(app),
            ))
        return PlanAssessment(flows=flows)

    def max_coresident(self, target: str, filler: str,
                       max_slots: int) -> Tuple[int, PlanAssessment]:
        """Most ``filler`` flows that can join one ``target`` flow.

        Returns ``(n, assessment_at_n)`` where ``n`` is the largest filler
        count (0..max_slots) keeping every SLA satisfied; the assessment is
        for that feasible deployment (or the bare target if even one filler
        violates).
        """
        if max_slots < 0:
            raise ValueError("max_slots cannot be negative")
        best_n = 0
        best = self.assess([target])
        for n in range(1, max_slots + 1):
            assessment = self.assess([target] + [filler] * n)
            if not assessment.feasible:
                break
            best_n, best = n, assessment
        return best_n, best

    def rank_deployments(self, candidates: Sequence[Sequence[str]]
                         ) -> List[Tuple[Sequence[str], PlanAssessment]]:
        """Feasible candidates first, by descending worst headroom."""
        assessed = [(tuple(c), self.assess(c)) for c in candidates]
        return sorted(
            assessed,
            key=lambda pair: (not pair[1].feasible,
                              -pair[1].worst_headroom),
        )
