"""Bump allocation of simulated memory, one allocator per NUMA domain.

The paper's configuration allocates each flow's data structures in the
memory domain local to the processor running the flow (Section 2.2,
"NUMA memory allocation"); replication across domains is how flows on
different sockets avoid remote accesses. :class:`AddressSpace` hands out
non-overlapping regions per domain so experiments can reproduce both the
local-allocation default and the deliberately-remote placements of
Figure 3.
"""

from __future__ import annotations

from typing import Dict, List

from ..constants import CACHE_LINE, NUMA_DOMAIN_SHIFT
from .region import Region


class DomainAllocator:
    """Bump allocator for one NUMA domain of the simulated address space."""

    def __init__(self, domain: int):
        if domain < 0:
            raise ValueError("domain must be non-negative")
        self.domain = domain
        self._base = domain << NUMA_DOMAIN_SHIFT
        self._next = self._base
        self._limit = (domain + 1) << NUMA_DOMAIN_SHIFT
        self.regions: List[Region] = []

    @property
    def allocated_bytes(self) -> int:
        """Total bytes handed out so far."""
        return self._next - self._base

    def alloc(self, size: int, name: str) -> Region:
        """Allocate ``size`` bytes (rounded up to a whole cache line)."""
        if size <= 0:
            raise ValueError("allocation size must be positive")
        rounded = (size + CACHE_LINE - 1) & ~(CACHE_LINE - 1)
        if self._next + rounded > self._limit:
            raise MemoryError(
                f"domain {self.domain} exhausted allocating {rounded} bytes"
            )
        region = Region(name=name, base=self._next, size=rounded, domain=self.domain)
        self._next += rounded
        self.regions.append(region)
        return region


class AddressSpace:
    """The machine-wide simulated address space: one allocator per domain."""

    def __init__(self, n_domains: int):
        if n_domains <= 0:
            raise ValueError("need at least one NUMA domain")
        self.n_domains = n_domains
        self._allocators: Dict[int, DomainAllocator] = {
            d: DomainAllocator(d) for d in range(n_domains)
        }

    def domain(self, d: int) -> DomainAllocator:
        """The allocator for NUMA domain ``d``."""
        try:
            return self._allocators[d]
        except KeyError:
            raise ValueError(f"no such NUMA domain: {d}") from None

    def alloc(self, size: int, name: str, domain: int = 0) -> Region:
        """Allocate ``size`` bytes in ``domain``."""
        return self.domain(domain).alloc(size, name)

    def all_regions(self) -> List[Region]:
        """Every region allocated so far, across all domains."""
        out: List[Region] = []
        for alloc in self._allocators.values():
            out.extend(alloc.regions)
        return out


def domain_of_address(addr: int) -> int:
    """NUMA domain that owns byte address ``addr``."""
    return addr >> NUMA_DOMAIN_SHIFT


def domain_of_line(line: int) -> int:
    """NUMA domain that owns cache line ``line``."""
    from ..constants import CACHE_LINE_BITS

    return line >> (NUMA_DOMAIN_SHIFT - CACHE_LINE_BITS)
