"""Simulated memory regions.

A :class:`Region` is a contiguous span of the simulated physical address
space, pinned to one NUMA domain. Regions carry no payload bytes — the
functional state of an application lives in ordinary Python objects — they
exist so that each logical data-structure access can be mapped to concrete
cache-line addresses for the cache simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..constants import CACHE_LINE, CACHE_LINE_BITS


@dataclass(frozen=True)
class Region:
    """A named, NUMA-pinned span of simulated memory.

    Attributes:
        name: human-readable label (appears in debug dumps).
        base: first byte address (already offset into its NUMA domain).
        size: length in bytes.
        domain: NUMA domain index the region lives in.
    """

    name: str
    base: int
    size: int
    domain: int

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"region {self.name!r} must have positive size")
        if self.base % CACHE_LINE:
            raise ValueError(f"region {self.name!r} base not line-aligned")

    @property
    def end(self) -> int:
        """One past the last byte address."""
        return self.base + self.size

    @property
    def n_lines(self) -> int:
        """Number of cache lines the region spans."""
        return (self.size + CACHE_LINE - 1) >> CACHE_LINE_BITS

    def addr(self, offset: int) -> int:
        """Byte address of ``offset`` within the region (bounds-checked)."""
        if not 0 <= offset < self.size:
            raise IndexError(
                f"offset {offset} outside region {self.name!r} of size {self.size}"
            )
        return self.base + offset

    def line(self, offset: int) -> int:
        """Cache-line index (global line number) containing ``offset``."""
        return self.addr(offset) >> CACHE_LINE_BITS

    def lines(self, offset: int, length: int) -> range:
        """All cache-line indices covered by ``[offset, offset+length)``."""
        if length <= 0:
            raise ValueError("length must be positive")
        first = self.addr(offset) >> CACHE_LINE_BITS
        last = (self.addr(offset + length - 1)) >> CACHE_LINE_BITS
        return range(first, last + 1)

    def overlaps(self, other: "Region") -> bool:
        """True if the two regions share any byte of address space."""
        return self.base < other.end and other.base < self.end

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Region({self.name!r}, base=0x{self.base:x}, "
            f"size={self.size}, domain={self.domain})"
        )
