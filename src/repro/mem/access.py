"""Access recording: how applications drive the cache simulation.

Applications do their real work against ordinary Python data structures,
but every logical data-structure access is mirrored into an
:class:`AccessContext`. The context accumulates, per packet, an *access
program*: a flat list of ``(gap_cycles, line, tag)`` triples (stored as a
flat int list for speed) plus an instruction count. The timing engine in
:mod:`repro.hw.machine` replays these programs, interleaving the programs
of co-running cores at memory-reference granularity, which is what creates
shared-cache and memory-controller contention.

Tags label references with the function that issued them (for example
``radix_ip_lookup`` or ``flow_statistics``), enabling the per-function
hit-to-miss conversion breakdown of the paper's Figure 7.
"""

from __future__ import annotations

from typing import Dict, List

from ..constants import CACHE_LINE_BITS
from .region import Region


class TagRegistry:
    """Registry of reference tags (small ints) keyed by function name."""

    def __init__(self) -> None:
        self._by_name: Dict[str, int] = {}
        self._names: List[str] = []
        self.register("other")

    def register(self, name: str) -> int:
        """Return the tag id for ``name``, registering it if new."""
        tag = self._by_name.get(name)
        if tag is None:
            tag = len(self._names)
            self._by_name[name] = tag
            self._names.append(name)
        return tag

    def name(self, tag: int) -> str:
        """The function name for tag id ``tag``."""
        return self._names[tag]

    def __len__(self) -> int:
        return len(self._names)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name


#: Process-wide registry. Tag ids are stable within a process, which lets
#: counters from different runs (solo vs. co-run) be compared by id.
TAGS = TagRegistry()
TAG_OTHER = 0


class AccessContext:
    """Per-flow recorder turning logical accesses into an access program.

    The produced program is a flat list ``[gap0, line0, tag0, gap1, ...]``
    where ``gap`` is compute cycles spent *before* the reference. Compute
    issued after the last reference of a packet is carried in
    ``trailing_gap``.
    """

    __slots__ = ("program", "instructions", "trailing_gap", "is_idle",
                 "_pending_gap")

    def __init__(self) -> None:
        self.program: List[int] = []
        self.instructions = 0
        self.trailing_gap = 0
        self.is_idle = False
        self._pending_gap = 0

    # -- recording ---------------------------------------------------------

    def compute(self, gap_cycles: int, instructions: int) -> None:
        """Record pure compute work (no memory reference)."""
        self._pending_gap += gap_cycles
        self.instructions += instructions

    def cost(self, gap_and_instr: tuple) -> None:
        """Record a ``(gap, instructions)`` cost constant pair."""
        self._pending_gap += gap_and_instr[0]
        self.instructions += gap_and_instr[1]

    def touch_line(self, line: int, tag: int = TAG_OTHER) -> None:
        """Record one memory reference to cache line ``line``."""
        self.program.extend((self._pending_gap, line, tag))
        self._pending_gap = 0

    def touch(
        self,
        region: Region,
        offset: int,
        length: int = 1,
        tag: int = TAG_OTHER,
    ) -> None:
        """Record references covering ``[offset, offset+length)`` of ``region``.

        Hot path: bounds are the region's responsibility (regions are sized
        at allocation time and validated by the substrate tests), so this
        computes line indices directly instead of going through
        :meth:`Region.lines`.
        """
        base = region.base + offset
        first = base >> CACHE_LINE_BITS
        last = (base + length - 1) >> CACHE_LINE_BITS
        if first == last:
            self.program.extend((self._pending_gap, first, tag))
            self._pending_gap = 0
            return
        extend = self.program.extend
        for line in range(first, last + 1):
            extend((self._pending_gap, line, tag))
            self._pending_gap = 0

    def touch_entry(
        self, region: Region, index: int, entry_bytes: int, tag: int = TAG_OTHER
    ) -> None:
        """Record references for entry ``index`` of a fixed-stride table."""
        self.touch(region, index * entry_bytes, entry_bytes, tag)

    # -- packet boundary ---------------------------------------------------

    def finish_packet(self) -> None:
        """Seal the current packet's program; leftover compute becomes trailing gap."""
        self.trailing_gap = self._pending_gap
        self._pending_gap = 0

    def mark_idle(self, stall_cycles: int) -> None:
        """Mark this step as an idle stall (pipeline stage with no input).

        Idle steps advance time but are not counted as processed packets.
        """
        if stall_cycles <= 0:
            raise ValueError("idle stall must advance time")
        self.is_idle = True
        self._pending_gap += stall_cycles

    def reset(self) -> None:
        """Clear all recorded state, ready for the next packet."""
        self.program.clear()
        self.instructions = 0
        self.trailing_gap = 0
        self.is_idle = False
        self._pending_gap = 0

    # -- introspection (used by tests and debug tooling) --------------------

    @property
    def n_references(self) -> int:
        """Number of memory references recorded so far."""
        return len(self.program) // 3

    def references(self) -> List[tuple]:
        """The recorded references as ``(gap, line, tag)`` tuples."""
        prog = self.program
        return [
            (prog[i], prog[i + 1], prog[i + 2]) for i in range(0, len(prog), 3)
        ]

    def lines_touched(self) -> List[int]:
        """Just the line addresses, in order."""
        return self.program[1::3]

    def total_gap_cycles(self) -> int:
        """Total compute cycles recorded (including pending/trailing)."""
        return sum(self.program[0::3]) + self._pending_gap + self.trailing_gap


def line_of(addr: int) -> int:
    """Global cache-line index of byte address ``addr``."""
    return addr >> CACHE_LINE_BITS
