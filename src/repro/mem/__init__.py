"""Simulated NUMA memory: address space, regions, and access recording.

Applications allocate :class:`~repro.mem.region.Region` objects from a
:class:`~repro.mem.allocator.DomainAllocator` and issue loads/stores through
an :class:`~repro.mem.access.AccessContext`, which turns them into per-packet
*access programs* consumed by the timing engine in :mod:`repro.hw.machine`.
"""

from .region import Region
from .allocator import DomainAllocator, AddressSpace
from .access import AccessContext, TagRegistry, TAGS, TAG_OTHER
from .layout import TableLayout

__all__ = [
    "Region",
    "DomainAllocator",
    "AddressSpace",
    "AccessContext",
    "TagRegistry",
    "TAGS",
    "TAG_OTHER",
    "TableLayout",
]
