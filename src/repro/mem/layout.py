"""Table layout helpers: map logical entry indices to region offsets."""

from __future__ import annotations

from ..constants import CACHE_LINE
from .region import Region


class TableLayout:
    """Fixed-stride table of ``n_entries`` records of ``entry_bytes`` each.

    Used by applications (NetFlow table, firewall rules, fingerprint table)
    to translate "access entry i" into cache-line addresses.
    """

    def __init__(self, region: Region, entry_bytes: int):
        if entry_bytes <= 0:
            raise ValueError("entry_bytes must be positive")
        if region.size < entry_bytes:
            raise ValueError("region smaller than a single entry")
        self.region = region
        self.entry_bytes = entry_bytes
        self.n_entries = region.size // entry_bytes

    def offset(self, index: int) -> int:
        """Byte offset of entry ``index`` within the region."""
        if not 0 <= index < self.n_entries:
            raise IndexError(f"entry {index} outside table of {self.n_entries}")
        return index * self.entry_bytes

    def line(self, index: int) -> int:
        """Cache line containing the start of entry ``index``."""
        return self.region.line(self.offset(index))

    def entries_per_line(self) -> int:
        """How many whole entries share one cache line (>= 1 when packed)."""
        return max(1, CACHE_LINE // self.entry_bytes)

    def __len__(self) -> int:
        return self.n_entries
