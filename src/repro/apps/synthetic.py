"""SYN: the synthetic profiling application (Section 2.1).

"For each received packet, we perform a configurable number of CPU
operations (counter increments) and read a configurable number of random
memory locations from a data structure that has the size of the L3
cache." SYN_MAX is the most aggressive variant: nothing but back-to-back
memory accesses.

SYN flows are the probes of the paper's prediction method: co-running a
target flow with SYN flows of increasing refs/sec yields the target's
sensitivity curve (Section 4, step 2).
"""

from __future__ import annotations

from typing import Optional

from ..constants import COST_SYN_CPU_OP, COST_SYN_REF, SYN_ARRAY_FRACTION
from ..hw.machine import FlowEnv
from ..mem.access import AccessContext, TAGS
from ..mem.region import Region


class SynApp:
    """The SYN synthetic flow (standalone flow, no packet I/O path)."""

    measure_weight = 1.0
    #: Generation depends only on the seeded per-flow RNG, never on live
    #: run state — eligible for pregeneration by the batch engine.
    timing_pure = True

    def __init__(self, env: FlowEnv, cpu_ops_per_ref: int = 0,
                 refs_per_packet: int = 32,
                 array_bytes: Optional[int] = None,
                 name: str = "SYN"):
        if refs_per_packet <= 0:
            raise ValueError("SYN must reference memory")
        if cpu_ops_per_ref < 0:
            raise ValueError("cpu_ops_per_ref must be non-negative")
        self.name = name
        self.cpu_ops_per_ref = cpu_ops_per_ref
        self.refs_per_packet = refs_per_packet
        size = (array_bytes if array_bytes is not None
                else int(env.spec.l3_size * SYN_ARRAY_FRACTION))
        self.region: Region = env.space.domain(env.domain).alloc(size, "syn.array")
        self.n_lines = self.region.n_lines
        self.rng = env.rng
        self.counter = 0
        self._base_line = self.region.base >> 6
        self._tag = TAGS.register("syn")
        self._gap = COST_SYN_CPU_OP[0] * cpu_ops_per_ref
        self._instr = COST_SYN_CPU_OP[1] * cpu_ops_per_ref + COST_SYN_REF[1]
        #: Together with (machine seed, core, spec) this pins the whole
        #: generated access stream (see repro.fastpath.streams). Uses the
        #: *parameter* ``array_bytes`` (None means "L3-sized", which the
        #: spec — part of the cache key — resolves) so the factory-level
        #: signature below can be computed without building the flow.
        self.stream_signature = syn_signature(cpu_ops_per_ref,
                                              refs_per_packet,
                                              array_bytes, name)

    def run_packet(self, ctx: AccessContext):
        """One SYN \"packet\": the configured CPU ops and random reads."""
        randrange = self.rng.randrange
        base = self._base_line
        n = self.n_lines
        gap = self._gap
        instr = self._instr
        touch = ctx.touch_line
        compute = ctx.compute
        tag = self._tag
        for _ in range(self.refs_per_packet):
            compute(gap, instr)
            touch(base + randrange(n), tag)
        self.counter += self.cpu_ops_per_ref * self.refs_per_packet
        return None


def syn_signature(cpu_ops_per_ref: int, refs_per_packet: int,
                  array_bytes: Optional[int], name: str):
    """The stream signature a SynApp with these parameters will carry."""
    return ("syn", name, cpu_ops_per_ref, refs_per_packet, array_bytes)


def syn_factory(cpu_ops_per_ref: int = 0, refs_per_packet: int = 32,
                array_bytes: Optional[int] = None, name: str = "SYN"):
    """Factory for :meth:`Machine.add_flow`."""

    def build(env: FlowEnv) -> SynApp:
        return SynApp(env, cpu_ops_per_ref=cpu_ops_per_ref,
                      refs_per_packet=refs_per_packet,
                      array_bytes=array_bytes, name=name)

    # Factory-level signature: lets Machine.add_flow find a cached stream
    # (and skip construction) without calling build() at all.
    build.stream_signature = syn_signature(cpu_ops_per_ref, refs_per_packet,
                                           array_bytes, name)
    return build


def syn_max_factory(array_bytes: Optional[int] = None):
    """SYN_MAX: consecutive memory accesses at the highest possible rate."""
    return syn_factory(cpu_ops_per_ref=0, array_bytes=array_bytes,
                       name="SYN_MAX")


#: Gap levels (CPU ops between refs) used by sensitivity sweeps: from a
#: gentle trickle of competing references up to SYN_MAX (cpu_ops 0).
SWEEP_CPU_OPS = (1440, 720, 360, 160, 60, 20, 0)
