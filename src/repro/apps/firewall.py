"""Sequential-search firewall (the paper's FW increment).

"Each packet is sequentially checked against 1000 rules and, if it
matches any, it is discarded. We use sequential search ... a relatively
small number of rules that can fit in the L2 cache." The evaluation
traffic never matches, so every packet scans the whole rule set — this is
the paper's compute-heavy, cache-*insensitive* flow type (its rules live
in the private caches, out of reach of L3 contention).
"""

from __future__ import annotations

import random
from typing import List, Optional

import numpy as np

from ..constants import COST_FW_RULE_LINE, FW_RULES, FW_RULE_BYTES
from ..hw.machine import FlowEnv
from ..mem.access import AccessContext, TAGS
from ..click.element import Element
from ..net.addresses import prefix_mask
from ..net.packet import Packet

#: Rules per cache line (16-byte rules, 64-byte lines).
_RULES_PER_LINE = 64 // FW_RULE_BYTES


class Rule:
    """One 5-tuple filter rule."""

    __slots__ = ("src_net", "src_mask", "dst_net", "dst_mask",
                 "dport_lo", "dport_hi", "protocol")

    def __init__(self, src_net: int, src_mask: int, dst_net: int,
                 dst_mask: int, dport_lo: int, dport_hi: int,
                 protocol: Optional[int]):
        self.src_net = src_net
        self.src_mask = src_mask
        self.dst_net = dst_net
        self.dst_mask = dst_mask
        self.dport_lo = dport_lo
        self.dport_hi = dport_hi
        self.protocol = protocol

    def matches(self, packet: Packet) -> bool:
        """Reference (per-field) evaluation of this rule on ``packet``."""
        ip = packet.ip
        if ip.src & self.src_mask != self.src_net:
            return False
        if ip.dst & self.dst_mask != self.dst_net:
            return False
        if not self.dport_lo <= packet.l4.dport <= self.dport_hi:
            return False
        if self.protocol is not None and ip.protocol != self.protocol:
            return False
        return True


def generate_unmatchable_rules(rng: random.Random, n_rules: int) -> List[Rule]:
    """Rules that can never match the generated traffic.

    All rules require sources in 240.0.0.0/4 (reserved space the traffic
    generators never emit... except by the source masking below), so every
    packet is checked against every rule — the paper's worst case.
    """
    rules: List[Rule] = []
    for _ in range(n_rules):
        src_mask = prefix_mask(rng.randrange(8, 25))
        # Class-E source network: impossible for generated traffic once
        # masked to the 240.0.0.0/4 space.
        src_net = (0xF0000000 | rng.getrandbits(28)) & src_mask
        if src_net >> 28 != 0xF:
            src_net |= 0xF0000000 & src_mask
        dst_mask = prefix_mask(rng.randrange(8, 25))
        dst_net = rng.getrandbits(32) & dst_mask
        lo = rng.randrange(0, 60000)
        rules.append(Rule(
            src_net=src_net, src_mask=src_mask, dst_net=dst_net,
            dst_mask=dst_mask, dport_lo=lo, dport_hi=lo + rng.randrange(1, 500),
            protocol=rng.choice([None, 6, 17]),
        ))
    return rules


class Firewall(Element):
    """Sequential rule scan; matching packets are dropped."""

    def __init__(self, n_rules: Optional[int] = None,
                 rules: Optional[List[Rule]] = None):
        self._cfg_rules = n_rules
        self._preset_rules = rules
        self.rules: List[Rule] = []
        self.region = None
        self.checked = 0
        self.blocked = 0
        self._tag = TAGS.register("fw_rules")
        self._vec = None

    def initialize(self, env: FlowEnv) -> None:
        if self._preset_rules is not None:
            self.rules = self._preset_rules
        else:
            # The rule set is deliberately NOT scaled with the platform: its
            # size defines FW's compute weight (the paper's slowest flow),
            # while its cache footprint (16 KB) fits the private caches at
            # every scale — which is what makes FW contention-insensitive.
            n_rules = (self._cfg_rules if self._cfg_rules is not None
                       else FW_RULES)
            self.rules = generate_unmatchable_rules(env.rng, n_rules)
        # The *memory footprint* of the rule array scales with the platform
        # (preserving its residency in the private caches), while the
        # *compute cost* covers every rule actually evaluated.
        footprint = env.spec.scale_bytes(
            max(1, len(self.rules)) * FW_RULE_BYTES
        )
        self.region = env.space.domain(env.domain).alloc(footprint, "fw.rules")
        self._build_vectors()

    def _build_vectors(self) -> None:
        """Columnar copies of the rule fields for vectorized evaluation.

        ``first_match`` evaluates every rule exactly as ``Rule.matches``
        does (the equivalence is property-tested), but across the whole
        rule set at once — the sequential scan's cycle cost is modeled by
        the per-line cost constants, not by Python-loop time.
        """
        rules = self.rules
        self._vec = {
            "src_net": np.array([r.src_net for r in rules], dtype=np.uint32),
            "src_mask": np.array([r.src_mask for r in rules], dtype=np.uint32),
            "dst_net": np.array([r.dst_net for r in rules], dtype=np.uint32),
            "dst_mask": np.array([r.dst_mask for r in rules], dtype=np.uint32),
            "dport_lo": np.array([r.dport_lo for r in rules], dtype=np.uint32),
            "dport_hi": np.array([r.dport_hi for r in rules], dtype=np.uint32),
            "protocol": np.array(
                [-1 if r.protocol is None else r.protocol for r in rules],
                dtype=np.int32,
            ),
        }

    def first_match(self, packet: Packet) -> Optional[int]:
        """Index of the first matching rule, or None."""
        if not self.rules:
            return None
        v = self._vec
        src = np.uint32(packet.ip.src)
        dst = np.uint32(packet.ip.dst)
        dport = np.uint32(packet.l4.dport)
        proto = np.int32(packet.ip.protocol)
        match = (
            ((src & v["src_mask"]) == v["src_net"])
            & ((dst & v["dst_mask"]) == v["dst_net"])
            & (v["dport_lo"] <= dport) & (dport <= v["dport_hi"])
            & ((v["protocol"] < 0) | (v["protocol"] == proto))
        )
        index = int(match.argmax())
        return index if match[index] else None

    def process(self, ctx: AccessContext, packet: Packet) -> Optional[Packet]:
        if self.region is None:
            raise RuntimeError("Firewall used before initialize()")
        self.checked += 1
        verdict = self.first_match(packet)
        # The sequential scan runs rule-by-rule up to the first match (or
        # the whole set when nothing matches — the evaluation traffic's
        # case): one reference per 16-byte-rule cache line plus the
        # per-line compute cost.
        scanned = len(self.rules) if verdict is None else verdict + 1
        tag = self._tag
        region = self.region
        rule_lines = (scanned + _RULES_PER_LINE - 1) // _RULES_PER_LINE
        region_lines = region.size >> 6
        touched = min(rule_lines, region_lines)
        # Spread the whole scan's compute cost over the touched lines.
        gap_total = COST_FW_RULE_LINE[0] * rule_lines
        instr_total = COST_FW_RULE_LINE[1] * rule_lines
        cost = ctx.cost
        touch = ctx.touch
        for i in range(touched):
            cost((gap_total // touched, instr_total // touched))
            touch(region, i << 6, 1, tag)
        if verdict is not None:
            self.blocked += 1
            return None
        return packet
