"""AES-128 block cipher, pure Python (FIPS-197).

Used by the VPN application the way IPsec uses it: CTR-mode payload
encryption. The encrypt path uses the classic four T-table formulation
for speed; decryption implements the straightforward inverse cipher and
exists so tests can round-trip. Verified against the FIPS-197 / SP 800-38A
test vectors in the test suite.

Inside the timing simulation, the AES lookup tables are not emitted as
individual memory references: at 4 KB they are L1-resident on any
configuration and cannot contend for the shared L3, so their cost is
folded into the calibrated per-block compute cycles (see
``constants.COST_AES_BLOCK``). The *payload* lines the cipher reads and
writes are simulated.
"""

from __future__ import annotations

from typing import List

# -- S-boxes ------------------------------------------------------------------

_SBOX = [
    0x63, 0x7C, 0x77, 0x7B, 0xF2, 0x6B, 0x6F, 0xC5, 0x30, 0x01, 0x67, 0x2B,
    0xFE, 0xD7, 0xAB, 0x76, 0xCA, 0x82, 0xC9, 0x7D, 0xFA, 0x59, 0x47, 0xF0,
    0xAD, 0xD4, 0xA2, 0xAF, 0x9C, 0xA4, 0x72, 0xC0, 0xB7, 0xFD, 0x93, 0x26,
    0x36, 0x3F, 0xF7, 0xCC, 0x34, 0xA5, 0xE5, 0xF1, 0x71, 0xD8, 0x31, 0x15,
    0x04, 0xC7, 0x23, 0xC3, 0x18, 0x96, 0x05, 0x9A, 0x07, 0x12, 0x80, 0xE2,
    0xEB, 0x27, 0xB2, 0x75, 0x09, 0x83, 0x2C, 0x1A, 0x1B, 0x6E, 0x5A, 0xA0,
    0x52, 0x3B, 0xD6, 0xB3, 0x29, 0xE3, 0x2F, 0x84, 0x53, 0xD1, 0x00, 0xED,
    0x20, 0xFC, 0xB1, 0x5B, 0x6A, 0xCB, 0xBE, 0x39, 0x4A, 0x4C, 0x58, 0xCF,
    0xD0, 0xEF, 0xAA, 0xFB, 0x43, 0x4D, 0x33, 0x85, 0x45, 0xF9, 0x02, 0x7F,
    0x50, 0x3C, 0x9F, 0xA8, 0x51, 0xA3, 0x40, 0x8F, 0x92, 0x9D, 0x38, 0xF5,
    0xBC, 0xB6, 0xDA, 0x21, 0x10, 0xFF, 0xF3, 0xD2, 0xCD, 0x0C, 0x13, 0xEC,
    0x5F, 0x97, 0x44, 0x17, 0xC4, 0xA7, 0x7E, 0x3D, 0x64, 0x5D, 0x19, 0x73,
    0x60, 0x81, 0x4F, 0xDC, 0x22, 0x2A, 0x90, 0x88, 0x46, 0xEE, 0xB8, 0x14,
    0xDE, 0x5E, 0x0B, 0xDB, 0xE0, 0x32, 0x3A, 0x0A, 0x49, 0x06, 0x24, 0x5C,
    0xC2, 0xD3, 0xAC, 0x62, 0x91, 0x95, 0xE4, 0x79, 0xE7, 0xC8, 0x37, 0x6D,
    0x8D, 0xD5, 0x4E, 0xA9, 0x6C, 0x56, 0xF4, 0xEA, 0x65, 0x7A, 0xAE, 0x08,
    0xBA, 0x78, 0x25, 0x2E, 0x1C, 0xA6, 0xB4, 0xC6, 0xE8, 0xDD, 0x74, 0x1F,
    0x4B, 0xBD, 0x8B, 0x8A, 0x70, 0x3E, 0xB5, 0x66, 0x48, 0x03, 0xF6, 0x0E,
    0x61, 0x35, 0x57, 0xB9, 0x86, 0xC1, 0x1D, 0x9E, 0xE1, 0xF8, 0x98, 0x11,
    0x69, 0xD9, 0x8E, 0x94, 0x9B, 0x1E, 0x87, 0xE9, 0xCE, 0x55, 0x28, 0xDF,
    0x8C, 0xA1, 0x89, 0x0D, 0xBF, 0xE6, 0x42, 0x68, 0x41, 0x99, 0x2D, 0x0F,
    0xB0, 0x54, 0xBB, 0x16,
]

_INV_SBOX = [0] * 256
for _i, _v in enumerate(_SBOX):
    _INV_SBOX[_v] = _i


def _xtime(a: int) -> int:
    a <<= 1
    if a & 0x100:
        a ^= 0x11B
    return a & 0xFF


def _gmul(a: int, b: int) -> int:
    """GF(2^8) multiplication."""
    result = 0
    for _ in range(8):
        if b & 1:
            result ^= a
        b >>= 1
        a = _xtime(a)
    return result


# T-tables: Te0[x] = (S[x].2, S[x], S[x], S[x].3) packed big-endian.
_TE0: List[int] = []
for _x in range(256):
    _s = _SBOX[_x]
    _TE0.append(
        (_gmul(_s, 2) << 24) | (_s << 16) | (_s << 8) | _gmul(_s, 3)
    )
_TE1 = [((t >> 8) | ((t & 0xFF) << 24)) & 0xFFFFFFFF for t in _TE0]
_TE2 = [((t >> 8) | ((t & 0xFF) << 24)) & 0xFFFFFFFF for t in _TE1]
_TE3 = [((t >> 8) | ((t & 0xFF) << 24)) & 0xFFFFFFFF for t in _TE2]

_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]


class AES128:
    """AES with a 128-bit key: 10 rounds, 4-word round keys."""

    BLOCK_SIZE = 16

    def __init__(self, key: bytes):
        if len(key) != 16:
            raise ValueError("AES-128 requires a 16-byte key")
        self.key = key
        self._rk = self._expand_key(key)

    @staticmethod
    def _expand_key(key: bytes) -> List[int]:
        """FIPS-197 key expansion into 44 32-bit words."""
        words = [int.from_bytes(key[i:i + 4], "big") for i in range(0, 16, 4)]
        for i in range(4, 44):
            temp = words[i - 1]
            if i % 4 == 0:
                temp = ((temp << 8) | (temp >> 24)) & 0xFFFFFFFF  # RotWord
                temp = (
                    (_SBOX[(temp >> 24) & 0xFF] << 24)
                    | (_SBOX[(temp >> 16) & 0xFF] << 16)
                    | (_SBOX[(temp >> 8) & 0xFF] << 8)
                    | _SBOX[temp & 0xFF]
                )
                temp ^= _RCON[i // 4 - 1] << 24
            words.append(words[i - 4] ^ temp)
        return words

    # -- encryption (T-table fast path) ---------------------------------------

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt one 16-byte block."""
        if len(block) != 16:
            raise ValueError("block must be 16 bytes")
        rk = self._rk
        s0 = int.from_bytes(block[0:4], "big") ^ rk[0]
        s1 = int.from_bytes(block[4:8], "big") ^ rk[1]
        s2 = int.from_bytes(block[8:12], "big") ^ rk[2]
        s3 = int.from_bytes(block[12:16], "big") ^ rk[3]
        te0, te1, te2, te3 = _TE0, _TE1, _TE2, _TE3
        k = 4
        for _ in range(9):
            t0 = (te0[s0 >> 24] ^ te1[(s1 >> 16) & 0xFF]
                  ^ te2[(s2 >> 8) & 0xFF] ^ te3[s3 & 0xFF] ^ rk[k])
            t1 = (te0[s1 >> 24] ^ te1[(s2 >> 16) & 0xFF]
                  ^ te2[(s3 >> 8) & 0xFF] ^ te3[s0 & 0xFF] ^ rk[k + 1])
            t2 = (te0[s2 >> 24] ^ te1[(s3 >> 16) & 0xFF]
                  ^ te2[(s0 >> 8) & 0xFF] ^ te3[s1 & 0xFF] ^ rk[k + 2])
            t3 = (te0[s3 >> 24] ^ te1[(s0 >> 16) & 0xFF]
                  ^ te2[(s1 >> 8) & 0xFF] ^ te3[s2 & 0xFF] ^ rk[k + 3])
            s0, s1, s2, s3 = t0, t1, t2, t3
            k += 4
        sbox = _SBOX
        out = bytearray(16)
        for i, (a, b, c, d) in enumerate(
            ((s0, s1, s2, s3), (s1, s2, s3, s0), (s2, s3, s0, s1),
             (s3, s0, s1, s2))
        ):
            w = rk[40 + i]
            out[4 * i] = sbox[a >> 24] ^ (w >> 24) & 0xFF
            out[4 * i + 1] = sbox[(b >> 16) & 0xFF] ^ (w >> 16) & 0xFF
            out[4 * i + 2] = sbox[(c >> 8) & 0xFF] ^ (w >> 8) & 0xFF
            out[4 * i + 3] = sbox[d & 0xFF] ^ w & 0xFF
        return bytes(out)

    # -- decryption (straightforward inverse cipher; tests only) ---------------

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt one 16-byte block (inverse cipher, unoptimized)."""
        if len(block) != 16:
            raise ValueError("block must be 16 bytes")
        state = [
            [block[r + 4 * c] for c in range(4)] for r in range(4)
        ]
        rk = self._rk

        def add_round_key(rnd: int) -> None:
            for c in range(4):
                w = rk[4 * rnd + c]
                for r in range(4):
                    state[r][c] ^= (w >> (24 - 8 * r)) & 0xFF

        def inv_shift_rows() -> None:
            for r in range(1, 4):
                state[r] = state[r][-r:] + state[r][:-r]

        def inv_sub_bytes() -> None:
            for r in range(4):
                for c in range(4):
                    state[r][c] = _INV_SBOX[state[r][c]]

        def inv_mix_columns() -> None:
            for c in range(4):
                col = [state[r][c] for r in range(4)]
                state[0][c] = (_gmul(col[0], 14) ^ _gmul(col[1], 11)
                               ^ _gmul(col[2], 13) ^ _gmul(col[3], 9))
                state[1][c] = (_gmul(col[0], 9) ^ _gmul(col[1], 14)
                               ^ _gmul(col[2], 11) ^ _gmul(col[3], 13))
                state[2][c] = (_gmul(col[0], 13) ^ _gmul(col[1], 9)
                               ^ _gmul(col[2], 14) ^ _gmul(col[3], 11))
                state[3][c] = (_gmul(col[0], 11) ^ _gmul(col[1], 13)
                               ^ _gmul(col[2], 9) ^ _gmul(col[3], 14))

        add_round_key(10)
        for rnd in range(9, 0, -1):
            inv_shift_rows()
            inv_sub_bytes()
            add_round_key(rnd)
            inv_mix_columns()
        inv_shift_rows()
        inv_sub_bytes()
        add_round_key(0)
        return bytes(state[r % 4][r // 4] for r in range(16))


def aes_ctr_keystream(cipher: AES128, nonce: int, counter0: int,
                      n_bytes: int) -> bytes:
    """CTR keystream: E(nonce || counter) for as many blocks as needed."""
    if n_bytes < 0:
        raise ValueError("n_bytes must be non-negative")
    out = bytearray()
    counter = counter0
    while len(out) < n_bytes:
        block = nonce.to_bytes(8, "big") + (counter & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "big")
        out.extend(cipher.encrypt_block(block))
        counter += 1
    return bytes(out[:n_bytes])


def ctr_crypt(cipher: AES128, nonce: int, counter0: int, data: bytes) -> bytes:
    """Encrypt/decrypt ``data`` in CTR mode (the operation is symmetric)."""
    ks = aes_ctr_keystream(cipher, nonce, counter0, len(data))
    return bytes(a ^ b for a, b in zip(data, ks))
