"""Packet-processing applications (Section 2.1 of the paper).

Five realistic applications — IP forwarding (IP), NetFlow monitoring (MON),
firewall (FW), redundancy elimination (RE), VPN (AES-128) — plus the SYN
synthetic profiler application. Each is a real implementation (the trie
routes, the firewall filters, RE's encoder round-trips, AES matches the
FIPS-197 vectors); data-structure accesses are mirrored into the cache
simulation via :class:`~repro.mem.access.AccessContext`.
"""

from .radixtrie import RadixTrie, RouteTableBuilder
from .aes import AES128, aes_ctr_keystream
from .fingerprint import RabinFingerprinter
from .packetstore import PacketStore
from .ahocorasick import AhoCorasick
from .registry import (
    make_app,
    app_factory,
    APP_NAMES,
    REALISTIC_APPS,
    EXTENSION_APPS,
)

__all__ = [
    "RadixTrie",
    "RouteTableBuilder",
    "AES128",
    "aes_ctr_keystream",
    "RabinFingerprinter",
    "PacketStore",
    "AhoCorasick",
    "make_app",
    "app_factory",
    "APP_NAMES",
    "REALISTIC_APPS",
    "EXTENSION_APPS",
]
