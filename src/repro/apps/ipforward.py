"""IP forwarding elements: longest-prefix-match lookup and TTL/checksum.

The paper's baseline application: "full IP forwarding, including
longest-prefix-match lookup, checksum computation, and time-to-live
update", using a radix trie with 128000 routes. Every trie node visited
during a lookup is one cache-line reference tagged ``radix_ip_lookup`` —
the function whose hit-to-miss conversion Figure 7 tracks.
"""

from __future__ import annotations

from typing import Optional

from ..constants import (
    COST_IP_FINISH,
    COST_TRIE_NODE,
    IP_ROUTING_TABLE_ENTRIES,
)
from ..hw.machine import FlowEnv
from ..mem.access import AccessContext, TAGS
from ..click.element import Element
from ..net.checksum import incremental_update16
from ..net.packet import Packet
from .radixtrie import RadixTrie, RouteTableBuilder, SLOT_BYTES


class RadixIPLookup(Element):
    """Longest-prefix-match against a radix trie."""

    def __init__(self, n_routes: Optional[int] = None,
                 trie: Optional[RadixTrie] = None):
        self._cfg_routes = n_routes
        self._cfg_trie = trie
        self.trie: RadixTrie = None  # type: ignore[assignment]
        self.region = None
        self.lookups = 0
        self.no_route = 0
        self._tag = TAGS.register("radix_ip_lookup")

    def initialize(self, env: FlowEnv) -> None:
        if self._cfg_trie is not None:
            self.trie = self._cfg_trie
        else:
            n_routes = (self._cfg_routes if self._cfg_routes is not None
                        else env.spec.scale_table(IP_ROUTING_TABLE_ENTRIES))
            self.trie = RouteTableBuilder(
                env.rng, addr_bits=env.spec.address_bits).build(n_routes)
        self.region = env.space.domain(env.domain).alloc(
            self.trie.total_bytes, "ip.trie"
        )

    def process(self, ctx: AccessContext, packet: Packet) -> Optional[Packet]:
        if self.region is None:
            raise RuntimeError("RadixIPLookup used before initialize()")
        next_hop, visited = self.trie.lookup(packet.ip.dst)
        tag = self._tag
        region = self.region
        cost = ctx.cost
        touch = ctx.touch
        for slot_offset in visited:
            cost(COST_TRIE_NODE)
            touch(region, slot_offset, SLOT_BYTES, tag)
        self.lookups += 1
        if next_hop is None:
            self.no_route += 1
            return None
        annotations = packet.annotations or {}
        annotations["next_hop"] = next_hop
        packet.annotations = annotations
        return packet


class DecIPTTL(Element):
    """Decrement TTL and incrementally update the header checksum."""

    def __init__(self) -> None:
        self.expired = 0
        self._tag = TAGS.register("dec_ttl")

    def process(self, ctx: AccessContext, packet: Packet) -> Optional[Packet]:
        ctx.cost(COST_IP_FINISH)
        ip = packet.ip
        if ip.ttl <= 1:
            self.expired += 1
            return None
        # RFC 1624: the TTL/protocol 16-bit word changes by one TTL step.
        old_word = (ip.ttl << 8) | ip.protocol
        ip.ttl -= 1
        new_word = (ip.ttl << 8) | ip.protocol
        if ip.checksum:
            ip.checksum = incremental_update16(ip.checksum, old_word, new_word)
        if packet.buffer is not None:
            # The TTL and checksum live in the first header line.
            ctx.touch(packet.buffer, 0, 4, self._tag)
        return packet
