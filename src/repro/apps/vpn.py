"""VPN: AES-128 payload encryption (the paper's CPU-intensive flow).

"Each packet is subjected to full IP forwarding, NetFlow and AES-128
encryption." The element really encrypts the payload (CTR mode, per-packet
counter) with the pure-Python AES from :mod:`repro.apps.aes`. The AES
lookup tables are L1-resident and folded into the calibrated per-block
compute cost; the payload lines the cipher reads and writes are mirrored
into simulated memory.
"""

from __future__ import annotations

from typing import Optional

from ..constants import COST_AES_BLOCK
from ..hw.machine import FlowEnv
from ..mem.access import AccessContext, TAGS
from ..click.element import Element
from ..net.packet import Packet
from .aes import AES128, ctr_crypt


class VPNEncrypt(Element):
    """Encrypt the packet payload under a per-flow AES-128 key."""

    def __init__(self, key: Optional[bytes] = None):
        self._cfg_key = key
        self.cipher: AES128 = None  # type: ignore[assignment]
        self.context_region = None
        self.counter = 0
        self.packets = 0
        self.bytes_encrypted = 0
        self._tag = TAGS.register("vpn_payload")
        self._tag_ctx = TAGS.register("vpn_context")

    def initialize(self, env: FlowEnv) -> None:
        key = self._cfg_key if self._cfg_key is not None else env.rng.randbytes(16)
        self.cipher = AES128(key)
        # Security-association state: round keys + nonce/counter (hot lines).
        self.context_region = env.space.domain(env.domain).alloc(
            256, "vpn.context"
        )

    def process(self, ctx: AccessContext, packet: Packet) -> Packet:
        if self.cipher is None:
            raise RuntimeError("VPNEncrypt used before initialize()")
        payload = packet.payload
        ctx.touch(self.context_region, 0, 192, self._tag_ctx)
        if payload:
            n_blocks = (len(payload) + 15) // 16
            # Read plaintext, encrypt, write ciphertext back.
            if packet.buffer is not None:
                ctx.touch(packet.buffer, packet.header_bytes, len(payload),
                          self._tag)
            for _ in range(n_blocks):
                ctx.cost(COST_AES_BLOCK)
            packet.payload = ctr_crypt(self.cipher, nonce=self.packets,
                                       counter0=self.counter, data=payload)
            self.counter += n_blocks
            if packet.buffer is not None:
                ctx.touch(packet.buffer, packet.header_bytes, len(payload),
                          self._tag)
            self.bytes_encrypted += len(payload)
        self.packets += 1
        return packet
