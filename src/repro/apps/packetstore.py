"""The RE packet store: a circular cache of recently observed content.

Spring & Wetherall's redundancy elimination keeps "a cache of recently
observed content" sized to about one second of traffic. The store is a
circular byte buffer addressed by *absolute* (monotonic) offsets, so a
reference to content that has since been overwritten is detectable and
simply fails — exactly how stale fingerprint-table entries are rejected.
"""

from __future__ import annotations

from typing import Optional


class PacketStore:
    """Circular content store addressed by absolute byte offsets."""

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._buf = bytearray(capacity)
        self.total_written = 0

    @property
    def oldest_valid(self) -> int:
        """Smallest absolute offset still resident."""
        return max(0, self.total_written - self.capacity)

    def append(self, data: bytes) -> int:
        """Store ``data``; returns its absolute start offset."""
        if len(data) > self.capacity:
            raise ValueError("data larger than the whole store")
        start = self.total_written
        pos = start % self.capacity
        first = min(len(data), self.capacity - pos)
        self._buf[pos:pos + first] = data[:first]
        if first < len(data):
            self._buf[:len(data) - first] = data[first:]
        self.total_written += len(data)
        return start

    def get(self, abs_offset: int, length: int) -> Optional[bytes]:
        """Content at ``[abs_offset, abs_offset+length)``; None if evicted."""
        if length < 0 or abs_offset < 0:
            raise ValueError("negative offset/length")
        if length == 0:
            return b""
        if abs_offset + length > self.total_written:
            return None  # never written
        if abs_offset < self.oldest_valid:
            return None  # overwritten
        pos = abs_offset % self.capacity
        first = min(length, self.capacity - pos)
        out = bytes(self._buf[pos:pos + first])
        if first < length:
            out += bytes(self._buf[:length - first])
        return out

    def contains(self, abs_offset: int, length: int) -> bool:
        """True if the whole range is still resident."""
        return (abs_offset >= self.oldest_valid
                and abs_offset + length <= self.total_written)
