"""Aho-Corasick multi-pattern matching (the DPI substrate).

Deep packet inspection is one of the "emerging types of packet
processing" the paper's discussion (Section 6) calls out as needing
megabytes of frequently accessed state. This is a textbook Aho-Corasick
automaton: a goto trie over all signatures, BFS-built failure links, and
merged output sets; ``search`` finds every occurrence of every pattern in
one pass over the payload.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Dict, List, Sequence, Tuple


class AhoCorasick:
    """Multi-pattern matcher over byte strings."""

    def __init__(self, patterns: Sequence[bytes]):
        if not patterns:
            raise ValueError("need at least one pattern")
        for pattern in patterns:
            if not pattern:
                raise ValueError("patterns must be non-empty")
        self.patterns: List[bytes] = list(patterns)
        # goto[state] maps byte -> next state; node 0 is the root.
        self.goto: List[Dict[int, int]] = [{}]
        self.fail: List[int] = [0]
        self.output: List[List[int]] = [[]]
        for index, pattern in enumerate(self.patterns):
            self._insert(pattern, index)
        self._build_failure_links()

    # -- construction -----------------------------------------------------------

    def _insert(self, pattern: bytes, index: int) -> None:
        state = 0
        for byte in pattern:
            nxt = self.goto[state].get(byte)
            if nxt is None:
                nxt = len(self.goto)
                self.goto.append({})
                self.fail.append(0)
                self.output.append([])
                self.goto[state][byte] = nxt
            state = nxt
        self.output[state].append(index)

    def _build_failure_links(self) -> None:
        queue = deque()
        for state in self.goto[0].values():
            self.fail[state] = 0
            queue.append(state)
        while queue:
            state = queue.popleft()
            for byte, nxt in self.goto[state].items():
                queue.append(nxt)
                fallback = self.fail[state]
                while fallback and byte not in self.goto[fallback]:
                    fallback = self.fail[fallback]
                self.fail[nxt] = self.goto[fallback].get(byte, 0)
                if self.fail[nxt] == nxt:
                    self.fail[nxt] = 0
                self.output[nxt] = self.output[nxt] + self.output[self.fail[nxt]]

    @property
    def n_states(self) -> int:
        """Number of automaton states (goto-trie nodes)."""
        return len(self.goto)

    # -- matching ---------------------------------------------------------------

    def step(self, state: int, byte: int) -> int:
        """One automaton transition."""
        while state and byte not in self.goto[state]:
            state = self.fail[state]
        return self.goto[state].get(byte, 0)

    def search(self, data: bytes) -> List[Tuple[int, int]]:
        """All matches as ``(end_offset, pattern_index)`` pairs."""
        matches: List[Tuple[int, int]] = []
        state = 0
        for pos, byte in enumerate(data):
            state = self.step(state, byte)
            for index in self.output[state]:
                matches.append((pos + 1, index))
        return matches

    def search_with_path(self, data: bytes):
        """Matches plus the visited state sequence (for access mirroring)."""
        matches: List[Tuple[int, int]] = []
        path: List[int] = []
        state = 0
        for pos, byte in enumerate(data):
            state = self.step(state, byte)
            path.append(state)
            for index in self.output[state]:
                matches.append((pos + 1, index))
        return matches, path

    def contains_any(self, data: bytes) -> bool:
        """True as soon as any pattern occurs (early exit)."""
        state = 0
        for byte in data:
            state = self.step(state, byte)
            if self.output[state]:
                return True
        return False


def generate_signatures(rng: random.Random, n_patterns: int,
                        min_len: int = 6, max_len: int = 16) -> List[bytes]:
    """Random binary signatures (an IDS rule set stand-in).

    Signatures start with a rare byte (0xCC) so random payloads almost
    never match — mirroring the paper's craft of worst-case inputs (every
    packet is scanned end to end).
    """
    if n_patterns <= 0:
        raise ValueError("need at least one pattern")
    if not 1 <= min_len <= max_len:
        raise ValueError("bad length bounds")
    out = []
    seen = set()
    while len(out) < n_patterns:
        length = rng.randrange(min_len, max_len + 1)
        sig = bytes([0xCC]) + rng.randbytes(length - 1)
        if sig in seen:
            continue
        seen.add(sig)
        out.append(sig)
    return out
