"""Application registry: build the paper's flow types by name.

Each realistic flow type is a :class:`~repro.click.pipeline.Pipeline`
assembled exactly as Section 2.1 describes:

* ``IP``  — CheckIPHeader -> RadixIPLookup -> DecIPTTL
* ``MON`` — IP + NetFlow
* ``FW``  — IP + NetFlow + Firewall
* ``RE``  — IP + NetFlow + RE encoding
* ``VPN`` — IP + NetFlow + AES-128 encryption

plus the ``SYN``/``SYN_MAX`` synthetics. Each type also pins the paper's
input-traffic class (random destinations for IP, a fixed flow population
for MON/FW/VPN, redundant content for RE).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..constants import DEFAULT_PAYLOAD_BYTES, NETFLOW_TABLE_ENTRIES
from ..hw.machine import FlowEnv
from ..click.pipeline import Pipeline
from ..click.elements.checkipheader import CheckIPHeader
from ..click.elements.control import ControlElement
from ..net.flowgen import (
    FlowPopulationTraffic,
    RedundantTraffic,
    UniformRandomTraffic,
)
from .dpi import DPIElement
from .firewall import Firewall
from .ipforward import DecIPTTL, RadixIPLookup
from .netflow import NetFlow
from .redundancy import REElement
from .synthetic import syn_factory, syn_max_factory
from .vpn import VPNEncrypt

#: Relative solo throughput of each type; scales per-flow measurement
#: packet targets so mixed runs finish in comparable simulated time.
MEASURE_WEIGHTS = {
    "IP": 1.0,
    "MON": 0.9,
    "FW": 0.14,
    "RE": 0.45,
    "VPN": 0.33,
    "DPI": 0.28,
}

REALISTIC_APPS = ("IP", "MON", "FW", "RE", "VPN")
#: Extension applications beyond the paper's five (Section 6 names DPI as
#: an emerging, cache-hungry application class).
EXTENSION_APPS = ("DPI",)
APP_NAMES = REALISTIC_APPS + EXTENSION_APPS + ("SYN", "SYN_MAX")


def _ip_elements(env: FlowEnv) -> list:
    return [CheckIPHeader(), RadixIPLookup(), DecIPTTL()]


def _mon_elements(env: FlowEnv) -> list:
    return _ip_elements(env) + [NetFlow()]


#: Per-application payload sizes: RE processes bulk content (fingerprinting
#: wants multiple windows per packet); VPN encrypts a bigger payload than
#: the forwarding-only flows.
RE_PAYLOAD_BYTES = 512
VPN_PAYLOAD_BYTES = 256
DPI_PAYLOAD_BYTES = 256


def _population_source(env: FlowEnv, payload_bytes: int):
    return FlowPopulationTraffic(
        env.rng, n_flows=env.spec.scale_table(NETFLOW_TABLE_ENTRIES),
        payload_bytes=payload_bytes, addr_bits=env.spec.address_bits,
    )


def make_app(name: str, env: FlowEnv,
             payload_bytes: int = DEFAULT_PAYLOAD_BYTES,
             control: Optional[ControlElement] = None,
             **params):
    """Build a flow of type ``name`` in environment ``env``.

    ``control`` optionally prepends a throttling
    :class:`~repro.click.elements.control.ControlElement` (Section 4's
    aggressiveness containment). Extra ``params`` go to the synthetics
    (``cpu_ops_per_ref``, ``refs_per_packet``).
    """
    if name == "SYN":
        return syn_factory(**params)(env)
    if name == "SYN_MAX":
        return syn_max_factory(**params)(env)

    if name == "IP":
        source = UniformRandomTraffic(env.rng, payload_bytes=payload_bytes,
                                      addr_bits=env.spec.address_bits)
        elements = _ip_elements(env)
    elif name == "MON":
        source = _population_source(env, payload_bytes)
        elements = _mon_elements(env)
    elif name == "FW":
        source = _population_source(env, payload_bytes)
        elements = _mon_elements(env) + [Firewall()]
    elif name == "RE":
        source = RedundantTraffic(env.rng, redundancy=0.35,
                                  payload_bytes=RE_PAYLOAD_BYTES,
                                  addr_bits=env.spec.address_bits)
        elements = _mon_elements(env) + [REElement()]
    elif name == "VPN":
        source = _population_source(env, VPN_PAYLOAD_BYTES)
        elements = _mon_elements(env) + [VPNEncrypt()]
    elif name == "DPI":
        source = _population_source(env, DPI_PAYLOAD_BYTES)
        elements = _mon_elements(env) + [DPIElement()]
    else:
        raise ValueError(f"unknown application {name!r} "
                         f"(known: {', '.join(APP_NAMES)})")

    if control is not None:
        elements = [control] + elements
    pipeline = Pipeline(name=name, env=env, source=source, elements=elements,
                        measure_weight=MEASURE_WEIGHTS[name])
    if control is None:
        # (type, payload) plus the (seed, core, spec) the batch engine's
        # cache key adds fully pin the generated stream — registry apps
        # construct their tables and traffic from the seeded env.rng only.
        pipeline.stream_signature = ("app", name, payload_bytes)
    return pipeline


def app_factory(name: str, **kwargs) -> Callable[[FlowEnv], object]:
    """A factory suitable for :meth:`Machine.add_flow`."""

    def build(env: FlowEnv):
        return make_app(name, env, **kwargs)

    # Factory-level signature mirroring the one make_app stamps on the
    # built flow, so the batch engine can recognise a cached stream before
    # construction. Only parameter sets whose resulting instance signature
    # we can predict get one; anything else simply skips the optimisation.
    if name == "SYN" and set(kwargs) <= {"cpu_ops_per_ref", "refs_per_packet",
                                         "array_bytes"}:
        from .synthetic import syn_signature
        build.stream_signature = syn_signature(
            kwargs.get("cpu_ops_per_ref", 0), kwargs.get("refs_per_packet", 32),
            kwargs.get("array_bytes"), "SYN")
    elif name == "SYN_MAX" and set(kwargs) <= {"array_bytes"}:
        from .synthetic import syn_signature
        build.stream_signature = syn_signature(
            0, 32, kwargs.get("array_bytes"), "SYN_MAX")
    elif set(kwargs) <= {"payload_bytes"} and name in MEASURE_WEIGHTS:
        build.stream_signature = (
            "app", name, kwargs.get("payload_bytes", DEFAULT_PAYLOAD_BYTES))
    return build


def describe_apps() -> Dict[str, str]:
    """One-line description per application (CLI help)."""
    return {
        "IP": "full IP forwarding (radix-trie LPM, checksum, TTL)",
        "MON": "IP + NetFlow per-flow statistics",
        "FW": "IP + NetFlow + 1000-rule sequential firewall",
        "RE": "IP + NetFlow + redundancy elimination",
        "VPN": "IP + NetFlow + AES-128 encryption",
        "DPI": "IP + NetFlow + Aho-Corasick signature scan (extension)",
        "SYN": "synthetic: configurable CPU ops + random L3-sized reads",
        "SYN_MAX": "synthetic: back-to-back memory accesses",
    }
