"""Rabin fingerprinting for redundancy elimination.

Spring & Wetherall's protocol-independent RE [26 in the paper] fingerprints
sliding windows of packet content and indexes representative fingerprints
in a table mapping content to a packet store. We implement the classic
polynomial rolling fingerprint over a ``window``-byte sliding window, with
value sampling (a fingerprint is *representative* when its low ``sample_bits``
bits are zero), plus a fast aligned-chunk mode used by the simulation hot
path (the traffic generator repeats whole payloads, so chunk-aligned
fingerprints find the same redundancy; the rolling property is exercised
by the unit tests).
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

#: Default irreducible-ish polynomial base and modulus for the rolling hash.
_BASE = 2**8 + 7
_MOD = (1 << 61) - 1  # Mersenne prime: cheap modular reduction


class RabinFingerprinter:
    """Rolling Rabin fingerprints over ``window``-byte windows."""

    def __init__(self, window: int = 32, sample_bits: int = 5):
        if window <= 0:
            raise ValueError("window must be positive")
        if sample_bits < 0:
            raise ValueError("sample_bits must be non-negative")
        self.window = window
        self.sample_bits = sample_bits
        self._sample_mask = (1 << sample_bits) - 1
        # BASE^(window-1) mod MOD, for removing the outgoing byte.
        self._msb_weight = pow(_BASE, window - 1, _MOD)

    # -- exact rolling implementation ------------------------------------------

    def fingerprint(self, data: bytes) -> int:
        """Fingerprint of exactly one window (``len(data) == window``)."""
        if len(data) != self.window:
            raise ValueError(f"need exactly {self.window} bytes")
        fp = 0
        for byte in data:
            fp = (fp * _BASE + byte) % _MOD
        return fp

    def rolling(self, data: bytes) -> Iterator[Tuple[int, int]]:
        """Yield ``(offset, fingerprint)`` for every window of ``data``.

        Uses O(1) rolling updates; equivalent to calling
        :meth:`fingerprint` on every window (property-tested).
        """
        w = self.window
        if len(data) < w:
            return
        fp = self.fingerprint(data[:w])
        yield 0, fp
        msb = self._msb_weight
        for i in range(1, len(data) - w + 1):
            fp = ((fp - data[i - 1] * msb) * _BASE + data[i + w - 1]) % _MOD
            yield i, fp

    def representative(self, data: bytes) -> List[Tuple[int, int]]:
        """Sampled ``(offset, fingerprint)`` pairs (low bits zero)."""
        mask = self._sample_mask
        return [(off, fp) for off, fp in self.rolling(data) if not fp & mask]

    # -- aligned fast path (simulation hot loop) --------------------------------

    def aligned(self, data: bytes) -> List[Tuple[int, int]]:
        """Fingerprints of consecutive window-aligned chunks.

        The RE application uses this in the timing hot path: one fingerprint
        per ``window``-byte chunk, no sampling (every chunk is a candidate).
        Chunks shorter than a window are ignored, like trailing windows in
        the rolling form.
        """
        w = self.window
        out: List[Tuple[int, int]] = []
        for off in range(0, len(data) - w + 1, w):
            out.append((off, self.fingerprint(data[off:off + w])))
        return out
