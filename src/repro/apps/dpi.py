"""Deep packet inspection element (extension application).

Not one of the paper's five evaluated flows, but the discussion
(Section 6) names DPI as an emerging application whose megabytes of
frequently accessed state would contend for the shared cache like the
evaluated ones. The element scans every payload byte through an
Aho-Corasick automaton built from a signature set; matched packets raise
an alert (IDS mode, default) or are dropped (IPS mode).

Access mirroring: the automaton's states live in a simulated region (one
64-byte node per state — a sparse-row layout). Emitting one reference per
*byte* would swamp the reference stream, so the element mirrors one
reference per ``SAMPLE_STRIDE`` visited states and folds the remaining
transitions into the per-byte compute cost, preserving both the total
cycle cost and the access *pattern* (uniform over the automaton for
random payloads).
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from ..hw.machine import FlowEnv
from ..mem.access import AccessContext, TAGS
from ..click.element import Element
from ..net.packet import Packet
from .ahocorasick import AhoCorasick, generate_signatures

#: (gap cycles, instructions) per scanned payload byte.
COST_DPI_BYTE = (14, 11)
#: Simulated bytes per automaton state (sparse transition row).
STATE_BYTES = 64
#: Mirror one state reference per this many visited states.
SAMPLE_STRIDE = 4
#: Default signature-set size before platform scaling.
DEFAULT_SIGNATURES = 8_192


class DPIElement(Element):
    """Signature scan over the payload; alert or drop on match."""

    def __init__(self, patterns: Optional[Sequence[bytes]] = None,
                 n_signatures: Optional[int] = None, drop_on_match: bool = False):
        self._cfg_patterns = list(patterns) if patterns is not None else None
        self._cfg_signatures = n_signatures
        self.drop_on_match = drop_on_match
        self.automaton: AhoCorasick = None  # type: ignore[assignment]
        self.region = None
        self.scanned = 0
        self.alerts = 0
        self.bytes_scanned = 0
        self._tag = TAGS.register("dpi_scan")

    def initialize(self, env: FlowEnv) -> None:
        if self._cfg_patterns is not None:
            patterns = self._cfg_patterns
        else:
            n = (self._cfg_signatures if self._cfg_signatures is not None
                 else env.spec.scale_table(DEFAULT_SIGNATURES))
            patterns = generate_signatures(env.rng, n)
        self.automaton = AhoCorasick(patterns)
        self.region = env.space.domain(env.domain).alloc(
            self.automaton.n_states * STATE_BYTES, "dpi.automaton"
        )

    def process(self, ctx: AccessContext, packet: Packet) -> Optional[Packet]:
        if self.region is None:
            raise RuntimeError("DPIElement used before initialize()")
        payload = packet.payload
        self.scanned += 1
        if not payload:
            return packet
        matches, path = self.automaton.search_with_path(payload)
        self.bytes_scanned += len(payload)
        tag = self._tag
        region = self.region
        cost = ctx.cost
        touch = ctx.touch
        gap = COST_DPI_BYTE[0] * SAMPLE_STRIDE
        instr = COST_DPI_BYTE[1] * SAMPLE_STRIDE
        for state in path[::SAMPLE_STRIDE]:
            cost((gap, instr))
            touch(region, state * STATE_BYTES, 4, tag)
        if matches:
            self.alerts += len(matches)
            if self.drop_on_match:
                return None
        return packet
