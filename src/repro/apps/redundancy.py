"""Redundancy elimination: encoder, decoder, and the RE element.

Implements the paper's RE application [26]: a fingerprint table maps
content fingerprints to packet-store offsets; each packet is checked for
chunks of recently-seen content, which are replaced by (offset, length)
references; the device at the other end of the link keeps a synchronized
store and reconstructs the original payload. Encoder/decoder round-trip
correctness is property-tested.

The element mirrors the real accesses into simulated memory: one
fingerprint-table entry per chunk (a table far larger than the L3 — this
is the paper's representative *memory-intensive, cache-unfriendly*
workload and its most aggressive flow type), packet-store reads on match,
and packet-store writes for every stored payload line.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..constants import (
    COST_RE_STORE_LINE,
    COST_RE_WINDOW,
    RE_FINGERPRINT_ENTRIES,
    RE_FINGERPRINT_ENTRY_BYTES,
    RE_PACKET_STORE_BYTES,
)
from ..hw.machine import FlowEnv
from ..mem.access import AccessContext, TAGS
from ..click.element import Element
from ..net.packet import Packet
from .fingerprint import RabinFingerprinter
from .packetstore import PacketStore

#: Encoded token forms: ("lit", bytes) or ("ref", abs_offset, length).
Token = Tuple


class REEncoder:
    """Content-defined encoding against a local packet store."""

    def __init__(self, store_bytes: int, n_table_entries: int,
                 fingerprinter: Optional[RabinFingerprinter] = None):
        if n_table_entries <= 0:
            raise ValueError("fingerprint table needs entries")
        self.store = PacketStore(store_bytes)
        self.n_table_entries = n_table_entries
        self.fingerprinter = (fingerprinter if fingerprinter is not None
                              else RabinFingerprinter())
        # index -> (fingerprint, absolute store offset); collisions replace.
        self.table: dict = {}
        self.chunks_seen = 0
        self.chunks_matched = 0

    def encode(self, payload: bytes) -> Tuple[List[Token], List[int]]:
        """Encode ``payload``.

        Returns ``(tokens, touched_indices)`` where ``touched_indices``
        are the fingerprint-table slots referenced (for access mirroring).
        """
        window = self.fingerprinter.window
        chunks = self.fingerprinter.aligned(payload)
        tokens: List[Token] = []
        touched: List[int] = []
        lit_start = 0
        for off, fp in chunks:
            index = fp % self.n_table_entries
            touched.append(index)
            self.chunks_seen += 1
            entry = self.table.get(index)
            if entry is not None and entry[0] == fp:
                stored = self.store.get(entry[1], window)
                if stored is not None and stored == payload[off:off + window]:
                    if off > lit_start:
                        tokens.append(("lit", payload[lit_start:off]))
                    tokens.append(("ref", entry[1], window))
                    lit_start = off + window
                    self.chunks_matched += 1
        if lit_start < len(payload):
            tokens.append(("lit", payload[lit_start:]))
        # Store the original payload and index its chunks for the future.
        base = self.store.append(payload)
        for off, fp in chunks:
            self.table[fp % self.n_table_entries] = (fp, base + off)
        return tokens, touched

    @staticmethod
    def encoded_length(tokens: List[Token]) -> int:
        """Wire bytes of an encoded payload (refs cost 8 bytes each)."""
        total = 0
        for token in tokens:
            if token[0] == "lit":
                total += 1 + len(token[1])
            else:
                total += 8
        return total

    def savings(self, payload: bytes, tokens: List[Token]) -> float:
        """Fraction of payload bytes eliminated (can be negative)."""
        if not payload:
            return 0.0
        return 1.0 - self.encoded_length(tokens) / len(payload)


class REDecoder:
    """The far-end device: synchronized store, reconstructs payloads."""

    def __init__(self, store_bytes: int):
        self.store = PacketStore(store_bytes)

    def decode(self, tokens: List[Token]) -> bytes:
        """Reconstruct the original payload and update the mirror store."""
        parts: List[bytes] = []
        for token in tokens:
            if token[0] == "lit":
                parts.append(token[1])
            elif token[0] == "ref":
                content = self.store.get(token[1], token[2])
                if content is None:
                    raise LookupError(
                        f"reference to evicted store range {token[1]}+{token[2]}"
                    )
                parts.append(content)
            else:
                raise ValueError(f"unknown token kind {token[0]!r}")
        payload = b"".join(parts)
        self.store.append(payload)
        return payload


class REElement(Element):
    """The RE processing step of the paper's RE flow."""

    def __init__(self, store_bytes: Optional[int] = None,
                 n_table_entries: Optional[int] = None):
        self._cfg_store = store_bytes
        self._cfg_entries = n_table_entries
        self.encoder: REEncoder = None  # type: ignore[assignment]
        self.table_region = None
        self.store_region = None
        self.packets = 0
        self.bytes_in = 0
        self.bytes_out = 0
        self._tag_fp = TAGS.register("re_fingerprint")
        self._tag_store = TAGS.register("re_store")
        self._tag_payload = TAGS.register("re_payload")

    def initialize(self, env: FlowEnv) -> None:
        store_bytes = (self._cfg_store if self._cfg_store is not None
                       else env.spec.scale_bytes(RE_PACKET_STORE_BYTES))
        entries = (self._cfg_entries if self._cfg_entries is not None
                   else env.spec.scale_table(RE_FINGERPRINT_ENTRIES))
        self.encoder = REEncoder(store_bytes, entries,
                                 fingerprinter=RabinFingerprinter(window=64))
        alloc = env.space.domain(env.domain)
        self.table_region = alloc.alloc(
            entries * RE_FINGERPRINT_ENTRY_BYTES, "re.fingerprints"
        )
        self.store_region = alloc.alloc(store_bytes, "re.store")

    def process(self, ctx: AccessContext, packet: Packet) -> Packet:
        if self.encoder is None:
            raise RuntimeError("REElement used before initialize()")
        payload = packet.payload
        window = self.encoder.fingerprinter.window
        # Read the payload from the packet buffer.
        if packet.buffer is not None and payload:
            ctx.touch(packet.buffer, packet.header_bytes, len(payload),
                      self._tag_payload)
        store_base = self.encoder.store.total_written
        tokens, touched = self.encoder.encode(payload)
        # Fingerprint computation + one table probe per chunk.
        entry_bytes = RE_FINGERPRINT_ENTRY_BYTES
        for index in touched:
            ctx.cost(COST_RE_WINDOW)
            ctx.touch(self.table_region, index * entry_bytes, entry_bytes,
                      self._tag_fp)
        # Matched references read the stored content.
        for token in tokens:
            if token[0] == "ref":
                ctx.touch(self.store_region, token[1] % self.encoder.store.capacity,
                          token[2], self._tag_store)
        # Appending the payload writes it into the (circular) store.
        if payload:
            pos = store_base % self.encoder.store.capacity
            first = min(len(payload), self.encoder.store.capacity - pos)
            n_lines = 0
            for length, offset in ((first, pos), (len(payload) - first, 0)):
                if length > 0:
                    ctx.touch(self.store_region, offset, length, self._tag_store)
                    n_lines += (length + 63) // 64
            for _ in range(n_lines):
                ctx.cost(COST_RE_STORE_LINE)
        self.packets += 1
        self.bytes_in += len(payload)
        self.bytes_out += REEncoder.encoded_length(tokens)
        annotations = packet.annotations or {}
        annotations["re_tokens"] = tokens
        packet.annotations = annotations
        return packet
