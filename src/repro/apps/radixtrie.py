"""Multibit radix trie for longest-prefix-match IP lookup.

This is the lookup structure behind the paper's IP application ("the
RadixTrie lookup algorithm provided with the Click distribution and a
routing-table of 128000 entries"). Like Click's RadixIPLookup, the trie
uses a wide first stride and 4-bit strides below it, with controlled
prefix expansion at the terminal level; each slot packs its child pointer
and route into one 4-byte entry, so one slot probe is one 4-byte memory
reference.

The trie is purely functional here; the ``RadixIPLookup`` element wraps it
with access recording. ``lookup`` returns the matched route together with
the byte offsets of the probed slots so the wrapper can replay the walk
against simulated memory. The top levels are small and probed by every
packet — the "hot spots" of the paper's Figure 7 — while the deep levels
are large, uniformly accessed, and cache-sensitive.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from ..net.addresses import prefix_mask

#: Default strides: 8-bit root, then 2-bit levels (sums to 32). The fine
#: strides give lookups the deep pointer-chasing walk of Click's radix
#: trie: the handful of top levels are hot, the populous middle levels are
#: large, uniformly visited, and cache-sensitive.
DEFAULT_STRIDES = (8,) + (2,) * 12

#: Packed slot width in the simulated layout (child/route union, Click-style).
SLOT_BYTES = 4


class RadixTrie:
    """Variable-stride multibit trie mapping IPv4 prefixes to next hops."""

    def __init__(self, strides: Sequence[int] = DEFAULT_STRIDES):
        if sum(strides) != 32:
            raise ValueError(f"strides must cover 32 bits, got {sum(strides)}")
        if any(s <= 0 for s in strides):
            raise ValueError("every stride must be positive")
        self.strides = tuple(strides)
        # Parallel per-node arrays; node 0 is the root. ``route_plens``
        # remembers the originating prefix length of each expanded slot so
        # that a shorter prefix never overwrites a longer one's expansion.
        self.children: List[List[int]] = [[-1] * (1 << strides[0])]
        self.routes: List[List[Optional[int]]] = [[None] * (1 << strides[0])]
        self.route_plens: List[List[int]] = [[-1] * (1 << strides[0])]
        self.level: List[int] = [0]
        self.node_offset: List[int] = [0]
        self._next_offset = (1 << strides[0]) * SLOT_BYTES
        self.default_route: Optional[int] = None
        self.n_routes = 0

    # -- geometry ---------------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        """Number of allocated trie nodes."""
        return len(self.children)

    @property
    def total_bytes(self) -> int:
        """Simulated memory footprint of all nodes."""
        return self._next_offset

    def _new_node(self, level: int) -> int:
        slots = 1 << self.strides[level]
        self.children.append([-1] * slots)
        self.routes.append([None] * slots)
        self.route_plens.append([-1] * slots)
        self.level.append(level)
        self.node_offset.append(self._next_offset)
        self._next_offset += slots * SLOT_BYTES
        return len(self.children) - 1

    # -- insertion -------------------------------------------------------------

    def insert(self, prefix: int, plen: int, next_hop: int) -> None:
        """Install ``prefix/plen -> next_hop`` (later inserts overwrite)."""
        if not 0 <= plen <= 32:
            raise ValueError(f"bad prefix length {plen}")
        if not 0 <= prefix <= 0xFFFFFFFF:
            raise ValueError("prefix must be a 32-bit value")
        if prefix & ~prefix_mask(plen):
            raise ValueError("prefix has bits set beyond its length")
        if plen == 0:
            self.default_route = next_hop
            self.n_routes += 1
            return
        node = 0
        level = 0
        consumed = 0
        while plen > consumed + self.strides[level]:
            stride = self.strides[level]
            shift = 32 - consumed - stride
            slot = (prefix >> shift) & ((1 << stride) - 1)
            child = self.children[node][slot]
            if child < 0:
                child = self._new_node(level + 1)
                self.children[node][slot] = child
            node = child
            consumed += stride
            level += 1
        # Controlled prefix expansion within the terminal node: a slot is
        # overwritten only by an equal-or-longer prefix (longest match wins;
        # equal-length re-inserts overwrite).
        stride = self.strides[level]
        rem = plen - consumed
        shift = 32 - consumed - stride
        base = (prefix >> shift) & ((1 << stride) - 1)
        span = 1 << (stride - rem)
        slots = self.routes[node]
        plens = self.route_plens[node]
        for i in range(base, base + span):
            if plen >= plens[i]:
                slots[i] = next_hop
                plens[i] = plen
        self.n_routes += 1

    # -- lookup ---------------------------------------------------------------

    def lookup(self, addr: int) -> Tuple[Optional[int], List[int]]:
        """Longest-prefix-match for ``addr``.

        Returns ``(next_hop, probed_offsets)`` where ``probed_offsets`` are
        the byte offsets of every slot probed, root first.
        """
        best = self.default_route
        node = 0
        shift = 32
        level = 0
        visited: List[int] = []
        strides = self.strides
        children = self.children
        routes = self.routes
        offsets = self.node_offset
        while True:
            stride = strides[level]
            shift -= stride
            slot = (addr >> shift) & ((1 << stride) - 1)
            visited.append(offsets[node] + slot * SLOT_BYTES)
            route = routes[node][slot]
            if route is not None:
                best = route
            node = children[node][slot]
            if node < 0 or shift == 0:
                return best, visited
            level += 1

    def lookup_route(self, addr: int) -> Optional[int]:
        """Just the next hop (reference-model helper for tests)."""
        return self.lookup(addr)[0]


class RouteTableBuilder:
    """Generate realistic random routing tables.

    Prefix lengths follow a BGP-like distribution (dominated by /24s) so
    that lookups on uniformly random destinations walk deep, mostly
    distinct paths — the paper's worst case for cache sensitivity.
    """

    #: (prefix_len, weight) pairs approximating a BGP table's length mix.
    LENGTH_MIX = ((8, 1), (12, 3), (16, 12), (20, 26), (24, 53), (28, 5))

    def __init__(self, rng: random.Random, addr_bits: int = 32):
        if not 8 <= addr_bits <= 32:
            raise ValueError("addr_bits must be in [8, 32]")
        self.rng = rng
        self.addr_bits = addr_bits
        lengths = []
        for plen, weight in self.LENGTH_MIX:
            lengths.extend([plen] * weight)
        self._lengths = lengths

    def random_prefix(self) -> Tuple[int, int]:
        """One random ``(prefix, plen)`` with a realistic length.

        Prefixes live in the (possibly reduced) address universe: the top
        ``32 - addr_bits`` bits are zero, matching the traffic generators
        on a scaled platform.
        """
        plen = self.rng.choice(self._lengths)
        prefix = self.rng.getrandbits(self.addr_bits) & prefix_mask(plen)
        return prefix, plen

    def build(self, n_entries: int, n_next_hops: int = 16) -> RadixTrie:
        """A trie with ``n_entries`` random routes plus a default route."""
        if n_entries <= 0:
            raise ValueError("need at least one route")
        trie = RadixTrie()
        trie.insert(0, 0, 0)  # default route
        inserted = 0
        seen = set()
        while inserted < n_entries:
            prefix, plen = self.random_prefix()
            if (prefix, plen) in seen:
                continue
            seen.add((prefix, plen))
            trie.insert(prefix, plen, self.rng.randrange(n_next_hops))
            inserted += 1
        return trie
