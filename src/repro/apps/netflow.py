"""NetFlow monitoring (the paper's MON increment).

"NetFlow collects statistics as follows: it applies a hash function to
the IP and transport-layer header of each packet, uses the outcome to
index a hash table with per-TCP/UDP-flow entries, and updates a few
fields (a packet count and a timestamp) of the corresponding entry."

The table is a fixed-size slot array (entries evict on collision, as in
fixed-memory flow caches); the touched entry is one reference tagged
``flow_statistics`` — the paper's uniformly-accessed, fully convertible
function in Figure 7.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..constants import COST_NETFLOW, NETFLOW_ENTRY_BYTES, NETFLOW_TABLE_ENTRIES
from ..hw.machine import FlowEnv
from ..mem.access import AccessContext, TAGS
from ..click.element import Element
from ..net.packet import Packet


class FlowRecord:
    """One flow-table entry."""

    __slots__ = ("key", "packets", "bytes", "first_seen", "last_seen")

    def __init__(self, key: tuple, now: int, nbytes: int):
        self.key = key
        self.packets = 1
        self.bytes = nbytes
        self.first_seen = now
        self.last_seen = now

    def update(self, now: int, nbytes: int) -> None:
        """Account one more packet for this flow."""
        self.packets += 1
        self.bytes += nbytes
        self.last_seen = now


class NetFlow(Element):
    """Per-flow statistics collection over a fixed-size hash table."""

    #: Bytes per bucket head (hash-chain pointer), 8 per cache line.
    BUCKET_BYTES = 8
    #: Buckets per entry: a sparse bucket array keeps chains short, and its
    #: cache lines see the same uniform, long-reuse access pattern as the
    #: entries themselves.
    BUCKETS_PER_ENTRY = 4

    def __init__(self, n_entries: Optional[int] = None):
        self._cfg_entries = n_entries
        self.n_entries = 0
        self.n_buckets = 0
        self.slots: List[Optional[FlowRecord]] = []
        self.buckets_region = None
        self.region = None
        self.packets = 0
        self.evictions = 0
        self._tag = TAGS.register("flow_statistics")

    def initialize(self, env: FlowEnv) -> None:
        self.n_entries = (self._cfg_entries if self._cfg_entries is not None
                          else env.spec.scale_table(NETFLOW_TABLE_ENTRIES))
        self.n_buckets = self.n_entries * self.BUCKETS_PER_ENTRY
        self.slots = [None] * self.n_entries
        alloc = env.space.domain(env.domain)
        self.buckets_region = alloc.alloc(
            self.n_buckets * self.BUCKET_BYTES, "netflow.buckets"
        )
        self.region = alloc.alloc(
            self.n_entries * NETFLOW_ENTRY_BYTES, "netflow.table"
        )

    def process(self, ctx: AccessContext, packet: Packet) -> Packet:
        if self.region is None:
            raise RuntimeError("NetFlow used before initialize()")
        ctx.cost(COST_NETFLOW)
        key = packet.five_tuple()
        h = packet.flow_hash()
        index = h % self.n_entries
        # Real flow caches resolve hash -> bucket head -> entry: two
        # dependent references into two large tables.
        ctx.touch(self.buckets_region, (h % self.n_buckets) * self.BUCKET_BYTES,
                  self.BUCKET_BYTES, self._tag)
        ctx.touch(self.region, index * NETFLOW_ENTRY_BYTES,
                  NETFLOW_ENTRY_BYTES, self._tag)
        self.packets += 1
        record = self.slots[index]
        if record is not None and record.key == key:
            record.update(self.packets, packet.wire_length)
        else:
            if record is not None:
                self.evictions += 1
            self.slots[index] = FlowRecord(key, self.packets,
                                           packet.wire_length)
        return packet

    # -- export (the operator-facing side of NetFlow) --------------------------

    def active_flows(self) -> int:
        """Number of live table entries."""
        return sum(1 for record in self.slots if record is not None)

    def export(self) -> List[Tuple[tuple, int, int]]:
        """All records as ``(key, packets, bytes)`` (collector format)."""
        return [
            (record.key, record.packets, record.bytes)
            for record in self.slots if record is not None
        ]

    def top_flows(self, n: int = 10) -> List[Tuple[tuple, int]]:
        """The ``n`` heaviest flows by packet count."""
        live = [(record.packets, record.key)
                for record in self.slots if record is not None]
        live.sort(reverse=True)
        return [(key, packets) for packets, key in live[:n]]
