"""ToDevice: the transmit path (descriptor write + statistics)."""

from __future__ import annotations

from ...constants import COST_TX, RX_RING_ENTRIES
from ...hw.machine import FlowEnv
from ...mem.access import AccessContext, TAGS
from ...mem.region import Region
from ...net.packet import Packet
from ..element import Element

_DESCRIPTOR_BYTES = 16


class ToDevice(Element):
    """Per-core transmit queue."""

    def __init__(self, ring_entries: int = RX_RING_ENTRIES):
        if ring_entries <= 0:
            raise ValueError("ring must have at least one descriptor")
        self._cfg_entries = ring_entries
        self.ring_entries = 0
        self.ring: Region = None  # type: ignore[assignment]
        self.sent = 0
        self.bytes_sent = 0
        self._index = 0
        self._tag_skb = TAGS.register("skb_recycle")

    def initialize(self, env: FlowEnv) -> None:
        self.ring_entries = max(16, self._cfg_entries // env.spec.scale)
        self.ring = env.space.domain(env.domain).alloc(
            self.ring_entries * _DESCRIPTOR_BYTES, "tx.ring"
        )

    def send(self, ctx: AccessContext, packet: Packet) -> None:
        """Queue one packet for transmission."""
        if self.ring is None:
            raise RuntimeError("ToDevice used before initialize()")
        i = self._index
        self._index = (i + 1) % self.ring_entries
        ctx.cost(COST_TX)
        ctx.touch(self.ring, i * _DESCRIPTOR_BYTES, _DESCRIPTOR_BYTES,
                  self._tag_skb)
        self.sent += 1
        self.bytes_sent += packet.wire_length

    def process(self, ctx: AccessContext, packet: Packet) -> Packet:
        self.send(ctx, packet)
        return packet
