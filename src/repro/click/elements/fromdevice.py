"""FromDevice: the receive path.

Models what the NIC driver does per packet: advance the descriptor ring,
recycle a buffer from the per-core pool (the paper's ``skb_recycle``
bookkeeping), and bind the packet to its receive buffer. The buffer lines
covered by the DMA write are returned so the engine can invalidate them —
making the first touch of packet data a compulsory cache miss, as on
hardware without DCA.
"""

from __future__ import annotations

from typing import List

from ...constants import (
    COST_PACKET_BASE,
    PACKET_BUFFER_BYTES,
    RX_RING_ENTRIES,
)
from ...hw.machine import FlowEnv
from ...mem.access import AccessContext, TAGS
from ...mem.region import Region
from ...net.packet import Packet
from ..element import Element

_DESCRIPTOR_BYTES = 16
_SKB_BYTES = 64


class FromDevice(Element):
    """Per-core receive path with a recycled buffer pool."""

    def __init__(self, n_buffers: int = RX_RING_ENTRIES,
                 buffer_bytes: int = PACKET_BUFFER_BYTES):
        if n_buffers <= 0:
            raise ValueError("need at least one buffer")
        self._cfg_buffers = n_buffers
        self.buffer_bytes = buffer_bytes
        self.n_buffers = 0
        self.received = 0
        self._index = 0
        self.ring: Region = None  # type: ignore[assignment]
        self.skb_pool: Region = None  # type: ignore[assignment]
        self.buffers: List[Region] = []
        self._tag_skb = TAGS.register("skb_recycle")

    def initialize(self, env: FlowEnv) -> None:
        # The buffer pool scales with the platform so its cache footprint
        # keeps the same proportion on scaled-down configurations.
        self.n_buffers = max(16, self._cfg_buffers // env.spec.scale)
        alloc = env.space.domain(env.domain)
        self.ring = alloc.alloc(self.n_buffers * _DESCRIPTOR_BYTES, "rx.ring")
        self.skb_pool = alloc.alloc(self.n_buffers * _SKB_BYTES, "rx.skbs")
        data = alloc.alloc(self.n_buffers * self.buffer_bytes, "rx.buffers")
        self.buffers = [
            Region(name=f"rx.buf{i}", base=data.base + i * self.buffer_bytes,
                   size=self.buffer_bytes, domain=env.domain)
            for i in range(self.n_buffers)
        ]

    def receive(self, ctx: AccessContext, packet: Packet) -> List[int]:
        """Accept one packet; returns the DMA-invalidated buffer lines."""
        if not self.buffers:
            raise RuntimeError("FromDevice used before initialize()")
        i = self._index
        self._index = (i + 1) % self.n_buffers
        self.received += 1
        ctx.cost(COST_PACKET_BASE)
        tag = self._tag_skb
        ctx.touch(self.ring, i * _DESCRIPTOR_BYTES, _DESCRIPTOR_BYTES, tag)
        ctx.touch(self.skb_pool, i * _SKB_BYTES, _SKB_BYTES, tag)
        buf = self.buffers[i]
        packet.buffer = buf
        length = min(packet.wire_length, buf.size)
        first = buf.base >> 6
        last = (buf.base + length - 1) >> 6
        return list(range(first, last + 1))

    def process(self, ctx: AccessContext, packet: Packet) -> Packet:
        """Element-style entry point (ignores DMA lines)."""
        self.receive(ctx, packet)
        return packet
