"""QueueElement: a bounded packet queue (Click's Queue)."""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from ...mem.access import AccessContext
from ...net.packet import Packet
from ..element import Element


class QueueElement(Element):
    """Bounded FIFO; ``process`` enqueues (dropping at capacity), ``pull`` dequeues."""

    def __init__(self, capacity: int = 1024):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._queue: Deque[Packet] = deque()
        self.enqueued = 0
        self.dropped = 0

    def process(self, ctx: AccessContext, packet: Packet) -> Optional[Packet]:
        ctx.compute(8, 10)
        if len(self._queue) >= self.capacity:
            self.dropped += 1
            return None
        self._queue.append(packet)
        self.enqueued += 1
        return packet

    def pull(self) -> Optional[Packet]:
        """Dequeue the oldest packet, or None when empty."""
        return self._queue.popleft() if self._queue else None

    def __len__(self) -> int:
        return len(self._queue)
