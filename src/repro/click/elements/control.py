"""ControlElement: throttle a flow's memory-access rate (Section 4).

The paper's defense against *hidden aggressiveness*: "we add to the
beginning of each flow a control element, which performs a configurable
number of simple CPU operations, with the purpose of slowing down the flow
and controlling the rate at which it performs memory accesses", driven by
hardware performance counters. Here the element reads the flow's simulated
counters live (L3 refs and the core clock) and adapts its per-packet delay
with a proportional controller so the flow's cache refs/sec never exceeds
its profiled rate.
"""

from __future__ import annotations

from typing import Optional

from ...mem.access import AccessContext
from ...net.packet import Packet
from ..element import Element


class ControlElement(Element):
    """Adaptive per-packet delay bounding L3 refs/sec at ``target_refs_per_sec``."""

    def __init__(self, target_refs_per_sec: Optional[float] = None,
                 adjust_every: int = 64, gain: float = 0.5):
        if adjust_every <= 0:
            raise ValueError("adjust_every must be positive")
        if gain <= 0:
            raise ValueError("gain must be positive")
        self.target_refs_per_sec = target_refs_per_sec
        self.adjust_every = adjust_every
        self.gain = gain
        self.extra_gap = 0.0
        self.adjustments = 0
        self._count = 0
        self._last_refs = 0
        self._last_clock = 0.0
        self._fr = None
        self._freq = 0.0

    def attach_run(self, machine, flow_run) -> None:
        """Bind to the live run state (called by the Machine via the Pipeline)."""
        self._fr = flow_run
        self._freq = machine.spec.freq_hz

    def process(self, ctx: AccessContext, packet: Packet) -> Packet:
        gap = int(self.extra_gap)
        ctx.compute(gap + 4, max(4, gap // 2))
        self._count += 1
        if (self.target_refs_per_sec is not None and self._fr is not None
                and self._count % self.adjust_every == 0):
            self._adjust()
        return packet

    def _adjust(self) -> None:
        fr = self._fr
        d_refs = fr.counters.l3_refs - self._last_refs
        d_clock = fr.clock - self._last_clock
        self._last_refs = fr.counters.l3_refs
        self._last_clock = fr.clock
        if d_clock <= 0:
            return
        rate = d_refs * self._freq / d_clock
        error = (rate - self.target_refs_per_sec) / self.target_refs_per_sec
        cycles_per_packet = d_clock / self.adjust_every
        if error > 0:
            self.extra_gap += self.gain * error * cycles_per_packet
        else:
            # Release slowly so transient dips don't unthrottle a flow that
            # is genuinely over its profile.
            self.extra_gap = max(
                0.0, self.extra_gap + 0.25 * self.gain * error * cycles_per_packet
            )
        self.adjustments += 1
