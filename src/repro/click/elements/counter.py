"""Counter: per-flow packet/byte statistics on a hot cache line."""

from __future__ import annotations

from ...hw.machine import FlowEnv
from ...mem.access import AccessContext, TAGS
from ...mem.region import Region
from ...net.packet import Packet
from ..element import Element


class Counter(Element):
    """Counts packets and bytes; its counter line is touched every packet.

    Per-core statistics lines like this are exactly the structures the
    paper identifies as *hot spots*: referenced with every packet, they
    stay resident and are nearly immune to cache contention.
    """

    def __init__(self) -> None:
        self.packets = 0
        self.bytes = 0
        self.region: Region = None  # type: ignore[assignment]
        self._tag = TAGS.register("counter")

    def initialize(self, env: FlowEnv) -> None:
        self.region = env.space.domain(env.domain).alloc(64, "counter")

    def process(self, ctx: AccessContext, packet: Packet) -> Packet:
        self.packets += 1
        self.bytes += packet.wire_length
        ctx.compute(4, 6)
        if self.region is not None:
            ctx.touch(self.region, 0, 8, self._tag)
        return packet

    def rate_summary(self) -> str:
        """Human-readable totals."""
        return f"{self.packets} packets / {self.bytes} bytes"
