"""CheckIPHeader: validate the IP header (Click's element of the same name).

Drops packets with an exhausted TTL, a bogus length, or — when the packet
carries a checksum (our sources may offload it) — a checksum mismatch.
Touches the header's cache lines in the packet buffer; these are the
references Figure 7 attributes to ``check_ip_header`` (same few lines every
packet, hence almost never converted to misses by contention).
"""

from __future__ import annotations

from typing import Optional

from ...constants import COST_CHECK_IP
from ...mem.access import AccessContext, TAGS
from ...net.headers import IPv4Header
from ...net.packet import Packet
from ..element import Element


class CheckIPHeader(Element):
    """Header validation; output is the verified packet or a drop."""

    def __init__(self, verify_checksum: bool = True):
        self.verify_checksum = verify_checksum
        self.dropped = 0
        self._tag = TAGS.register("check_ip_header")

    def process(self, ctx: AccessContext, packet: Packet) -> Optional[Packet]:
        ctx.cost(COST_CHECK_IP)
        if packet.buffer is not None:
            ctx.touch(packet.buffer, 0, packet.header_bytes, self._tag)
        ip = packet.ip
        if ip.ttl <= 0 or ip.total_length < IPv4Header.LENGTH:
            self.dropped += 1
            return None
        if (self.verify_checksum and ip.checksum
                and ip.checksum != ip.compute_checksum()):
            self.dropped += 1
            return None
        return packet
