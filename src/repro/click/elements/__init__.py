"""Standard elements (the Click distribution analogues)."""

from .fromdevice import FromDevice
from .todevice import ToDevice
from .checkipheader import CheckIPHeader
from .classifier import Classifier
from .queue import QueueElement
from .counter import Counter
from .discard import Discard
from .control import ControlElement

__all__ = [
    "FromDevice",
    "ToDevice",
    "CheckIPHeader",
    "Classifier",
    "QueueElement",
    "Counter",
    "Discard",
    "ControlElement",
]
