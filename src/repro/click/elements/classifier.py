"""Classifier: steer packets to output ports by protocol/port patterns."""

from __future__ import annotations

from typing import List, Optional, Tuple

from ...mem.access import AccessContext
from ...net.packet import Packet
from ..element import Element


class Pattern:
    """One match pattern: any field set to None is a wildcard."""

    def __init__(self, protocol: Optional[int] = None,
                 dport: Optional[int] = None, sport: Optional[int] = None):
        self.protocol = protocol
        self.dport = dport
        self.sport = sport

    def matches(self, packet: Packet) -> bool:
        """True when every non-wildcard field matches ``packet``."""
        if self.protocol is not None and packet.ip.protocol != self.protocol:
            return False
        if self.dport is not None and packet.l4.dport != self.dport:
            return False
        if self.sport is not None and packet.l4.sport != self.sport:
            return False
        return True


class Classifier(Element):
    """First-match classification onto ``len(patterns)`` output ports.

    A packet matching ``patterns[i]`` exits port ``i``; non-matching
    packets exit the last port (a catch-all), mirroring Click's trailing
    ``-`` pattern.
    """

    def __init__(self, patterns: List[Pattern]):
        if not patterns:
            raise ValueError("need at least one pattern")
        self.patterns = patterns
        self.n_outputs = len(patterns) + 1
        self.matched = [0] * self.n_outputs

    def process(self, ctx: AccessContext, packet: Packet) -> Tuple[int, Packet]:
        ctx.compute(10 * len(self.patterns), 8 * len(self.patterns))
        for port, pattern in enumerate(self.patterns):
            if pattern.matches(packet):
                self.matched[port] += 1
                return port, packet
        port = self.n_outputs - 1
        self.matched[port] += 1
        return port, packet
