"""Discard: drop everything (Click's Discard)."""

from __future__ import annotations

from ...mem.access import AccessContext
from ...net.packet import Packet
from ..element import Element


class Discard(Element):
    """Terminal drop element."""

    def __init__(self) -> None:
        self.count = 0

    def process(self, ctx: AccessContext, packet: Packet) -> None:
        ctx.compute(2, 3)
        self.count += 1
        return None
