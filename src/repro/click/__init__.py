"""Click-like modular packet-processing framework.

Applications are composed from :class:`~repro.click.element.Element`
instances into per-flow :class:`~repro.click.pipeline.Pipeline` chains
(the paper's "parallel approach": one core runs a packet through every
processing step), or wired into a :class:`~repro.click.router.Router`
configuration graph. :mod:`repro.click.handoff` provides the cross-core
queues used by the pipeline-parallelization comparison of Section 2.2.
"""

from .element import Element, PacketSink
from .pipeline import Pipeline
from .router import Router
from .handoff import HandoffQueue, PipelineStage, build_pipelined_flow

__all__ = [
    "Element",
    "PacketSink",
    "Pipeline",
    "Router",
    "HandoffQueue",
    "PipelineStage",
    "build_pipelined_flow",
]
