"""Cross-core packet handoff: the "pipeline approach" of Section 2.2.

In the pipeline parallelization, a packet is handled by multiple cores:
one receives it, passes it to the next for further processing, and so on.
The paper identifies the costs that make this lose to run-to-completion:
passing descriptors/headers between cores causes compulsory misses in the
receiving core's private caches, and buffer recycling (the transmitting
core returning buffers to the receiving core's pool) needs extra
synchronization — "in our system, pipelining results in 10-15 extra cache
misses per packet."

:class:`HandoffQueue` models an SPSC descriptor ring whose slots and
head/tail lines ping-pong between producer and consumer (each write
invalidates the peer's privately cached copy, so the peer's next read is
served from the shared L3). :class:`PipelineStage` is a flow running one
segment of an element chain on one core; :func:`build_pipelined_flow`
wires stages, handoff queues, and the buffer-recycle path onto consecutive
cores of a machine.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Sequence

from ..constants import (
    COST_HANDOFF,
    HANDOFF_QUEUE_CAPACITY,
    PIPELINE_IDLE_STALL_CYCLES,
)
from ..hw.machine import FlowEnv, Machine
from ..mem.access import AccessContext, TAGS
from ..mem.region import Region
from ..net.flowgen import TrafficSource
from .element import Element
from .elements.fromdevice import FromDevice
from .elements.todevice import ToDevice

_DESCRIPTOR_BYTES = 64  # one line per slot: descriptor + header words


class HandoffQueue:
    """SPSC cross-core queue with cache-line ping-pong on push/pop."""

    def __init__(self, capacity: int = HANDOFF_QUEUE_CAPACITY):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._queue: Deque[object] = deque()
        self.ring: Region = None  # type: ignore[assignment]
        self.sync: Region = None  # type: ignore[assignment]
        self.producer_core: Optional[int] = None
        self.consumer_core: Optional[int] = None
        self.pushed = 0
        self.popped = 0
        self._head = 0
        self._tail = 0
        self._tag = TAGS.register("handoff")

    def initialize(self, env: FlowEnv) -> None:
        """Allocate the ring and head/tail sync lines (producer's domain)."""
        alloc = env.space.domain(env.domain)
        self.ring = alloc.alloc(self.capacity * _DESCRIPTOR_BYTES, "handoff.ring")
        self.sync = alloc.alloc(128, "handoff.sync")  # head line + tail line

    @property
    def full(self) -> bool:
        """True when the ring has no free descriptor."""
        return len(self._queue) >= self.capacity

    @property
    def empty(self) -> bool:
        """True when no descriptor is pending."""
        return not self._queue

    def push(self, ctx: AccessContext, item, machine: Machine) -> bool:
        """Producer side: enqueue a descriptor; False when full."""
        if self.full:
            return False
        ctx.cost(COST_HANDOFF)
        tag = self._tag
        slot = self._tail % self.capacity
        self._tail += 1
        # Producer reads head (written by consumer) to check occupancy,
        # then writes the slot and the tail line.
        ctx.touch(self.sync, 0, 8, tag)
        ctx.touch(self.ring, slot * _DESCRIPTOR_BYTES, _DESCRIPTOR_BYTES, tag)
        ctx.touch(self.sync, 64, 8, tag)
        if self.consumer_core is not None:
            machine.invalidate_private(
                [self.ring.line(slot * _DESCRIPTOR_BYTES), self.sync.line(64)],
                self.consumer_core,
            )
        self._queue.append(item)
        self.pushed += 1
        return True

    def pop(self, ctx: AccessContext, machine: Machine):
        """Consumer side: dequeue a descriptor; None when empty."""
        if not self._queue:
            return None
        ctx.cost(COST_HANDOFF)
        tag = self._tag
        slot = self._head % self.capacity
        self._head += 1
        # Consumer reads tail (written by producer) and the slot, then
        # advances the head line.
        ctx.touch(self.sync, 64, 8, tag)
        ctx.touch(self.ring, slot * _DESCRIPTOR_BYTES, _DESCRIPTOR_BYTES, tag)
        ctx.touch(self.sync, 0, 8, tag)
        if self.producer_core is not None:
            machine.invalidate_private([self.sync.line(0)], self.producer_core)
        self.popped += 1
        return self._queue.popleft()


class PipelineStage:
    """One core's segment of a pipelined flow."""

    def __init__(self, name: str, elements: Sequence[Element],
                 source: Optional[TrafficSource] = None,
                 upstream: Optional[HandoffQueue] = None,
                 downstream: Optional[HandoffQueue] = None,
                 recycle: Optional[HandoffQueue] = None,
                 rx: Optional[FromDevice] = None,
                 tx: Optional[ToDevice] = None,
                 measure_weight: float = 1.0):
        if (source is None) == (upstream is None):
            raise ValueError("a stage has either a source or an upstream queue")
        self.name = name
        self.elements = list(elements)
        self.source = source
        self.upstream = upstream
        self.downstream = downstream
        self.recycle = recycle
        self.rx = rx
        self.tx = tx
        self.measure_weight = measure_weight
        self.processed = 0
        self.stalls = 0
        self._machine: Optional[Machine] = None
        self._core: Optional[int] = None

    def attach_run(self, machine: Machine, flow_run) -> None:
        """Learn our core id; register it with the adjacent queues."""
        self._machine = machine
        self._core = flow_run.core
        if self.upstream is not None:
            self.upstream.consumer_core = flow_run.core
        if self.downstream is not None:
            self.downstream.producer_core = flow_run.core
        if self.recycle is not None:
            if self.source is not None:
                self.recycle.consumer_core = flow_run.core
            else:
                self.recycle.producer_core = flow_run.core

    def run_packet(self, ctx: AccessContext):
        """One stage turn: take work, run the segment, hand off."""
        machine = self._machine
        if machine is None:
            raise RuntimeError("stage not attached to a machine")
        if self.source is not None:
            # First stage: receive from the wire.
            if self.downstream is not None and self.downstream.full:
                self.stalls += 1
                ctx.mark_idle(PIPELINE_IDLE_STALL_CYCLES)
                return None
            if self.recycle is not None and not self.recycle.empty:
                self.recycle.pop(ctx, machine)  # reclaim a transmitted buffer
            packet = self.source.next_packet()
            dma = self.rx.receive(ctx, packet) if self.rx is not None else None
        else:
            # Downstream stage: take work from the previous core.
            if self.downstream is not None and self.downstream.full:
                self.stalls += 1
                ctx.mark_idle(PIPELINE_IDLE_STALL_CYCLES)
                return None
            packet = self.upstream.pop(ctx, machine)
            if packet is None:
                self.stalls += 1
                ctx.mark_idle(PIPELINE_IDLE_STALL_CYCLES)
                return None
            dma = None
        for element in self.elements:
            result = element.process(ctx, packet)
            if result is None:
                return dma
            if isinstance(result, tuple):
                result = result[1]
            packet = result
        if self.downstream is not None:
            self.downstream.push(ctx, packet, machine)
        else:
            if self.tx is not None:
                self.tx.send(ctx, packet)
            if self.recycle is not None:
                self.recycle.push(ctx, packet.buffer, machine)
        self.processed += 1
        return dma


def build_pipelined_flow(
    machine: Machine,
    name: str,
    source_factory,
    stage_element_factories: Sequence,
    cores: Sequence[int],
    data_domain: Optional[int] = None,
    measure_weight: float = 1.0,
) -> List:
    """Wire a pipelined flow across ``cores`` of ``machine``.

    ``stage_element_factories`` is one callable per stage; each takes a
    :class:`FlowEnv` and returns that stage's (already initialized)
    element list. Only the last stage is measured: its packet completion
    rate is the flow's throughput. Returns the created FlowRuns.
    """
    n_stages = len(stage_element_factories)
    if n_stages < 2:
        raise ValueError("a pipelined flow needs at least two stages")
    if len(cores) != n_stages:
        raise ValueError("need exactly one core per stage")

    queues = [HandoffQueue() for _ in range(n_stages - 1)]
    recycle = HandoffQueue()
    runs = []
    for i in range(n_stages):
        def factory(env: FlowEnv, i=i):
            elements = stage_element_factories[i](env)
            if i == 0:
                for queue in queues:
                    queue.initialize(env)
                recycle.initialize(env)
                rx = FromDevice()
                rx.initialize(env)
                return PipelineStage(
                    f"{name}.s{i}", elements, source=source_factory(env),
                    downstream=queues[0], recycle=recycle, rx=rx,
                    measure_weight=measure_weight,
                )
            if i == n_stages - 1:
                tx = ToDevice()
                tx.initialize(env)
                return PipelineStage(
                    f"{name}.s{i}", elements, upstream=queues[i - 1],
                    recycle=recycle, tx=tx, measure_weight=measure_weight,
                )
            return PipelineStage(
                f"{name}.s{i}", elements, upstream=queues[i - 1],
                downstream=queues[i], measure_weight=measure_weight,
            )

        runs.append(
            machine.add_flow(
                factory, core=cores[i], data_domain=data_domain,
                measured=(i == n_stages - 1), label=f"{name}.s{i}",
            )
        )
    return runs
