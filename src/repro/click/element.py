"""The element abstraction.

An element is one packet-processing step. Like Click elements, ours are
configured once, initialized against a flow's environment (where they
allocate their simulated-memory regions), and then invoked per packet.
``process`` does the element's real work on the packet and mirrors its
data-structure accesses into the flow's :class:`AccessContext`.
"""

from __future__ import annotations

from typing import Tuple, Union

from ..hw.machine import FlowEnv
from ..mem.access import AccessContext
from ..net.packet import Packet

#: What ``process`` may return: the packet (possibly replaced), None for a
#: drop, or ``(output_port, packet)`` for multi-output elements in a Router.
ProcessResult = Union[Packet, None, Tuple[int, Packet]]


class Element:
    """Base class for packet-processing elements."""

    #: Number of output ports (1 for simple pass-through elements).
    n_outputs = 1

    def initialize(self, env: FlowEnv) -> None:
        """Allocate simulated-memory regions and build functional state.

        Called exactly once, when the owning flow is placed on a core.
        ``env.domain`` is the NUMA domain the flow's data must live in.
        """

    def process(self, ctx: AccessContext, packet: Packet) -> ProcessResult:
        """Process one packet; record accesses into ``ctx``."""
        raise NotImplementedError

    @property
    def name(self) -> str:
        """Element name for configuration dumps."""
        return self.__class__.__name__

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{self.name}>"


class PacketSink(Element):
    """Terminal element: counts and absorbs packets (like Click's Discard)."""

    def __init__(self) -> None:
        self.count = 0
        self.bytes = 0

    def process(self, ctx: AccessContext, packet: Packet) -> None:
        self.count += 1
        self.bytes += packet.wire_length
        return None
