"""Per-flow pipelines: the paper's "parallel approach".

A :class:`Pipeline` is one flow: a traffic source, a receive element, a
chain of processing elements, and a transmit element, all executed by a
single core per packet (Section 2.2 concludes this run-to-completion model
always beats pipelining for realistic workloads). A Pipeline implements
the flow protocol the :class:`~repro.hw.machine.Machine` engine expects:
``run_packet(ctx)`` produces one packet's access program and returns the
DMA-invalidated lines.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..hw.machine import FlowEnv
from ..mem.access import AccessContext
from ..net.flowgen import TrafficSource
from ..net.packet import Packet
from .element import Element
from .elements.fromdevice import FromDevice
from .elements.todevice import ToDevice


class Pipeline:
    """A complete flow: source -> FromDevice -> elements -> ToDevice."""

    def __init__(self, name: str, env: FlowEnv, source: TrafficSource,
                 elements: Sequence[Element], measure_weight: float = 1.0,
                 rx: Optional[FromDevice] = None,
                 tx: Optional[ToDevice] = None):
        self.name = name
        self.measure_weight = measure_weight
        self.source = source
        self.rx = rx if rx is not None else FromDevice()
        self.tx = tx if tx is not None else ToDevice()
        self.elements: List[Element] = list(elements)
        self.dropped = 0
        self.forwarded = 0
        #: Per-element attribution of the most recent packet,
        #: ``[(element, refs, instructions), ...]``; populated only while
        #: a tracer is attached (the engine reads it at packet boundary).
        self.trace_marks = None
        self._tracer = None
        self.rx.initialize(env)
        self.tx.initialize(env)
        for element in self.elements:
            element.initialize(env)

    #: Set by builders (e.g. ``apps.registry.make_app``) whose pipelines
    #: are fully pinned by their configuration; enables stream caching in
    #: the batch engine. None means "do not cache".
    stream_signature = None

    def attach_run(self, machine, flow_run) -> None:
        """Forward live run-state bindings to elements that want them."""
        tracer = getattr(machine, "tracer", None)
        if tracer is not None and tracer.active:
            self._tracer = tracer
        for element in [self.rx, self.tx, *self.elements]:
            attach = getattr(element, "attach_run", None)
            if attach is not None:
                attach(machine, flow_run)

    @property
    def timing_pure(self) -> bool:
        """True when generation never reads live run state.

        Elements that declare ``attach_run`` (control loops, handoff
        queue stages) consume clocks, counters, or cross-flow queues
        while generating, so their packets cannot be pregenerated; a
        traced pipeline records per-element marks and is treated the
        same way.
        """
        if self._tracer is not None:
            return False
        return not any(
            hasattr(element, "attach_run")
            for element in (self.rx, self.tx, *self.elements)
        )

    def run_packet(self, ctx: AccessContext):
        """Pull one packet from the source and run it through the chain."""
        if self._tracer is not None:
            return self._run_packet_traced(ctx)
        packet = self.source.next_packet()
        dma = self.rx.receive(ctx, packet)
        for element in self.elements:
            result = element.process(ctx, packet)
            if result is None:
                self.dropped += 1
                return dma
            if isinstance(result, tuple):
                # Multi-output elements are only meaningful inside a Router;
                # in a linear pipeline, any port continues the chain.
                result = result[1]
            packet = result
        self.tx.send(ctx, packet)
        self.forwarded += 1
        return dma

    def _run_packet_traced(self, ctx: AccessContext):
        """The tracing twin of :meth:`run_packet`.

        Identical processing, but each step's share of the packet's work
        (memory references, instructions) is recorded into
        :attr:`trace_marks` for the engine's packet-span trace events.
        Kept separate so the untraced hot path pays only one ``is None``
        check per packet.
        """
        marks = []
        refs0, instr0 = ctx.n_references, ctx.instructions
        packet = self.source.next_packet()
        dma = self.rx.receive(ctx, packet)
        refs1, instr1 = ctx.n_references, ctx.instructions
        marks.append((self.rx.name, refs1 - refs0, instr1 - instr0))
        for element in self.elements:
            result = element.process(ctx, packet)
            refs0, instr0 = refs1, instr1
            refs1, instr1 = ctx.n_references, ctx.instructions
            marks.append((element.name, refs1 - refs0, instr1 - instr0))
            if result is None:
                self.dropped += 1
                self.trace_marks = marks
                return dma
            if isinstance(result, tuple):
                result = result[1]
            packet = result
        self.tx.send(ctx, packet)
        self.forwarded += 1
        refs0, instr0 = refs1, instr1
        marks.append((self.tx.name, ctx.n_references - refs0,
                      ctx.instructions - instr0))
        self.trace_marks = marks
        return dma

    def process_one(self, ctx: AccessContext, packet: Packet) -> Optional[Packet]:
        """Run an externally supplied packet through the element chain only.

        Functional-test helper: no receive/transmit modeling.
        """
        for element in self.elements:
            result = element.process(ctx, packet)
            if result is None:
                return None
            if isinstance(result, tuple):
                result = result[1]
            packet = result
        return packet

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        chain = " -> ".join(e.name for e in self.elements)
        return f"Pipeline({self.name!r}: FromDevice -> {chain} -> ToDevice)"
