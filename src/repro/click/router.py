"""Router: a Click-style element configuration graph.

Elements are registered under names and wired port-to-port; a packet
entering at an element follows the connection graph until it is dropped
or reaches an element with no outgoing connection (a sink). This is the
configuration layer the examples use to express multi-path processing
(e.g. a Classifier steering TCP to one chain and UDP to another); the
contention experiments use linear :class:`~repro.click.pipeline.Pipeline`
chains directly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..mem.access import AccessContext
from ..net.packet import Packet
from .element import Element


class Router:
    """A named-element graph with port-to-port connections."""

    def __init__(self) -> None:
        self._elements: Dict[str, Element] = {}
        self._edges: Dict[Tuple[str, int], str] = {}

    # -- configuration ----------------------------------------------------------

    def add(self, name: str, element: Element) -> Element:
        """Register ``element`` under ``name``."""
        if name in self._elements:
            raise ValueError(f"duplicate element name {name!r}")
        self._elements[name] = element
        return element

    def connect(self, src: str, dst: str, port: int = 0) -> None:
        """Wire ``src`` output ``port`` to ``dst`` input."""
        if src not in self._elements:
            raise ValueError(f"unknown element {src!r}")
        if dst not in self._elements:
            raise ValueError(f"unknown element {dst!r}")
        n_out = self._elements[src].n_outputs
        if not 0 <= port < n_out:
            raise ValueError(f"{src!r} has no output port {port} (has {n_out})")
        if (src, port) in self._edges:
            raise ValueError(f"output {src!r}[{port}] already connected")
        self._edges[(src, port)] = dst

    def element(self, name: str) -> Element:
        """Look up a registered element."""
        return self._elements[name]

    def validate(self) -> None:
        """Check every non-sink output port is connected and the graph is acyclic."""
        for name, element in self._elements.items():
            ports = [p for (s, p) in self._edges if s == name]
            if ports and len(ports) != element.n_outputs:
                missing = set(range(element.n_outputs)) - set(ports)
                raise ValueError(f"{name!r} leaves output ports {sorted(missing)} open")
        # Cycle check by DFS over the port graph.
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {name: WHITE for name in self._elements}

        def visit(name: str) -> None:
            color[name] = GRAY
            for port in range(self._elements[name].n_outputs):
                nxt = self._edges.get((name, port))
                if nxt is None:
                    continue
                if color[nxt] == GRAY:
                    raise ValueError(f"configuration cycle through {nxt!r}")
                if color[nxt] == WHITE:
                    visit(nxt)
            color[name] = BLACK

        for name in self._elements:
            if color[name] == WHITE:
                visit(name)

    # -- execution -------------------------------------------------------------

    def initialize(self, env) -> None:
        """Initialize every element against ``env``."""
        for element in self._elements.values():
            element.initialize(env)

    def push(self, ctx: AccessContext, packet: Packet,
             entry: str) -> Optional[Tuple[str, Packet]]:
        """Run ``packet`` from ``entry`` through the graph.

        Returns ``(final_element_name, packet)`` when the packet comes to
        rest at a sink (an element with no outgoing connection for the
        chosen port), or None if some element dropped it.
        """
        name = entry
        hops = 0
        limit = len(self._elements) + 1
        while True:
            if hops > limit:
                raise RuntimeError("packet looped in configuration")
            hops += 1
            element = self._elements[name]
            result = element.process(ctx, packet)
            if result is None:
                return None
            if isinstance(result, tuple):
                port, packet = result
            else:
                port, packet = 0, result
            nxt = self._edges.get((name, port))
            if nxt is None:
                return name, packet
            name = nxt

    def graph_summary(self) -> List[str]:
        """Human-readable edge list."""
        return [
            f"{src}[{port}] -> {dst}"
            for (src, port), dst in sorted(self._edges.items())
        ]
