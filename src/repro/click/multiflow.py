"""Multiple flows time-sharing one core (the paper's Section 6 caveat).

The paper's scenarios run one flow per core and predict contention from
L3 behaviour alone, noting: "If each core runs multiple flows, these
compete for the L1 and L2 caches, so considering only the L3 accesses may
not be sufficient to predict performance drop."

:class:`SharedCoreFlow` makes that setting expressible: it multiplexes
several flows onto one core with per-packet round-robin (how SMP Click's
task scheduler interleaves elements on a thread). The inner flows then
share the core's private L1/L2 in the simulation — their structures evict
each other between turns — which is precisely the effect an L3-only
predictor cannot see. ``experiments.multiflow`` quantifies it.
"""

from __future__ import annotations

from typing import List, Sequence

from ..mem.access import AccessContext


class SharedCoreFlow:
    """Round-robin multiplexer over several flows on a single core."""

    def __init__(self, flows: Sequence, name: str = "shared"):
        if not flows:
            raise ValueError("need at least one flow to share the core")
        self.flows: List = list(flows)
        self.name = name
        # Aggregate pacing: the multiplexed flow processes one packet per
        # turn, so its packet rate is the sum over members.
        weights = [float(getattr(f, "measure_weight", 1.0)) for f in flows]
        self.measure_weight = sum(weights) / len(weights)
        self.turns = [0] * len(flows)
        self._next = 0

    def attach_run(self, machine, flow_run) -> None:
        """Forward run-state bindings to every member flow."""
        for flow in self.flows:
            attach = getattr(flow, "attach_run", None)
            if attach is not None:
                attach(machine, flow_run)

    @property
    def timing_pure(self) -> bool:
        """Pure iff every member flow is (round-robin adds no run state)."""
        return all(getattr(f, "timing_pure", False) for f in self.flows)

    @property
    def stream_signature(self):
        """Cacheable iff every member is; order matters (round-robin)."""
        sigs = tuple(getattr(f, "stream_signature", None) for f in self.flows)
        if any(s is None for s in sigs):
            return None
        return ("shared", self.name) + sigs

    def run_packet(self, ctx: AccessContext):
        """Process one packet on behalf of the next member (round-robin)."""
        index = self._next
        self._next = (index + 1) % len(self.flows)
        self.turns[index] += 1
        return self.flows[index].run_packet(ctx)


def shared_core_factory(factories: Sequence, name: str = "shared"):
    """Machine-compatible factory multiplexing ``factories`` onto one core."""

    def build(env):
        return SharedCoreFlow([factory(env) for factory in factories],
                              name=name)

    # Compose the factory-level signature exactly like the built flow's
    # property does, so Machine.add_flow can match a cached stream before
    # constructing any member flow.
    sigs = tuple(getattr(f, "stream_signature", None) for f in factories)
    if not any(s is None for s in sigs):
        build.stream_signature = ("shared", name) + sigs
    return build
