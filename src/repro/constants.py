"""Calibration constants for the simulated platform and applications.

This module is the single source of truth for every latency, size, and
per-operation cost used by the simulator. The hardware numbers follow the
paper's platform (2x Intel Xeon X5660, Section 2): 2.8 GHz cores, 32 KB L1d,
256 KB L2, 12 MB shared L3 per socket, and a hit-to-miss penalty of
delta = 43.75 ns (Section 3.3). The per-application compute costs are
calibration knobs tuned so that solo-run profiles land near Table 1 of the
paper; everything measured under contention is emergent from the cache
simulation, not fitted.
"""

from __future__ import annotations

from .units import GHZ, KB, MB, ns_to_cycles

# --------------------------------------------------------------------------
# Platform (Section 2, Figure 1)
# --------------------------------------------------------------------------

CPU_FREQ_HZ = 2.8 * GHZ          # Xeon X5660 core clock
CORES_PER_SOCKET = 6
N_SOCKETS = 2

CACHE_LINE = 64                  # bytes
CACHE_LINE_BITS = 6              # log2(CACHE_LINE)

L1_SIZE = 32 * KB
L1_WAYS = 8
L2_SIZE = 256 * KB
L2_WAYS = 8
L3_SIZE = 12 * MB
L3_WAYS = 16

# Access latencies in core cycles. DRAM latency is expressed relative to an
# L3 hit via delta (the paper's "extra time needed to complete a memory
# reference that is a cache miss instead of a cache hit").
LAT_L1 = 4
LAT_L2 = 12
LAT_L3 = 40
DELTA_NS = 43.75                 # paper's platform spec value for delta
LAT_DRAM_EXTRA = ns_to_cycles(DELTA_NS, CPU_FREQ_HZ)   # ~122.5 cycles
LAT_DRAM = LAT_L3 + LAT_DRAM_EXTRA

# Memory controller: each line fill occupies the controller for a service
# window; queueing behind other fills models controller contention
# (the paper's Figure 4(b) effect, and "delta slowly increases with
# competition"). 15 cycles/fill ~= 12 GB/s effective per controller
# (random 64B fills at closed-page efficiency on 3-channel DDR3-1333).
MC_SERVICE_CYCLES = 15.0

# Remote (QPI) accesses: extra latency, plus occupancy on the QPI link.
QPI_EXTRA_CYCLES = 60.0
QPI_SERVICE_CYCLES = 2.0

# NUMA address-space layout: domain d occupies addresses [d << 40, ...).
NUMA_DOMAIN_SHIFT = 40

# --------------------------------------------------------------------------
# Workload sizes (Section 2.1)
# --------------------------------------------------------------------------

IP_ROUTING_TABLE_ENTRIES = 128_000    # "routing-table of 128000 entries"
NETFLOW_TABLE_ENTRIES = 100_000       # "hash table contains 100000 entries"
FW_RULES = 1_000                      # "checked against 1000 rules"
RE_FINGERPRINT_ENTRIES = 4_194_304    # "more than 4 million entries"
RE_PACKET_STORE_BYTES = 64 * MB       # ~1 second's worth of traffic
NETFLOW_ENTRY_BYTES = 64
FW_RULE_BYTES = 16
RE_FINGERPRINT_ENTRY_BYTES = 16

DEFAULT_PAYLOAD_BYTES = 128           # simulated packet payload
PACKET_BUFFER_BYTES = 2048            # per-packet receive buffer (skb data)
RX_RING_ENTRIES = 512                 # descriptor ring per queue

# --------------------------------------------------------------------------
# Per-application compute costs (calibration knobs -> Table 1)
#
# Each entry is (gap_cycles, instructions) for one occurrence of the
# operation. "gap" is pure compute time the core spends between memory
# references; memory latency is added on top by the timing engine.
# --------------------------------------------------------------------------

COST_PACKET_BASE = (100, 160)         # receive path: driver + buffer management
COST_CHECK_IP = (30, 45)              # IP header validation
COST_TX = (30, 42)                    # transmit path: descriptor write + doorbell
COST_TRIE_NODE = (16, 14)             # one radix-trie node visit
COST_IP_FINISH = (45, 52)             # checksum update + TTL decrement
COST_NETFLOW = (55, 65)               # 5-tuple hash + entry update
COST_FW_RULE_LINE = (80, 62)          # check 4 rules (one 64-byte line)
COST_RE_WINDOW = (420, 360)           # Rabin fingerprint of one 64-byte window
COST_RE_STORE_LINE = (30, 35)         # packet-store insert, per line
COST_AES_BLOCK = (330, 600)           # AES-128 of one 16-byte block
COST_SYN_REF = (0, 2)                 # SYN: one random memory reference
COST_SYN_CPU_OP = (1, 1)              # SYN: one counter increment

# Pipeline (multi-core) execution: stall when a handoff queue is empty/full,
# and per-handoff bookkeeping cost (Section 2.2's pipelining overheads).
PIPELINE_IDLE_STALL_CYCLES = 150
COST_HANDOFF = (45, 60)               # enqueue/dequeue one descriptor
HANDOFF_QUEUE_CAPACITY = 64

# --------------------------------------------------------------------------
# Measurement defaults
# --------------------------------------------------------------------------

DEFAULT_WARMUP_PACKETS = 5000
DEFAULT_MEASURE_PACKETS = 1500
DEFAULT_SEED = 0x5EED

# The paper's "turning point": beyond ~50M competing refs/sec the drop
# flattens. Used by reporting/tests as a reference marker only.
PAPER_TURNING_POINT_REFS_PER_SEC = 50e6

# SYN's random-access array, as a fraction of the L3. The paper uses an
# L3-sized array on out-of-order cores, where misses overlap (high MLP)
# and a SYN flow sustains tens of millions of refs/sec. Our timing model
# is a blocking core (one outstanding miss), so an L3-sized array would
# make SYN both slower and far more eviction-heavy *per reference* than
# the realistic flows — breaking the paper's SYN-equivalence that the
# prediction method rests on. Halving the array restores the paper's
# per-reference aggressiveness balance.
SYN_ARRAY_FRACTION = 0.4
