"""Command-line tools.

* ``repro-profile`` — solo-profile flow types (Table 1 rows).
* ``repro-predict`` — build the predictor and predict a deployment's
  per-flow drops (optionally validating against a simulation).
* ``repro-schedule`` — best/worst placement study for a flow combination.
* ``repro-sweep`` — sensitivity curve of one flow type vs. SYN competitors,
  with an ASCII rendering of the curve.

Every tool supports the observability flags: ``--json`` emits a
machine-readable :class:`~repro.obs.RunReport` instead of ASCII tables,
``--trace PATH`` writes a Chrome ``trace_event`` file of every simulated
run (open in ``about:tracing`` or Perfetto), and ``--metrics-interval US``
samples per-flow counter time series every US simulated microseconds
(embedded in the JSON report). ``--engine {scalar,batch}`` selects the
execution engine — results are identical, the batch engine is faster on
sweeps (see :mod:`repro.fastpath`).

``--jobs N`` runs the independent simulations of a tool (solo profiles,
sensitivity-sweep levels, placement co-runs) on N worker processes via
:mod:`repro.sweep`; results are bit-identical to ``--jobs 1``. Parallel
runs cache shard results under ``--cache-dir`` (default
``~/.cache/repro-sweep``, keyed by config + seed + engine + code
version; ``--no-cache`` disables), and the JSON report records the
cache/retry counters under its volatile ``execution`` key.
"""

from __future__ import annotations

import argparse
import sys
from contextlib import contextmanager
from typing import List, Optional

from .apps.registry import APP_NAMES, REALISTIC_APPS, describe_apps
from .core.asciiplot import plot_curve
from .core.prediction import ContentionPredictor, sweep_sensitivity
from .core.profiler import profile_apps
from .core.reporting import format_table, pct
from .core.scheduling import PlacementStudy
from .core.validation import run_corun
from .experiments.common import ExperimentConfig
from .hw.counters import performance_drop
from .obs import ChromeTraceSink, RunReport, Tracer, observe


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid integer {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return value


def _positive_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid number {text!r}")
    if value <= 0:
        raise argparse.ArgumentTypeError("must be > 0")
    return value


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=int, default=8,
                        help="platform scale-down factor (default 8)")
    parser.add_argument("--seed", type=int, default=0x5EED)
    parser.add_argument("--warmup", type=int, default=5000,
                        help="warm-up packets per flow")
    parser.add_argument("--measure", type=int, default=1500,
                        help="measured packets per flow")
    parser.add_argument("--json", action="store_true",
                        help="emit a RunReport JSON document instead of "
                             "ASCII tables")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="write a Chrome trace_event file of the "
                             "simulated runs to PATH")
    parser.add_argument("--trace-sample", type=_positive_int, default=1,
                        metavar="N", help="keep one traced packet in N "
                                          "(default 1: every packet)")
    parser.add_argument("--metrics-interval", type=_positive_float,
                        default=None,
                        metavar="US", help="sample per-flow counter time "
                        "series every US simulated microseconds")
    parser.add_argument("--engine", choices=("scalar", "batch"),
                        default="scalar",
                        help="execution engine: 'scalar' (reference event "
                             "loop) or 'batch' (pregenerating engine, "
                             "identical results, faster)")
    parser.add_argument("--jobs", type=_positive_int, default=1,
                        metavar="N",
                        help="run independent simulations as N parallel "
                             "worker processes (results are identical to "
                             "--jobs 1; default 1)")
    parser.add_argument("--cache-dir", metavar="PATH", default=None,
                        help="sweep result cache directory (default: "
                             "~/.cache/repro-sweep when sweeping in "
                             "parallel; entries are keyed by config, "
                             "seed, engine, and code version)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the sweep result cache")


def _sweep_runner(args):
    """A shared :class:`~repro.sweep.SweepRunner`, or None for the
    legacy serial path (``--jobs 1`` with no cache directory given)."""
    if args.jobs == 1 and args.cache_dir is None:
        return None
    from .sweep import (ResultCache, SweepOptions, SweepRunner,
                        default_cache_dir)

    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir or default_cache_dir())
    return SweepRunner(SweepOptions(jobs=args.jobs, engine=args.engine,
                                    cache=cache))


def _config(args) -> ExperimentConfig:
    return ExperimentConfig(
        scale=args.scale, seed=args.seed,
        solo_warmup=args.warmup, solo_measure=args.measure,
        corun_warmup=args.warmup, corun_measure=args.measure,
    )


def _observe(args, parser: argparse.ArgumentParser):
    """The obs+engine session for one CLI invocation, from its flags.

    Combines the observability session with the ambient-engine context,
    so every Machine the tools build internally runs on ``--engine``.
    """
    tracer = None
    if args.trace:
        try:
            tracer = Tracer(ChromeTraceSink(args.trace),
                            packet_sample=args.trace_sample)
        except OSError as exc:
            parser.error(f"--trace: cannot write {args.trace}: {exc}")

    @contextmanager
    def _session():
        from . import fastpath

        with observe(tracer=tracer,
                     metrics_interval_us=args.metrics_interval) as session:
            with fastpath.use_engine(args.engine):
                yield session

    return _session()


def _finish(args, session, report: RunReport, runner=None) -> None:
    """Common tail: attach time series, emit JSON, announce the trace."""
    report.results.setdefault("engine", args.engine)
    if runner is not None and runner.stats_history:
        report.execution["sweep"] = runner.execution_stats()
    if args.metrics_interval is not None:
        report.timeseries.update(session.timeseries_payload())
    if args.json:
        print(report.to_json())
    if args.trace:
        print(f"trace written to {args.trace}", file=sys.stderr)


def _parse_flows(flows: List[str]) -> List[str]:
    """Expand ``2xMON``-style arguments into flow-name lists."""
    out: List[str] = []
    for token in flows:
        if "x" in token and token.split("x", 1)[0].isdigit():
            count, name = token.split("x", 1)
            out.extend([name] * int(count))
        else:
            out.append(token)
    for name in out:
        if name not in APP_NAMES:
            raise SystemExit(
                f"unknown flow type {name!r}; known: {', '.join(APP_NAMES)}"
            )
    return out


def profile_main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro-profile``."""
    parser = argparse.ArgumentParser(
        description="Solo-profile packet-processing flow types (Table 1).",
        epilog="Flow types: " + "; ".join(
            f"{k}: {v}" for k, v in describe_apps().items()),
    )
    parser.add_argument("apps", nargs="*", default=list(REALISTIC_APPS),
                        help="flow types to profile (default: all realistic)")
    _add_common(parser)
    args = parser.parse_args(argv)
    apps = args.apps or list(REALISTIC_APPS)
    config = _config(args)
    spec = config.socket_spec()
    runner = _sweep_runner(args)
    with _observe(args, parser) as session:
        profiles = profile_apps(apps, spec, seed=config.seed,
                                warmup_packets=config.solo_warmup,
                                measure_packets=config.solo_measure,
                                jobs=args.jobs, runner=runner)
    if args.json:
        report = RunReport.new("profile", spec=spec, config=config,
                               command="repro-profile")
        report.results["profiles"] = {
            app: {
                "throughput": p.throughput,
                "cycles_per_packet": p.cycles_per_packet,
                "cycles_per_instruction": p.cycles_per_instruction,
                "l3_refs_per_sec": p.l3_refs_per_sec,
                "l3_hits_per_sec": p.l3_hits_per_sec,
                "l3_refs_per_packet": p.l3_refs_per_packet,
                "l3_misses_per_packet": p.l3_misses_per_packet,
                "l2_hits_per_packet": p.l2_hits_per_packet,
            }
            for app, p in profiles.items()
        }
    else:
        rows = [
            [app, f"{p.throughput:,.0f}", f"{p.cycles_per_packet:.0f}",
             f"{p.cycles_per_instruction:.2f}",
             f"{p.l3_refs_per_sec / 1e6:.1f}M", f"{p.l3_hits_per_sec / 1e6:.1f}M"]
            for app, p in profiles.items()
        ]
        print(format_table(
            ["flow", "pkts/sec", "cyc/pkt", "CPI", "L3 refs/s", "L3 hits/s"],
            rows, title=f"Solo profiles (scale 1/{args.scale})",
        ))
        report = RunReport.new("profile", spec=spec, config=config)
    _finish(args, session, report, runner)
    return 0


def predict_main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro-predict``."""
    parser = argparse.ArgumentParser(
        description="Predict per-flow contention drops for a deployment "
                    "sharing one socket.",
    )
    parser.add_argument("flows", nargs="+",
                        help="deployment, e.g. MON 2xVPN FW RE (max 6)")
    parser.add_argument("--validate", action="store_true",
                        help="also simulate the deployment and report errors")
    _add_common(parser)
    args = parser.parse_args(argv)
    flows = _parse_flows(args.flows)
    config = _config(args)
    spec = config.socket_spec()
    if len(flows) > spec.cores_per_socket:
        raise SystemExit(f"at most {spec.cores_per_socket} flows per socket")
    types = sorted(set(flows))
    print(f"profiling {', '.join(types)} and sweeping sensitivity curves...",
          file=sys.stderr)
    runner = _sweep_runner(args)
    with _observe(args, parser) as session:
        predictor = ContentionPredictor.build(
            types, spec, seed=config.seed,
            warmup_packets=config.solo_warmup,
            measure_packets=config.solo_measure,
            jobs=args.jobs, runner=runner,
        )
        measured = {}
        corun = None
        if args.validate:
            placement = [(app, core) for core, app in enumerate(flows)]
            corun = run_corun(placement, spec, seed=config.seed,
                              warmup_packets=config.corun_warmup,
                              measure_packets=config.corun_measure)
            for app, core in placement:
                label = f"{app}@{core}"
                measured[core] = performance_drop(
                    predictor.profiles[app].throughput, corun.throughput[label]
                )
    report = RunReport.new("predict", spec=spec, config=config,
                           command="repro-predict")
    predictions = []
    rows = []
    for core, app in enumerate(flows):
        competitors = flows[:core] + flows[core + 1:]
        predicted = predictor.predict_drop(app, competitors)
        predicted_pps = predictor.predict_throughput(app, competitors)
        entry = {"flow": app, "core": core, "predicted_drop": predicted,
                 "predicted_pps": predicted_pps}
        row = [f"{app}@{core}", pct(predicted), f"{predicted_pps:,.0f}"]
        if args.validate:
            entry["measured_drop"] = measured[core]
            entry["error"] = predicted - measured[core]
            row.extend([pct(measured[core]), pct(predicted - measured[core])])
        predictions.append(entry)
        rows.append(row)
    report.results["deployment"] = flows
    report.results["predictions"] = predictions
    if corun is not None:
        report.add_result_flows(corun.result)
    if not args.json:
        headers = ["flow", "predicted drop", "predicted pkts/sec"]
        if args.validate:
            headers.extend(["measured drop", "error"])
        print(format_table(headers, rows, title="Deployment prediction"))
    _finish(args, session, report, runner)
    return 0


def schedule_main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro-schedule``."""
    parser = argparse.ArgumentParser(
        description="Best/worst flow-to-core placement for a 12-flow "
                    "combination (Section 5 study).",
    )
    parser.add_argument("flows", nargs="+",
                        help="12 flows, e.g. 6xMON 6xFW")
    _add_common(parser)
    args = parser.parse_args(argv)
    flows = _parse_flows(args.flows)
    config = _config(args)
    spec = config.spec()
    if len(flows) != spec.total_cores:
        raise SystemExit(f"need exactly {spec.total_cores} flows")
    types = sorted(set(flows))
    print(f"profiling {', '.join(types)}...", file=sys.stderr)
    runner = _sweep_runner(args)
    with _observe(args, parser) as session:
        profiles = profile_apps(types, spec, seed=config.seed,
                                warmup_packets=config.solo_warmup,
                                measure_packets=config.solo_measure,
                                jobs=args.jobs, runner=runner)
        study = PlacementStudy(spec, profiles, seed=config.seed,
                               warmup_packets=config.corun_warmup,
                               measure_packets=config.corun_measure)
        result = study.run(flows, method="simulate",
                           jobs=args.jobs, runner=runner)
    report = RunReport.new("schedule", spec=spec, config=config,
                           command="repro-schedule")
    report.results["deployment"] = flows
    report.results["scheduling_gain"] = result.scheduling_gain
    for name, outcome in (("best", result.best), ("worst", result.worst)):
        report.results[name] = {
            "split": [list(group) for group in outcome.split],
            "average_drop": outcome.average_drop,
            "per_flow_drop": dict(outcome.per_flow_drop),
        }
    if not args.json:
        print(format_table(
            ["placement", "avg drop"],
            [["best:  " + " | ".join("+".join(g) for g in result.best.split),
              pct(result.best.average_drop)],
             ["worst: " + " | ".join("+".join(g) for g in result.worst.split),
              pct(result.worst.average_drop)]],
            title="Contention-aware scheduling study",
        ))
        print(f"\nmaximum overall gain from placement: "
              f"{pct(result.scheduling_gain)}")
    _finish(args, session, report, runner)
    return 0


def sweep_main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro-sweep``."""
    parser = argparse.ArgumentParser(
        description="Sweep a flow type against SYN competitors of rising "
                    "refs/sec and print its sensitivity curve "
                    "(prediction method, step 2).",
    )
    parser.add_argument("app", choices=sorted(APP_NAMES),
                        help="flow type to sweep")
    parser.add_argument("--competitors", type=int, default=5,
                        help="number of SYN co-runners (default 5)")
    _add_common(parser)
    args = parser.parse_args(argv)
    config = _config(args)
    spec = config.socket_spec()
    print(f"profiling {args.app} and sweeping {args.competitors} SYN "
          "competitors...", file=sys.stderr)
    runner = _sweep_runner(args)
    with _observe(args, parser) as session:
        curve = sweep_sensitivity(
            args.app, spec, seed=config.seed,
            n_competitors=args.competitors,
            warmup_packets=config.solo_warmup,
            measure_packets=config.solo_measure,
            jobs=args.jobs, runner=runner,
        )
    report = RunReport.new("sweep", spec=spec, config=config,
                           command="repro-sweep")
    report.results["app"] = args.app
    report.results["n_competitors"] = args.competitors
    report.results["points"] = [[refs, drop] for refs, drop in curve.points]
    report.results["turning_point_refs_per_sec"] = curve.turning_point()
    if not args.json:
        rows = [[f"{refs / 1e6:.1f}M", pct(drop)] for refs, drop in curve.points]
        print(format_table(["competing refs/s", "drop"], rows,
                           title=f"{args.app} sensitivity curve"))
        print()
        print(plot_curve(
            [(refs / 1e6, 100 * drop) for refs, drop in curve.points],
            name=args.app, x_label="competing Mrefs/s", y_label="drop %",
        ))
        print(f"\nturning point (80% of max drop): "
              f"{curve.turning_point() / 1e6:.1f}M refs/s")
    _finish(args, session, report, runner)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(profile_main())
