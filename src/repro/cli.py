"""Command-line tools.

* ``repro-profile`` — solo-profile flow types (Table 1 rows).
* ``repro-predict`` — build the predictor and predict a deployment's
  per-flow drops (optionally validating against a simulation).
* ``repro-schedule`` — best/worst placement study for a flow combination.
* ``repro-sweep`` — sensitivity curve of one flow type vs. SYN competitors,
  with an ASCII rendering of the curve.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .apps.registry import APP_NAMES, REALISTIC_APPS, describe_apps
from .core.asciiplot import plot_curve
from .core.prediction import ContentionPredictor, sweep_sensitivity
from .core.profiler import profile_apps
from .core.reporting import format_table, pct
from .core.scheduling import PlacementStudy
from .core.validation import run_corun
from .experiments.common import ExperimentConfig
from .hw.counters import performance_drop


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=int, default=8,
                        help="platform scale-down factor (default 8)")
    parser.add_argument("--seed", type=int, default=0x5EED)
    parser.add_argument("--warmup", type=int, default=5000,
                        help="warm-up packets per flow")
    parser.add_argument("--measure", type=int, default=1500,
                        help="measured packets per flow")


def _config(args) -> ExperimentConfig:
    return ExperimentConfig(
        scale=args.scale, seed=args.seed,
        solo_warmup=args.warmup, solo_measure=args.measure,
        corun_warmup=args.warmup, corun_measure=args.measure,
    )


def _parse_flows(flows: List[str]) -> List[str]:
    """Expand ``2xMON``-style arguments into flow-name lists."""
    out: List[str] = []
    for token in flows:
        if "x" in token and token.split("x", 1)[0].isdigit():
            count, name = token.split("x", 1)
            out.extend([name] * int(count))
        else:
            out.append(token)
    for name in out:
        if name not in APP_NAMES:
            raise SystemExit(
                f"unknown flow type {name!r}; known: {', '.join(APP_NAMES)}"
            )
    return out


def profile_main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro-profile``."""
    parser = argparse.ArgumentParser(
        description="Solo-profile packet-processing flow types (Table 1).",
        epilog="Flow types: " + "; ".join(
            f"{k}: {v}" for k, v in describe_apps().items()),
    )
    parser.add_argument("apps", nargs="*", default=list(REALISTIC_APPS),
                        help="flow types to profile (default: all realistic)")
    _add_common(parser)
    args = parser.parse_args(argv)
    apps = args.apps or list(REALISTIC_APPS)
    config = _config(args)
    profiles = profile_apps(apps, config.socket_spec(), seed=config.seed,
                            warmup_packets=config.solo_warmup,
                            measure_packets=config.solo_measure)
    rows = [
        [app, f"{p.throughput:,.0f}", f"{p.cycles_per_packet:.0f}",
         f"{p.cycles_per_instruction:.2f}",
         f"{p.l3_refs_per_sec / 1e6:.1f}M", f"{p.l3_hits_per_sec / 1e6:.1f}M"]
        for app, p in profiles.items()
    ]
    print(format_table(
        ["flow", "pkts/sec", "cyc/pkt", "CPI", "L3 refs/s", "L3 hits/s"],
        rows, title=f"Solo profiles (scale 1/{args.scale})",
    ))
    return 0


def predict_main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro-predict``."""
    parser = argparse.ArgumentParser(
        description="Predict per-flow contention drops for a deployment "
                    "sharing one socket.",
    )
    parser.add_argument("flows", nargs="+",
                        help="deployment, e.g. MON 2xVPN FW RE (max 6)")
    parser.add_argument("--validate", action="store_true",
                        help="also simulate the deployment and report errors")
    _add_common(parser)
    args = parser.parse_args(argv)
    flows = _parse_flows(args.flows)
    config = _config(args)
    spec = config.socket_spec()
    if len(flows) > spec.cores_per_socket:
        raise SystemExit(f"at most {spec.cores_per_socket} flows per socket")
    types = sorted(set(flows))
    print(f"profiling {', '.join(types)} and sweeping sensitivity curves...",
          file=sys.stderr)
    predictor = ContentionPredictor.build(
        types, spec, seed=config.seed,
        warmup_packets=config.solo_warmup,
        measure_packets=config.solo_measure,
    )
    measured = {}
    if args.validate:
        placement = [(app, core) for core, app in enumerate(flows)]
        corun = run_corun(placement, spec, seed=config.seed,
                          warmup_packets=config.corun_warmup,
                          measure_packets=config.corun_measure)
        for app, core in placement:
            label = f"{app}@{core}"
            measured[core] = performance_drop(
                predictor.profiles[app].throughput, corun.throughput[label]
            )
    rows = []
    for core, app in enumerate(flows):
        competitors = flows[:core] + flows[core + 1:]
        predicted = predictor.predict_drop(app, competitors)
        row = [f"{app}@{core}", pct(predicted),
               f"{predictor.predict_throughput(app, competitors):,.0f}"]
        if args.validate:
            row.extend([pct(measured[core]), pct(predicted - measured[core])])
        rows.append(row)
    headers = ["flow", "predicted drop", "predicted pkts/sec"]
    if args.validate:
        headers.extend(["measured drop", "error"])
    print(format_table(headers, rows, title="Deployment prediction"))
    return 0


def schedule_main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro-schedule``."""
    parser = argparse.ArgumentParser(
        description="Best/worst flow-to-core placement for a 12-flow "
                    "combination (Section 5 study).",
    )
    parser.add_argument("flows", nargs="+",
                        help="12 flows, e.g. 6xMON 6xFW")
    _add_common(parser)
    args = parser.parse_args(argv)
    flows = _parse_flows(args.flows)
    config = _config(args)
    spec = config.spec()
    if len(flows) != spec.total_cores:
        raise SystemExit(f"need exactly {spec.total_cores} flows")
    types = sorted(set(flows))
    print(f"profiling {', '.join(types)}...", file=sys.stderr)
    profiles = profile_apps(types, spec, seed=config.seed,
                            warmup_packets=config.solo_warmup,
                            measure_packets=config.solo_measure)
    study = PlacementStudy(spec, profiles, seed=config.seed,
                           warmup_packets=config.corun_warmup,
                           measure_packets=config.corun_measure)
    result = study.run(flows, method="simulate")
    print(format_table(
        ["placement", "avg drop"],
        [["best:  " + " | ".join("+".join(g) for g in result.best.split),
          pct(result.best.average_drop)],
         ["worst: " + " | ".join("+".join(g) for g in result.worst.split),
          pct(result.worst.average_drop)]],
        title="Contention-aware scheduling study",
    ))
    print(f"\nmaximum overall gain from placement: "
          f"{pct(result.scheduling_gain)}")
    return 0


def sweep_main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro-sweep``."""
    parser = argparse.ArgumentParser(
        description="Sweep a flow type against SYN competitors of rising "
                    "refs/sec and print its sensitivity curve "
                    "(prediction method, step 2).",
    )
    parser.add_argument("app", choices=sorted(APP_NAMES),
                        help="flow type to sweep")
    parser.add_argument("--competitors", type=int, default=5,
                        help="number of SYN co-runners (default 5)")
    _add_common(parser)
    args = parser.parse_args(argv)
    config = _config(args)
    spec = config.socket_spec()
    print(f"profiling {args.app} and sweeping {args.competitors} SYN "
          "competitors...", file=sys.stderr)
    curve = sweep_sensitivity(
        args.app, spec, seed=config.seed,
        n_competitors=args.competitors,
        warmup_packets=config.solo_warmup,
        measure_packets=config.solo_measure,
    )
    rows = [[f"{refs / 1e6:.1f}M", pct(drop)] for refs, drop in curve.points]
    print(format_table(["competing refs/s", "drop"], rows,
                       title=f"{args.app} sensitivity curve"))
    print()
    print(plot_curve(
        [(refs / 1e6, 100 * drop) for refs, drop in curve.points],
        name=args.app, x_label="competing Mrefs/s", y_label="drop %",
    ))
    print(f"\nturning point (80% of max drop): "
          f"{curve.turning_point() / 1e6:.1f}M refs/s")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(profile_main())
