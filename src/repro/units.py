"""Units and small conversion helpers used throughout the simulator.

All sizes are in bytes, frequencies in hertz, times in seconds unless a
name says otherwise (``_ns`` for nanoseconds, ``_cycles`` for CPU cycles).
Keeping the conversions in one module avoids scattering magic factors.
"""

from __future__ import annotations

KB = 1024
MB = 1024 * KB
GB = 1024 * MB

KHZ = 1_000
MHZ = 1_000_000
GHZ = 1_000_000_000

NS_PER_SEC = 1_000_000_000


def ns_to_cycles(ns: float, freq_hz: float) -> float:
    """Convert a duration in nanoseconds to CPU cycles at ``freq_hz``."""
    return ns * freq_hz / NS_PER_SEC


def cycles_to_ns(cycles: float, freq_hz: float) -> float:
    """Convert CPU cycles at ``freq_hz`` to nanoseconds."""
    return cycles * NS_PER_SEC / freq_hz


def cycles_to_seconds(cycles: float, freq_hz: float) -> float:
    """Convert CPU cycles at ``freq_hz`` to seconds."""
    return cycles / freq_hz


def per_second(count: float, cycles: float, freq_hz: float) -> float:
    """Rate of ``count`` events observed over ``cycles`` cycles, in events/sec.

    Returns 0.0 for an empty observation window rather than dividing by zero,
    because callers aggregate rates from possibly-idle cores.
    """
    if cycles <= 0:
        return 0.0
    return count * freq_hz / cycles


def mega(value: float) -> float:
    """Express ``value`` in millions (for printing refs/sec the way the paper does)."""
    return value / 1e6


def pretty_size(n_bytes: int) -> str:
    """Human-readable byte size, e.g. ``12582912 -> '12.0MB'``."""
    if n_bytes >= GB:
        return f"{n_bytes / GB:.1f}GB"
    if n_bytes >= MB:
        return f"{n_bytes / MB:.1f}MB"
    if n_bytes >= KB:
        return f"{n_bytes / KB:.1f}KB"
    return f"{n_bytes}B"
