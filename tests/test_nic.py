"""NIC model: rings, RSS steering, DMA buffer binding."""

import pytest

from repro.hw.nic import NIC, RxQueue, TxQueue
from repro.mem.allocator import DomainAllocator
from repro.net.packet import Packet


def make_nic(n_queues=2, ring_entries=8):
    return NIC("nic0", DomainAllocator(0), n_queues=n_queues,
               ring_entries=ring_entries)


def pkt(sport=1, dport=2):
    return Packet.udp(src=10, dst=20, sport=sport, dport=dport,
                      payload=b"p" * 30)


def test_rss_is_deterministic_per_flow():
    nic = make_nic()
    p = pkt()
    assert nic.rss_queue(p) == nic.rss_queue(pkt())


def test_rss_spreads_flows():
    nic = make_nic(n_queues=4)
    queues = {nic.rss_queue(pkt(sport=s, dport=d))
              for s in range(20) for d in range(5)}
    assert len(queues) == 4


def test_receive_binds_buffer():
    nic = make_nic()
    p = pkt()
    assert nic.receive(p)
    assert p.buffer is not None
    assert p.buffer.size >= p.wire_length


def test_queue_overflow_drops():
    nic = make_nic(n_queues=1, ring_entries=2)
    assert nic.receive(pkt(sport=1))
    assert nic.receive(pkt(sport=1))
    assert not nic.receive(pkt(sport=1))
    assert nic.dropped == 1
    assert nic.received == 2


def test_rx_queue_pop_order():
    alloc = DomainAllocator(0)
    q = RxQueue("n", 0, alloc, ring_entries=4)
    a, b = pkt(sport=5), pkt(sport=6)
    q.push(a)
    q.push(b)
    assert q.pop() is a
    assert q.pop() is b
    assert q.pop() is None


def test_rx_queue_buffers_recycle():
    alloc = DomainAllocator(0)
    q = RxQueue("n", 0, alloc, ring_entries=2)
    a = pkt()
    q.push(a)
    first_buffer = a.buffer
    q.pop()
    b = pkt()
    q.push(b)
    c = pkt()
    q.push(c)
    assert c.buffer is first_buffer  # slot reused after pop


def test_tx_queue_accounts_bytes():
    alloc = DomainAllocator(0)
    tx = TxQueue("n", 0, alloc)
    p = pkt()
    tx.push(p)
    assert tx.sent == 1
    assert tx.bytes_sent == p.wire_length


def test_validation():
    alloc = DomainAllocator(0)
    with pytest.raises(ValueError):
        RxQueue("n", 0, alloc, ring_entries=0)
    with pytest.raises(ValueError):
        NIC("n", alloc, n_queues=0)


def test_regions_are_allocated_per_queue():
    nic = make_nic(n_queues=2, ring_entries=4)
    r0 = nic.rx_queues[0].descriptor_ring
    r1 = nic.rx_queues[1].descriptor_ring
    assert not r0.overlaps(r1)
