"""Region geometry."""

import pytest

from repro.mem.region import Region


def make(base=0, size=256, domain=0, name="r"):
    return Region(name=name, base=base, size=size, domain=domain)


def test_basic_properties():
    r = make(base=128, size=256)
    assert r.end == 384
    assert r.n_lines == 4


def test_rejects_nonpositive_size():
    with pytest.raises(ValueError):
        make(size=0)
    with pytest.raises(ValueError):
        make(size=-64)


def test_rejects_unaligned_base():
    with pytest.raises(ValueError):
        make(base=17)


def test_addr_bounds():
    r = make(size=128)
    assert r.addr(0) == 0
    assert r.addr(127) == 127
    with pytest.raises(IndexError):
        r.addr(128)
    with pytest.raises(IndexError):
        r.addr(-1)


def test_line_of_offset():
    r = make(base=256, size=256)
    assert r.line(0) == 4
    assert r.line(63) == 4
    assert r.line(64) == 5


def test_lines_span():
    r = make(base=0, size=512)
    assert list(r.lines(0, 1)) == [0]
    assert list(r.lines(60, 8)) == [0, 1]
    assert list(r.lines(64, 128)) == [1, 2]


def test_lines_rejects_bad_length():
    r = make(size=128)
    with pytest.raises(ValueError):
        r.lines(0, 0)


def test_lines_rejects_overrun():
    r = make(size=128)
    with pytest.raises(IndexError):
        list(r.lines(64, 65))


def test_overlaps():
    a = make(base=0, size=128)
    b = make(base=64, size=128)
    c = make(base=128, size=64)
    assert a.overlaps(b)
    assert b.overlaps(a)
    assert not a.overlaps(c)


def test_n_lines_rounds_up():
    r = make(size=65)
    assert r.n_lines == 2
