"""Golden regression tests: seed-pinned figure reports must not drift.

The committed ``golden_<name>.json`` files are RunReport documents for
fig2/fig5/fig8 at a pinned small configuration. Any engine or model
change that shifts the paper's curves — even in the last float digit —
fails here and forces a deliberate regen (``tests/golden/regen.py``)
whose diff is reviewed like any other code change.

The batch engine is held to the same goldens: it must land on the
byte-identical reports the scalar oracle produced.
"""

from __future__ import annotations

import json
import os

import pytest

import repro.fastpath as fastpath

from . import builders

GOLDEN_DIR = os.path.dirname(os.path.abspath(__file__))


def golden_path(name: str) -> str:
    return os.path.join(GOLDEN_DIR, f"golden_{name}.json")


@pytest.fixture(scope="module")
def fresh_reports():
    return builders.build_reports()


@pytest.fixture(scope="module")
def fresh_reports_batch():
    fastpath.clear_stream_cache()
    with fastpath.use_engine("batch"):
        return builders.build_reports()


def test_goldens_exist_and_parse():
    for name in builders.GOLDEN_NAMES:
        path = golden_path(name)
        assert os.path.exists(path), (
            f"missing {path}; run PYTHONPATH=src python tests/golden/regen.py")
        with open(path) as fh:
            doc = json.load(fh)
        assert doc["kind"] == f"golden-{name}"
        assert doc["seed"] == builders.GOLDEN_CONFIG.seed
        assert doc["scale"] == builders.GOLDEN_CONFIG.scale
        assert doc["results"], f"{name}: empty results payload"


@pytest.mark.parametrize("name", builders.GOLDEN_NAMES)
def test_report_byte_stable(name, fresh_reports):
    with open(golden_path(name)) as fh:
        committed = fh.read()
    fresh = fresh_reports[name]
    assert builders.normalize(fresh) == builders.normalize(committed), (
        f"{name} drifted from its golden; if intentional, regenerate with "
        f"PYTHONPATH=src python tests/golden/regen.py and review the diff")
    # Normalization currently strips nothing (no timestamps in RunReport),
    # so the raw bytes must agree too.
    assert fresh == committed


@pytest.mark.parametrize("name", builders.GOLDEN_NAMES)
def test_batch_engine_matches_goldens(name, fresh_reports_batch):
    with open(golden_path(name)) as fh:
        committed = fh.read()
    assert builders.normalize(fresh_reports_batch[name]) == \
        builders.normalize(committed), (
        f"{name}: batch engine diverged from the scalar-produced golden")
