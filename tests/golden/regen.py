#!/usr/bin/env python
"""Regenerate the committed golden reports.

Usage (from the repository root)::

    PYTHONPATH=src python tests/golden/regen.py

Rewrites ``tests/golden/golden_<name>.json`` for every golden figure.
Only run this when a change *intends* to move the paper's numbers; the
diff of the regenerated files is the review artifact.
"""

from __future__ import annotations

import os
import sys

try:
    from . import builders
except ImportError:  # executed as a script, not a package module
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    import builders  # type: ignore[no-redef]


def main() -> int:
    out_dir = os.path.dirname(os.path.abspath(__file__))
    for name, text in builders.build_reports().items():
        path = os.path.join(out_dir, f"golden_{name}.json")
        with open(path, "w") as fh:
            fh.write(text)
        print(f"wrote {path} ({len(text)} bytes)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
