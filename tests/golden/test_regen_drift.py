"""The regen script itself must reproduce the committed goldens.

``tests/golden/regen.py --out DIR`` writes fresh golden reports into a
scratch directory; every file must be byte-identical to its committed
counterpart. This guards the *tooling* as well as the model: a regen
script that drifted from the builders (different serialization, missing
figure, stale path) would silently break the "regen and review the diff"
workflow the goldens depend on.
"""

from __future__ import annotations

import os

from . import regen

GOLDEN_DIR = os.path.dirname(os.path.abspath(__file__))


def test_regen_reproduces_committed_goldens_byte_for_byte(tmp_path):
    written = regen.regen(str(tmp_path), quiet=True)
    assert written, "regen produced no reports"
    for fresh_path in written:
        name = os.path.basename(fresh_path)
        committed_path = os.path.join(GOLDEN_DIR, name)
        assert os.path.exists(committed_path), (
            f"regen produced {name}, but no such golden is committed — "
            f"run tests/golden/regen.py and commit the result")
        with open(fresh_path, "rb") as fh:
            fresh = fh.read()
        with open(committed_path, "rb") as fh:
            committed = fh.read()
        assert fresh == committed, (
            f"{name}: regenerated report differs from the committed "
            f"golden ({len(fresh)} vs {len(committed)} bytes)")


def test_regen_covers_every_committed_golden(tmp_path):
    written = {os.path.basename(p) for p in regen.regen(str(tmp_path),
                                                        quiet=True)}
    committed = {name for name in os.listdir(GOLDEN_DIR)
                 if name.startswith("golden_") and name.endswith(".json")}
    assert committed <= written, (
        f"committed goldens not regenerated: {sorted(committed - written)}")
