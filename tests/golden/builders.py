"""Deterministic builders for the golden regression reports.

One seed-pinned, small-scale configuration drives fig2/fig5/fig8; the
resulting :class:`~repro.obs.report.RunReport` JSON documents are
committed next to this module and asserted byte-stable (modulo
timestamp-like keys) by ``test_golden.py``. Regenerate deliberately
with::

    PYTHONPATH=src python tests/golden/regen.py

The builders share one fig2 run (profiles + SYN sweeps) exactly the way
``benchmarks/record.py`` memoizes prerequisites, so a regen costs a few
seconds, not a full paper reproduction.
"""

from __future__ import annotations

from typing import Dict

from repro.core.prediction import ContentionPredictor, sweep_sensitivity
from repro.core.profiler import profile_apps
from repro.experiments import fig2, fig5, fig8
from repro.experiments.common import ExperimentConfig
from repro.obs.recorder import _jsonable
from repro.obs.report import RunReport

#: Three apps span the interesting contention range (IP sensitive,
#: MON aggressive, FW cheap) while keeping the regen to seconds.
GOLDEN_APPS = ("IP", "MON", "FW")

GOLDEN_CONFIG = ExperimentConfig(
    scale=64, seed=20120425,
    solo_warmup=200, solo_measure=300,
    corun_warmup=120, corun_measure=200,
)

GOLDEN_NAMES = ("fig2", "fig5", "fig8")

#: Keys that may legitimately differ between regenerations.
VOLATILE_KEYS = frozenset(
    {"timestamp", "generated_at", "seconds", "elapsed", "wall_seconds"})


def _report(kind: str, results: dict) -> RunReport:
    report = RunReport.new(kind, spec=GOLDEN_CONFIG.socket_spec(),
                           config=GOLDEN_CONFIG,
                           command="tests/golden/regen.py")
    report.results.update(_jsonable(results))
    return report


def build_reports() -> Dict[str, str]:
    """name -> RunReport JSON text for every golden figure."""
    config = GOLDEN_CONFIG
    spec = config.socket_spec()
    profiles = profile_apps(GOLDEN_APPS, spec, seed=config.seed,
                            warmup_packets=config.solo_warmup,
                            measure_packets=config.solo_measure)
    f2 = fig2.run(config, apps=GOLDEN_APPS, profiles=profiles)
    curves = {
        app: sweep_sensitivity(app, spec, seed=config.seed,
                               warmup_packets=config.corun_warmup,
                               measure_packets=config.corun_measure,
                               solo=profiles[app])
        for app in GOLDEN_APPS
    }
    f5 = fig5.run(config, apps=GOLDEN_APPS, fig2_result=f2, curves=curves)
    predictor = ContentionPredictor(profiles=profiles, curves=curves)
    f8 = fig8.run(config, apps=GOLDEN_APPS, fig2_result=f2,
                  predictor=predictor)

    reports = {
        "fig2": _report("golden-fig2", {
            "drops": f2.drops,
            "averages": f2.averages(),
            "max_drop": f2.max_drop(),
            "most_sensitive": f2.most_sensitive(),
            "most_aggressive": f2.most_aggressive(),
        }),
        "fig5": _report("golden-fig5", {
            "curves": {t: c.points for t, c in f5.curves.items()},
            "realistic_points": f5.realistic_points,
            "deviations": {t: f5.deviation(t) for t in f5.curves},
        }),
        "fig8": _report("golden-fig8", {
            "entries": f8.entries,
            "average_abs_error": {
                t: f8.average_abs_error(t) for t in f8.apps},
            "average_abs_error_perfect": {
                t: f8.average_abs_error(t, perfect=True) for t in f8.apps},
            "worst_abs_error": f8.worst_abs_error(),
        }),
    }
    return {name: reports[name].to_json() + "\n" for name in GOLDEN_NAMES}


def normalize(text: str) -> str:
    """Canonical comparison form: parse, drop volatile keys, re-dump.

    The committed goldens carry no timestamps today, but the test
    compares through this filter so adding wall-clock metadata to
    RunReport later does not break byte-stability.
    """
    import json

    def scrub(obj):
        if isinstance(obj, dict):
            return {k: scrub(v) for k, v in obj.items()
                    if k not in VOLATILE_KEYS}
        if isinstance(obj, list):
            return [scrub(v) for v in obj]
        return obj

    return json.dumps(scrub(json.loads(text)), indent=2, sort_keys=True)
