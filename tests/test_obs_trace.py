"""Trace layer: sink plumbing, event ordering, phase markers, sampling."""

import json

import pytest

from repro.apps.registry import app_factory
from repro.hw.machine import Machine
from repro.hw.topology import PlatformSpec
from repro.obs import (
    KIND_MEM,
    KIND_META,
    KIND_PACKET,
    KIND_PHASE,
    NULL_TRACER,
    JsonlSink,
    ListSink,
    Tracer,
    observe,
)

WARM, MEAS = 200, 300


def _spec():
    return PlatformSpec.westmere().scaled(64).single_socket()


def _traced_run(tracer, n_flows=2):
    machine = Machine(_spec(), seed=7, tracer=tracer)
    machine.add_flow(app_factory("MON"), core=0)
    for core in range(1, n_flows):
        machine.add_flow(app_factory("IP"), core=core)
    result = machine.run(warmup_packets=WARM, measure_packets=MEAS)
    return result


def test_events_are_time_ordered_per_flow():
    sink = ListSink()
    _traced_run(Tracer(sink))
    for label in ("MON@0", "IP@1"):
        stamps = [e.ts for e in sink.events
                  if e.flow == label and e.kind == KIND_PACKET]
        assert len(stamps) > MEAS  # warm-up packets are traced too
        assert stamps == sorted(stamps)


def test_run_begin_comes_first_and_carries_platform_meta():
    sink = ListSink()
    _traced_run(Tracer(sink))
    first = sink.events[0]
    assert first.kind == KIND_META
    assert first.name == "run_begin"
    assert first.args["freq_hz"] > 0
    assert len(first.args["flows"]) == 2


def test_phase_markers_bracket_the_measurement_window():
    sink = ListSink()
    _traced_run(Tracer(sink))
    for label in ("MON@0", "IP@1"):
        phases = [e for e in sink.events
                  if e.kind == KIND_PHASE and e.flow == label]
        names = [e.name for e in phases]
        assert names == ["measure_begin", "measure_end"]
        begin, end = phases
        assert begin.ts < end.ts
        # Exactly the measured packets happen between the markers (the
        # per-flow window size comes from the markers themselves: flows
        # scale their packet targets by ``measure_weight``).
        window = end.args["packets"] - begin.args["packets"]
        assert window > 0
        measured = [e for e in sink.events
                    if e.kind == KIND_PACKET and e.flow == label
                    and e.ts >= begin.ts and e.ts + e.dur <= end.ts]
        assert len(measured) == pytest.approx(window, abs=2)


def test_packet_spans_carry_element_attribution():
    sink = ListSink()
    _traced_run(Tracer(sink))
    packet = next(e for e in sink.events if e.kind == KIND_PACKET)
    elements = packet.args["elements"]
    names = [name for name, _, _ in elements]
    assert names[0] == "FromDevice"
    assert names[-1] == "ToDevice"
    assert sum(refs for _, refs, _ in elements) >= 0
    assert all(instr >= 0 for _, _, instr in elements)


def test_packet_sampling_reduces_volume():
    dense, sparse = ListSink(), ListSink()
    _traced_run(Tracer(dense))
    _traced_run(Tracer(sparse, packet_sample=8))
    n_dense = len(dense.by_kind(KIND_PACKET))
    n_sparse = len(sparse.by_kind(KIND_PACKET))
    assert n_sparse < n_dense / 4
    assert n_sparse > 0


def test_mem_events_are_sampled_and_tagged():
    sink = ListSink()
    _traced_run(Tracer(sink, mem_sample=8))
    mem = sink.by_kind(KIND_MEM)
    assert mem  # the scaled MON/IP pair misses often enough
    for event in mem:
        assert event.args["mc_wait"] >= 0
        assert event.args["domain"] == 0  # single-socket platform
        assert event.args["remote"] is False


def test_null_tracer_is_inactive():
    assert not NULL_TRACER.active
    # The engine takes the untraced path: no error, no events.
    result = _traced_run(NULL_TRACER)
    assert result["MON@0"].packets > 0


def test_jsonl_sink_round_trips(tmp_path):
    path = tmp_path / "events.jsonl"
    tracer = Tracer(JsonlSink(str(path)), packet_sample=4)
    _traced_run(tracer)
    tracer.close()
    lines = path.read_text().strip().splitlines()
    events = [json.loads(line) for line in lines]
    assert events[0]["name"] == "run_begin"
    kinds = {e["kind"] for e in events}
    assert {KIND_META, KIND_PHASE, KIND_PACKET} <= kinds


def test_observe_session_attaches_ambient_tracer():
    sink = ListSink()
    with observe(tracer=Tracer(sink)):
        machine = Machine(_spec(), seed=7)
        machine.add_flow(app_factory("IP"), core=0)
        machine.run(warmup_packets=WARM, measure_packets=MEAS)
    assert sink.by_kind(KIND_PACKET)
    # Outside the session, machines are untraced again.
    n = len(sink.events)
    machine = Machine(_spec(), seed=7)
    machine.add_flow(app_factory("IP"), core=0)
    machine.run(warmup_packets=WARM, measure_packets=MEAS)
    assert len(sink.events) == n
