"""Set-associative LRU cache behaviour."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hw.cache import SetAssociativeCache


def small_cache(ways=2, sets=4):
    return SetAssociativeCache(size=ways * sets * 64, ways=ways, name="t")


def test_geometry():
    c = SetAssociativeCache(size=32 * 1024, ways=8)
    assert c.n_sets == 64
    assert c.capacity_lines == 512


def test_non_power_of_two_sets_allowed():
    # The real Westmere L3 (12 MB, 16-way) has 12288 sets.
    c = SetAssociativeCache(size=12 * 1024 * 1024, ways=16)
    assert c.n_sets == 12288


def test_rejects_bad_geometry():
    with pytest.raises(ValueError):
        SetAssociativeCache(size=0, ways=4)
    with pytest.raises(ValueError):
        SetAssociativeCache(size=1000, ways=3)  # not divisible


def test_miss_then_hit():
    c = small_cache()
    assert c.access(10) is False
    assert c.access(10) is True
    assert c.hits == 1 and c.misses == 1


def test_lru_eviction_order():
    c = small_cache(ways=2, sets=1)
    c.access(0)
    c.access(1)
    c.access(0)      # 1 is now LRU
    c.access(2)      # evicts 1
    assert c.probe(0)
    assert c.probe(2)
    assert not c.probe(1)


def test_sets_are_independent():
    c = small_cache(ways=1, sets=4)
    c.access(0)
    c.access(1)
    c.access(2)
    assert c.probe(0) and c.probe(1) and c.probe(2)
    c.access(4)  # maps to set 0, evicts line 0
    assert not c.probe(0)
    assert c.probe(1)


def test_fill_does_not_count_reference():
    c = small_cache()
    evicted = c.fill(5)
    assert evicted is None
    assert c.hits == 0 and c.misses == 0
    assert c.probe(5)


def test_fill_returns_evicted_line():
    c = small_cache(ways=1, sets=1)
    c.fill(0)
    assert c.fill(1) == 0


def test_invalidate():
    c = small_cache()
    c.access(3)
    assert c.invalidate(3)
    assert not c.probe(3)
    assert not c.invalidate(3)


def test_flush():
    c = small_cache()
    for line in range(8):
        c.access(line)
    c.flush()
    assert c.occupancy() == 0
    assert c.hits == 0 and c.misses == 0


def test_occupancy_and_capacity():
    c = small_cache(ways=2, sets=4)
    for line in range(100):
        c.access(line)
    assert c.occupancy() == c.capacity_lines == 8


def test_hit_rate():
    c = small_cache()
    assert c.hit_rate() == 0.0
    c.access(1)
    c.access(1)
    assert c.hit_rate() == pytest.approx(0.5)


def test_resident_lines():
    c = small_cache(ways=2, sets=1)
    c.access(0)
    c.access(1)
    assert sorted(c.resident_lines()) == [0, 1]


@given(st.lists(st.integers(min_value=0, max_value=63), min_size=1,
                max_size=300))
@settings(max_examples=50, deadline=None)
def test_property_occupancy_never_exceeds_capacity(lines):
    c = small_cache(ways=2, sets=4)
    for line in lines:
        c.access(line)
    assert c.occupancy() <= c.capacity_lines
    for s in c.sets:
        assert len(s) <= c.ways
        assert len(set(s)) == len(s)  # no duplicates within a set


@given(st.lists(st.integers(min_value=0, max_value=31), min_size=1,
                max_size=200))
@settings(max_examples=50, deadline=None)
def test_property_most_recent_line_always_resident(lines):
    c = small_cache(ways=2, sets=2)
    for line in lines:
        c.access(line)
        assert c.probe(line)


@given(st.lists(st.integers(min_value=0, max_value=255), min_size=1,
                max_size=400))
@settings(max_examples=30, deadline=None)
def test_property_matches_reference_lru_model(lines):
    """The cache must agree with a straightforward per-set LRU model."""
    ways, sets = 4, 4
    c = small_cache(ways=ways, sets=sets)
    model = {s: [] for s in range(sets)}
    for line in lines:
        s = line % sets
        expect_hit = line in model[s]
        assert c.access(line) == expect_hit
        if expect_hit:
            model[s].remove(line)
        model[s].append(line)
        if len(model[s]) > ways:
            model[s].pop(0)
    for s in range(sets):
        assert c.sets[s] == model[s]
