"""Experiment result objects: aggregation and rendering (no simulation)."""

import pytest

from repro.core.prediction import SensitivityCurve
from repro.core.profiler import SoloProfile
from repro.core.scheduling import PlacementOutcome, StudyResult
from repro.experiments.fig2 import Fig2Result
from repro.experiments.fig4 import Fig4Result, _placement
from repro.experiments.fig5 import Fig5Result
from repro.experiments.fig7 import conversion
from repro.experiments.fig8 import Fig8Result
from repro.experiments.fig9 import Fig9Result
from repro.experiments.fig10 import Fig10Result
from repro.experiments.pipeline_vs_parallel import Comparison, PipelineStudyResult
from repro.experiments.table1 import Table1Result
from repro.hw.topology import PlatformSpec


def profile(app, refs=10e6, hits=7e6, throughput=1e6):
    return SoloProfile(
        app=app, throughput=throughput, cycles_per_instruction=1.2,
        l3_refs_per_sec=refs, l3_hits_per_sec=hits, cycles_per_packet=1000,
        l3_refs_per_packet=8, l3_misses_per_packet=2, l2_hits_per_packet=3,
    )


def test_table1_result_render_and_ordering():
    result = Table1Result(profiles={
        "A": profile("A", refs=20e6), "B": profile("B", refs=5e6),
    })
    out = result.render()
    assert "Table 1" in out and "A" in out and "B" in out
    assert result.ordering("l3_refs_per_sec") == ["A", "B"]


def test_fig2_result_aggregation():
    apps = ("A", "B")
    drops = {("A", "A"): 0.2, ("A", "B"): 0.1,
             ("B", "A"): 0.05, ("B", "B"): 0.01}
    result = Fig2Result(apps=apps, profiles={}, drops=drops, measurements={})
    assert result.average_drop("A") == pytest.approx(0.15)
    assert result.most_sensitive() == "A"
    assert result.most_aggressive() == "A"
    assert result.max_drop() == 0.2
    assert "Figure 2" in result.render()


def test_fig4_placement_geometry():
    spec = PlatformSpec.westmere()
    cores, domain = _placement("cache", spec, 5)
    assert cores == [1, 2, 3, 4, 5] and domain == 1
    cores, domain = _placement("mc", spec, 5)
    assert cores == [6, 7, 8, 9, 10] and domain == 0
    cores, domain = _placement("both", spec, 5)
    assert cores == [1, 2, 3, 4, 5] and domain == 0
    with pytest.raises(ValueError):
        _placement("qpi", spec, 5)
    with pytest.raises(ValueError):
        _placement("cache", spec, 6)


def test_fig4_result_dominance():
    series = {
        ("cache", "A"): [(10e6, 0.1), (50e6, 0.3)],
        ("mc", "A"): [(10e6, 0.01), (50e6, 0.05)],
        ("both", "A"): [(10e6, 0.12), (50e6, 0.32)],
    }
    result = Fig4Result(series=series, profiles={"A": profile("A")})
    assert result.max_drop("cache", "A") == 0.3
    assert result.cache_dominates()
    assert "Fig4[cache] A" in result.render()


def test_fig5_deviation():
    curve = SensitivityCurve("A", [(10e6, 0.1), (100e6, 0.1)])
    result = Fig5Result(
        curves={"A": curve},
        realistic_points={"A": [("B", 50e6, 0.12), ("C", 50e6, 0.08)]},
    )
    assert result.deviation("A") == pytest.approx(0.02)
    assert "A(S)" in result.render() and "A(R)" in result.render()


def test_fig5_deviation_empty():
    result = Fig5Result(curves={"A": SensitivityCurve("A", [(1e6, 0.0)])},
                        realistic_points={"A": []})
    assert result.deviation("A") == 0.0


def test_fig7_conversion_helper():
    assert conversion(0.8, 0.4) == pytest.approx(0.5)
    assert conversion(0.8, 0.9) == 0.0      # clamped: hit rate improved
    assert conversion(0.0, 0.5) == 0.0      # no solo hits to convert
    assert conversion(0.8, 0.0) == 1.0


def test_fig8_error_accounting():
    apps = ("A", "B")
    entries = {
        ("A", "A"): (0.20, 0.23, 0.21),
        ("A", "B"): (0.10, 0.09, 0.10),
        ("B", "A"): (0.05, 0.05, 0.05),
        ("B", "B"): (0.02, 0.03, 0.02),
    }
    result = Fig8Result(apps=apps, entries=entries)
    assert result.error("A", "A") == pytest.approx(0.03)
    assert result.error_perfect("A", "A") == pytest.approx(0.01)
    assert result.average_abs_error("A") == pytest.approx(0.02)
    assert result.average_abs_error("A", perfect=True) == pytest.approx(0.005)
    assert result.worst_abs_error() == pytest.approx(0.03)
    assert "Figure 8" in result.render()


def test_fig9_error_accounting():
    rows = [("MON@0", "MON", 0.10, 0.11), ("FW@4", "FW", 0.01, 0.013)]
    result = Fig9Result(rows=rows)
    assert result.max_abs_error() == pytest.approx(0.01)
    assert result.mean_abs_error() == pytest.approx(0.0065)
    assert "Figure 9" in result.render()


def _outcome(split, avg, drops=None):
    return PlacementOutcome(split=split, per_flow_drop=drops or {},
                            average_drop=avg)


def test_fig10_result_gains():
    study_real = StudyResult([
        _outcome((("MON",) * 6, ("FW",) * 6), 0.15,
                 {"MON@0": 0.27, "FW@6": 0.02}),
        _outcome((("FW", "FW", "FW", "MON", "MON", "MON"),) * 2, 0.13,
                 {"MON@3": 0.21, "FW@0": 0.02}),
    ])
    study_syn = StudyResult([
        _outcome((("SYN_MAX",) * 6, ("FW",) * 6), 0.30),
        _outcome((("FW",) * 6, ("SYN_MAX",) * 6), 0.24),
    ])
    result = Fig10Result(studies={"6MON+6FW": study_real,
                                  "6SYN_MAX+6FW": study_syn})
    assert result.gain("6MON+6FW") == pytest.approx(0.02)
    assert result.max_realistic_gain() == pytest.approx(0.02)
    assert result.gain("6SYN_MAX+6FW") == pytest.approx(0.06)
    out = result.render()
    assert "Figure 10(a)" in out and "Figure 10(b)" in out


def test_study_result_extremes():
    study = StudyResult([
        _outcome((("A",) * 6, ("B",) * 6), 0.2),
        _outcome((("A",) * 3 + ("B",) * 3,) * 2, 0.1),
    ])
    assert study.best.average_drop == 0.1
    assert study.worst.average_drop == 0.2
    assert study.scheduling_gain == pytest.approx(0.1)


def test_pipeline_comparison_math():
    c = Comparison(workload="X", n_stages=2, parallel_pps=100.0,
                   pipeline_pps=160.0, parallel_refs_per_packet=5.0,
                   pipeline_refs_per_packet=17.0)
    assert c.per_core_ratio == pytest.approx(0.8)
    assert c.extra_refs_per_packet == pytest.approx(12.0)
    out = PipelineStudyResult([c]).render()
    assert "parallel" in out and "X" in out
