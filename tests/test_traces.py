"""Zipf and IMIX workload models."""

import random
from collections import Counter

import pytest

from repro.net.traces import IMIX_MIX, IMIXTraffic, ZipfFlowTraffic


@pytest.fixture
def rng():
    return random.Random(99)


def test_zipf_is_skewed(rng):
    src = ZipfFlowTraffic(rng, n_flows=100, alpha=1.2)
    counts = Counter(p.five_tuple() for p in src.take(3000))
    top = counts.most_common(5)
    # The head carries far more than its uniform share (5%).
    head_share = sum(c for _, c in top) / 3000
    assert head_share > 0.25


def test_zipf_alpha_zero_is_uniform(rng):
    src = ZipfFlowTraffic(rng, n_flows=10, alpha=0.0)
    counts = Counter(src.pick_rank() for _ in range(5000))
    shares = [counts[r] / 5000 for r in range(10)]
    assert max(shares) - min(shares) < 0.06


def test_zipf_expected_top_share(rng):
    src = ZipfFlowTraffic(rng, n_flows=50, alpha=1.0)
    assert src.expected_top_share(0) == 0.0
    assert src.expected_top_share(50) == pytest.approx(1.0)
    assert 0 < src.expected_top_share(1) < src.expected_top_share(10) < 1


def test_zipf_expected_share_matches_empirical(rng):
    src = ZipfFlowTraffic(rng, n_flows=20, alpha=1.0)
    counts = Counter(src.pick_rank() for _ in range(20000))
    empirical = sum(counts[r] for r in range(3)) / 20000
    assert empirical == pytest.approx(src.expected_top_share(3), abs=0.05)


def test_zipf_respects_addr_bits(rng):
    src = ZipfFlowTraffic(rng, n_flows=30, addr_bits=20)
    for p in src.take(50):
        assert p.ip.dst < (1 << 20)


def test_zipf_validation(rng):
    with pytest.raises(ValueError):
        ZipfFlowTraffic(rng, n_flows=0)
    with pytest.raises(ValueError):
        ZipfFlowTraffic(rng, n_flows=5, alpha=-1)


def test_imix_sizes_follow_mix(rng):
    src = IMIXTraffic(rng)
    sizes = Counter(len(p.payload) for p in src.take(2400))
    expected = {size for size, _ in IMIX_MIX}
    assert set(sizes) == expected
    # Small packets dominate 7:4:1.
    assert sizes[22] > sizes[552] > sizes[1476]


def test_imix_average_payload(rng):
    src = IMIXTraffic(rng)
    expected = (22 * 7 + 552 * 4 + 1476 * 1) / 12
    assert src.average_payload() == pytest.approx(expected)


def test_imix_wraps_inner_source(rng):
    inner = ZipfFlowTraffic(rng, n_flows=5, alpha=1.0)
    src = IMIXTraffic(rng, inner=inner)
    p = src.next_packet()
    assert len(p.payload) in {22, 552, 1476}
    assert p.ip.total_length == 28 + len(p.payload)
    # The 5-tuple comes from the inner population.
    assert p.five_tuple() in {
        (s, d, 17, sp, dp) for s, d, sp, dp in inner.population
    }


def test_imix_validation(rng):
    with pytest.raises(ValueError):
        IMIXTraffic(rng, mix=())
    with pytest.raises(ValueError):
        IMIXTraffic(rng, mix=((10, 0),))
    with pytest.raises(ValueError):
        IMIXTraffic(rng, mix=((-1, 2),))
