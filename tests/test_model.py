"""Appendix A cache-sharing model."""

import pytest

from repro.core.model import CacheModel


def make_model(cache_lines=196_608, hits=21e6, chunks=50_000):
    return CacheModel(cache_lines=cache_lines, target_hits_per_sec=hits,
                      working_set_chunks=chunks)


def test_no_competition_no_conversion():
    m = make_model()
    assert m.conversion_rate(0.0) == pytest.approx(0.0, abs=1e-9)
    assert m.hit_probability(0.0) == pytest.approx(1.0)


def test_conversion_increases_with_competition():
    m = make_model()
    rates = [m.conversion_rate(r) for r in (1e6, 10e6, 50e6, 200e6)]
    assert rates == sorted(rates)
    assert all(0.0 <= r <= 1.0 for r in rates)


def test_paper_shape_sharp_rise_then_flatten():
    """The slope at low competition far exceeds the slope past the knee."""
    m = make_model()
    early = m.conversion_rate(20e6) - m.conversion_rate(0.0)
    late = m.conversion_rate(270e6) - m.conversion_rate(250e6)
    assert early > 10 * late


def test_p_ev_is_inverse_cache_size():
    m = make_model(cache_lines=1000)
    assert m.p_ev == pytest.approx(1e-3)


def test_p_t_behaviour():
    m = make_model()
    assert m.p_t(0.0) == pytest.approx(1.0)
    assert 0.0 < m.p_t(50e6) < 1.0
    # More competition -> smaller chance the next ref is the target's.
    assert m.p_t(100e6) < m.p_t(10e6)


def test_bigger_cache_converts_less():
    small = make_model(cache_lines=10_000)
    big = make_model(cache_lines=1_000_000)
    assert big.conversion_rate(50e6) < small.conversion_rate(50e6)


def test_faster_target_resists_conversion():
    slow = make_model(hits=1e6)
    fast = make_model(hits=100e6)
    assert fast.conversion_rate(50e6) < slow.conversion_rate(50e6)


def test_estimated_drop_bounded_by_worst_case():
    from repro.core.equation1 import worst_case_drop

    m = make_model()
    drop = m.estimated_drop(100e6)
    assert 0.0 < drop <= worst_case_drop(m.target_hits_per_sec) + 1e-9


def test_curve_helper():
    m = make_model()
    pts = m.curve([0.0, 1e6, 2e6])
    assert len(pts) == 3
    assert pts[0][1] <= pts[1][1] <= pts[2][1]


def test_validation():
    with pytest.raises(ValueError):
        CacheModel(cache_lines=0, target_hits_per_sec=1, working_set_chunks=1)
    with pytest.raises(ValueError):
        CacheModel(cache_lines=10, target_hits_per_sec=-1,
                   working_set_chunks=1)
    with pytest.raises(ValueError):
        CacheModel(cache_lines=10, target_hits_per_sec=1,
                   working_set_chunks=0)
    m = make_model()
    with pytest.raises(ValueError):
        m.p_t(-1.0)
