"""Platform topology and scaling."""

import pytest

from repro import constants as C
from repro.hw.topology import PlatformSpec


def test_westmere_matches_paper_platform():
    spec = PlatformSpec.westmere()
    assert spec.n_sockets == 2
    assert spec.cores_per_socket == 6
    assert spec.total_cores == 12
    assert spec.l3_size == 12 * 1024 * 1024
    assert spec.l1_size == 32 * 1024
    assert spec.l2_size == 256 * 1024
    assert spec.freq_hz == pytest.approx(2.8e9)


def test_socket_of_core():
    spec = PlatformSpec.westmere()
    assert spec.socket_of(0) == 0
    assert spec.socket_of(5) == 0
    assert spec.socket_of(6) == 1
    assert spec.socket_of(11) == 1
    with pytest.raises(ValueError):
        spec.socket_of(12)
    with pytest.raises(ValueError):
        spec.socket_of(-1)


def test_cores_of_socket():
    spec = PlatformSpec.westmere()
    assert list(spec.cores_of_socket(0)) == [0, 1, 2, 3, 4, 5]
    assert list(spec.cores_of_socket(1)) == [6, 7, 8, 9, 10, 11]
    with pytest.raises(ValueError):
        spec.cores_of_socket(2)


def test_scaled_divides_caches_jointly():
    spec = PlatformSpec.westmere().scaled(8)
    assert spec.l1_size == 4 * 1024
    assert spec.l2_size == 32 * 1024
    assert spec.l3_size == 1536 * 1024
    assert spec.scale == 8


def test_scaled_composes():
    spec = PlatformSpec.westmere().scaled(4).scaled(2)
    assert spec.scale == 8
    assert spec.l3_size == PlatformSpec.westmere().scaled(8).l3_size


def test_scaled_identity():
    spec = PlatformSpec.westmere()
    assert spec.scaled(1) is spec


def test_scaled_rejects_collapse():
    with pytest.raises(ValueError):
        PlatformSpec.westmere().scaled(100)
    with pytest.raises(ValueError):
        PlatformSpec.westmere().scaled(0)


def test_scale_table_and_bytes():
    spec = PlatformSpec.westmere().scaled(8)
    assert spec.scale_table(128_000) == 16_000
    assert spec.scale_table(10, minimum=16) == 16
    assert spec.scale_bytes(64 * 1024 * 1024) == 8 * 1024 * 1024


def test_address_bits_shrinks_with_scale():
    assert PlatformSpec.westmere().address_bits == 32
    assert PlatformSpec.westmere().scaled(8).address_bits == 29
    assert PlatformSpec.westmere().scaled(16).address_bits == 28


def test_l3_lines():
    spec = PlatformSpec.westmere()
    assert spec.l3_lines == 12 * 1024 * 1024 // 64


def test_dram_latency():
    spec = PlatformSpec.westmere()
    assert spec.dram_latency == pytest.approx(spec.lat_l3 + spec.lat_dram_extra)
    assert spec.dram_latency > 150


def test_single_socket():
    spec = PlatformSpec.westmere().single_socket()
    assert spec.n_sockets == 1
    assert spec.total_cores == 6


def test_rejects_inverted_hierarchy():
    with pytest.raises(ValueError):
        PlatformSpec(l1_size=1024 * 1024, l2_size=256 * 1024)
