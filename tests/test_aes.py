"""AES-128 against the FIPS-197 / SP 800-38A vectors."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.aes import AES128, aes_ctr_keystream, ctr_crypt


def test_fips197_appendix_b():
    key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    plaintext = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
    expected = bytes.fromhex("3925841d02dc09fbdc118597196a0b32")
    assert AES128(key).encrypt_block(plaintext) == expected


def test_fips197_appendix_c1():
    key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
    plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
    expected = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
    cipher = AES128(key)
    assert cipher.encrypt_block(plaintext) == expected
    assert cipher.decrypt_block(expected) == plaintext


def test_sp800_38a_ecb_vectors():
    key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    cipher = AES128(key)
    vectors = [
        ("6bc1bee22e409f96e93d7e117393172a",
         "3ad77bb40d7a3660a89ecaf32466ef97"),
        ("ae2d8a571e03ac9c9eb76fac45af8e51",
         "f5d3d58503b9699de785895a96fdbaaf"),
        ("30c81c46a35ce411e5fbc1191a0a52ef",
         "43b1cd7f598ece23881b00e3ed030688"),
        ("f69f2445df4f9b17ad2b417be66c3710",
         "7b0c785e27e8ad3f8223207104725dd4"),
    ]
    for pt_hex, ct_hex in vectors:
        assert cipher.encrypt_block(bytes.fromhex(pt_hex)) == \
            bytes.fromhex(ct_hex)


def test_sp800_38a_ctr_vector():
    # SP 800-38A F.5.1 CTR-AES128.Encrypt, first block.
    key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    counter_block = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff")
    plaintext = bytes.fromhex("6bc1bee22e409f96e93d7e117393172a")
    expected = bytes.fromhex("874d6191b620e3261bef6864990db6ce")
    ks = AES128(key).encrypt_block(counter_block)
    ct = bytes(a ^ b for a, b in zip(plaintext, ks))
    assert ct == expected


def test_key_length_validated():
    with pytest.raises(ValueError):
        AES128(b"short")


def test_block_length_validated():
    cipher = AES128(b"\x00" * 16)
    with pytest.raises(ValueError):
        cipher.encrypt_block(b"\x00" * 15)
    with pytest.raises(ValueError):
        cipher.decrypt_block(b"\x00" * 17)


@given(key=st.binary(min_size=16, max_size=16),
       block=st.binary(min_size=16, max_size=16))
@settings(max_examples=30, deadline=None)
def test_property_decrypt_inverts_encrypt(key, block):
    cipher = AES128(key)
    assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


@given(key=st.binary(min_size=16, max_size=16),
       data=st.binary(max_size=200),
       nonce=st.integers(min_value=0, max_value=2**64 - 1))
@settings(max_examples=20, deadline=None)
def test_property_ctr_is_symmetric(key, data, nonce):
    cipher = AES128(key)
    ct = ctr_crypt(cipher, nonce, 0, data)
    assert ctr_crypt(cipher, nonce, 0, ct) == data
    if data:
        assert ct != data or len(data) == 0 or True  # keystream may be weak only by chance


def test_ctr_keystream_length_and_determinism():
    cipher = AES128(b"\x01" * 16)
    ks1 = aes_ctr_keystream(cipher, nonce=5, counter0=0, n_bytes=33)
    ks2 = aes_ctr_keystream(cipher, nonce=5, counter0=0, n_bytes=33)
    assert len(ks1) == 33
    assert ks1 == ks2
    ks3 = aes_ctr_keystream(cipher, nonce=6, counter0=0, n_bytes=33)
    assert ks3 != ks1


def test_ctr_keystream_rejects_negative():
    with pytest.raises(ValueError):
        aes_ctr_keystream(AES128(b"\x00" * 16), 0, 0, -1)


def test_avalanche():
    cipher = AES128(b"\x00" * 16)
    a = cipher.encrypt_block(b"\x00" * 16)
    b = cipher.encrypt_block(b"\x00" * 15 + b"\x01")
    differing = sum(bin(x ^ y).count("1") for x, y in zip(a, b))
    assert differing > 30  # roughly half of 128 bits flip
