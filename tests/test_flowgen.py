"""Traffic generators."""

import random

import pytest

from repro.net.flowgen import (
    FlowPopulationTraffic,
    RedundantTraffic,
    ReplaySource,
    UniformRandomTraffic,
)


def test_uniform_random_varies_addresses(rng):
    src = UniformRandomTraffic(rng, payload_bytes=64)
    packets = src.take(50)
    assert len({p.ip.dst for p in packets}) > 40
    assert all(len(p.payload) == 64 for p in packets)


def test_uniform_random_respects_addr_bits(rng):
    src = UniformRandomTraffic(rng, addr_bits=20)
    for p in src.take(100):
        assert p.ip.dst < (1 << 20)
        assert p.ip.src < (1 << 20)


def test_population_draws_from_fixed_set(rng):
    src = FlowPopulationTraffic(rng, n_flows=10)
    tuples = {p.five_tuple() for p in src.take(500)}
    assert len(tuples) <= 10
    assert len(tuples) >= 8  # nearly all flows seen


def test_population_rejects_empty(rng):
    with pytest.raises(ValueError):
        FlowPopulationTraffic(rng, n_flows=0)


def test_redundant_traffic_repeats_content(rng):
    src = RedundantTraffic(rng, redundancy=0.8, payload_bytes=32)
    payloads = [p.payload for p in src.take(300)]
    distinct = len(set(payloads))
    assert distinct < 150  # heavy reuse
    assert all(len(pl) == 32 for pl in payloads)


def test_redundant_traffic_zero_redundancy(rng):
    src = RedundantTraffic(rng, redundancy=0.0, payload_bytes=32)
    payloads = [p.payload for p in src.take(100)]
    assert len(set(payloads)) == 100


def test_redundant_rejects_bad_fraction(rng):
    with pytest.raises(ValueError):
        RedundantTraffic(rng, redundancy=1.5)


def test_replay_cycles(rng):
    base = UniformRandomTraffic(rng).take(5)
    src = ReplaySource(base, cycle=True)
    replayed = src.take(12)
    assert replayed[0] is base[0]
    assert replayed[5] is base[0]
    assert replayed[11] is base[1]


def test_replay_exhausts_when_not_cycling(rng):
    src = ReplaySource(UniformRandomTraffic(rng).take(3), cycle=False)
    src.take(3)
    with pytest.raises(StopIteration):
        src.next_packet()


def test_replay_rejects_empty():
    with pytest.raises(ValueError):
        ReplaySource([])


def test_replay_from_sources(rng):
    a = UniformRandomTraffic(rng)
    b = FlowPopulationTraffic(rng, n_flows=3)
    src = ReplaySource.from_sources([a, b], n_each=4)
    assert len(src.packets) == 8


def test_sources_are_deterministic_per_seed():
    def dsts(seed):
        src = UniformRandomTraffic(random.Random(seed))
        return [p.ip.dst for p in src.take(20)]

    assert dsts(9) == dsts(9)
    assert dsts(9) != dsts(10)


def test_iteration_protocol(rng):
    src = UniformRandomTraffic(rng)
    it = iter(src)
    assert next(it).wire_length > 0
