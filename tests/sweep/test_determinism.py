"""Determinism tests: sharded sweeps are byte-identical to serial runs.

The guarantee under test is the subsystem's contract: for any job count,
shard completion order, and cache state, the merged figure results — and
the run reports built from them — serialize to exactly the same bytes as
a ``--jobs 1`` (or legacy serial) run, on both execution engines. Only
the ``execution`` key of a report (parallelism, cache counters,
wall-clock) may differ.
"""

from __future__ import annotations

import contextlib
import io
import json

import pytest

import repro.fastpath as fastpath
from repro.experiments import fig2, fig6, multiflow
from repro.experiments.common import ExperimentConfig
from repro.obs.recorder import _jsonable
from repro.sweep import MemoryCache, SweepOptions, SweepRunner, run_figure

pytestmark = pytest.mark.sweep

#: Small-but-real configuration: full code paths, few packets.
CONFIG = ExperimentConfig(scale=64, solo_warmup=150, solo_measure=150,
                          corun_warmup=120, corun_measure=120)
APPS = ("MON", "FW")
MIXES = (("MON", "FW"),)

ENGINES = ("scalar", "batch")


def _strip_handles(obj):
    """Drop the one non-data field of a figure result: the live
    ``CoRunMeasurement.result`` simulation handle, whose repr embeds a
    memory address (volatile even between two identical serial runs) and
    which deliberately does not cross the worker boundary."""
    if isinstance(obj, dict):
        return {k: _strip_handles(v) for k, v in obj.items()
                if k != "result"}
    if isinstance(obj, (list, tuple)):
        return [_strip_handles(v) for v in obj]
    return obj


def canon(obj) -> str:
    """Byte-exact serialized form used for equality (sorted, lossless)."""
    return json.dumps(_strip_handles(_jsonable(obj)), sort_keys=True,
                      default=str)


def serial_result(name: str, engine: str):
    with fastpath.use_engine(engine):
        if name == "fig2":
            return fig2.run(CONFIG, apps=APPS)
        if name == "fig6":
            return fig6.run(CONFIG, apps=APPS)
        if name == "multiflow":
            return multiflow.run(CONFIG, mixes=MIXES)
        raise KeyError(name)


def sharded_result(name: str, engine: str, jobs: int, cache=None):
    runner = SweepRunner(SweepOptions(jobs=jobs, engine=engine, cache=cache))
    kwargs = {"mixes": MIXES} if name == "multiflow" else {"apps": APPS}
    return run_figure(name, CONFIG, runner=runner, **kwargs)


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("name", ("fig2", "fig6", "multiflow"))
def test_jobs4_matches_serial(name, engine):
    serial = canon(serial_result(name, engine))
    parallel = canon(sharded_result(name, engine, jobs=4))
    assert parallel == serial


@pytest.mark.parametrize("name", ("fig6", "multiflow"))
def test_cached_rerun_matches_serial(name):
    """A warm cache changes nothing but the work done."""
    cache = MemoryCache()
    serial = canon(serial_result(name, "scalar"))
    cold = canon(sharded_result(name, "scalar", jobs=2, cache=cache))
    warm = canon(sharded_result(name, "scalar", jobs=2, cache=cache))
    assert cold == serial
    assert warm == serial
    assert cache.stats["hits"] > 0


def test_jobs1_sharded_matches_serial():
    """The inline (no-subprocess) sweep path is the same arithmetic too."""
    assert canon(sharded_result("fig6", "scalar", jobs=1)) \
        == canon(serial_result("fig6", "scalar"))


def _sweep_report(extra_args) -> dict:
    from repro.cli import sweep_main

    out = io.StringIO()
    with contextlib.redirect_stdout(out), \
            contextlib.redirect_stderr(io.StringIO()):
        rc = sweep_main(["MON", "--scale", "64", "--warmup", "150",
                         "--measure", "150", "--json"] + extra_args)
    assert rc == 0
    return json.loads(out.getvalue())


def test_cli_run_report_identical_modulo_execution():
    """``repro-sweep --jobs 4 --json`` == ``--jobs 1`` except ``execution``."""
    serial = _sweep_report([])
    parallel = _sweep_report(["--jobs", "4", "--no-cache"])
    # Serial reports carry no execution key at all (byte-stable schema).
    assert "execution" not in serial
    assert parallel.pop("execution")["sweep"]["jobs"] == 4
    assert json.dumps(serial, sort_keys=True) \
        == json.dumps(parallel, sort_keys=True)
