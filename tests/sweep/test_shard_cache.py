"""Unit tests for shard identity and the content-addressed result cache."""

from __future__ import annotations

import json
import os

import pytest

from repro.sweep import (MemoryCache, ResultCache, Shard, canonical_json,
                        code_version, shard_key)
from repro.sweep.cache import FILE_SCHEMA
from repro.sweep.shard import payload_digest


# -- canonical form -----------------------------------------------------------

def test_canonical_json_is_order_independent():
    a = canonical_json({"b": 1, "a": [1, 2, {"y": 0, "x": 9}]})
    b = canonical_json({"a": [1, 2, {"x": 9, "y": 0}], "b": 1})
    assert a == b


def test_canonical_json_rejects_nan():
    with pytest.raises(ValueError):
        canonical_json({"v": float("nan")})


def test_canonical_json_round_trips_floats():
    values = [0.1, 1e300, 5.0, -7.25, 43.75e-9]
    assert json.loads(canonical_json(values)) == values


# -- shard keys ---------------------------------------------------------------

def test_shard_key_stable_and_sensitive():
    params = {"app": "MON", "seed": 1, "warmup": 10}
    base = shard_key("profile", params, "scalar", "abc")
    assert base == shard_key("profile", dict(params), "scalar", "abc")
    assert base != shard_key("corun", params, "scalar", "abc")
    assert base != shard_key("profile", {**params, "seed": 2}, "scalar", "abc")
    assert base != shard_key("profile", params, "batch", "abc")
    assert base != shard_key("profile", params, "scalar", "def")


def test_shard_key_ignores_param_order():
    assert (shard_key("t", {"a": 1, "b": 2}, "scalar", "c")
            == shard_key("t", {"b": 2, "a": 1}, "scalar", "c"))


def test_shard_tag_does_not_affect_key():
    a = Shard("profile", {"app": "MON"}, tag="one")
    b = Shard("profile", {"app": "MON"}, tag="two")
    assert a.key("scalar", "c") == b.key("scalar", "c")


def test_code_version_is_memoized_and_stable():
    v1 = code_version()
    v2 = code_version()
    v3 = code_version(refresh=True)
    assert v1 == v2 == v3
    assert len(v1) == 16
    int(v1, 16)  # hex


# -- memory cache -------------------------------------------------------------

def test_memory_cache_round_trip_returns_copies():
    cache = MemoryCache()
    payload = {"rows": [1, 2], "name": "x"}
    cache.put("k", payload)
    first = cache.get("k")
    assert first == payload
    first["rows"].append(99)
    assert cache.get("k") == payload  # caller mutation did not leak back
    assert cache.get("absent") is None
    assert cache.stats == {"hits": 2, "misses": 1, "corrupt": 0, "writes": 1}
    assert len(cache) == 1


# -- disk cache ---------------------------------------------------------------

def test_result_cache_round_trip(tmp_path):
    cache = ResultCache(str(tmp_path))
    payload = {"competing": 1.5e7, "target_pps": 2.0e6}
    cache.put("ab" * 32, payload)
    assert cache.get("ab" * 32) == payload
    assert cache.get("cd" * 32) is None
    assert len(cache) == 1
    assert cache.stats["hits"] == 1
    assert cache.stats["misses"] == 1
    assert cache.stats["corrupt"] == 0


def test_result_cache_detects_truncation(tmp_path):
    cache = ResultCache(str(tmp_path))
    key = "12" * 32
    cache.put(key, {"value": list(range(100))})
    path = cache.path(key)
    size = os.path.getsize(path)
    with open(path, "r+") as fh:
        fh.truncate(size // 2)
    assert cache.get(key) is None
    assert cache.stats["corrupt"] == 1


def test_result_cache_detects_payload_tampering(tmp_path):
    cache = ResultCache(str(tmp_path))
    key = "34" * 32
    cache.put(key, {"value": 1})
    path = cache.path(key)
    with open(path) as fh:
        doc = json.load(fh)
    doc["payload"]["value"] = 2  # hash no longer matches
    with open(path, "w") as fh:
        json.dump(doc, fh)
    assert cache.get(key) is None
    assert cache.stats["corrupt"] == 1


def test_result_cache_rejects_wrong_key_and_schema(tmp_path):
    cache = ResultCache(str(tmp_path))
    key = "56" * 32
    other = "78" * 32
    payload = {"v": 3}
    # A file copied to the wrong key's path must not be served.
    cache.put(other, payload)
    os.makedirs(os.path.dirname(cache.path(key)), exist_ok=True)
    os.replace(cache.path(other), cache.path(key))
    assert cache.get(key) is None
    assert cache.stats["corrupt"] == 1
    # An unknown schema marker is corrupt too.
    doc = {"schema": FILE_SCHEMA + "-not", "key": key,
           "payload_sha256": payload_digest(payload), "payload": payload}
    with open(cache.path(key), "w") as fh:
        json.dump(doc, fh)
    assert cache.get(key) is None
    assert cache.stats["corrupt"] == 2


def test_result_cache_put_is_atomic_no_temp_left(tmp_path):
    cache = ResultCache(str(tmp_path))
    cache.put("9a" * 32, {"v": 1})
    leftovers = [n for _, _, names in os.walk(tmp_path) for n in names
                 if n.startswith(".tmp-")]
    assert leftovers == []
