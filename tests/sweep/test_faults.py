"""Fault-injection tests: the orchestrator survives misbehaving shards.

Every scenario uses the ``fault`` task, which misbehaves (raise / hang /
SIGKILL) for a configurable number of attempts coordinated through
on-disk marker files — the only mechanism that survives a SIGKILL'd
worker process. Assertions cover the merged results (correct payloads in
input order despite the chaos) and the execution stats (retry / kill /
quarantine counters).
"""

from __future__ import annotations

import pytest

from repro.sweep import (MemoryCache, ResultCache, Shard, SweepError,
                        SweepOptions, SweepRunner)


def fault_shard(token, mode="ok", fail_times=0, state_dir=None, value=None,
                **extra):
    params = {"mode": mode, "fail_times": fail_times, "token": token,
              "value": value}
    if state_dir is not None:
        params["state_dir"] = str(state_dir)
    params.update(extra)
    return Shard("fault", params, tag=f"fault:{token}")


def run(shards, **options):
    return SweepRunner(SweepOptions(**options)).run(shards)


# -- raising workers ----------------------------------------------------------

def test_raising_shard_is_retried_to_success(tmp_path):
    shards = [
        fault_shard("good", value=1),
        fault_shard("flaky", mode="raise", fail_times=1,
                    state_dir=tmp_path, value=2),
    ]
    outcome = run(shards, jobs=2, retries=2, backoff=0.01)
    outcome.raise_for_quarantine()
    assert [r.payload["value"] for r in outcome.results] == [1, 2]
    flaky = outcome.results[1]
    assert flaky.attempts == 2
    assert outcome.stats["retries"] == 1
    assert outcome.stats["quarantined"] == 0
    # A raising worker reports and keeps serving; nobody is killed.
    assert outcome.stats["workers_killed"] == 0


def test_poison_shard_is_quarantined_not_the_sweep(tmp_path):
    shards = [
        fault_shard("poison", mode="raise", fail_times=99,
                    state_dir=tmp_path),
        fault_shard("good", value=7),
    ]
    outcome = run(shards, jobs=2, retries=1, backoff=0.01)
    poison, good = outcome.results
    assert poison.status == "quarantined"
    assert poison.payload is None
    assert "injected failure" in poison.error
    assert poison.attempts == 2  # first try + 1 retry
    assert good.ok and good.payload["value"] == 7
    assert outcome.stats["quarantined"] == 1
    with pytest.raises(SweepError, match="quarantined"):
        outcome.raise_for_quarantine()


def test_inline_jobs1_retries_and_quarantines(tmp_path):
    shards = [
        fault_shard("flaky", mode="raise", fail_times=1,
                    state_dir=tmp_path, value=3),
        fault_shard("poison", mode="raise", fail_times=99,
                    state_dir=tmp_path / "p"),
    ]
    outcome = run(shards, jobs=1, retries=1, backoff=0.0)
    assert outcome.results[0].ok
    assert outcome.results[0].payload["value"] == 3
    assert outcome.results[1].status == "quarantined"
    # One retry for the flaky shard, one burned by the poison shard
    # before quarantine.
    assert outcome.stats["retries"] == 2
    assert outcome.stats["quarantined"] == 1


# -- hanging workers ----------------------------------------------------------

def test_hung_shard_is_killed_and_retried(tmp_path):
    shards = [
        fault_shard("hang", mode="hang", fail_times=1,
                    state_dir=tmp_path, value=5),
    ]
    outcome = run(shards, jobs=2, retries=2, backoff=0.01,
                  shard_timeout=1.5)
    outcome.raise_for_quarantine()
    res = outcome.results[0]
    assert res.payload == {"token": "hang", "value": 5, "attempts_seen": 1}
    assert res.attempts == 2
    assert outcome.stats["workers_killed"] >= 1
    assert outcome.stats["retries"] == 1


def test_always_hanging_shard_is_quarantined(tmp_path):
    shards = [fault_shard("wedge", mode="hang", fail_times=99,
                          state_dir=tmp_path)]
    outcome = run(shards, jobs=2, retries=1, backoff=0.01,
                  shard_timeout=0.8)
    res = outcome.results[0]
    assert res.status == "quarantined"
    assert "timed out" in res.error
    assert outcome.stats["workers_killed"] >= 2


# -- dying workers ------------------------------------------------------------

def test_sigkilled_worker_is_replaced_and_shard_retried(tmp_path):
    shards = [
        fault_shard("victim", mode="sigkill", fail_times=1,
                    state_dir=tmp_path, value=9),
        fault_shard("good", value=4),
    ]
    outcome = run(shards, jobs=2, retries=2, backoff=0.01)
    outcome.raise_for_quarantine()
    victim, good = outcome.results
    assert victim.payload["value"] == 9
    assert victim.attempts == 2
    assert good.payload["value"] == 4
    assert outcome.stats["retries"] == 1


def test_repeatedly_dying_shard_is_quarantined(tmp_path):
    shards = [fault_shard("crasher", mode="sigkill", fail_times=99,
                          state_dir=tmp_path)]
    outcome = run(shards, jobs=2, retries=1, backoff=0.01)
    res = outcome.results[0]
    assert res.status == "quarantined"
    assert "died" in res.error
    with pytest.raises(SweepError):
        outcome.raise_for_quarantine()


# -- dedupe and cache interaction ---------------------------------------------

def test_duplicate_shards_execute_once():
    shards = [fault_shard("dup", value=1), fault_shard("dup", value=1),
              fault_shard("dup", value=1)]
    outcome = run(shards, jobs=2)
    assert outcome.stats["shards"] == 3
    assert outcome.stats["unique"] == 1
    assert outcome.stats["executed"] == 1
    assert [r.payload["value"] for r in outcome.results] == [1, 1, 1]


def test_cache_hit_skips_execution(tmp_path):
    cache = ResultCache(str(tmp_path))
    shards = [fault_shard("cached", value=6)]
    first = run(shards, jobs=1, cache=cache)
    assert first.stats["executed"] == 1
    second = run(shards, jobs=1, cache=cache)
    assert second.stats["executed"] == 0
    assert second.stats["cache_hits"] == 1
    assert second.results[0].from_cache
    assert second.results[0].payload == first.results[0].payload


def test_truncated_cache_entry_is_recomputed(tmp_path):
    cache = ResultCache(str(tmp_path))
    shards = [fault_shard("mangle", value=8)]
    first = run(shards, jobs=1, cache=cache)
    key = first.results[0].key
    path = cache.path(key)
    with open(path, "r+") as fh:
        fh.truncate(10)
    second = run(shards, jobs=1, cache=ResultCache(str(tmp_path)))
    assert second.stats["cache_corrupt_detected"] == 1
    assert second.stats["executed"] == 1
    assert not second.results[0].from_cache
    assert second.results[0].payload == first.results[0].payload
    # The recompute healed the cache entry.
    third = run(shards, jobs=1, cache=ResultCache(str(tmp_path)))
    assert third.stats["cache_hits"] == 1


def test_memory_cache_shares_shards_across_sweeps():
    runner = SweepRunner(SweepOptions(jobs=1, cache=MemoryCache()))
    shards = [fault_shard("shared", value=2)]
    runner.run(shards)
    outcome = runner.run(shards)
    assert outcome.stats["cache_hits"] == 1
    assert runner.execution_stats()["sweeps"] == 2
    assert runner.execution_stats()["cache_hits"] == 1


def test_quarantined_result_is_not_cached(tmp_path):
    cache = ResultCache(str(tmp_path))
    shards = [fault_shard("bad", mode="raise", fail_times=99,
                          state_dir=tmp_path / "state")]
    run(shards, jobs=1, retries=0, cache=cache)
    assert len(cache) == 0
