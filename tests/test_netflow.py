"""NetFlow monitoring element."""

import pytest

from repro.apps.netflow import FlowRecord, NetFlow
from repro.mem.access import AccessContext
from repro.net.packet import Packet
from tests.conftest import make_env


def make_netflow(entries=64):
    nf = NetFlow(n_entries=entries)
    nf.initialize(make_env())
    return nf


def packet(src=1, dst=2, sport=3, dport=4, payload=b"x" * 10):
    return Packet.udp(src=src, dst=dst, sport=sport, dport=dport,
                      payload=payload)


def test_counts_packets_and_bytes_per_flow():
    nf = make_netflow()
    for _ in range(5):
        nf.process(AccessContext(), packet())
    records = nf.export()
    assert len(records) == 1
    key, packets, nbytes = records[0]
    assert key == (1, 2, 17, 3, 4)
    assert packets == 5
    assert nbytes == 5 * packet().wire_length


def test_distinct_flows_get_distinct_records():
    nf = make_netflow(entries=512)
    for i in range(20):
        nf.process(AccessContext(), packet(sport=1000 + i))
    # Hash collisions may evict a couple of records; the accounting must
    # balance either way.
    assert nf.active_flows() == 20 - nf.evictions
    assert nf.active_flows() >= 17


def test_collision_evicts():
    nf = make_netflow(entries=1)  # everything collides
    nf.process(AccessContext(), packet(sport=1))
    nf.process(AccessContext(), packet(sport=2))
    assert nf.evictions == 1
    assert nf.active_flows() == 1


def test_touches_bucket_and_entry():
    nf = make_netflow()
    ctx = AccessContext()
    nf.process(ctx, packet())
    lines = ctx.lines_touched()
    bucket_lines = set(range(nf.buckets_region.base >> 6,
                             nf.buckets_region.end >> 6))
    entry_lines = set(range(nf.region.base >> 6, nf.region.end >> 6))
    assert any(line in bucket_lines for line in lines)
    assert any(line in entry_lines for line in lines)


def test_top_flows_ordering():
    nf = make_netflow(entries=512)
    for _ in range(7):
        nf.process(AccessContext(), packet(sport=111))
    for _ in range(3):
        nf.process(AccessContext(), packet(sport=222))
    top = nf.top_flows(1)
    assert top[0][1] == 7


def test_flow_record_update():
    record = FlowRecord(key=("k",), now=1, nbytes=100)
    record.update(now=9, nbytes=50)
    assert record.packets == 2
    assert record.bytes == 150
    assert record.first_seen == 1
    assert record.last_seen == 9


def test_requires_initialize():
    nf = NetFlow()
    with pytest.raises(RuntimeError):
        nf.process(AccessContext(), packet())


def test_scales_with_platform():
    env = make_env()
    nf = NetFlow()
    nf.initialize(env)
    assert nf.n_entries == env.spec.scale_table(100_000)
    assert nf.n_buckets == nf.n_entries * NetFlow.BUCKETS_PER_ENTRY
