"""Memory-controller and QPI queueing model."""

import pytest

from repro.hw.dram import MemoryController, UtilizationQueue, UTILIZATION_WINDOW
from repro.hw.interconnect import QPILink


def test_rejects_bad_service():
    with pytest.raises(ValueError):
        UtilizationQueue(0)
    with pytest.raises(ValueError):
        MemoryController(0, -1)


def test_idle_controller_adds_no_wait():
    mc = MemoryController(0, service_cycles=5.0)
    # Sparse requests: utilization stays ~0, waits stay ~0.
    now = 0.0
    for _ in range(100):
        assert mc.request(now) == pytest.approx(0.0, abs=0.01)
        now += 10 * UTILIZATION_WINDOW
    assert mc.requests == 100


def test_saturated_controller_queues():
    mc = MemoryController(0, service_cycles=5.0)
    now = 0.0
    waits = []
    for _ in range(200_000):
        waits.append(mc.request(now))
        now += 6.0  # arrivals at ~83% of capacity
    # After the utilization estimate settles, waits are substantial.
    late = waits[-100:]
    assert min(late) > 5.0
    assert mc.rho > 0.5


def test_wait_increases_with_load():
    def avg_wait(interval):
        mc = MemoryController(0, service_cycles=5.0)
        now, total, n = 0.0, 0.0, 60_000
        for _ in range(n):
            total += mc.request(now)
            now += interval
        return total / n

    assert avg_wait(8.0) > avg_wait(20.0) >= avg_wait(200.0)


def test_rho_is_capped():
    mc = MemoryController(0, service_cycles=5.0)
    now = 0.0
    for _ in range(300_000):
        mc.request(now)
        now += 1.0  # 5x oversubscribed
    assert mc.rho <= 0.95
    # Even saturated, the wait stays finite.
    assert mc.request(now) < 5.0 * 20


def test_out_of_order_arrivals_do_not_inflate_waits():
    """Timestamp reordering (engine batching) must not read as contention."""
    mc = MemoryController(0, service_cycles=5.0)
    now = 0.0
    waits = []
    for i in range(20_000):
        jitter = 300.0 if i % 2 else -300.0
        waits.append(mc.request(max(0.0, now + jitter)))
        now += 200.0  # genuine load is light (2.5%)
    assert sum(waits[-1000:]) / 1000 < 1.0


def test_utilization_accounting():
    mc = MemoryController(0, service_cycles=5.0)
    for i in range(10):
        mc.request(float(i * 100))
    assert mc.busy_cycles == pytest.approx(50.0)
    assert mc.utilization(1000.0) == pytest.approx(0.05)
    assert mc.utilization(0.0) == 0.0


def test_reset():
    mc = MemoryController(0, service_cycles=5.0)
    mc.request(0.0)
    mc.reset()
    assert mc.requests == 0
    assert mc.busy_cycles == 0.0
    assert mc.rho == 0.0


def test_qpi_adds_fixed_latency():
    qpi = QPILink(extra_cycles=60.0, service_cycles=2.0)
    lat = qpi.transfer(0.0)
    assert lat >= 60.0
    assert qpi.transfers == 1


def test_qpi_queues_under_load():
    qpi = QPILink(extra_cycles=60.0, service_cycles=2.0)
    now = 0.0
    for _ in range(200_000):
        qpi.transfer(now)
        now += 2.2
    assert qpi.transfer(now) > 60.0 + 2.0


def test_qpi_rejects_negative_extra():
    with pytest.raises(ValueError):
        QPILink(extra_cycles=-1.0, service_cycles=2.0)
