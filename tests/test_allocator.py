"""NUMA address space and bump allocation."""

import pytest
from hypothesis import given, strategies as st

from repro.constants import CACHE_LINE, NUMA_DOMAIN_SHIFT
from repro.mem.allocator import (
    AddressSpace,
    DomainAllocator,
    domain_of_address,
    domain_of_line,
)


def test_domain_base_addresses():
    a0 = DomainAllocator(0)
    a1 = DomainAllocator(1)
    r0 = a0.alloc(64, "x")
    r1 = a1.alloc(64, "y")
    assert r0.base == 0
    assert r1.base == 1 << NUMA_DOMAIN_SHIFT


def test_allocations_do_not_overlap():
    alloc = DomainAllocator(0)
    regions = [alloc.alloc(100, f"r{i}") for i in range(20)]
    for i, a in enumerate(regions):
        for b in regions[i + 1:]:
            assert not a.overlaps(b)


def test_rounds_to_cache_line():
    alloc = DomainAllocator(0)
    r = alloc.alloc(1, "tiny")
    assert r.size == CACHE_LINE
    r2 = alloc.alloc(65, "two")
    assert r2.size == 2 * CACHE_LINE
    assert r2.base % CACHE_LINE == 0


def test_allocated_bytes_tracks():
    alloc = DomainAllocator(0)
    alloc.alloc(64, "a")
    alloc.alloc(128, "b")
    assert alloc.allocated_bytes == 192


def test_rejects_bad_sizes():
    alloc = DomainAllocator(0)
    with pytest.raises(ValueError):
        alloc.alloc(0, "zero")
    with pytest.raises(ValueError):
        alloc.alloc(-1, "neg")


def test_domain_exhaustion():
    alloc = DomainAllocator(0)
    with pytest.raises(MemoryError):
        alloc.alloc((1 << NUMA_DOMAIN_SHIFT) + CACHE_LINE, "huge")


def test_address_space_domains():
    space = AddressSpace(2)
    r0 = space.alloc(64, "a", domain=0)
    r1 = space.alloc(64, "b", domain=1)
    assert r0.domain == 0
    assert r1.domain == 1
    assert len(space.all_regions()) == 2


def test_address_space_rejects_unknown_domain():
    space = AddressSpace(2)
    with pytest.raises(ValueError):
        space.alloc(64, "c", domain=2)
    with pytest.raises(ValueError):
        AddressSpace(0)


def test_domain_of_address_and_line():
    space = AddressSpace(2)
    r1 = space.alloc(256, "remote", domain=1)
    assert domain_of_address(r1.base) == 1
    assert domain_of_line(r1.base >> 6) == 1
    assert domain_of_address(0) == 0


@given(st.lists(st.integers(min_value=1, max_value=10_000), min_size=1,
                max_size=50))
def test_property_allocations_disjoint_and_ordered(sizes):
    alloc = DomainAllocator(0)
    regions = [alloc.alloc(size, f"r{i}") for i, size in enumerate(sizes)]
    for earlier, later in zip(regions, regions[1:]):
        assert earlier.end <= later.base
    assert alloc.allocated_bytes == sum(r.size for r in regions)


# -- boundary cases -----------------------------------------------------------

def test_exact_fit_fills_domain_to_the_byte():
    capacity = 1 << NUMA_DOMAIN_SHIFT
    alloc = DomainAllocator(0)
    region = alloc.alloc(capacity, "everything")
    assert region.size == capacity
    assert alloc.allocated_bytes == capacity
    # The domain is now full: even one more line must fail.
    with pytest.raises(MemoryError):
        alloc.alloc(1, "straw")


def test_failed_allocation_leaves_state_unchanged():
    capacity = 1 << NUMA_DOMAIN_SHIFT
    alloc = DomainAllocator(0)
    alloc.alloc(capacity - CACHE_LINE, "bulk")
    before = alloc.allocated_bytes
    with pytest.raises(MemoryError):
        alloc.alloc(2 * CACHE_LINE, "too-big")
    assert alloc.allocated_bytes == before
    assert len(alloc.regions) == 1
    # The remaining line is still allocatable after the failure.
    last = alloc.alloc(CACHE_LINE, "last-line")
    assert last.end == capacity


@pytest.mark.parametrize("size,rounded", [
    (1, CACHE_LINE),
    (CACHE_LINE - 1, CACHE_LINE),
    (CACHE_LINE, CACHE_LINE),
    (CACHE_LINE + 1, 2 * CACHE_LINE),
    (2 * CACHE_LINE - 1, 2 * CACHE_LINE),
    (2 * CACHE_LINE, 2 * CACHE_LINE),
])
def test_alignment_rounding_edges(size, rounded):
    alloc = DomainAllocator(0)
    # An odd-sized allocation first, so the next base would be unaligned
    # if rounding ever failed to keep the bump pointer on a line.
    alloc.alloc(1, "pad")
    region = alloc.alloc(size, "probe")
    assert region.size == rounded
    assert region.base % CACHE_LINE == 0
    assert region.end % CACHE_LINE == 0


def test_domain_boundary_addresses():
    boundary = 1 << NUMA_DOMAIN_SHIFT
    assert domain_of_address(boundary - 1) == 0
    assert domain_of_address(boundary) == 1
    assert domain_of_line((boundary >> 6) - 1) == 0
    assert domain_of_line(boundary >> 6) == 1


def test_allocations_never_cross_their_domain_boundary():
    space = AddressSpace(2)
    r0 = space.alloc((1 << NUMA_DOMAIN_SHIFT) - CACHE_LINE, "fill0", domain=0)
    r1 = space.alloc(64, "d1", domain=1)
    assert domain_of_address(r0.end - 1) == 0
    assert domain_of_address(r1.base) == 1
    # Domain 0's last line and domain 1's first allocation are adjacent
    # in the flat address space but never overlap.
    assert not r0.overlaps(r1)
