"""Run reports, Chrome trace export, and CLI ``--json`` schema checks."""

import csv
import io
import json

import pytest

from repro.apps.registry import app_factory
from repro.cli import predict_main, profile_main, sweep_main
from repro.core.reporting import summarize_report
from repro.experiments.common import TEST_CONFIG
from repro.hw.machine import Machine
from repro.obs import (
    ChromeTraceSink,
    ListSink,
    MetricsSampler,
    RunReport,
    Tracer,
    to_chrome_trace,
    validate_report,
)

CLI_ARGS = ["--scale", "64", "--warmup", "300", "--measure", "300"]


def _run(tracer=None, metrics=None):
    machine = Machine(TEST_CONFIG.socket_spec(), seed=3, tracer=tracer,
                      metrics=metrics)
    machine.add_flow(app_factory("MON"), core=0)
    machine.add_flow(app_factory("IP"), core=1)
    return machine.run(warmup_packets=300, measure_packets=300)


def test_run_report_validates_and_round_trips():
    result = _run(metrics=MetricsSampler(interval_us=50.0))
    report = result.report(kind="run", config=TEST_CONFIG)
    data = json.loads(report.to_json())
    assert validate_report(data) == []
    assert data["schema"] == "repro.run_report/1"
    assert {f["label"] for f in data["flows"]} == {"MON@0", "IP@1"}
    assert data["timeseries"]  # sampler was attached
    for flow in data["flows"]:
        assert flow["packets"] > 0
        assert flow["packets_per_sec"] > 0


def test_run_report_write_and_csv(tmp_path):
    result = _run(metrics=MetricsSampler(interval_us=50.0))
    report = result.report(config=TEST_CONFIG)
    path = tmp_path / "report.json"
    report.write(str(path))
    assert validate_report(json.loads(path.read_text())) == []

    flows_csv = report.flows_csv()
    rows = list(csv.DictReader(io.StringIO(flows_csv)))
    assert len(rows) == 2
    assert float(rows[0]["packets_per_sec"]) > 0

    ts_csv = report.timeseries_csv()
    ts_rows = list(csv.DictReader(io.StringIO(ts_csv)))
    assert ts_rows
    assert {"flow", "t0_s", "t1_s", "pps"} <= set(ts_rows[0])


def test_validate_report_flags_problems():
    assert validate_report({"schema": "bogus"})  # wrong schema + missing keys
    result = _run()
    data = result.report(config=TEST_CONFIG).to_dict()
    del data["flows"]
    problems = validate_report(data)
    assert any("flows" in p for p in problems)


def test_summarize_report_renders_headline_facts():
    result = _run(metrics=MetricsSampler(interval_us=50.0))
    data = result.report(config=TEST_CONFIG).to_dict()
    text = summarize_report(data)
    assert "MON@0" in text
    assert "time series" in text


def test_chrome_trace_round_trip(tmp_path):
    path = tmp_path / "trace.json"
    tracer = Tracer(ChromeTraceSink(str(path)), packet_sample=4)
    _run(tracer=tracer)
    tracer.close()
    with open(path) as fh:
        doc = json.load(fh)
    events = doc["traceEvents"]
    assert events
    phases = {e["ph"] for e in events}
    assert {"M", "X", "i"} <= phases
    # Thread metadata names each core; spans carry element children.
    names = {e["args"]["name"] for e in events
             if e["ph"] == "M" and e["name"] == "thread_name"}
    assert any("core" in n for n in names)
    spans = [e for e in events if e["ph"] == "X"]
    assert all(s["dur"] >= 0 for s in spans)
    element_spans = [s for s in spans if s["name"] != "packet"]
    assert element_spans  # per-element attribution became child spans
    packet_spans = [s for s in spans if s["name"] == "packet"]
    assert packet_spans


def test_chrome_trace_timestamps_are_microseconds():
    sink = ListSink()
    tracer = Tracer(sink, packet_sample=4)
    result = _run(tracer=tracer)
    doc = to_chrome_trace(sink.events)
    spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    freq_hz = TEST_CONFIG.socket_spec().freq_hz
    end_us = result.end_clock / freq_hz * 1e6
    assert all(0 <= s["ts"] <= end_us * 1.01 for s in spans)


def test_cli_profile_json_schema(capsys):
    assert profile_main(["MON", "--json"] + CLI_ARGS) == 0
    data = json.loads(capsys.readouterr().out)
    assert validate_report(data) == []
    assert data["kind"] == "profile"
    assert data["results"]["profiles"]["MON"]["throughput"] > 0


def test_cli_predict_validate_json_schema(capsys):
    rc = predict_main(["MON", "2xVPN", "FW", "--validate", "--json"]
                      + CLI_ARGS)
    assert rc == 0
    data = json.loads(capsys.readouterr().out)
    assert validate_report(data) == []
    assert data["kind"] == "predict"
    assert data["results"]["deployment"] == ["MON", "VPN", "VPN", "FW"]
    assert len(data["results"]["predictions"]) == 4
    for entry in data["results"]["predictions"]:
        assert {"flow", "core", "predicted_drop", "predicted_pps",
                "measured_drop", "error"} <= set(entry)
    # --validate embeds the co-run's measured flow stats.
    assert len(data["flows"]) == 4


def test_cli_sweep_json_schema(capsys):
    rc = sweep_main(["IP", "--competitors", "2", "--json"] + CLI_ARGS)
    assert rc == 0
    data = json.loads(capsys.readouterr().out)
    assert validate_report(data) == []
    assert data["kind"] == "sweep"
    points = data["results"]["points"]
    assert len(points) >= 3
    assert points[0] == [0.0, 0.0]  # zero competition -> zero drop
    assert data["results"]["turning_point_refs_per_sec"] > 0


def test_cli_metrics_interval_embeds_timeseries(capsys):
    rc = profile_main(["FW", "--json", "--metrics-interval", "50"]
                      + CLI_ARGS)
    assert rc == 0
    data = json.loads(capsys.readouterr().out)
    assert validate_report(data) == []
    assert data["timeseries"]
    run0 = next(iter(data["timeseries"].values()))
    flow_points = next(iter(run0.values()))
    assert {"t0_s", "t1_s", "pps", "l3_hit_rate"} <= set(flow_points[0])


def test_cli_trace_writes_chrome_file(tmp_path, capsys):
    path = tmp_path / "cli_trace.json"
    rc = profile_main(["IP", "--trace", str(path), "--trace-sample", "8"]
                      + CLI_ARGS)
    assert rc == 0
    with open(path) as fh:
        doc = json.load(fh)
    assert doc["traceEvents"]
    err = capsys.readouterr().err
    assert str(path) in err
