"""SharedCoreFlow: round-robin core sharing."""

import pytest

from repro.apps.registry import app_factory
from repro.click.multiflow import SharedCoreFlow, shared_core_factory
from repro.hw.machine import Machine
from repro.hw.topology import PlatformSpec
from repro.mem.access import AccessContext
from tests.conftest import make_env


class CountingFlow:
    name = "counting"
    measure_weight = 1.0

    def __init__(self, env, tag):
        self.region = env.space.domain(env.domain).alloc(4096, f"r{tag}")
        self.tag = tag
        self.packets = 0

    def run_packet(self, ctx):
        self.packets += 1
        ctx.compute(50, 20)
        ctx.touch(self.region, 0, 8)
        return None


def test_round_robin_alternates():
    env = make_env()
    a, b = CountingFlow(env, "a"), CountingFlow(env, "b")
    shared = SharedCoreFlow([a, b])
    for _ in range(10):
        ctx = AccessContext()
        shared.run_packet(ctx)
    assert a.packets == 5
    assert b.packets == 5
    assert shared.turns == [5, 5]


def test_three_way_sharing():
    env = make_env()
    flows = [CountingFlow(env, str(i)) for i in range(3)]
    shared = SharedCoreFlow(flows)
    for _ in range(9):
        shared.run_packet(AccessContext())
    assert [f.packets for f in flows] == [3, 3, 3]


def test_rejects_empty():
    with pytest.raises(ValueError):
        SharedCoreFlow([])


def test_measure_weight_is_mean_of_members():
    env = make_env()

    class Heavy(CountingFlow):
        measure_weight = 0.2

    shared = SharedCoreFlow([CountingFlow(env, "a"), Heavy(env, "b")])
    assert shared.measure_weight == pytest.approx(0.6)


def test_runs_on_machine():
    spec = PlatformSpec.westmere().scaled(64)
    machine = Machine(spec)
    machine.add_flow(
        shared_core_factory([app_factory("IP"), app_factory("IP")],
                            name="2xIP"),
        core=0, label="2xIP",
    )
    stats = machine.run(warmup_packets=200, measure_packets=400)["2xIP"]
    assert stats.packets == 400
    flow = machine.flows[0].flow
    assert sum(flow.turns) >= 600
    # Turns split evenly.
    assert abs(flow.turns[0] - flow.turns[1]) <= 1


def test_sharing_slower_than_solo_per_turn():
    """Two cache-hungry flows interleaved pay L1/L2 interference."""
    spec = PlatformSpec.westmere().scaled(32)

    def run_shared():
        machine = Machine(spec)
        machine.add_flow(
            shared_core_factory([app_factory("MON"), app_factory("MON")]),
            core=0, label="s",
        )
        return machine.run(warmup_packets=1500,
                           measure_packets=800)["s"].packets_per_sec

    def run_solo():
        machine = Machine(spec)
        machine.add_flow(app_factory("MON"), core=0, label="m")
        return machine.run(warmup_packets=1500,
                           measure_packets=800)["m"].packets_per_sec

    assert run_shared() < run_solo()
