"""Additional edge-case tests across modules."""

import pytest

from repro.apps.aes import AES128
from repro.apps.registry import make_app
from repro.click.element import Element
from repro.click.handoff import HandoffQueue
from repro.mem.access import AccessContext
from repro.net.checksum import internet_checksum
from repro.net.packet import Packet
from tests.conftest import make_env


class NullMachine:
    def invalidate_private(self, lines, core):
        pass


def test_aes_key_expansion_fips_vector():
    """FIPS-197 A.1: the first expanded round-key words for the test key."""
    key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    words = AES128(key)._rk
    assert len(words) == 44
    assert words[0] == 0x2B7E1516
    assert words[4] == 0xA0FAFE17  # first derived word
    assert words[43] == 0xB6630CA6  # last word of the schedule


def test_aes_distinct_keys_distinct_ciphertexts():
    block = b"\x00" * 16
    a = AES128(b"\x00" * 16).encrypt_block(block)
    b = AES128(b"\x01" + b"\x00" * 15).encrypt_block(block)
    assert a != b


def test_handoff_queue_wraps_ring():
    queue = HandoffQueue(capacity=2)
    queue.initialize(make_env())
    machine = NullMachine()
    for round_no in range(5):
        assert queue.push(AccessContext(), round_no, machine)
        assert queue.pop(AccessContext(), machine) == round_no
    assert queue.pushed == 5 and queue.popped == 5


def test_handoff_queue_interleaved_capacity():
    queue = HandoffQueue(capacity=3)
    queue.initialize(make_env())
    machine = NullMachine()
    ctx = AccessContext()
    queue.push(ctx, "a", machine)
    queue.push(ctx, "b", machine)
    assert queue.pop(ctx, machine) == "a"
    queue.push(ctx, "c", machine)
    queue.push(ctx, "d", machine)
    assert queue.full
    assert not queue.push(ctx, "e", machine)
    assert [queue.pop(ctx, machine) for _ in range(3)] == ["b", "c", "d"]
    assert queue.empty


def test_element_base_defaults():
    class Bare(Element):
        def process(self, ctx, packet):
            return packet

    element = Bare()
    assert element.n_outputs == 1
    assert element.name == "Bare"
    element.initialize(make_env())  # default no-op must not raise


def test_element_process_is_abstract():
    with pytest.raises(NotImplementedError):
        Element().process(AccessContext(), Packet.udp(src=1, dst=2))


def test_checksum_full_ipv4_header_example():
    # RFC 1071-style check on a fully populated header.
    header = bytes.fromhex(
        "450000730000400040110000c0a80001c0a800c7")
    csum = internet_checksum(header)
    assert csum == 0xB861  # well-known worked example


def test_realistic_app_regions_do_not_overlap():
    env = make_env()
    app = make_app("MON", env)
    regions = env.space.all_regions()
    assert len(regions) > 3
    for i, a in enumerate(regions):
        for b in regions[i + 1:]:
            assert not a.overlaps(b), (a, b)


def test_apps_in_same_env_share_address_space_safely():
    env = make_env()
    make_app("IP", env)
    make_app("RE", env)
    regions = env.space.all_regions()
    for i, a in enumerate(regions):
        for b in regions[i + 1:]:
            assert not a.overlaps(b)


def test_packet_annotations_are_lazy():
    p = Packet.udp(src=1, dst=2)
    assert p.annotations is None
    p.annotations = {"k": 1}
    assert p.annotations["k"] == 1


def test_packet_repr_is_readable():
    p = Packet.udp(src=0x0A000001, dst=0x0A000002, sport=5, dport=6)
    text = repr(p)
    assert "10.0.0.1:5" in text
    assert "10.0.0.2:6" in text
