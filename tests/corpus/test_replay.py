"""Corpus replay: every recorded reproduction must run clean today.

The files next to this test (``repro_*.json``) are minimal scenario
configurations that once violated an invariant (the committed seed
entries were captured under deliberate fault injection; future entries
are whatever ``repro-check`` finds in the wild, shrunk). Replaying them
is the permanent regression gate: a fixed bug that resurfaces fails
here with its original minimal reproduction, long after the fuzzer's
random walk has moved on.
"""

from __future__ import annotations

import os

import pytest

from repro.check.corpus import SCHEMA, corpus_paths, load_repro
from repro.check.runner import run_config

pytestmark = pytest.mark.check

CORPUS_DIR = os.path.dirname(os.path.abspath(__file__))

ENTRIES = corpus_paths(CORPUS_DIR)


def test_corpus_is_not_empty():
    # The seed entries (captured under fault injection) must be present;
    # an empty corpus would silently disable the whole regression gate.
    assert len(ENTRIES) >= 3


@pytest.mark.parametrize("path", ENTRIES,
                         ids=[os.path.basename(p) for p in ENTRIES])
def test_entry_is_well_formed(path):
    entry = load_repro(path)
    assert entry.schema == SCHEMA
    assert entry.violations, "an entry must record what it reproduced"
    assert entry.config.flows
    # Content addressing: the file name embeds the config digest.
    assert entry.digest in os.path.basename(path)


@pytest.mark.parametrize("path", ENTRIES,
                         ids=[os.path.basename(p) for p in ENTRIES])
def test_entry_replays_clean(path):
    entry = load_repro(path)
    engines = tuple(entry.engines) or ("scalar", "batch")
    violations = run_config(entry.config, engines)
    assert violations == [], (
        f"corpus reproduction {os.path.basename(path)} fails again "
        f"(originally: {entry.note or 'unknown'})")
