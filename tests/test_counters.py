"""Performance counters and derived statistics."""

import pytest

from repro.hw.counters import CoreCounters, FlowStats, performance_drop
from repro.mem.access import TAGS


def test_copy_and_delta():
    c = CoreCounters()
    c.cycles = 1000.0
    c.packets = 10
    c.l3_refs = 50
    c.l3_hits = 30
    snap = c.copy()
    c.cycles = 3000.0
    c.packets = 30
    c.l3_refs = 150
    c.l3_hits = 80
    delta = c.delta(snap)
    assert delta.cycles == 2000.0
    assert delta.packets == 20
    assert delta.l3_refs == 100
    assert delta.l3_hits == 50
    # The snapshot itself is unchanged.
    assert snap.packets == 10


def test_delta_includes_tags():
    tag = TAGS.register("counter_test_tag")
    c = CoreCounters()
    c._grow_tags()
    c.tag_refs[tag] += 5
    snap = c.copy()
    c.tag_refs[tag] += 7
    assert c.delta(snap).tag_refs[tag] == 7


def make_stats(cycles=2.8e9, packets=1_000_000, instructions=2_000_000_000,
               l3_refs=10_000_000, l3_hits=7_000_000, l2_hits=5_000_000):
    c = CoreCounters()
    c.cycles = cycles
    c.packets = packets
    c.instructions = instructions
    c.l3_refs = l3_refs
    c.l3_hits = l3_hits
    c.l3_misses = l3_refs - l3_hits
    c.l2_hits = l2_hits
    return FlowStats(c, freq_hz=2.8e9)


def test_throughput_rates():
    s = make_stats()
    assert s.packets_per_sec == pytest.approx(1_000_000)
    assert s.throughput == s.packets_per_sec
    assert s.seconds == pytest.approx(1.0)


def test_table1_columns():
    s = make_stats()
    assert s.cycles_per_packet == pytest.approx(2800.0)
    assert s.cycles_per_instruction == pytest.approx(1.4)
    assert s.l3_refs_per_sec == pytest.approx(10e6)
    assert s.l3_hits_per_sec == pytest.approx(7e6)
    assert s.l3_misses_per_sec == pytest.approx(3e6)
    assert s.l3_refs_per_packet == pytest.approx(10.0)
    assert s.l3_misses_per_packet == pytest.approx(3.0)
    assert s.l3_hits_per_packet == pytest.approx(7.0)
    assert s.l2_hits_per_packet == pytest.approx(5.0)
    assert s.l3_hit_rate == pytest.approx(0.7)


def test_zero_windows_are_safe():
    s = FlowStats(CoreCounters(), freq_hz=2.8e9)
    assert s.packets_per_sec == 0.0
    assert s.cycles_per_packet == 0.0
    assert s.cycles_per_instruction == 0.0
    assert s.l3_hit_rate == 0.0


def test_tag_hit_rate():
    tag = TAGS.register("stats_tag")
    c = CoreCounters()
    c._grow_tags()
    c.tag_refs[tag] = 10
    c.tag_hits[tag] = 4
    s = FlowStats(c, freq_hz=1e9)
    assert s.tag_hit_rate("stats_tag") == pytest.approx(0.4)
    assert s.tag_refs("stats_tag") == 10
    assert s.tag_breakdown()["stats_tag"] == pytest.approx(0.4)


def test_tag_hit_rate_unknown_tag_is_zero():
    s = FlowStats(CoreCounters(), freq_hz=1e9)
    assert s.tag_hit_rate("brand_new_tag_xyz") == 0.0


def test_performance_drop():
    assert performance_drop(100.0, 80.0) == pytest.approx(0.2)
    assert performance_drop(100.0, 100.0) == 0.0
    assert performance_drop(0.0, 50.0) == 0.0
    assert performance_drop(100.0, 110.0) == pytest.approx(-0.1)


# ---------------------------------------------------------------------------
# Counter lifecycle vs. mid-run tag registration.
#
# The tag registry grows lazily: Figure 7 elements register their
# function tags on first use, possibly after counters (and snapshots of
# them) already exist with shorter tag arrays. Every lifecycle op —
# snapshot (copy), diff (delta), merge, reset — must tolerate a
# registration landing between any two of them. PR 1 fixed this class
# of bug in copy(); these tests pin the whole surface.
# ---------------------------------------------------------------------------


def _fresh_tag(label):
    """Register a unique tag (the registry is global across tests)."""
    name = f"late_tag_{label}_{len(TAGS)}"
    return name, TAGS.register(name)


def test_copy_before_late_registration_serves_full_arrays():
    c = CoreCounters()
    snap = c.copy()
    _name, tag = _fresh_tag("copy")
    # A *new* snapshot must cover the late tag without callers invoking
    # _grow_tags themselves (samplers read tag_refs directly).
    snap2 = c.copy()
    assert len(snap2.tag_refs) > tag - 1 and len(snap2.tag_refs) == len(TAGS)
    # The stale snapshot is healed by delta against the grown counters.
    c._grow_tags()
    c.tag_refs[tag] = 3
    d = c.delta(snap)
    assert d.tag_refs[tag] == 3


def test_delta_with_registration_between_snapshots():
    c = CoreCounters()
    start = c.copy()
    _name, tag = _fresh_tag("delta")
    c._grow_tags()
    c.tag_refs[tag] = 5
    c.tag_hits[tag] = 2
    end = c.copy()
    d = end.delta(start)
    assert d.tag_refs[tag] == 5
    assert d.tag_hits[tag] == 2


def test_merge_scalars_and_tags():
    a = CoreCounters()
    b = CoreCounters()
    a.cycles, b.cycles = 100.0, 50.0
    a.packets, b.packets = 4, 6
    a.l3_refs, b.l3_refs = 10, 20
    _name, tag = _fresh_tag("merge")
    b._grow_tags()
    b.tag_refs[tag] = 7
    out = a.merge(b)
    assert out is a
    assert a.cycles == 150.0 and a.packets == 10 and a.l3_refs == 30
    assert a.tag_refs[tag] == 7
    # b is untouched.
    assert b.cycles == 50.0 and b.tag_refs[tag] == 7


def test_merge_short_into_long_and_long_into_short():
    short = CoreCounters()
    _name, tag = _fresh_tag("asym")
    long = CoreCounters()
    long.tag_refs[tag] = 2
    # Registration happened after `short` was built: both directions
    # must still line the arrays up.
    short.copy().merge(long)
    merged = short.merge(long)
    assert merged.tag_refs[tag] == 2
    assert len(merged.tag_refs) == len(TAGS)


def test_reset_zeroes_everything_and_keeps_aliases():
    c = CoreCounters()
    c.cycles = 9.0
    c.instructions = 4
    c.packets = 2
    c.mc_wait_cycles = 1.5
    _name, tag = _fresh_tag("reset")
    c._grow_tags()
    c.tag_refs[tag] = 8
    # Both engines hoist the tag lists into locals; reset must mutate
    # in place so those aliases stay live.
    alias = c.tag_refs
    c.reset()
    assert c.cycles == 0.0 and c.instructions == 0 and c.packets == 2 - 2
    assert c.mc_wait_cycles == 0.0
    assert not any(c.tag_refs) and not any(c.tag_hits)
    assert c.tag_refs is alias
    alias[tag] += 1
    assert c.tag_refs[tag] == 1


def test_reset_then_late_registration_then_delta():
    c = CoreCounters()
    c.reset()
    snap = c.copy()
    _name, tag = _fresh_tag("reset_late")
    c._grow_tags()
    c.tag_hits[tag] = 4
    assert c.delta(snap).tag_hits[tag] == 4


def test_flow_series_straddling_registration():
    """Time-series samplers snapshot before *and* after a registration;
    interval deltas must heal the length mismatch."""
    from repro.obs.metrics import FlowSeries

    c = CoreCounters()
    c.cycles = 1000.0
    c.packets = 1
    snap0 = c.copy()
    _name, tag = _fresh_tag("series")
    c._grow_tags()
    c.cycles = 3000.0
    c.packets = 5
    c.tag_refs[tag] = 6
    snap1 = c.copy()
    series = FlowSeries("f", core=0, freq_hz=1e9,
                        snaps=[(1000.0, snap0), (3000.0, snap1)])
    totals = series.totals()
    assert totals.packets == 4
    assert totals.tag_refs[tag] == 6
    assert series.points()[0]["packets"] == 4


def test_flow_stats_on_stale_snapshot():
    """FlowStats built over a pre-registration snapshot must still
    answer per-tag queries about tags registered afterwards."""
    c = CoreCounters()
    c.l3_refs = 1
    stats = FlowStats(c.copy(), freq_hz=1e9)
    name, _tag = _fresh_tag("stats")
    assert stats.tag_hit_rate(name) == 0.0
    assert stats.tag_refs(name) == 0
    assert name not in stats.tag_breakdown()
