"""Performance counters and derived statistics."""

import pytest

from repro.hw.counters import CoreCounters, FlowStats, performance_drop
from repro.mem.access import TAGS


def test_copy_and_delta():
    c = CoreCounters()
    c.cycles = 1000.0
    c.packets = 10
    c.l3_refs = 50
    c.l3_hits = 30
    snap = c.copy()
    c.cycles = 3000.0
    c.packets = 30
    c.l3_refs = 150
    c.l3_hits = 80
    delta = c.delta(snap)
    assert delta.cycles == 2000.0
    assert delta.packets == 20
    assert delta.l3_refs == 100
    assert delta.l3_hits == 50
    # The snapshot itself is unchanged.
    assert snap.packets == 10


def test_delta_includes_tags():
    tag = TAGS.register("counter_test_tag")
    c = CoreCounters()
    c._grow_tags()
    c.tag_refs[tag] += 5
    snap = c.copy()
    c.tag_refs[tag] += 7
    assert c.delta(snap).tag_refs[tag] == 7


def make_stats(cycles=2.8e9, packets=1_000_000, instructions=2_000_000_000,
               l3_refs=10_000_000, l3_hits=7_000_000, l2_hits=5_000_000):
    c = CoreCounters()
    c.cycles = cycles
    c.packets = packets
    c.instructions = instructions
    c.l3_refs = l3_refs
    c.l3_hits = l3_hits
    c.l3_misses = l3_refs - l3_hits
    c.l2_hits = l2_hits
    return FlowStats(c, freq_hz=2.8e9)


def test_throughput_rates():
    s = make_stats()
    assert s.packets_per_sec == pytest.approx(1_000_000)
    assert s.throughput == s.packets_per_sec
    assert s.seconds == pytest.approx(1.0)


def test_table1_columns():
    s = make_stats()
    assert s.cycles_per_packet == pytest.approx(2800.0)
    assert s.cycles_per_instruction == pytest.approx(1.4)
    assert s.l3_refs_per_sec == pytest.approx(10e6)
    assert s.l3_hits_per_sec == pytest.approx(7e6)
    assert s.l3_misses_per_sec == pytest.approx(3e6)
    assert s.l3_refs_per_packet == pytest.approx(10.0)
    assert s.l3_misses_per_packet == pytest.approx(3.0)
    assert s.l3_hits_per_packet == pytest.approx(7.0)
    assert s.l2_hits_per_packet == pytest.approx(5.0)
    assert s.l3_hit_rate == pytest.approx(0.7)


def test_zero_windows_are_safe():
    s = FlowStats(CoreCounters(), freq_hz=2.8e9)
    assert s.packets_per_sec == 0.0
    assert s.cycles_per_packet == 0.0
    assert s.cycles_per_instruction == 0.0
    assert s.l3_hit_rate == 0.0


def test_tag_hit_rate():
    tag = TAGS.register("stats_tag")
    c = CoreCounters()
    c._grow_tags()
    c.tag_refs[tag] = 10
    c.tag_hits[tag] = 4
    s = FlowStats(c, freq_hz=1e9)
    assert s.tag_hit_rate("stats_tag") == pytest.approx(0.4)
    assert s.tag_refs("stats_tag") == 10
    assert s.tag_breakdown()["stats_tag"] == pytest.approx(0.4)


def test_tag_hit_rate_unknown_tag_is_zero():
    s = FlowStats(CoreCounters(), freq_hz=1e9)
    assert s.tag_hit_rate("brand_new_tag_xyz") == 0.0


def test_performance_drop():
    assert performance_drop(100.0, 80.0) == pytest.approx(0.2)
    assert performance_drop(100.0, 100.0) == 0.0
    assert performance_drop(0.0, 50.0) == 0.0
    assert performance_drop(100.0, 110.0) == pytest.approx(-0.1)
