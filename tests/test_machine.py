"""The timing engine: measurement windows, placement, contention basics."""

import pytest

from repro.hw.machine import Machine
from repro.hw.topology import PlatformSpec


class StrideFlow:
    """Deterministic flow: touches ``n_lines`` consecutive lines per packet."""

    name = "stride"
    measure_weight = 1.0

    def __init__(self, env, n_lines=8, gap=50, region_bytes=1 << 16):
        self.region = env.space.domain(env.domain).alloc(region_bytes, "arr")
        self.n_lines = n_lines
        self.gap = gap
        self._pos = 0
        self._total = self.region.n_lines

    def run_packet(self, ctx):
        base = self.region.base >> 6
        for _ in range(self.n_lines):
            ctx.compute(self.gap, 10)
            ctx.touch_line(base + self._pos)
            self._pos = (self._pos + 1) % self._total
        return None


class HotLineFlow:
    """Touches one line per packet, with optional DMA self-invalidation."""

    name = "hot"
    measure_weight = 1.0

    def __init__(self, env, dma=False):
        self.region = env.space.domain(env.domain).alloc(64, "hot")
        self.dma = dma

    def run_packet(self, ctx):
        ctx.compute(20, 10)
        ctx.touch(self.region, 0, 8)
        if self.dma:
            return [self.region.base >> 6]
        return None


class IdleEveryOther:
    """Alternates between a real packet and an idle stall."""

    name = "idler"
    measure_weight = 1.0

    def __init__(self, env):
        self.region = env.space.domain(env.domain).alloc(4096, "x")
        self._step = 0

    def run_packet(self, ctx):
        self._step += 1
        if self._step % 2 == 0:
            ctx.mark_idle(100)
            return None
        ctx.compute(10, 5)
        ctx.touch(self.region, 0, 8)
        return None


@pytest.fixture
def spec():
    return PlatformSpec.westmere().scaled(64)


def test_solo_run_measures_requested_packets(spec):
    m = Machine(spec)
    m.add_flow(StrideFlow, core=0, label="f")
    result = m.run(warmup_packets=100, measure_packets=300)
    assert result["f"].packets == 300
    assert result["f"].packets_per_sec > 0
    assert result.events > 0


def test_determinism(spec):
    def run_once():
        m = Machine(spec, seed=42)
        m.add_flow(StrideFlow, core=0, label="a")
        m.add_flow(StrideFlow, core=1, label="b")
        r = m.run(warmup_packets=50, measure_packets=200)
        return (r["a"].cycles, r["b"].cycles, r.events)

    assert run_once() == run_once()


def test_duplicate_core_rejected(spec):
    m = Machine(spec)
    m.add_flow(StrideFlow, core=0)
    with pytest.raises(ValueError, match="already runs"):
        m.add_flow(StrideFlow, core=0)


def test_duplicate_label_rejected(spec):
    m = Machine(spec)
    m.add_flow(StrideFlow, core=0, label="x")
    with pytest.raises(ValueError, match="duplicate"):
        m.add_flow(StrideFlow, core=1, label="x")


def test_bad_domain_rejected(spec):
    m = Machine(spec)
    with pytest.raises(ValueError, match="domain"):
        m.add_flow(StrideFlow, core=0, data_domain=7)


def test_machine_is_single_use(spec):
    m = Machine(spec)
    m.add_flow(StrideFlow, core=0)
    m.run(warmup_packets=10, measure_packets=50)
    with pytest.raises(RuntimeError):
        m.run(warmup_packets=10, measure_packets=50)
    with pytest.raises(RuntimeError):
        m.add_flow(StrideFlow, core=1)


def test_run_without_flows_rejected(spec):
    with pytest.raises(RuntimeError):
        Machine(spec).run()


def test_hot_line_flow_hits_after_warmup(spec):
    m = Machine(spec)
    m.add_flow(HotLineFlow, core=0, label="h")
    stats = m.run(warmup_packets=20, measure_packets=100)["h"]
    # Same line every packet: everything after the first touch is an L1 hit.
    assert stats.counts.l1_hits == pytest.approx(100, abs=2)
    assert stats.counts.l3_misses == 0


def test_dma_invalidation_forces_compulsory_misses(spec):
    m = Machine(spec)
    m.add_flow(lambda env: HotLineFlow(env, dma=True), core=0, label="d")
    stats = m.run(warmup_packets=20, measure_packets=100)["d"]
    # The DMA write invalidates the line before every packet.
    assert stats.counts.l3_misses == pytest.approx(100, abs=2)


def test_remote_data_pays_qpi(spec):
    def run(domain):
        m = Machine(spec)
        m.add_flow(
            lambda env: StrideFlow(env, region_bytes=1 << 20),
            core=0, data_domain=domain, label="f",
        )
        return m.run(warmup_packets=50, measure_packets=300)["f"]

    local = run(0)
    remote = run(1)
    assert local.counts.remote_refs == 0
    assert remote.counts.remote_refs > 0
    assert remote.packets_per_sec < local.packets_per_sec


def test_cache_contention_slows_a_flow(spec):
    def run(n_competitors):
        m = Machine(spec)
        m.add_flow(lambda env: StrideFlow(env, region_bytes=spec.l3_size),
                   core=0, label="t")
        for i in range(n_competitors):
            m.add_flow(
                lambda env: StrideFlow(env, region_bytes=spec.l3_size),
                core=1 + i, label=f"c{i}",
            )
        return m.run(warmup_packets=100, measure_packets=400)["t"]

    solo = run(0)
    crowded = run(5)
    assert crowded.packets_per_sec < solo.packets_per_sec
    assert crowded.l3_hit_rate < solo.l3_hit_rate


def test_unmeasured_competitors_still_report_stats(spec):
    m = Machine(spec)
    m.add_flow(StrideFlow, core=0, label="t", measured=True)
    m.add_flow(StrideFlow, core=1, label="c", measured=False)
    result = m.run(warmup_packets=50, measure_packets=200)
    assert "c" in result.stats
    assert result["c"].packets > 0


def test_idle_steps_are_not_counted_as_packets(spec):
    m = Machine(spec)
    m.add_flow(IdleEveryOther, core=0, label="i")
    stats = m.run(warmup_packets=20, measure_packets=100)["i"]
    assert stats.packets == 100
    # Idle stalls contribute cycles: slower than back-to-back packets.
    assert stats.cycles_per_packet > 100


def test_total_l3_refs_helper(spec):
    m = Machine(spec)
    m.add_flow(StrideFlow, core=0, label="a")
    m.add_flow(StrideFlow, core=1, label="b")
    result = m.run(warmup_packets=50, measure_packets=200)
    total = result.total_l3_refs_per_sec()
    excl = result.total_l3_refs_per_sec(exclude="a")
    assert total > excl >= 0


def test_zero_time_empty_packet_rejected(spec):
    class Broken:
        name = "broken"

        def __init__(self, env):
            pass

        def run_packet(self, ctx):
            return None

    m = Machine(spec)
    m.add_flow(Broken, core=0)
    with pytest.raises(RuntimeError, match="zero-time"):
        m.run(warmup_packets=10, measure_packets=10)


def test_measure_weight_scales_targets(spec):
    class Slow(StrideFlow):
        measure_weight = 0.5

    m = Machine(spec)
    m.add_flow(Slow, core=0, label="s")
    stats = m.run(warmup_packets=100, measure_packets=400)["s"]
    assert stats.packets == 200


def test_max_events_guard(spec):
    m = Machine(spec)
    m.add_flow(StrideFlow, core=0)
    with pytest.raises(RuntimeError, match="events"):
        m.run(warmup_packets=100, measure_packets=10_000, max_events=500)


def test_latency_recording_disabled_by_default(spec):
    m = Machine(spec)
    m.add_flow(StrideFlow, core=0, label="f")
    stats = m.run(warmup_packets=20, measure_packets=100)["f"]
    assert stats.latencies is None
    with pytest.raises(ValueError):
        stats.latency_percentile(50)


def test_latency_recording_matches_throughput(spec):
    m = Machine(spec, record_latencies=True)
    m.add_flow(StrideFlow, core=0, label="f")
    stats = m.run(warmup_packets=20, measure_packets=100)["f"]
    assert len(stats.latencies) == 100
    p50 = stats.latency_percentile(50)
    # For a uniform flow, median latency ~ cycles/packet.
    assert p50 == pytest.approx(stats.cycles_per_packet, rel=0.2)
    assert stats.latency_percentile(0) <= p50 <= stats.latency_percentile(100)
    assert stats.latency_percentile_ns(50) == pytest.approx(
        p50 / spec.freq_hz * 1e9)


def test_latency_percentile_validation(spec):
    m = Machine(spec, record_latencies=True)
    m.add_flow(StrideFlow, core=0, label="f")
    stats = m.run(warmup_packets=20, measure_packets=50)["f"]
    with pytest.raises(ValueError):
        stats.latency_percentile(101)


def test_latency_grows_under_contention(spec):
    def run(n):
        m = Machine(spec, record_latencies=True)
        m.add_flow(lambda env: StrideFlow(env, region_bytes=spec.l3_size),
                   core=0, label="t")
        for i in range(n):
            m.add_flow(
                lambda env: StrideFlow(env, region_bytes=spec.l3_size),
                core=1 + i, label=f"c{i}",
            )
        return m.run(warmup_packets=50, measure_packets=200)["t"]

    solo = run(0)
    crowded = run(5)
    assert crowded.latency_percentile(50) > solo.latency_percentile(50)
