"""Redundancy elimination: encoder/decoder round-trip and the RE element."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.fingerprint import RabinFingerprinter
from repro.apps.redundancy import REDecoder, REElement, REEncoder
from repro.mem.access import AccessContext
from repro.net.packet import Packet
from tests.conftest import make_env


def make_pair(store=4096, entries=512, window=16):
    enc = REEncoder(store, entries, RabinFingerprinter(window=window))
    dec = REDecoder(store)
    return enc, dec


def test_first_packet_is_all_literal():
    enc, dec = make_pair()
    payload = bytes(range(64))
    tokens, touched = enc.encode(payload)
    assert all(t[0] == "lit" for t in tokens)
    assert dec.decode(tokens) == payload
    assert len(touched) == 4  # 64 bytes / 16-byte windows


def test_repeated_payload_is_referenced():
    enc, dec = make_pair()
    payload = bytes(range(64))
    t1, _ = enc.encode(payload)
    dec.decode(t1)
    t2, _ = enc.encode(payload)
    assert any(t[0] == "ref" for t in t2)
    assert dec.decode(t2) == payload
    assert enc.chunks_matched > 0


def test_savings_positive_for_redundant_traffic():
    enc, _ = make_pair()
    payload = bytes(range(16)) * 8
    enc.encode(payload)
    tokens, _ = enc.encode(payload)
    assert enc.savings(payload, tokens) >= 0.4


def test_encoded_length_accounting():
    assert REEncoder.encoded_length([("lit", b"abc"), ("ref", 0, 16)]) == \
        (1 + 3) + 8


def test_decoder_detects_evicted_reference():
    enc, dec = make_pair(store=64)
    payload = bytes(range(32))
    t1, _ = enc.encode(payload)
    dec.decode(t1)
    # Overflow the decoder's store so the earlier content is gone.
    dec.store.append(bytes(64))
    with pytest.raises(LookupError):
        dec.decode([("ref", 0, 16)])


def test_decoder_rejects_unknown_token():
    _, dec = make_pair()
    with pytest.raises(ValueError):
        dec.decode([("zip", b"")])


@given(st.lists(
    st.sampled_from([b"A" * 48, b"B" * 48, bytes(range(48)), b"C" * 48]),
    min_size=1, max_size=40,
))
@settings(max_examples=40, deadline=None)
def test_property_roundtrip_with_synchronized_stores(payloads):
    """Encoder and decoder stores stay in sync across any stream."""
    enc, dec = make_pair(store=2048, entries=256, window=16)
    for payload in payloads:
        tokens, _ = enc.encode(payload)
        assert dec.decode(tokens) == payload


@given(st.lists(st.binary(min_size=0, max_size=100), min_size=1, max_size=25))
@settings(max_examples=40, deadline=None)
def test_property_roundtrip_arbitrary_payloads(payloads):
    enc, dec = make_pair(store=8192, entries=128, window=8)
    for payload in payloads:
        tokens, _ = enc.encode(payload)
        assert dec.decode(tokens) == payload


def test_element_initialization_and_processing():
    env = make_env()
    element = REElement(store_bytes=4096, n_table_entries=256)
    element.initialize(env)
    ctx = AccessContext()
    pkt = Packet.udp(src=1, dst=2, payload=bytes(range(128)))
    out = element.process(ctx, pkt)
    assert out is pkt
    assert element.packets == 1
    assert element.bytes_in == 128
    assert ctx.n_references > 0
    assert "re_tokens" in pkt.annotations


def test_element_requires_initialize():
    element = REElement()
    with pytest.raises(RuntimeError):
        element.process(AccessContext(), Packet.udp(src=1, dst=2))


def test_element_compresses_repeats():
    env = make_env()
    element = REElement(store_bytes=8192, n_table_entries=512)
    element.initialize(env)
    payload = bytes(range(128))
    for _ in range(3):
        element.process(AccessContext(), Packet.udp(src=1, dst=2,
                                                    payload=payload))
    assert element.bytes_out < element.bytes_in
