"""Standard elements: FromDevice, ToDevice, CheckIPHeader, Classifier,
Queue, Counter, Discard, ControlElement."""

import pytest

from repro.click.element import PacketSink
from repro.click.elements.checkipheader import CheckIPHeader
from repro.click.elements.classifier import Classifier, Pattern
from repro.click.elements.control import ControlElement
from repro.click.elements.counter import Counter
from repro.click.elements.discard import Discard
from repro.click.elements.fromdevice import FromDevice
from repro.click.elements.queue import QueueElement
from repro.click.elements.todevice import ToDevice
from repro.mem.access import AccessContext
from repro.net.packet import Packet
from tests.conftest import make_env


def pkt(**kw):
    return Packet.udp(src=1, dst=2, **kw)


# -- FromDevice ---------------------------------------------------------------

def test_fromdevice_assigns_buffers_and_dma_lines():
    fd = FromDevice()
    fd.initialize(make_env())
    ctx = AccessContext()
    p = pkt(payload=b"z" * 100)
    dma = fd.receive(ctx, p)
    assert p.buffer is not None
    assert len(dma) == (p.wire_length + 63) // 64 or \
        len(dma) == (p.wire_length // 64) + 1
    assert fd.received == 1
    assert ctx.n_references > 0


def test_fromdevice_recycles_buffers():
    fd = FromDevice(n_buffers=64)
    env = make_env()
    fd.initialize(env)
    first = None
    n = fd.n_buffers
    for i in range(n + 1):
        p = pkt()
        fd.receive(AccessContext(), p)
        if i == 0:
            first = p.buffer
    assert p.buffer is first  # wrapped around the pool


def test_fromdevice_pool_scales():
    env = make_env()
    fd = FromDevice(n_buffers=512)
    fd.initialize(env)
    assert fd.n_buffers == max(16, 512 // env.spec.scale)


def test_fromdevice_requires_initialize():
    with pytest.raises(RuntimeError):
        FromDevice().receive(AccessContext(), pkt())


def test_fromdevice_rejects_zero_buffers():
    with pytest.raises(ValueError):
        FromDevice(n_buffers=0)


# -- ToDevice -----------------------------------------------------------------

def test_todevice_counts():
    td = ToDevice()
    td.initialize(make_env())
    td.send(AccessContext(), pkt(payload=b"a" * 50))
    assert td.sent == 1
    assert td.bytes_sent == pkt(payload=b"a" * 50).wire_length


def test_todevice_requires_initialize():
    with pytest.raises(RuntimeError):
        ToDevice().send(AccessContext(), pkt())


# -- CheckIPHeader -------------------------------------------------------------

def test_checkipheader_passes_valid():
    el = CheckIPHeader()
    assert el.process(AccessContext(), pkt()) is not None
    assert el.dropped == 0


def test_checkipheader_drops_zero_ttl():
    el = CheckIPHeader()
    p = pkt()
    p.ip.ttl = 0
    assert el.process(AccessContext(), p) is None
    assert el.dropped == 1


def test_checkipheader_drops_bad_checksum():
    el = CheckIPHeader()
    p = pkt(compute_checksum=True)
    p.ip.checksum ^= 0x1234
    assert el.process(AccessContext(), p) is None


def test_checkipheader_accepts_offloaded_checksum():
    el = CheckIPHeader()
    p = pkt()
    assert p.ip.checksum == 0
    assert el.process(AccessContext(), p) is not None


def test_checkipheader_drops_short_length():
    el = CheckIPHeader()
    p = pkt()
    p.ip.total_length = 10
    assert el.process(AccessContext(), p) is None


# -- Classifier ----------------------------------------------------------------

def test_classifier_routes_by_pattern():
    cl = Classifier([Pattern(protocol=6), Pattern(protocol=17)])
    port, _ = cl.process(AccessContext(), Packet.tcp(src=1, dst=2))
    assert port == 0
    port, _ = cl.process(AccessContext(), pkt())
    assert port == 1
    assert cl.n_outputs == 3


def test_classifier_catch_all():
    cl = Classifier([Pattern(dport=9999)])
    port, _ = cl.process(AccessContext(), pkt())
    assert port == 1  # last port
    assert cl.matched[1] == 1


def test_classifier_rejects_empty():
    with pytest.raises(ValueError):
        Classifier([])


# -- Queue ----------------------------------------------------------------------

def test_queue_fifo_and_capacity():
    q = QueueElement(capacity=2)
    a, b, c = pkt(), pkt(), pkt()
    assert q.process(AccessContext(), a) is a
    assert q.process(AccessContext(), b) is b
    assert q.process(AccessContext(), c) is None  # dropped
    assert q.dropped == 1
    assert q.pull() is a
    assert q.pull() is b
    assert q.pull() is None


def test_queue_rejects_bad_capacity():
    with pytest.raises(ValueError):
        QueueElement(capacity=0)


# -- Counter / Discard / Sink ----------------------------------------------------

def test_counter_accumulates():
    counter = Counter()
    counter.initialize(make_env())
    for _ in range(3):
        counter.process(AccessContext(), pkt(payload=b"q" * 10))
    assert counter.packets == 3
    assert counter.bytes == 3 * pkt(payload=b"q" * 10).wire_length
    assert "3 packets" in counter.rate_summary()


def test_discard_drops_everything():
    d = Discard()
    assert d.process(AccessContext(), pkt()) is None
    assert d.count == 1


def test_packet_sink():
    sink = PacketSink()
    assert sink.process(AccessContext(), pkt()) is None
    assert sink.count == 1
    assert sink.bytes > 0


# -- ControlElement ---------------------------------------------------------------

class FakeCounters:
    def __init__(self):
        self.l3_refs = 0


class FakeRun:
    def __init__(self):
        self.counters = FakeCounters()
        self.clock = 0.0


class FakeMachine:
    def __init__(self, freq):
        class Spec:
            freq_hz = 0.0

        self.spec = Spec()
        self.spec.freq_hz = freq


def test_control_element_throttles_over_target():
    ce = ControlElement(target_refs_per_sec=1e6, adjust_every=4, gain=1.0)
    fr = FakeRun()
    ce.attach_run(FakeMachine(1e9), fr)
    # Simulate a flow doing 10 refs per 100 cycles => 1e8 refs/sec (100x over).
    for i in range(1, 17):
        fr.counters.l3_refs = 10 * i
        fr.clock = 100.0 * i
        ce.process(AccessContext(), pkt())
    assert ce.extra_gap > 0
    assert ce.adjustments == 4


def test_control_element_relaxes_under_target():
    ce = ControlElement(target_refs_per_sec=1e12, adjust_every=2, gain=1.0)
    fr = FakeRun()
    ce.attach_run(FakeMachine(1e9), fr)
    ce.extra_gap = 500.0
    for i in range(1, 9):
        fr.counters.l3_refs = i
        fr.clock = 1000.0 * i
        ce.process(AccessContext(), pkt())
    assert ce.extra_gap < 500.0


def test_control_element_inactive_without_target():
    ce = ControlElement()
    out = ce.process(AccessContext(), pkt())
    assert out is not None
    assert ce.extra_gap == 0


def test_control_element_validation():
    with pytest.raises(ValueError):
        ControlElement(adjust_every=0)
    with pytest.raises(ValueError):
        ControlElement(gain=0)
