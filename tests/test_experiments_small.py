"""Small end-to-end runs of the experiment modules (tiny platform)."""

import pytest

from repro.experiments import fig7, limits, pipeline_vs_parallel, table1
from repro.experiments.common import ExperimentConfig

TINY = ExperimentConfig(scale=64, solo_warmup=600, solo_measure=400,
                        corun_warmup=600, corun_measure=300)


@pytest.mark.parametrize("apps", [("IP", "FW")])
def test_table1_runs_tiny(apps):
    result = table1.run(TINY, apps=apps)
    assert set(result.profiles) == set(apps)
    out = result.render()
    assert "Table 1" in out
    assert result.ordering("throughput")[0] == "IP"


def test_fig7_runs_tiny():
    result = fig7.run(TINY, cpu_ops_levels=(360, 0), n_competitors=3)
    assert len(result.measured) == 2
    assert len(result.model) == 2
    assert set(result.per_function) == set(fig7.FUNCTIONS)
    # Conversion rates are probabilities.
    for _, value in result.measured + result.model:
        assert 0.0 <= value <= 1.0
    assert result.working_set_lines > 0
    assert "MON (measured)" in result.render()


def test_limits_runs_tiny():
    result = limits.run(TINY, fractions=(0.05, 0.4), n_competitors=3)
    assert len(result.rows) == 2
    small = result.rows[0]
    large = result.rows[1]
    assert small[0] < large[0]
    # Small working sets cause less damage.
    assert small[2] <= large[2] + 0.02
    assert "Section 6" in result.render()
    assert result.overestimate(0.05) == pytest.approx(
        small[3] - small[2])
    with pytest.raises(KeyError):
        result.overestimate(0.123)


def test_pipeline_vs_parallel_runs_tiny():
    result = pipeline_vs_parallel.run(TINY, include_adversarial=False)
    assert len(result.comparisons) == 1
    mon = result.comparisons[0]
    assert mon.workload == "MON"
    assert mon.parallel_pps > 0
    assert mon.pipeline_pps > 0
    # Pipelining over two cores cannot double per-core efficiency.
    assert mon.per_core_ratio < 1.2
    assert "parallel" in result.render()
