"""Placement enumeration and the scheduling study."""

import pytest

from repro.core.prediction import ContentionPredictor, SensitivityCurve
from repro.core.profiler import SoloProfile
from repro.core.scheduling import PlacementStudy, StudyResult, enumerate_splits
from repro.hw.topology import PlatformSpec


def test_enumerate_two_type_splits():
    flows = ["A"] * 6 + ["B"] * 6
    splits = enumerate_splits(flows, per_socket=6)
    # k of A on socket 0, k = 0..6, folded by symmetry -> 4 distinct splits.
    assert len(splits) == 4
    keys = {tuple(sorted((s[0].count("A"), s[1].count("A")))) for s in splits}
    assert keys == {(0, 6), (1, 5), (2, 4), (3, 3)}


def test_enumerate_uniform_combination_has_one_split():
    splits = enumerate_splits(["A"] * 12, per_socket=6)
    assert len(splits) == 1


def test_enumerate_rejects_wrong_count():
    with pytest.raises(ValueError):
        enumerate_splits(["A"] * 10, per_socket=6)


def test_enumerate_preserves_multiset():
    flows = ["A"] * 4 + ["B"] * 4 + ["C"] * 4
    for left, right in enumerate_splits(flows, per_socket=6):
        assert len(left) == len(right) == 6
        assert sorted(left + right) == sorted(flows)


def profile(app, refs, throughput=1e6):
    return SoloProfile(
        app=app, throughput=throughput, cycles_per_instruction=1.0,
        l3_refs_per_sec=refs, l3_hits_per_sec=refs * 0.7,
        cycles_per_packet=1000, l3_refs_per_packet=5,
        l3_misses_per_packet=1, l2_hits_per_packet=2,
    )


def make_study():
    spec = PlatformSpec.westmere().scaled(32)
    profiles = {
        "HOT": profile("HOT", refs=20e6),   # aggressive & sensitive
        "COLD": profile("COLD", refs=1e6),  # neither
    }
    curves = {
        # HOT suffers with competition, COLD barely.
        "HOT": SensitivityCurve("HOT", [(20e6, 0.10), (100e6, 0.30)]),
        "COLD": SensitivityCurve("COLD", [(100e6, 0.02)]),
    }
    predictor = ContentionPredictor(profiles, curves)
    return PlacementStudy(spec, profiles, predictor=predictor)


def test_predict_study_identifies_balanced_best():
    study = make_study()
    result = study.run(["HOT"] * 6 + ["COLD"] * 6, method="predict")
    assert isinstance(result, StudyResult)
    # Worst: all HOT together; best: spread 3/3.
    worst_counts = sorted(g.count("HOT") for g in result.worst.split)
    best_counts = sorted(g.count("HOT") for g in result.best.split)
    assert worst_counts == [0, 6]
    assert best_counts == [3, 3]
    assert result.scheduling_gain > 0


def test_predict_requires_predictor():
    spec = PlatformSpec.westmere().scaled(32)
    study = PlacementStudy(spec, profiles={})
    with pytest.raises(RuntimeError):
        study.predict_split((("A",) * 6, ("A",) * 6))


def test_study_rejects_single_socket():
    with pytest.raises(ValueError):
        PlacementStudy(PlatformSpec.westmere().single_socket(), profiles={})


def test_unknown_method_rejected():
    study = make_study()
    with pytest.raises(ValueError):
        study.run(["HOT"] * 12, method="guess")


def test_max_splits_prefilters_with_predictor():
    study = make_study()
    flows = ["HOT"] * 6 + ["COLD"] * 6
    # Force the prefilter path; it must still find best/worst extremes.
    result = study.run(flows, method="predict")
    all_gain = result.scheduling_gain
    assert all_gain >= 0


def test_max_splits_prefilter_requires_predictor():
    spec = PlatformSpec.westmere().scaled(32)
    study = PlacementStudy(spec, profiles={
        "HOT": profile("HOT", refs=20e6),
        "COLD": profile("COLD", refs=1e6),
    })
    # 6 HOT + 6 COLD has 4 distinct splits; capping below that needs a
    # predictor to pre-rank them.
    with pytest.raises(RuntimeError, match="predictor"):
        study.run(["HOT"] * 6 + ["COLD"] * 6, method="simulate",
                  max_splits=2)


# -- coverage: degenerate combinations ----------------------------------------

def test_single_pair_has_one_split():
    # One flow per socket: only one distinct placement exists.
    assert enumerate_splits(["A", "B"], per_socket=1) == [(("A",), ("B",))]


def test_more_flows_than_cores_rejected():
    study = make_study()
    with pytest.raises(ValueError, match="flows"):
        study.run(["HOT"] * 14, method="predict")


def test_oversized_split_group_rejected():
    study = make_study()
    with pytest.raises(ValueError, match="socket"):
        study.simulate_split((("HOT",) * 7, ("HOT",) * 5))


def test_all_identical_flows_give_zero_scheduling_gain():
    study = make_study()
    result = study.run(["HOT"] * 12, method="predict")
    assert len(result.outcomes) == 1
    assert result.best is result.worst
    assert result.scheduling_gain == 0.0


# -- coverage: simulated study, serial vs. sharded ----------------------------

def simulation_study():
    spec = PlatformSpec.westmere().scaled(64)
    return PlacementStudy(spec, profiles={"MON": profile("MON", refs=5e6)},
                          warmup_packets=80, measure_packets=80)


def test_all_identical_flows_simulated_one_split_zero_gain():
    result = simulation_study().run(["MON"] * 12, method="simulate")
    assert len(result.outcomes) == 1
    assert result.scheduling_gain == 0.0
    assert set(result.best.per_flow_drop) == {f"MON@{i}" for i in range(12)}


def test_sharded_simulation_matches_serial():
    serial = simulation_study().run(["MON"] * 12, method="simulate")
    sharded = simulation_study().run(["MON"] * 12, method="simulate", jobs=2)
    assert [o.split for o in sharded.outcomes] \
        == [o.split for o in serial.outcomes]
    assert [o.per_flow_drop for o in sharded.outcomes] \
        == [o.per_flow_drop for o in serial.outcomes]
    assert [o.average_drop for o in sharded.outcomes] \
        == [o.average_drop for o in serial.outcomes]
