"""Rabin fingerprinting: rolling updates, sampling, aligned mode."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.fingerprint import RabinFingerprinter


def test_fingerprint_requires_exact_window():
    fp = RabinFingerprinter(window=8)
    with pytest.raises(ValueError):
        fp.fingerprint(b"short")
    with pytest.raises(ValueError):
        fp.fingerprint(b"x" * 9)


def test_fingerprint_deterministic_and_content_sensitive():
    fp = RabinFingerprinter(window=8)
    a = fp.fingerprint(b"abcdefgh")
    assert a == fp.fingerprint(b"abcdefgh")
    assert a != fp.fingerprint(b"abcdefgi")


def test_rolling_covers_every_window():
    fp = RabinFingerprinter(window=4)
    data = b"0123456789"
    offsets = [off for off, _ in fp.rolling(data)]
    assert offsets == list(range(7))


def test_rolling_short_input_yields_nothing():
    fp = RabinFingerprinter(window=16)
    assert list(fp.rolling(b"tiny")) == []


@given(st.binary(min_size=4, max_size=120))
@settings(max_examples=60, deadline=None)
def test_property_rolling_equals_direct(data):
    """O(1) rolling updates must match recomputing each window."""
    fp = RabinFingerprinter(window=4)
    for off, value in fp.rolling(data):
        assert value == fp.fingerprint(data[off:off + 4])


def test_representative_sampling_subset_of_rolling():
    fp = RabinFingerprinter(window=8, sample_bits=3)
    data = bytes(range(256)) * 2
    rep = fp.representative(data)
    all_fps = dict(fp.rolling(data))
    for off, value in rep:
        assert all_fps[off] == value
        assert value & 0b111 == 0


def test_sampling_rate_roughly_matches_bits():
    fp = RabinFingerprinter(window=8, sample_bits=3)
    data = bytes((i * 37 + 11) % 256 for i in range(4096))
    rep = fp.representative(data)
    total = len(data) - 8 + 1
    # Expect ~1/8 of windows sampled; allow generous slack.
    assert total / 16 < len(rep) < total / 3


def test_aligned_chunks():
    fp = RabinFingerprinter(window=8)
    data = b"A" * 8 + b"B" * 8 + b"C" * 4  # trailing partial chunk ignored
    chunks = fp.aligned(data)
    assert [off for off, _ in chunks] == [0, 8]
    assert chunks[0][1] == fp.fingerprint(b"A" * 8)
    assert chunks[1][1] == fp.fingerprint(b"B" * 8)


def test_aligned_matches_rolling_at_aligned_offsets():
    fp = RabinFingerprinter(window=16)
    data = bytes((i * 13) % 256 for i in range(80))
    rolling = dict(fp.rolling(data))
    for off, value in fp.aligned(data):
        assert rolling[off] == value


def test_constructor_validation():
    with pytest.raises(ValueError):
        RabinFingerprinter(window=0)
    with pytest.raises(ValueError):
        RabinFingerprinter(window=8, sample_bits=-1)


def test_identical_chunks_share_fingerprints():
    fp = RabinFingerprinter(window=32)
    chunk = bytes(range(32))
    data = chunk * 3
    values = {v for _, v in fp.aligned(data)}
    assert len(values) == 1
