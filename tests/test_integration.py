"""End-to-end shape tests on a tiny platform.

These exercise the paper's qualitative findings at a heavily scaled-down
configuration (fast, loose thresholds); the quantitative reproduction
lives in the benchmark harness.
"""

import pytest

from repro.apps.registry import app_factory
from repro.apps.synthetic import syn_factory, syn_max_factory
from repro.core.prediction import SensitivityCurve
from repro.core.profiler import profile_apps
from repro.hw.counters import performance_drop
from repro.hw.machine import Machine
from repro.hw.topology import PlatformSpec

SCALE = 32
WARM, MEAS = 2000, 800


@pytest.fixture(scope="module")
def spec():
    return PlatformSpec.westmere().scaled(SCALE).single_socket()


@pytest.fixture(scope="module")
def spec2():
    return PlatformSpec.westmere().scaled(SCALE)


@pytest.fixture(scope="module")
def profiles(spec):
    return profile_apps(["IP", "MON", "FW", "RE", "VPN"], spec,
                        warmup_packets=WARM, measure_packets=MEAS)


def corun(spec, target, competitor_factory, n=5, warm=WARM, meas=MEAS,
          data_domain=None, competitor_cores=None):
    m = Machine(spec)
    m.add_flow(app_factory(target), core=0, label="T")
    cores = competitor_cores or range(1, 1 + n)
    labels = []
    for i, core in enumerate(cores):
        fr = m.add_flow(competitor_factory, core=core,
                        data_domain=data_domain, label=f"C{i}")
        labels.append(fr.label)
    result = m.run(warmup_packets=warm, measure_packets=meas)
    return result, labels


# -- Table 1 shapes ------------------------------------------------------------

def test_solo_refs_per_sec_ordering(profiles):
    """Paper Table 1: MON and IP lead; FW trails by an order of magnitude."""
    refs = {a: p.l3_refs_per_sec for a, p in profiles.items()}
    assert refs["MON"] > refs["RE"]
    assert refs["IP"] > refs["VPN"]
    assert refs["FW"] * 4 < refs["RE"]


def test_solo_hits_per_sec_ordering(profiles):
    hits = {a: p.l3_hits_per_sec for a, p in profiles.items()}
    assert hits["MON"] > hits["IP"] > hits["FW"]
    assert hits["MON"] > hits["RE"]
    assert hits["MON"] > hits["VPN"]


def test_solo_cost_ordering(profiles):
    """FW and RE are the expensive flows; IP the cheapest."""
    cpp = {a: p.cycles_per_packet for a, p in profiles.items()}
    assert cpp["FW"] > 5 * cpp["MON"]
    assert cpp["RE"] > cpp["MON"] > cpp["IP"]
    assert cpp["VPN"] > cpp["MON"]


def test_vpn_is_cpu_intensive(profiles):
    """VPN has the lowest cycles/instruction (ALU-dense AES)."""
    cpi = {a: p.cycles_per_instruction for a, p in profiles.items()}
    assert cpi["VPN"] == min(cpi.values())


# -- contention shapes ----------------------------------------------------------

def test_mon_is_sensitive_fw_is_not(spec, profiles):
    r_mon, _ = corun(spec, "MON", syn_max_factory())
    r_fw, _ = corun(spec, "FW", syn_max_factory())
    drop_mon = performance_drop(profiles["MON"].throughput,
                                r_mon["T"].packets_per_sec)
    drop_fw = performance_drop(profiles["FW"].throughput,
                               r_fw["T"].packets_per_sec)
    assert drop_mon > 0.08
    assert drop_fw < drop_mon / 2


def test_drop_grows_with_competition(spec, profiles):
    drops = []
    for ops in (720, 60, 0):
        result, _ = corun(spec, "MON", syn_factory(cpu_ops_per_ref=ops))
        drops.append(performance_drop(profiles["MON"].throughput,
                                      result["T"].packets_per_sec))
    assert drops[0] < drops[-1]
    assert all(d > -0.03 for d in drops)


def test_contention_converts_hits_to_misses(spec):
    m = Machine(spec)
    m.add_flow(app_factory("MON"), core=0, label="T")
    solo = m.run(warmup_packets=WARM, measure_packets=MEAS)["T"]
    crowded, _ = corun(spec, "MON", syn_max_factory())
    assert crowded["T"].l3_hit_rate < solo.l3_hit_rate
    # Per-function: the uniformly-accessed flow table converts, the
    # per-packet bookkeeping lines do not (Figure 7).
    solo_fs = solo.tag_hit_rate("flow_statistics")
    corun_fs = crowded["T"].tag_hit_rate("flow_statistics")
    assert corun_fs < solo_fs
    assert crowded["T"].tag_hit_rate("skb_recycle") > 0.8


def test_cache_dominates_memory_controller(spec2, profiles):
    """Figure 4: cache-only contention hurts far more than MC-only."""
    solo_m = Machine(spec2)
    solo_m.add_flow(app_factory("MON"), core=0, label="T")
    solo = solo_m.run(warmup_packets=WARM, measure_packets=MEAS)["T"]

    cache_only, _ = corun(spec2, "MON", syn_max_factory(), data_domain=1)
    mc_only, _ = corun(spec2, "MON", syn_max_factory(), data_domain=0,
                       competitor_cores=range(6, 11))
    drop_cache = performance_drop(solo.packets_per_sec,
                                  cache_only["T"].packets_per_sec)
    drop_mc = performance_drop(solo.packets_per_sec,
                               mc_only["T"].packets_per_sec)
    assert drop_cache > drop_mc
    assert drop_mc < 0.12


def test_sensitivity_curve_flattens(spec, profiles):
    """Observation (c): sharp rise, then a flat tail."""
    points = []
    for ops in (1440, 360, 60, 0):
        result, labels = corun(spec, "MON", syn_factory(cpu_ops_per_ref=ops))
        competing = sum(result[l].l3_refs_per_sec for l in labels)
        points.append((competing, performance_drop(
            profiles["MON"].throughput, result["T"].packets_per_sec)))
    curve = SensitivityCurve("MON", points)
    xs, ys = curve.refs, curve.drops
    early_slope = (ys[2] - ys[0]) / (xs[2] - xs[0])
    late_slope = (ys[-1] - ys[-2]) / max(1.0, (xs[-1] - xs[-2]))
    assert early_slope > 2 * late_slope
