"""pcap reader/writer."""

import io
import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.packet import Packet
from repro.net.pcapfile import (
    LINKTYPE_ETHERNET,
    PCAP_MAGIC,
    PcapReader,
    PcapWriter,
    read_pcap,
    write_pcap,
)


def packets(n=5):
    return [Packet.udp(src=i, dst=i + 1, sport=1000 + i, dport=2000,
                       payload=bytes([i]) * 10, compute_checksum=True)
            for i in range(n)]


def test_roundtrip_in_memory():
    buf = io.BytesIO()
    writer = PcapWriter(buf)
    original = packets()
    writer.write_all(original, interval=0.001)
    assert writer.packets_written == 5

    buf.seek(0)
    reader = PcapReader(buf)
    assert reader.linktype == LINKTYPE_ETHERNET
    restored = list(reader.packets())
    assert len(restored) == 5
    for (ts, got), want in zip(restored, original):
        assert got.five_tuple() == want.five_tuple()
        assert got.payload == want.payload
    times = [ts for ts, _ in restored]
    assert times == sorted(times)
    assert times[1] == pytest.approx(0.001, abs=1e-6)


def test_roundtrip_via_files(tmp_path):
    path = str(tmp_path / "trace.pcap")
    original = packets(8)
    assert write_pcap(path, original) == 8
    restored = read_pcap(path)
    assert [p.five_tuple() for p in restored] == \
        [p.five_tuple() for p in original]


def test_global_header_layout():
    buf = io.BytesIO()
    PcapWriter(buf, snaplen=4096)
    raw = buf.getvalue()
    magic, major, minor, _, _, snaplen, link = struct.unpack("<IHHiIII", raw)
    assert magic == PCAP_MAGIC
    assert (major, minor) == (2, 4)
    assert snaplen == 4096
    assert link == LINKTYPE_ETHERNET


def test_reader_rejects_garbage():
    with pytest.raises(ValueError):
        PcapReader(io.BytesIO(b"not a pcap file at all......"))
    with pytest.raises(ValueError):
        PcapReader(io.BytesIO(b"\x00" * 4))


def test_reader_rejects_wrong_linktype():
    buf = io.BytesIO()
    buf.write(struct.pack("<IHHiIII", PCAP_MAGIC, 2, 4, 0, 0, 65535, 101))
    buf.seek(0)
    with pytest.raises(ValueError, match="link type"):
        PcapReader(buf)


def test_reader_handles_big_endian():
    buf = io.BytesIO()
    buf.write(struct.pack(">IHHiIII", PCAP_MAGIC, 2, 4, 0, 0, 65535,
                          LINKTYPE_ETHERNET))
    data = packets(1)[0].to_bytes()
    buf.write(struct.pack(">IIII", 1, 2, len(data), len(data)))
    buf.write(data)
    buf.seek(0)
    got = list(PcapReader(buf).packets())
    assert len(got) == 1


def test_reader_detects_truncation():
    buf = io.BytesIO()
    writer = PcapWriter(buf)
    writer.write(packets(1)[0])
    truncated = buf.getvalue()[:-4]
    reader = PcapReader(io.BytesIO(truncated))
    with pytest.raises(ValueError, match="truncated"):
        list(reader)


def test_unparseable_records_skipped_unless_strict():
    buf = io.BytesIO()
    writer = PcapWriter(buf)
    good = packets(1)[0]
    writer.write(good)
    # A raw non-IP record.
    junk = b"\xff" * 40
    buf.write(struct.pack("<IIII", 0, 0, len(junk), len(junk)))
    buf.write(junk)
    buf.seek(0)
    got = list(PcapReader(buf).packets())
    assert len(got) == 1
    buf.seek(0)
    with pytest.raises(ValueError):
        list(PcapReader(buf).packets(strict=True))


@given(st.lists(st.binary(max_size=64), min_size=1, max_size=10))
@settings(max_examples=25, deadline=None)
def test_property_payloads_roundtrip(payloads):
    original = [Packet.udp(src=1, dst=2, payload=p, compute_checksum=True)
                for p in payloads]
    buf = io.BytesIO()
    PcapWriter(buf).write_all(original)
    buf.seek(0)
    restored = [p for _, p in PcapReader(buf).packets()]
    assert [p.payload for p in restored] == payloads
