"""Experiment configuration plumbing."""

import pytest

from repro.experiments.common import BENCH_CONFIG, TEST_CONFIG, ExperimentConfig


def test_spec_uses_scale():
    config = ExperimentConfig(scale=16)
    assert config.spec().scale == 16
    assert config.spec().n_sockets == 2
    assert config.socket_spec().n_sockets == 1


def test_quicker_divides_packet_counts():
    config = ExperimentConfig(solo_warmup=4000, solo_measure=2000,
                              corun_warmup=4000, corun_measure=1000)
    quick = config.quicker(2)
    assert quick.solo_warmup == 2000
    assert quick.corun_measure == 500
    assert quick.scale == config.scale


def test_quicker_has_floors():
    config = ExperimentConfig()
    tiny = config.quicker(10_000)
    assert tiny.solo_warmup >= 300
    assert tiny.corun_measure >= 200


def test_presets_are_consistent():
    assert BENCH_CONFIG.scale >= 1
    assert TEST_CONFIG.scale > BENCH_CONFIG.scale  # tests run smaller
    assert TEST_CONFIG.solo_warmup < BENCH_CONFIG.solo_warmup
