"""Packet construction, hashing, and serialization."""

import pytest
from hypothesis import given, strategies as st

from repro.net.packet import Packet


def test_udp_constructor_lengths():
    p = Packet.udp(src=1, dst=2, payload=b"x" * 100)
    assert p.ip.total_length == 20 + 8 + 100
    assert p.l4.length == 108
    assert p.wire_length == 14 + 128
    assert p.header_bytes == 14 + 20 + 8


def test_tcp_constructor():
    p = Packet.tcp(src=1, dst=2, payload=b"y" * 10, seq=7)
    assert p.ip.protocol == 6
    assert p.l4.seq == 7
    assert p.ip.total_length == 20 + 20 + 10


def test_checksum_offload_default():
    p = Packet.udp(src=1, dst=2)
    assert p.ip.checksum == 0
    q = Packet.udp(src=1, dst=2, compute_checksum=True)
    assert q.ip.checksum != 0
    assert q.ip.is_valid()


def test_five_tuple_and_hash_stability():
    p = Packet.udp(src=1, dst=2, sport=3, dport=4)
    q = Packet.udp(src=1, dst=2, sport=3, dport=4)
    assert p.five_tuple() == (1, 2, 17, 3, 4)
    assert p.flow_hash() == q.flow_hash()


def test_hash_differs_across_flows():
    hashes = {
        Packet.udp(src=s, dst=d, sport=sp, dport=dp).flow_hash()
        for s, d, sp, dp in [(1, 2, 3, 4), (1, 2, 3, 5), (1, 2, 4, 4),
                             (1, 3, 3, 4), (2, 2, 3, 4)]
    }
    assert len(hashes) == 5


def test_serialization_roundtrip_udp():
    p = Packet.udp(src=0x0A000001, dst=0x0A000002, sport=1000, dport=2000,
                   payload=b"hello world", compute_checksum=True)
    q = Packet.from_bytes(p.to_bytes())
    assert q.five_tuple() == p.five_tuple()
    assert q.payload == b"hello world"
    assert q.ip.checksum == p.ip.checksum


def test_serialization_roundtrip_tcp():
    p = Packet.tcp(src=5, dst=6, payload=b"abc", compute_checksum=True)
    q = Packet.from_bytes(p.to_bytes())
    assert q.payload == b"abc"
    assert q.ip.protocol == 6


def test_from_bytes_rejects_unknown_protocol():
    p = Packet.udp(src=1, dst=2, compute_checksum=True)
    p.ip.protocol = 47  # GRE
    with pytest.raises(ValueError):
        Packet.from_bytes(p.to_bytes())


@given(
    src=st.integers(min_value=0, max_value=0xFFFFFFFF),
    dst=st.integers(min_value=0, max_value=0xFFFFFFFF),
    sport=st.integers(min_value=0, max_value=0xFFFF),
    dport=st.integers(min_value=0, max_value=0xFFFF),
    payload=st.binary(max_size=200),
)
def test_property_udp_serialization_roundtrip(src, dst, sport, dport, payload):
    p = Packet.udp(src=src, dst=dst, sport=sport, dport=dport,
                   payload=payload, compute_checksum=True)
    q = Packet.from_bytes(p.to_bytes())
    assert q.five_tuple() == p.five_tuple()
    assert q.payload == payload
