"""Radix trie: LPM correctness against a brute-force reference model."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.radixtrie import (
    DEFAULT_STRIDES,
    RadixTrie,
    RouteTableBuilder,
    SLOT_BYTES,
)
from repro.net.addresses import prefix_mask


def brute_force_lpm(routes, addr):
    """Reference LPM: longest matching prefix wins; later inserts overwrite."""
    best = None
    best_len = -1
    for prefix, plen, hop in routes:
        if addr & prefix_mask(plen) == prefix and plen >= best_len:
            # Equal length: the most recently inserted wins.
            if plen > best_len:
                best, best_len = hop, plen
            else:
                best = hop
    return best


def build(routes, strides=DEFAULT_STRIDES):
    trie = RadixTrie(strides)
    for prefix, plen, hop in routes:
        trie.insert(prefix, plen, hop)
    return trie


def test_strides_must_cover_32_bits():
    with pytest.raises(ValueError):
        RadixTrie(strides=(8, 8))
    with pytest.raises(ValueError):
        RadixTrie(strides=(8, -4, 28))


def test_empty_trie_returns_none():
    trie = RadixTrie()
    hop, visited = trie.lookup(0x01020304)
    assert hop is None
    assert visited  # root is always probed


def test_default_route():
    trie = RadixTrie()
    trie.insert(0, 0, 42)
    assert trie.lookup_route(0xDEADBEEF) == 42


def test_exact_and_longest_match():
    routes = [
        (0x0A000000, 8, 1),     # 10/8
        (0x0A010000, 16, 2),    # 10.1/16
        (0x0A010100, 24, 3),    # 10.1.1/24
    ]
    trie = build(routes)
    assert trie.lookup_route(0x0A020202) == 1
    assert trie.lookup_route(0x0A01FF01) == 2
    assert trie.lookup_route(0x0A010105) == 3
    assert trie.lookup_route(0x0B000000) is None


def test_non_stride_aligned_prefix_expansion():
    # /18 does not align with any stride boundary below the 8-bit root.
    prefix = 0xC0A84000  # 192.168.64/18
    trie = build([(prefix, 18, 9)])
    assert trie.lookup_route(0xC0A84001) == 9
    assert trie.lookup_route(0xC0A87FFF) == 9
    assert trie.lookup_route(0xC0A88000) is None


def test_host_route():
    trie = build([(0x0A0B0C0D, 32, 7)])
    assert trie.lookup_route(0x0A0B0C0D) == 7
    assert trie.lookup_route(0x0A0B0C0C) is None


def test_insert_validates():
    trie = RadixTrie()
    with pytest.raises(ValueError):
        trie.insert(0, 33, 1)
    with pytest.raises(ValueError):
        trie.insert(1 << 32, 8, 1)
    with pytest.raises(ValueError):
        trie.insert(0x0A000001, 8, 1)  # bits beyond /8


def test_visited_offsets_are_slot_aligned():
    trie = build([(0x0A000000, 8, 1), (0x0A010000, 16, 2)])
    _, visited = trie.lookup(0x0A010203)
    assert all(off % SLOT_BYTES == 0 for off in visited)
    assert all(0 <= off < trie.total_bytes for off in visited)
    assert len(visited) >= 2


def test_total_bytes_grows_with_nodes():
    trie = RadixTrie()
    before = trie.total_bytes
    trie.insert(0x0A010100, 24, 1)
    assert trie.total_bytes > before
    assert trie.n_nodes > 1


@st.composite
def route_sets(draw):
    n = draw(st.integers(min_value=1, max_value=40))
    routes = []
    for _ in range(n):
        plen = draw(st.integers(min_value=1, max_value=32))
        prefix = draw(st.integers(min_value=0, max_value=0xFFFFFFFF))
        prefix &= prefix_mask(plen)
        hop = draw(st.integers(min_value=0, max_value=100))
        routes.append((prefix, plen, hop))
    return routes


@given(routes=route_sets(), addrs=st.lists(
    st.integers(min_value=0, max_value=0xFFFFFFFF), min_size=1, max_size=30))
@settings(max_examples=80, deadline=None)
def test_property_matches_brute_force(routes, addrs):
    trie = build(routes)
    for addr in addrs:
        assert trie.lookup_route(addr) == brute_force_lpm(routes, addr)


@given(routes=route_sets())
@settings(max_examples=40, deadline=None)
def test_property_lookup_hits_inserted_prefixes(routes):
    trie = build(routes)
    for prefix, plen, _ in routes:
        assert trie.lookup_route(prefix) == brute_force_lpm(routes, prefix)


def test_builder_respects_entry_count():
    rng = random.Random(3)
    trie = RouteTableBuilder(rng).build(500)
    assert trie.n_routes == 501  # 500 + default route
    assert trie.default_route is not None


def test_builder_addr_bits_bounds_prefixes():
    rng = random.Random(3)
    builder = RouteTableBuilder(rng, addr_bits=24)
    for _ in range(200):
        prefix, plen = builder.random_prefix()
        assert prefix < (1 << 24)


def test_builder_rejects_bad_universe():
    with pytest.raises(ValueError):
        RouteTableBuilder(random.Random(0), addr_bits=4)


def test_builder_lookup_always_resolves_via_default():
    rng = random.Random(5)
    trie = RouteTableBuilder(rng).build(100)
    for _ in range(100):
        assert trie.lookup_route(rng.getrandbits(32)) is not None
