"""Solo profiling and co-run validation harness (small-scale integration)."""

import pytest

from repro.core.profiler import SoloProfile, profile_apps, profile_solo
from repro.core.validation import measure_drop, run_corun
from repro.hw.topology import PlatformSpec


@pytest.fixture(scope="module")
def spec():
    return PlatformSpec.westmere().scaled(64).single_socket()


@pytest.fixture(scope="module")
def ip_profile(spec):
    return profile_solo("IP", spec, warmup_packets=800, measure_packets=800)


def test_profile_has_sane_columns(ip_profile):
    p = ip_profile
    assert p.app == "IP"
    assert p.throughput > 0
    assert p.cycles_per_packet > 100
    assert p.cycles_per_instruction > 0.3
    assert p.l3_refs_per_sec > p.l3_hits_per_sec >= 0
    assert p.l3_refs_per_packet >= p.l3_misses_per_packet
    assert p.l3_hits_per_packet == pytest.approx(
        p.l3_refs_per_packet - p.l3_misses_per_packet
    )


def test_profile_is_deterministic(spec, ip_profile):
    again = profile_solo("IP", spec, warmup_packets=800, measure_packets=800)
    assert again.throughput == ip_profile.throughput


def test_profile_apps_averages_repeats(spec):
    profiles = profile_apps(["IP"], spec, warmup_packets=400,
                            measure_packets=400, repeats=2)
    assert set(profiles) == {"IP"}
    assert profiles["IP"].throughput > 0


def test_profile_apps_rejects_zero_repeats(spec):
    with pytest.raises(ValueError):
        profile_apps(["IP"], spec, repeats=0)


def test_run_corun_measures_everyone(spec):
    corun = run_corun([("IP", 0), ("MON", 1)], spec,
                      warmup_packets=600, measure_packets=600)
    assert set(corun.apps.values()) == {"IP", "MON"}
    assert all(v > 0 for v in corun.throughput.values())
    assert corun.competing_refs(exclude="IP@0") == \
        pytest.approx(corun.refs_per_sec["MON@1"])


def test_run_corun_rejects_empty(spec):
    with pytest.raises(ValueError):
        run_corun([], spec)


def test_measure_drop_is_nonnegative_under_contention(spec, ip_profile):
    drop, corun = measure_drop(
        "IP", ["MON", "MON"], spec, solo=ip_profile,
        warmup_packets=800, measure_packets=800,
    )
    # Contention can only hurt (within measurement noise).
    assert drop > -0.05
    assert "IP@0" in corun.throughput


def test_measure_drop_rejects_overfull_socket(spec, ip_profile):
    with pytest.raises(ValueError):
        measure_drop("IP", ["MON"] * 6, spec, solo=ip_profile)
