"""Capacity planner on a synthetic predictor."""

import pytest

from repro.core.capacity import SLA, CapacityPlanner, FlowPlan
from repro.core.prediction import ContentionPredictor, SensitivityCurve
from repro.core.profiler import SoloProfile


def profile(app, refs, throughput):
    return SoloProfile(
        app=app, throughput=throughput, cycles_per_instruction=1.0,
        l3_refs_per_sec=refs, l3_hits_per_sec=refs * 0.7,
        cycles_per_packet=1000, l3_refs_per_packet=5,
        l3_misses_per_packet=1, l2_hits_per_packet=2,
    )


@pytest.fixture
def planner():
    profiles = {
        "MON": profile("MON", refs=20e6, throughput=3e6),
        "FW": profile("FW", refs=1e6, throughput=0.2e6),
    }
    curves = {
        "MON": SensitivityCurve("MON", [(20e6, 0.10), (100e6, 0.25)]),
        "FW": SensitivityCurve("FW", [(100e6, 0.02)]),
    }
    predictor = ContentionPredictor(profiles, curves)
    return CapacityPlanner(predictor, slas=[
        SLA("MON", min_throughput=2.5e6),
        SLA("FW", min_throughput=0.15e6),
    ])


def test_assess_single_flow(planner):
    assessment = planner.assess(["MON"])
    assert assessment.feasible
    flow = assessment.flows[0]
    assert flow.predicted_drop == 0.0
    assert flow.predicted_throughput == pytest.approx(3e6)
    assert flow.headroom == pytest.approx(3e6 / 2.5e6 - 1)


def test_assess_contended_deployment(planner):
    assessment = planner.assess(["MON", "MON", "MON", "MON"])
    mon = assessment.flows[0]
    # 3 competitors x 20M refs = 60M -> interpolated drop between 10% & 25%.
    assert 0.10 < mon.predicted_drop < 0.25
    assert mon.predicted_throughput < 3e6


def test_violations_detected(planner):
    # Six MON flows: 100M competing refs -> 25% drop -> 2.25M < SLA 2.5M.
    assessment = planner.assess(["MON"] * 6)
    assert not assessment.feasible
    assert len(assessment.violations) == 6
    assert assessment.worst_headroom < 0


def test_max_coresident(planner):
    n, assessment = planner.max_coresident("MON", "MON", max_slots=5)
    # With each MON competitor adding 20M refs, the SLA (<=16.7% drop)
    # holds through ~2 competitors (40M refs -> ~13.75% drop).
    assert n == 2
    assert assessment.feasible
    assert len(assessment.flows) == 3


def test_max_coresident_benign_filler(planner):
    n, assessment = planner.max_coresident("MON", "FW", max_slots=5)
    assert n == 5  # FW barely competes; MON's SLA survives a full socket
    assert assessment.feasible


def test_rank_deployments(planner):
    ranked = planner.rank_deployments([
        ["MON"] * 6,            # infeasible
        ["MON", "FW", "FW"],    # comfortable
        ["MON", "MON", "MON"],  # tighter but feasible
    ])
    assert ranked[0][0] == ("MON", "FW", "FW")
    assert ranked[-1][0] == ("MON",) * 6
    assert not ranked[-1][1].feasible


def test_flows_without_sla_always_pass(planner):
    planner.slas.pop("FW")
    assessment = planner.assess(["FW"] * 6)
    assert assessment.feasible
    assert assessment.worst_headroom == float("inf")


def test_validation(planner):
    with pytest.raises(ValueError):
        planner.assess([])
    with pytest.raises(ValueError):
        planner.max_coresident("MON", "FW", max_slots=-1)
    with pytest.raises(ValueError):
        SLA("X", min_throughput=-1)


def test_flow_plan_headroom_without_sla():
    plan = FlowPlan(app="X", predicted_throughput=1.0, predicted_drop=0.0,
                    sla=None)
    assert plan.meets_sla
    assert plan.headroom == float("inf")
