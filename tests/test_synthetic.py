"""SYN synthetic application."""

import pytest

from repro.apps.synthetic import (
    SWEEP_CPU_OPS,
    SynApp,
    syn_factory,
    syn_max_factory,
)
from repro.constants import SYN_ARRAY_FRACTION
from repro.mem.access import AccessContext
from tests.conftest import make_env


def test_defaults_array_to_l3_fraction():
    env = make_env()
    app = SynApp(env)
    assert app.region.size == \
        ((int(env.spec.l3_size * SYN_ARRAY_FRACTION) + 63) // 64) * 64


def test_refs_per_packet():
    env = make_env()
    app = SynApp(env, refs_per_packet=16)
    ctx = AccessContext()
    app.run_packet(ctx)
    assert ctx.n_references == 16


def test_refs_stay_inside_array():
    env = make_env()
    app = SynApp(env, refs_per_packet=200, array_bytes=4096)
    ctx = AccessContext()
    app.run_packet(ctx)
    lo = app.region.base >> 6
    hi = app.region.end >> 6
    assert all(lo <= line < hi for line in ctx.lines_touched())


def test_cpu_ops_add_gap():
    env = make_env()
    busy = SynApp(env, cpu_ops_per_ref=100, refs_per_packet=8)
    ctx = AccessContext()
    busy.run_packet(ctx)
    gaps = ctx.program[0::3]
    assert all(g >= 100 for g in gaps)
    assert busy.counter == 800


def test_syn_max_has_zero_gap():
    env = make_env()
    app = syn_max_factory()(env)
    assert app.name == "SYN_MAX"
    ctx = AccessContext()
    app.run_packet(ctx)
    assert all(g == 0 for g in ctx.program[0::3])


def test_factory_passes_parameters():
    env = make_env()
    app = syn_factory(cpu_ops_per_ref=7, refs_per_packet=3,
                      array_bytes=8192, name="S7")(env)
    assert app.cpu_ops_per_ref == 7
    assert app.refs_per_packet == 3
    assert app.name == "S7"


def test_validation():
    env = make_env()
    with pytest.raises(ValueError):
        SynApp(env, refs_per_packet=0)
    with pytest.raises(ValueError):
        SynApp(make_env(), cpu_ops_per_ref=-1)


def test_sweep_levels_descend_to_syn_max():
    assert SWEEP_CPU_OPS[-1] == 0
    assert list(SWEEP_CPU_OPS) == sorted(SWEEP_CPU_OPS, reverse=True)
