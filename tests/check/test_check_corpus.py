"""Corpus serialization: schema, content addressing, iteration."""

from __future__ import annotations

import json
import os

import pytest

from repro.check.corpus import (ReproEntry, SCHEMA, corpus_paths, entry_path,
                                iter_corpus, load_repro, save_repro)
from repro.check.scenarios import FlowConf, ScenarioConfig

pytestmark = pytest.mark.check

CONFIG = ScenarioConfig(seed=9, warmup=1, measure=30,
                        flows=(FlowConf("app", 0, app="IP"),),
                        name="corpus-unit")


def _entry(**kw):
    defaults = dict(config=CONFIG, violations=["[x] broke"],
                    engines=["scalar"], note="unit")
    defaults.update(kw)
    return ReproEntry(**defaults)


def test_round_trip(tmp_path):
    entry = _entry(injected_fault="event-undercount")
    path = save_repro(str(tmp_path), entry)
    assert path == entry_path(str(tmp_path), entry)
    loaded = load_repro(path)
    assert loaded.config == entry.config
    assert loaded.violations == entry.violations
    assert loaded.engines == ["scalar"]
    assert loaded.injected_fault == "event-undercount"
    assert loaded.note == "unit"
    assert loaded.digest == entry.digest


def test_content_addressing_deduplicates(tmp_path):
    save_repro(str(tmp_path), _entry(note="first"))
    save_repro(str(tmp_path), _entry(note="second"))
    paths = corpus_paths(str(tmp_path))
    assert len(paths) == 1
    assert load_repro(paths[0]).note == "second"


def test_iter_corpus(tmp_path):
    assert iter_corpus(str(tmp_path / "missing")) == []
    save_repro(str(tmp_path), _entry())
    entries = iter_corpus(str(tmp_path))
    assert len(entries) == 1
    assert entries[0].schema == SCHEMA


def test_rejects_foreign_schema(tmp_path):
    entry = _entry()
    path = save_repro(str(tmp_path), entry)
    with open(path) as fh:
        doc = json.load(fh)
    doc["schema"] = "something/else"
    with open(path, "w") as fh:
        json.dump(doc, fh)
    with pytest.raises(ValueError):
        load_repro(path)


def test_files_end_with_newline(tmp_path):
    # Committed corpus entries should satisfy POSIX text conventions.
    path = save_repro(str(tmp_path), _entry())
    with open(path, "rb") as fh:
        assert fh.read().endswith(b"}\n")
    assert os.path.basename(path).startswith("repro_")
