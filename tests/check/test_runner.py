"""The fuzzing loop end to end: clean runs, injected bugs, the corpus.

The central smoke test injects a deliberate counter bug, and asserts the
full pipeline reacts: the invariant suite catches it, the shrinker
minimizes it, the corpus records it — and the recorded reproduction runs
clean once the bug is gone.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.check.corpus import corpus_paths, load_repro
from repro.check.faults import FAULTS, fault_names, inject
from repro.check.runner import (CheckOptions, CheckRunner, run_config,
                                scenario_payload, sweep_equality_check)
from repro.check.scenarios import FlowConf, ScenarioConfig
from repro.obs.report import validate_report
from repro.sweep.tasks import run_task

pytestmark = pytest.mark.check

SMALL = ScenarioConfig(
    seed=31337, scale=64, warmup=10, measure=60,
    flows=(FlowConf("app", 0, app="IP"),
           FlowConf("app", 3, app="MON")),
    name="small")


def test_run_config_clean_on_both_engines():
    assert run_config(SMALL, ("scalar", "batch")) == []


def test_run_config_reports_crashes_as_findings():
    broken = ScenarioConfig(seed=1, flows=(FlowConf("app", 0, app="NOPE"),),
                            name="broken")
    violations = run_config(broken, ("scalar",))
    assert len(violations) == 1
    assert violations[0].startswith("crash[")


def test_injected_bug_is_caught_shrunk_and_recorded(tmp_path):
    corpus_dir = str(tmp_path / "corpus")
    options = CheckOptions(scenarios=1, seed=7, engines=("scalar", "batch"),
                           inject_fault="l3-snapshot-leak",
                           corpus_dir=corpus_dir, shrink=True)
    result = CheckRunner(options).run()

    assert not result.ok
    outcome = result.outcomes[0]
    assert any("conservation" in v for v in outcome.violations)
    # Shrinking reduced the scenario (the fault is config-independent,
    # so the minimal repro is a floor configuration).
    assert outcome.shrunk is not None
    assert len(outcome.shrunk.flows) <= len(outcome.config.flows)
    assert outcome.shrunk.measure <= outcome.config.measure

    # The corpus has exactly one content-addressed entry...
    paths = corpus_paths(corpus_dir)
    assert paths == [outcome.corpus_path]
    entry = load_repro(paths[0])
    assert entry.injected_fault == "l3-snapshot-leak"
    assert entry.violations
    # ...and without the fault, the recorded repro now runs clean: the
    # exact property the corpus replay gate asserts forever after.
    assert run_config(entry.config, ("scalar", "batch")) == []


@pytest.mark.parametrize("fault", sorted(FAULTS))
def test_every_registered_fault_is_detected(fault):
    engines = ("scalar",) if fault == "forwarded-leak" \
        else ("scalar", "batch")
    with inject(fault):
        violations = run_config(SMALL, engines)
    assert violations, f"fault {fault!r} went undetected"
    # And the patch is gone: the same config is clean again.
    assert run_config(SMALL, engines) == []


def test_inject_unknown_fault_rejected():
    with pytest.raises(KeyError):
        with inject("no-such-fault"):
            pass
    assert "l3-snapshot-leak" in fault_names()


def test_scenario_payload_identical_across_engines():
    scalar = scenario_payload(SMALL, engine="scalar")
    batch = scenario_payload(SMALL, engine="batch")
    assert scalar["violations"] == [] and batch["violations"] == []
    for key in ("events", "end_clock", "flows"):
        assert scalar[key] == batch[key]
    # The payload is plain JSON (it crosses the shard boundary).
    json.dumps(scalar)


def test_check_scenario_sweep_task():
    payload = run_task("check_scenario",
                       {"config": SMALL.to_dict(), "engine": "scalar"})
    assert payload["events"] > 0
    assert payload["violations"] == []
    assert len(payload["flows"]) == len(SMALL.flows)


def test_sweep_equality_serial_vs_two_jobs():
    assert sweep_equality_check(SMALL) == []


def test_clean_run_produces_valid_report(tmp_path):
    options = CheckOptions(scenarios=2, seed=0x5EED,
                           engines=("scalar",), corpus_dir=None)
    result = CheckRunner(options).run()
    assert result.ok
    assert result.runs_checked == 2
    assert result.windows_checked > 0

    report = result.report(command="unit-test")
    doc = json.loads(report.to_json())
    assert validate_report(doc) == []
    assert doc["kind"] == "check"
    assert doc["results"]["checked"] == 2
    assert doc["results"]["failed"] == 0


def test_fail_fast_stops_after_first_failure():
    options = CheckOptions(scenarios=5, seed=7, engines=("scalar",),
                           inject_fault="event-undercount",
                           corpus_dir=None, shrink=False, fail_fast=True)
    result = CheckRunner(options).run()
    assert len(result.outcomes) == 1
    assert not result.ok


def test_options_validate():
    with pytest.raises(ValueError):
        CheckOptions(scenarios=-1)
    with pytest.raises(ValueError):
        CheckOptions(engines=("warp",))
