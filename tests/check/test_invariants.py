"""Unit tests of the runtime invariant engine itself.

Two obligations: the checker must stay *silent* on healthy runs (both
engines, with and without a real metrics sampler underneath the probe),
and it must *fire* — on the right invariant — when machine state is
corrupted. A checker is only trustworthy when both directions hold.
"""

from __future__ import annotations

import pytest

from repro.check.invariants import (InvariantChecker,
                                    InvariantViolationError, Violation)
from repro.check.scenarios import FlowConf, ScenarioConfig
from repro.hw.counters import CoreCounters
from repro.obs.metrics import MetricsSampler

pytestmark = pytest.mark.check

CONFIG = ScenarioConfig(
    seed=424242, scale=64, sockets=1, warmup=20, measure=80,
    flows=(FlowConf("app", 0, app="IP"),
           FlowConf("app", 2, app="MON"),
           FlowConf("syn", 4, cpu_ops=60)),
    name="unit")

TWO_SOCKET = ScenarioConfig(
    seed=99, scale=64, sockets=2, warmup=10, measure=60,
    flows=(FlowConf("app", 0, app="FW"),
           FlowConf("app", 7, app="RE", data_domain=0)),
    name="unit-numa")


@pytest.mark.parametrize("engine", ["scalar", "batch"])
@pytest.mark.parametrize("config", [CONFIG, TWO_SOCKET],
                         ids=["local", "numa"])
def test_clean_runs_pass_strict(engine, config):
    checker = InvariantChecker(strict=True, interval_cycles=20_000.0)
    config.run(engine=engine, checker=checker)
    assert checker.ok
    assert checker.runs_checked == 1
    assert checker.windows_checked > 0


@pytest.mark.parametrize("engine", ["scalar", "batch"])
def test_probe_is_transparent_to_metrics_sampling(engine):
    """A checker underneath a real sampler must not change its payload."""
    interval = 50_000.0

    machine = CONFIG.build(metrics=MetricsSampler(interval_cycles=interval))
    result = machine.run(warmup_packets=CONFIG.warmup,
                         measure_packets=CONFIG.measure, engine=engine)
    plain = result.metrics.payload()

    checker = InvariantChecker(strict=True)
    machine = CONFIG.build(metrics=MetricsSampler(interval_cycles=interval),
                           checker=checker)
    result = machine.run(warmup_packets=CONFIG.warmup,
                         measure_packets=CONFIG.measure, engine=engine)
    # RunResult carries the real sampler, not the probe.
    assert isinstance(result.metrics, MetricsSampler)
    assert result.metrics.payload() == plain
    assert checker.ok and checker.windows_checked > 0


def test_cache_validate_catches_planted_corruption():
    checker = InvariantChecker()
    machine, result = CONFIG.run(engine="scalar")
    cache = machine.l3[0]
    # Duplicate residency: copy a resident line into another set.
    donor = next(s for s in cache.sets if s)
    line = donor[0]
    victim_idx = (line + 1) % cache.n_sets
    cache.sets[victim_idx].append(line)
    checker.check_caches(machine)
    assert any(v.invariant == "cache-structure" for v in checker.violations)


def test_cache_validate_catches_overflowed_set():
    checker = InvariantChecker()
    machine, result = CONFIG.run(engine="scalar")
    cache = machine.l3[0]
    donor = next(i for i, s in enumerate(cache.sets) if s)
    # Blow past the associativity with correctly-indexed lines.
    base = cache.sets[donor][0]
    cache.sets[donor].extend([base + cache.n_sets * (k + 1)
                              for k in range(cache.ways + 1)])
    checker.check_caches(machine)
    assert any(v.invariant == "cache-structure" and "ways" in v.detail
               for v in checker.violations)


def test_check_counters_flags_broken_conservation():
    checker = InvariantChecker()
    c = CoreCounters()
    c.l3_refs = 10
    c.l3_hits = 7
    c.l3_misses = 2  # 7 + 2 != 10
    c.tag_refs[0] = 10
    c.tag_hits[0] = 7
    checker.check_counters(c, "unit")
    assert [v.invariant for v in checker.violations] == ["l3-conservation"]


def test_check_counters_flags_negative_and_remote_bound():
    checker = InvariantChecker()
    c = CoreCounters()
    c.l1_hits = -1
    c.remote_refs = 3  # > l3_misses == 0
    checker.check_counters(c, "unit")
    names = {v.invariant for v in checker.violations}
    assert "counter-sign" in names
    assert "remote-refs-bound" in names


def test_clock_accounting_detects_shifted_clock():
    checker = InvariantChecker()
    machine, result = CONFIG.run(engine="scalar", checker=checker)
    assert checker.ok
    fr = machine.flows[0]
    fr.clock += machine.spec.lat_l1  # one unaccounted L1 hit
    checker.check_machine(machine, result)
    assert any(v.invariant == "clock-accounting"
               for v in checker.violations)


def test_event_conservation_detects_tampered_events():
    checker = InvariantChecker()
    machine, result = CONFIG.run(engine="scalar", checker=checker)
    assert checker.ok
    result.events += 5
    checker.check_machine(machine, result)
    assert any(v.invariant == "event-conservation"
               for v in checker.violations)


def test_strict_mode_raises_with_context_label():
    checker = InvariantChecker(strict=True)
    checker.context = "unit/scalar"
    machine, result = CONFIG.run(engine="scalar", checker=checker)
    fr = machine.flows[0]
    fr.counters.l3_hits += 1
    with pytest.raises(InvariantViolationError) as excinfo:
        checker.after_run(machine, result)
    assert "unit/scalar" in str(excinfo.value)
    assert excinfo.value.violations


MIXED = ScenarioConfig(
    seed=777, scale=64, sockets=1, warmup=10, measure=60,
    flows=(FlowConf("shared", 0, apps=("IP", "MON")),
           FlowConf("throttled", 2, app="RE", rate=2.0e7),
           FlowConf("twofaced", 4, app="FW", trigger=40)),
    name="mixed")


@pytest.mark.parametrize("engine", ["scalar", "batch"])
def test_wrapper_flow_protocols_pass_clean(engine):
    # Shared-core turns, throttled gaps, and two-faced triggers all have
    # protocol invariants of their own; a healthy run satisfies them.
    checker = InvariantChecker(strict=True)
    MIXED.run(engine=engine, checker=checker)
    assert checker.ok


def test_flow_protocol_detects_tampered_turns():
    checker = InvariantChecker()
    machine, result = MIXED.run(engine="scalar", checker=checker)
    assert checker.ok
    shared = machine.flows[0].flow
    shared.turns[0] += 5  # round-robin spread AND conservation break
    checker.check_flow_protocol(machine.flows[0])
    names = {v.invariant for v in checker.violations}
    assert "turns-round-robin" in names
    assert "turns-conservation" in names


def test_flow_protocol_detects_tampered_trigger_state():
    checker = InvariantChecker()
    machine, result = MIXED.run(engine="scalar", checker=checker)
    assert checker.ok
    twofaced = machine.flows[2].flow
    twofaced.triggered = not twofaced.triggered
    checker.check_flow_protocol(machine.flows[2])
    assert any(v.invariant == "trigger-state" for v in checker.violations)


def test_flow_protocol_detects_forwarded_leak():
    checker = InvariantChecker()
    machine, result = CONFIG.run(engine="scalar", checker=checker)
    assert checker.ok
    flow = machine.flows[0].flow
    flow.forwarded -= 3
    checker.check_flow_protocol(machine.flows[0])
    assert any(v.invariant == "packet-conservation"
               for v in checker.violations)


def test_remote_clock_bounds_fire_both_ways():
    machine, result = TWO_SOCKET.run(engine="scalar")
    spec = machine.spec
    fr = next(f for f in machine.flows if f.counters.remote_refs > 0)
    c = fr.counters

    checker = InvariantChecker()
    checker._check_clock_accounting(spec, 1.0, c, fr.label)  # below floor
    assert any("below remote-access floor" in v.detail
               for v in checker.violations)

    checker = InvariantChecker()
    # gap_cycles alone already exceeds a clock of 1.0 — but use a clock
    # smaller than the local components to hit the other bound.
    local_only = (c.gap_cycles + c.l1_hits * spec.lat_l1
                  + c.l2_hits * spec.lat_l2 + c.l3_hits * spec.lat_l3
                  + c.l3_misses * (spec.lat_l3 + spec.lat_dram_extra)
                  + c.mc_wait_cycles)
    huge = local_only * 10 + 1e9
    checker._check_clock_accounting(spec, huge, c, fr.label)
    assert checker.ok  # far above the floor is fine (QPI waits unbounded)


def test_window_checks_catch_backwards_clock_and_counters():
    checker = InvariantChecker()
    machine, result = CONFIG.run(engine="scalar", checker=checker)
    assert checker.ok
    fr = machine.flows[0]
    c = fr.counters
    checker._begin_run(machine)
    checker.check_window(machine, 0, fr.clock, c)
    # Clock going backwards between boundaries.
    checker.check_window(machine, 0, fr.clock - 10.0, c)
    assert any(v.invariant == "clock-monotone" for v in checker.violations)
    # A counter decreasing between boundaries.
    checker.violations.clear()
    c.l1_hits -= 1
    checker.check_window(machine, 0, fr.clock, c)
    assert any(v.invariant == "counter-monotone"
               for v in checker.violations)


def test_occupancy_partition_detects_overlapping_regions():
    checker = InvariantChecker()
    machine, result = CONFIG.run(engine="scalar", checker=checker)
    assert checker.ok
    # Graft one flow's first region onto another flow: the partition
    # audit must flag the overlap.
    donor = machine.flows[0].regions[0]
    machine.flows[1].regions.append(donor)
    checker.check_occupancy_partition(machine)
    assert any(v.invariant == "region-overlap" for v in checker.violations)


def test_check_machine_flags_tampered_measured_window():
    checker = InvariantChecker()
    machine, result = CONFIG.run(engine="scalar", checker=checker)
    assert checker.ok
    label = result.flow_labels[0]
    d = result[label].counts
    # Claim more L3 hits than the window's cycles could possibly hold.
    extra = int(d.cycles / machine.spec.lat_l3) + 1000
    d.l3_hits += extra
    d.l3_refs += extra
    d.tag_refs[0] += extra
    d.tag_hits[0] += extra
    checker.check_machine(machine, result)
    names = {v.invariant for v in checker.violations}
    assert "window-cycle-floor" in names
    assert "refs-rate-bound" in names


def test_check_machine_flags_negative_window_span():
    checker = InvariantChecker()
    machine, result = CONFIG.run(engine="scalar", checker=checker)
    assert checker.ok
    fr = machine.flows[0]
    fr.snap_start, fr.snap_end = fr.snap_end, fr.snap_start
    fr.clock = -1.0
    checker.check_machine(machine, result)
    names = {v.invariant for v in checker.violations}
    assert "window-monotone" in names
    assert "clock-monotone" in names


def test_violation_str_includes_clock():
    v = Violation("x-check", "flow", "broke", phase="window", clock=12.5)
    assert "x-check" in str(v)
    assert "@clock=12.5" in str(v)


def test_checker_rejects_bad_interval():
    with pytest.raises(ValueError):
        InvariantChecker(interval_cycles=0.0)
