"""The ``repro-check`` command line, end to end (in process)."""

from __future__ import annotations

import json

import pytest

from repro.check.cli import main
from repro.check.corpus import corpus_paths
from repro.obs.report import validate_report

pytestmark = pytest.mark.check

FAST = ["--scenarios", "1", "--seed", "0x5EED", "--no-corpus"]


def test_clean_run_exits_zero(capsys):
    rc = main(FAST + ["--engine", "scalar"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "1 scenarios" in out and "ok" in out


def test_hex_and_decimal_seeds_agree(capsys):
    assert main(FAST + ["--engine", "scalar"]) == 0
    hex_out = capsys.readouterr().out
    assert main(["--scenarios", "1", "--seed", str(0x5EED), "--no-corpus",
                 "--engine", "scalar"]) == 0
    dec_out = capsys.readouterr().out
    # Same scenarios, same verdict (only the wall-clock suffix may vary).
    assert hex_out.rsplit("(", 1)[0] == dec_out.rsplit("(", 1)[0]


def test_injected_fault_fails_with_nonzero_exit(tmp_path, capsys):
    corpus_dir = str(tmp_path / "corpus")
    rc = main(["--scenarios", "1", "--seed", "7", "--engine", "scalar",
               "--inject-fault", "event-undercount",
               "--corpus-dir", corpus_dir])
    assert rc == 1
    out = capsys.readouterr().out
    assert "FAIL" in out
    assert "shrunk to:" in out
    assert corpus_paths(corpus_dir)


def test_json_report_is_valid(capsys):
    rc = main(FAST + ["--engine", "scalar", "--json"])
    assert rc == 0
    doc = json.loads(capsys.readouterr().out)
    assert validate_report(doc) == []
    assert doc["kind"] == "check"
    assert doc["config"]["seed"] == 0x5EED


def test_report_file_written(tmp_path, capsys):
    path = tmp_path / "check_report.json"
    rc = main(FAST + ["--engine", "scalar", "--report", str(path)])
    assert rc == 0
    with open(path) as fh:
        doc = json.load(fh)
    assert validate_report(doc) == []


def test_list_faults(capsys):
    assert main(["--list-faults"]) == 0
    out = capsys.readouterr().out.split()
    assert "l3-snapshot-leak" in out
    assert "event-undercount" in out


def test_replay_round_trip(tmp_path, capsys):
    corpus_dir = str(tmp_path / "corpus")
    # Record a failure with a fault...
    assert main(["--scenarios", "1", "--seed", "7", "--engine", "scalar",
                 "--inject-fault", "event-undercount", "--no-shrink",
                 "--corpus-dir", corpus_dir, "-q"]) == 1
    capsys.readouterr()
    # ...replaying it without the fault is clean (exit 0).
    assert main(["--replay", corpus_dir, "--engine", "both", "-q"]) == 0
    assert "0 still failing" in capsys.readouterr().out


def test_replay_empty_dir(tmp_path, capsys):
    assert main(["--replay", str(tmp_path)]) == 0
    assert "no corpus entries" in capsys.readouterr().out


def test_replay_still_failing_entry_exits_one(tmp_path, capsys):
    # An entry whose config cannot even build (unknown app) counts as a
    # crash finding: replay must report it and exit nonzero.
    from repro.check.corpus import ReproEntry, save_repro
    from repro.check.scenarios import FlowConf, ScenarioConfig

    broken = ScenarioConfig(seed=1, warmup=1, measure=30,
                            flows=(FlowConf("app", 0, app="NOPE"),),
                            name="still-broken")
    save_repro(str(tmp_path), ReproEntry(config=broken,
                                         violations=["[x] crash"],
                                         engines=["scalar"]))
    assert main(["--replay", str(tmp_path), "--engine", "scalar"]) == 1
    out = capsys.readouterr().out
    assert "FAIL" in out
    assert "1 still failing" in out


def test_bad_usage_rejected():
    with pytest.raises(SystemExit):
        main(["--scenarios", "-3"])
    with pytest.raises(SystemExit):
        main(["--seed", "zebra"])
    with pytest.raises(SystemExit):
        main(["--engine", "warp"])
    with pytest.raises(SystemExit):
        main(["--probe-interval", "0"])
