"""Scenario generation: determinism, serialization, well-formedness."""

from __future__ import annotations

import pytest

from repro.check.scenarios import (FLOW_KINDS, FlowConf, ScenarioConfig,
                                   generate, generate_one)

pytestmark = pytest.mark.check


def test_generation_is_deterministic():
    a = generate(12, 0x5EED)
    b = generate(12, 0x5EED)
    assert a == b
    assert [c.digest() for c in a] == [c.digest() for c in b]


def test_different_seeds_differ():
    assert generate(8, 1) != generate(8, 2)


def test_indexing_is_stable():
    # Scenario i is a pure function of (seed, i), not of how many
    # scenarios were requested — CI failures name a reproducible index.
    assert generate(10, 7)[6] == generate_one(7, 6)


@pytest.mark.parametrize("index", range(20))
def test_generated_configs_are_well_formed(index):
    config = generate_one(0x5EED, index)
    spec = config.spec()
    total_cores = spec.n_sockets * spec.cores_per_socket
    cores = [fc.core for fc in config.flows]
    assert cores, "a scenario must place at least one flow"
    assert len(set(cores)) == len(cores), "one flow per core"
    assert all(0 <= c < total_cores for c in cores)
    assert config.warmup >= 1 and config.measure >= 30
    for fc in config.flows:
        assert fc.kind in FLOW_KINDS
        if fc.data_domain is not None:
            assert config.sockets == 2
            assert 0 <= fc.data_domain < 2


def test_round_trip_preserves_config_and_digest():
    for config in generate(10, 3):
        clone = ScenarioConfig.from_dict(config.to_dict())
        assert clone == config
        assert clone.digest() == config.digest()


def test_digest_ignores_name():
    config = generate_one(1, 0)
    renamed = ScenarioConfig.from_dict({**config.to_dict(), "name": "other"})
    assert renamed.digest() == config.digest()


def test_digest_sees_every_field():
    config = generate_one(1, 0)
    bumped = ScenarioConfig.from_dict(
        {**config.to_dict(), "measure": config.measure + 10})
    assert bumped.digest() != config.digest()


@pytest.mark.parametrize("kind,conf", [
    ("app", FlowConf("app", 0, app="IP")),
    ("syn", FlowConf("syn", 0, cpu_ops=60)),
    ("syn-max", FlowConf("syn", 0, cpu_ops=None)),
    ("shared", FlowConf("shared", 0, apps=("IP", "MON"))),
    ("throttled", FlowConf("throttled", 0, app="IP", rate=2.0e7)),
    ("twofaced", FlowConf("twofaced", 0, app="FW", trigger=40)),
])
def test_every_flow_kind_builds_and_runs(kind, conf):
    config = ScenarioConfig(seed=11, scale=64, warmup=5, measure=40,
                            flows=(conf,), name=f"kind-{kind}")
    machine, result = config.run(engine="scalar")
    assert result.events > 0
    assert result.flow_labels


def test_unknown_kind_rejected():
    with pytest.raises(ValueError):
        FlowConf("bogus", 0).factory()


def test_describe_mentions_every_flow():
    config = generate_one(0x5EED, 0)
    text = config.describe()
    assert config.name in text
    for fc in config.flows:
        assert f"@{fc.core}" in text
