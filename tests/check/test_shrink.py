"""Shrinking: failing configurations reduce to minimal reproductions."""

from __future__ import annotations

import pytest

from repro.check.scenarios import FlowConf, ScenarioConfig
from repro.check.shrink import MIN_MEASURE, MIN_WARMUP, shrink

pytestmark = pytest.mark.check

BIG = ScenarioConfig(
    seed=5, scale=64, sockets=2, warmup=60, measure=200,
    flows=(FlowConf("app", 0, app="IP"),
           FlowConf("twofaced", 2, app="FW", trigger=40),
           FlowConf("shared", 7, apps=("MON", "RE", "FPC")),
           FlowConf("syn", 9, cpu_ops=None, data_domain=0)),
    name="big")


def test_shrinks_to_single_flow_and_minimal_windows():
    # "Failure" depends on nothing: every reduction still fails, so the
    # shrinker should reach the floor of the reduction lattice.
    minimal = shrink(BIG, lambda config: True, budget=200)
    assert len(minimal.flows) == 1
    assert minimal.sockets == 1
    assert minimal.warmup == MIN_WARMUP
    assert minimal.measure == MIN_MEASURE
    assert minimal.name == "big-min"


def test_shrink_preserves_the_failing_property():
    # Failure requires at least two flows: the shrinker must stop there.
    def fails(config):
        return len(config.flows) >= 2

    minimal = shrink(BIG, fails, budget=200)
    assert len(minimal.flows) == 2
    assert fails(minimal)


def test_shrink_keeps_the_culprit_flow():
    # Failure tied to the two-faced flow: it must survive simplified but
    # every unrelated flow should be gone. (Simplifying two-faced to its
    # plain base app would make the predicate pass, so it stays.)
    def fails(config):
        return any(fc.kind == "twofaced" for fc in config.flows)

    minimal = shrink(BIG, fails, budget=200)
    assert len(minimal.flows) == 1
    assert minimal.flows[0].kind == "twofaced"


def test_unshrinkable_config_returned_unchanged():
    config = ScenarioConfig(seed=1, warmup=MIN_WARMUP, measure=MIN_MEASURE,
                            flows=(FlowConf("app", 0, app="IP"),),
                            name="tiny")

    def fails(candidate):
        return candidate == config  # no reduction reproduces it

    assert shrink(config, fails) is config


def test_budget_bounds_predicate_evaluations():
    calls = []

    def fails(config):
        calls.append(config)
        return True

    shrink(BIG, fails, budget=5)
    assert len(calls) <= 5
