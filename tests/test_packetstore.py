"""The RE packet store: circular content cache with eviction detection."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.packetstore import PacketStore


def test_append_and_get():
    store = PacketStore(256)
    off = store.append(b"hello")
    assert off == 0
    assert store.get(off, 5) == b"hello"


def test_sequential_appends():
    store = PacketStore(256)
    a = store.append(b"aaaa")
    b = store.append(b"bbbb")
    assert b == 4
    assert store.get(a, 4) == b"aaaa"
    assert store.get(b, 4) == b"bbbb"


def test_wraparound_content():
    store = PacketStore(8)
    store.append(b"12345678")
    off = store.append(b"ABCD")  # wraps to the start
    assert store.get(off, 4) == b"ABCD"


def test_get_spanning_wrap():
    store = PacketStore(8)
    store.append(b"123456")
    off = store.append(b"XYZW")  # bytes 6,7 then 0,1
    assert store.get(off, 4) == b"XYZW"


def test_eviction_detected():
    store = PacketStore(8)
    first = store.append(b"AAAA")
    store.append(b"BBBB")
    store.append(b"CCCC")  # overwrites the first append
    assert store.get(first, 4) is None


def test_unwritten_range_is_none():
    store = PacketStore(64)
    store.append(b"xy")
    assert store.get(0, 3) is None
    assert store.get(5, 1) is None


def test_empty_get():
    store = PacketStore(16)
    assert store.get(0, 0) == b""


def test_contains():
    store = PacketStore(8)
    off = store.append(b"abcd")
    assert store.contains(off, 4)
    store.append(b"efghijkl")
    assert not store.contains(off, 4)


def test_rejects_oversized_append():
    store = PacketStore(4)
    with pytest.raises(ValueError):
        store.append(b"too big!")


def test_rejects_negative_args():
    store = PacketStore(16)
    with pytest.raises(ValueError):
        store.get(-1, 2)
    with pytest.raises(ValueError):
        store.get(0, -2)
    with pytest.raises(ValueError):
        PacketStore(0)


def test_oldest_valid_tracks_overwrite():
    store = PacketStore(10)
    store.append(b"0123456789")
    assert store.oldest_valid == 0
    store.append(b"ab")
    assert store.oldest_valid == 2


@given(st.lists(st.binary(min_size=1, max_size=20), min_size=1, max_size=60))
@settings(max_examples=60, deadline=None)
def test_property_resident_content_reads_back(chunks):
    """Any chunk still within the capacity window reads back intact."""
    store = PacketStore(64)
    placed = []
    for chunk in chunks:
        if len(chunk) > 64:
            continue
        placed.append((store.append(chunk), chunk))
    for off, chunk in placed:
        got = store.get(off, len(chunk))
        if store.contains(off, len(chunk)):
            assert got == chunk
        else:
            assert got is None
