"""End-to-end observability-flag coverage for every CLI, both engines.

Each of the four tools runs once per engine with the full flag set —
``--json --trace PATH --trace-sample N --metrics-interval US`` — and the
test asserts the three artifacts line up: a parseable RunReport on
stdout stamped with the engine, a valid Chrome ``trace_event`` document
at PATH, and an embedded counter time series. An unwritable ``--trace``
path must fail fast with ``SystemExit(2)`` (argparse's error exit)
*before* any simulation runs.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import predict_main, profile_main, schedule_main, sweep_main

FAST = ["--scale", "64", "--warmup", "100", "--measure", "200"]

#: name -> (entry point, positional argv)
CLIS = {
    "profile": (profile_main, ["IP"]),
    "predict": (predict_main, ["FW", "FW"]),
    "schedule": (schedule_main, ["6xMON", "6xFW"]),
    "sweep": (sweep_main, ["FW"]),
}


def run_cli(name, extra, capsys):
    main, positional = CLIS[name]
    rc = main(positional + FAST + extra)
    captured = capsys.readouterr()
    return rc, captured.out


@pytest.mark.parametrize("engine", ["scalar", "batch"])
@pytest.mark.parametrize("name", sorted(CLIS))
def test_full_flag_set(name, engine, tmp_path, capsys):
    trace_path = tmp_path / f"{name}-{engine}.trace.json"
    rc, out = run_cli(
        name,
        ["--engine", engine, "--json",
         "--trace", str(trace_path), "--trace-sample", "4",
         "--metrics-interval", "10"],
        capsys)
    assert rc == 0

    # stdout is one RunReport document stamped with the engine.
    report = json.loads(out)
    assert report["schema"].startswith("repro.")
    assert report["results"]["engine"] == engine
    assert report["scale"] == 64

    # The time series was sampled and embedded.
    assert report["timeseries"], f"{name}: --metrics-interval produced nothing"
    some_series = next(iter(report["timeseries"].values()))
    assert some_series, f"{name}: empty sampled run"

    # The Chrome trace is valid JSON with events in it.
    with open(trace_path) as fh:
        trace = json.load(fh)
    events = trace["traceEvents"] if isinstance(trace, dict) else trace
    assert events, f"{name}: trace file has no events"


@pytest.mark.parametrize("name", sorted(CLIS))
def test_json_engine_stamp_default_scalar(name, capsys):
    rc, out = run_cli(name, ["--json"], capsys)
    assert rc == 0
    assert json.loads(out)["results"]["engine"] == "scalar"


@pytest.mark.parametrize("name", sorted(CLIS))
def test_unwritable_trace_path_fails_fast(name, tmp_path, capsys):
    missing_dir = tmp_path / "no_such_dir" / "trace.json"
    main, positional = CLIS[name]
    with pytest.raises(SystemExit) as excinfo:
        main(positional + FAST + ["--trace", str(missing_dir)])
    assert excinfo.value.code == 2
    err = capsys.readouterr().err
    assert "--trace" in err and "cannot write" in err


def test_trace_sample_thins_events(tmp_path, capsys):
    dense = tmp_path / "dense.json"
    sparse = tmp_path / "sparse.json"
    rc, _ = run_cli("profile", ["--trace", str(dense)], capsys)
    assert rc == 0
    rc, _ = run_cli("profile", ["--trace", str(sparse),
                                "--trace-sample", "16"], capsys)
    assert rc == 0
    with open(dense) as fh:
        n_dense = len(json.load(fh)["traceEvents"])
    with open(sparse) as fh:
        n_sparse = len(json.load(fh)["traceEvents"])
    assert n_sparse < n_dense


def test_batch_and_scalar_reports_agree(capsys):
    """The JSON report's flow statistics must be engine-independent."""
    reports = {}
    for engine in ("scalar", "batch"):
        rc, out = run_cli("profile", ["--engine", engine, "--json"], capsys)
        assert rc == 0
        reports[engine] = json.loads(out)
    for report in reports.values():
        report["results"].pop("engine")
    assert reports["scalar"] == reports["batch"]
