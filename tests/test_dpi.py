"""DPI element (extension application)."""

import pytest

from repro.apps.dpi import DPIElement
from repro.apps.registry import make_app
from repro.mem.access import AccessContext
from repro.net.packet import Packet
from tests.conftest import make_env


def make_dpi(patterns=None, **kw):
    element = DPIElement(patterns=patterns, **kw)
    element.initialize(make_env())
    return element


def test_alerts_on_signature():
    dpi = make_dpi(patterns=[b"attack!!"])
    pkt = Packet.udp(src=1, dst=2, payload=b"prefix attack!! suffix")
    out = dpi.process(AccessContext(), pkt)
    assert out is pkt  # IDS mode: alert but forward
    assert dpi.alerts == 1


def test_ips_mode_drops():
    dpi = make_dpi(patterns=[b"attack!!"], drop_on_match=True)
    pkt = Packet.udp(src=1, dst=2, payload=b"xx attack!! yy")
    assert dpi.process(AccessContext(), pkt) is None


def test_clean_payload_passes():
    dpi = make_dpi(patterns=[b"attack!!"])
    pkt = Packet.udp(src=1, dst=2, payload=b"totally benign payload")
    assert dpi.process(AccessContext(), pkt) is pkt
    assert dpi.alerts == 0
    assert dpi.bytes_scanned == len(pkt.payload)


def test_empty_payload_skips_scan():
    dpi = make_dpi(patterns=[b"attack!!"])
    pkt = Packet.udp(src=1, dst=2, payload=b"")
    assert dpi.process(AccessContext(), pkt) is pkt
    assert dpi.bytes_scanned == 0


def test_records_automaton_references():
    dpi = make_dpi()  # generated signature set
    ctx = AccessContext()
    pkt = Packet.udp(src=1, dst=2, payload=b"z" * 128)
    dpi.process(ctx, pkt)
    lines = ctx.lines_touched()
    region_lines = set(range(dpi.region.base >> 6, dpi.region.end >> 6))
    assert lines
    assert all(line in region_lines for line in lines)


def test_generated_rules_rarely_match_random_traffic():
    env = make_env()
    dpi = DPIElement()
    dpi.initialize(env)
    for i in range(30):
        pkt = Packet.udp(src=i, dst=i, payload=env.rng.randbytes(200))
        dpi.process(AccessContext(), pkt)
    assert dpi.alerts <= 1
    assert dpi.scanned == 30


def test_requires_initialize():
    with pytest.raises(RuntimeError):
        DPIElement().process(AccessContext(), Packet.udp(src=1, dst=2))


def test_registered_as_extension_app():
    app = make_app("DPI", make_env())
    names = [e.__class__.__name__ for e in app.elements]
    assert names[-1] == "DPIElement"
    ctx = AccessContext()
    app.run_packet(ctx)
    assert ctx.n_references > 0
