"""VPN element: real encryption with simulated payload accesses."""

import pytest

from repro.apps.aes import AES128, ctr_crypt
from repro.apps.vpn import VPNEncrypt
from repro.mem.access import AccessContext
from repro.net.packet import Packet
from tests.conftest import make_env


def make_vpn(key=b"\x07" * 16):
    element = VPNEncrypt(key=key)
    element.initialize(make_env())
    return element


def test_encrypts_payload():
    element = make_vpn()
    payload = b"confidential data!!!"
    pkt = Packet.udp(src=1, dst=2, payload=payload)
    out = element.process(AccessContext(), pkt)
    assert out.payload != payload
    assert len(out.payload) == len(payload)
    assert element.bytes_encrypted == len(payload)


def test_ciphertext_is_decryptable():
    key = b"\x07" * 16
    element = make_vpn(key)
    payload = bytes(range(48))
    pkt = Packet.udp(src=1, dst=2, payload=payload)
    element.process(AccessContext(), pkt)
    # First packet: nonce 0, counter 0.
    recovered = ctr_crypt(AES128(key), nonce=0, counter0=0, data=pkt.payload)
    assert recovered == payload


def test_counter_advances_per_packet():
    element = make_vpn()
    p1 = Packet.udp(src=1, dst=2, payload=b"A" * 32)
    p2 = Packet.udp(src=1, dst=2, payload=b"A" * 32)
    element.process(AccessContext(), p1)
    element.process(AccessContext(), p2)
    # Same plaintext must not produce the same ciphertext (fresh keystream).
    assert p1.payload != p2.payload
    assert element.counter == 4


def test_empty_payload_is_noop_crypto():
    element = make_vpn()
    pkt = Packet.udp(src=1, dst=2, payload=b"")
    out = element.process(AccessContext(), pkt)
    assert out.payload == b""
    assert element.packets == 1


def test_records_payload_references():
    element = make_vpn()
    ctx = AccessContext()
    pkt = Packet.udp(src=1, dst=2, payload=b"B" * 128)
    # Bind the packet to a buffer so payload lines are attributable.
    env = make_env(seed=99)
    buf = env.space.domain(0).alloc(2048, "buf")
    pkt.buffer = buf
    element.process(ctx, pkt)
    buf_lines = set(range(buf.base >> 6, buf.end >> 6))
    assert any(line in buf_lines for line in ctx.lines_touched())


def test_random_key_when_unconfigured():
    env = make_env()
    a = VPNEncrypt()
    a.initialize(env)
    b = VPNEncrypt()
    b.initialize(make_env(seed=1234))
    assert a.cipher.key != b.cipher.key


def test_requires_initialize():
    with pytest.raises(RuntimeError):
        VPNEncrypt().process(AccessContext(), Packet.udp(src=1, dst=2))
