"""Section 2.2's "avoidable contention": shared hot lines vs. replication.

The paper eliminated false sharing and unnecessarily shared data (driver
book-keeping, the Click RNG seed) by padding and per-core replication
before studying real contention. This test reproduces the *why*: a
statistics line written by every core ping-pongs between private caches
(each writer invalidates the other copies), while per-core replicated
lines stay L1-resident.
"""

import pytest

from repro.hw.machine import Machine
from repro.hw.topology import PlatformSpec


class StatsFlow:
    """A flow updating a stats line per packet: shared or replicated."""

    name = "stats"
    measure_weight = 1.0

    def __init__(self, env, shared_region=None, peer_cores=None):
        if shared_region is None:
            self.region = env.space.domain(env.domain).alloc(64, "stats")
            self.shared = False
        else:
            self.region = shared_region
            self.shared = True
        self.peer_cores = peer_cores or []
        self._machine = None
        self._core = None
        # Some private per-packet work so the stats update is a small
        # fraction of the packet cost, as in a real forwarding path.
        self.work = env.space.domain(env.domain).alloc(1 << 14, "work")
        self._pos = 0

    def attach_run(self, machine, flow_run):
        self._machine = machine
        self._core = flow_run.core

    def run_packet(self, ctx):
        ctx.compute(150, 100)
        base = self.work.base >> 6
        for _ in range(4):
            ctx.touch_line(base + self._pos)
            self._pos = (self._pos + 1) % self.work.n_lines
        ctx.touch(self.region, 0, 8)
        if self.shared and self._machine is not None:
            # Writing the shared line invalidates every peer's copy.
            line = self.region.base >> 6
            for core in self.peer_cores:
                if core != self._core:
                    self._machine.invalidate_private([line], core)
        return None


@pytest.fixture(scope="module")
def spec():
    return PlatformSpec.westmere().scaled(64).single_socket()


def run_replicated(spec, n_cores=4):
    machine = Machine(spec)
    for core in range(n_cores):
        machine.add_flow(StatsFlow, core=core, label=f"f{core}")
    result = machine.run(warmup_packets=200, measure_packets=600)
    return sum(result[f"f{c}"].packets_per_sec for c in range(n_cores))


def run_shared(spec, n_cores=4):
    machine = Machine(spec)
    shared = {}
    cores = list(range(n_cores))

    def factory(env, shared=shared):
        if "region" not in shared:
            shared["region"] = env.space.domain(env.domain).alloc(
                64, "shared.stats")
        return StatsFlow(env, shared_region=shared["region"],
                         peer_cores=cores)

    for core in cores:
        machine.add_flow(factory, core=core, label=f"f{core}")
    result = machine.run(warmup_packets=200, measure_packets=600)
    return sum(result[f"f{c}"].packets_per_sec for c in range(n_cores))


def test_shared_stats_line_costs_throughput(spec):
    replicated = run_replicated(spec)
    shared = run_shared(spec)
    # Replication wins: the shared line's L1 copies are invalidated on
    # every peer write, forcing repeated L3 round-trips.
    assert shared < replicated * 0.97


def test_single_core_sharing_is_free(spec):
    # With one core there is no ping-pong; both variants perform alike.
    replicated = run_replicated(spec, n_cores=1)
    shared = run_shared(spec, n_cores=1)
    assert shared == pytest.approx(replicated, rel=0.02)
