"""TableLayout helpers."""

import pytest

from repro.mem.layout import TableLayout
from repro.mem.region import Region


def region(size=1024, base=0):
    return Region(name="t", base=base, size=size, domain=0)


def test_entry_count_and_offsets():
    layout = TableLayout(region(1024), entry_bytes=32)
    assert layout.n_entries == 32
    assert layout.offset(0) == 0
    assert layout.offset(3) == 96
    assert len(layout) == 32


def test_entry_line():
    layout = TableLayout(region(1024, base=128), entry_bytes=32)
    assert layout.line(0) == 2
    assert layout.line(2) == 3


def test_entries_per_line():
    assert TableLayout(region(), entry_bytes=16).entries_per_line() == 4
    assert TableLayout(region(), entry_bytes=64).entries_per_line() == 1
    assert TableLayout(region(), entry_bytes=128).entries_per_line() == 1


def test_bounds_checked():
    layout = TableLayout(region(128), entry_bytes=64)
    with pytest.raises(IndexError):
        layout.offset(2)
    with pytest.raises(IndexError):
        layout.offset(-1)


def test_validation():
    with pytest.raises(ValueError):
        TableLayout(region(), entry_bytes=0)
    with pytest.raises(ValueError):
        TableLayout(region(64), entry_bytes=128)
