"""Disabled observability must not slow the engine's hot path.

The engine hoists ``tracer.active`` / ``metrics is not None`` into locals
before its event loop; with tracing off, the per-packet cost is a single
boolean check. This guard compares a stock machine against one carrying a
configured-but-disabled tracer and asserts the slowdown stays under 5%
(with retries: wall-clock timing on shared CI workers is noisy).
"""

import time

from repro.apps.registry import app_factory
from repro.hw.machine import Machine
from repro.hw.topology import PlatformSpec
from repro.obs import ChromeTraceSink, ListSink, Tracer

WARM, MEAS = 500, 2000
MAX_OVERHEAD = 0.05
ATTEMPTS = 5


def _spec():
    return PlatformSpec.westmere().scaled(32).single_socket()


def _run_once(tracer):
    machine = Machine(_spec(), seed=5, tracer=tracer)
    machine.add_flow(app_factory("IP"), core=0)
    machine.add_flow(app_factory("MON"), core=1)
    start = time.perf_counter()
    machine.run(warmup_packets=WARM, measure_packets=MEAS)
    return time.perf_counter() - start


def test_disabled_tracer_overhead_under_5_percent():
    disabled = Tracer(ListSink(), enabled=False)
    assert not disabled.active
    # Warm caches/JIT-free interpreter state once before timing.
    _run_once(None)
    best = float("inf")
    for _ in range(ATTEMPTS):
        base = _run_once(None)
        traced = _run_once(disabled)
        if base <= 0:
            continue
        best = min(best, (traced - base) / base)
        if best <= MAX_OVERHEAD:
            break
    assert best <= MAX_OVERHEAD, (
        f"disabled tracing cost {best:.1%} over {ATTEMPTS} attempts")


def test_enabled_tracing_records_without_breaking_results(tmp_path):
    """Sanity companion: enabling tracing changes no simulation outcome."""
    machine = Machine(_spec(), seed=5)
    machine.add_flow(app_factory("IP"), core=0)
    bare = machine.run(warmup_packets=200, measure_packets=400)

    tracer = Tracer(ChromeTraceSink(str(tmp_path / "t.json")))
    machine = Machine(_spec(), seed=5, tracer=tracer)
    machine.add_flow(app_factory("IP"), core=0)
    traced = machine.run(warmup_packets=200, measure_packets=400)
    tracer.close()

    assert traced["IP@0"].packets == bare["IP@0"].packets
    assert traced["IP@0"].cycles == bare["IP@0"].cycles
    assert traced.events == bare.events
