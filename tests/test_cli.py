"""CLI entry points (fast, tiny-scale invocations)."""

import pytest

from repro.cli import _parse_flows, predict_main, profile_main, schedule_main


def test_parse_flows_expands_counts():
    assert _parse_flows(["2xMON", "FW"]) == ["MON", "MON", "FW"]
    assert _parse_flows(["IP"]) == ["IP"]


def test_parse_flows_rejects_unknown():
    with pytest.raises(SystemExit):
        _parse_flows(["2xNAT"])


def test_profile_main_runs(capsys):
    rc = profile_main(["IP", "--scale", "64", "--warmup", "300",
                       "--measure", "300"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "IP" in out
    assert "pkts/sec" in out


def test_predict_main_runs(capsys):
    rc = predict_main(["FW", "FW", "--scale", "64", "--warmup", "300",
                       "--measure", "300"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "FW@0" in out
    assert "predicted drop" in out


def test_predict_main_rejects_oversubscription():
    with pytest.raises(SystemExit):
        predict_main(["7xFW", "--scale", "64"])


def test_schedule_main_rejects_wrong_count():
    with pytest.raises(SystemExit):
        schedule_main(["3xMON", "--scale", "64"])


def test_sweep_main_runs(capsys):
    from repro.cli import sweep_main

    rc = sweep_main(["FW", "--scale", "64", "--warmup", "300",
                     "--measure", "300"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "sensitivity curve" in out
    assert "turning point" in out
    assert "drop %" in out
