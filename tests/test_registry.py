"""Application registry: every flow type builds and runs."""

import pytest

from repro.apps.registry import (
    APP_NAMES,
    MEASURE_WEIGHTS,
    REALISTIC_APPS,
    app_factory,
    describe_apps,
    make_app,
)
from repro.apps.synthetic import SynApp
from repro.click.elements.control import ControlElement
from repro.click.pipeline import Pipeline
from repro.hw.machine import Machine
from repro.hw.topology import PlatformSpec
from repro.mem.access import AccessContext
from tests.conftest import make_env


@pytest.mark.parametrize("name", REALISTIC_APPS)
def test_realistic_apps_are_pipelines(name):
    app = make_app(name, make_env())
    assert isinstance(app, Pipeline)
    assert app.name == name
    assert app.measure_weight == MEASURE_WEIGHTS[name]


@pytest.mark.parametrize("name", ["SYN", "SYN_MAX"])
def test_synthetics(name):
    app = make_app(name, make_env())
    assert isinstance(app, SynApp)


def test_unknown_app_rejected():
    with pytest.raises(ValueError, match="unknown"):
        make_app("NAT", make_env())


@pytest.mark.parametrize("name", REALISTIC_APPS)
def test_every_app_processes_packets(name):
    app = make_app(name, make_env())
    ctx = AccessContext()
    for _ in range(5):
        ctx.reset()
        app.run_packet(ctx)
        ctx.finish_packet()
        assert ctx.n_references > 0 or ctx.trailing_gap > 0


def test_element_composition_matches_paper():
    """MON = IP + NetFlow; FW/RE/VPN extend MON (Section 2.1)."""
    def names(app):
        return [e.__class__.__name__ for e in make_app(app, make_env()).elements]

    ip = names("IP")
    assert ip == ["CheckIPHeader", "RadixIPLookup", "DecIPTTL"]
    assert names("MON") == ip + ["NetFlow"]
    assert names("FW") == ip + ["NetFlow", "Firewall"]
    assert names("RE") == ip + ["NetFlow", "REElement"]
    assert names("VPN") == ip + ["NetFlow", "VPNEncrypt"]


def test_control_element_prepends():
    app = make_app("IP", make_env(), control=ControlElement())
    assert app.elements[0].__class__.__name__ == "ControlElement"


def test_app_factory_runs_on_machine():
    m = Machine(PlatformSpec.westmere().scaled(64))
    m.add_flow(app_factory("IP"), core=0, label="IP")
    stats = m.run(warmup_packets=100, measure_packets=200)["IP"]
    assert stats.packets == 200
    assert stats.l3_refs_per_sec > 0


def test_describe_apps_covers_all():
    descriptions = describe_apps()
    assert set(descriptions) == set(APP_NAMES)
    assert all(descriptions.values())
